#ifndef ODBGC_CORE_REMEMBERED_SET_H_
#define ODBGC_CORE_REMEMBERED_SET_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"

namespace odbgc {

/// A pointer field: slot `slot` of object `source`.
struct PointerLocation {
  ObjectId source;
  uint32_t slot = 0;

  friend bool operator==(const PointerLocation& a, const PointerLocation& b) {
    return a.source == b.source && a.slot == b.slot;
  }
  friend bool operator<(const PointerLocation& a, const PointerLocation& b) {
    if (!(a.source == b.source)) return a.source < b.source;
    return a.slot < b.slot;
  }
};

/// Tracks every inter-partition pointer in the database — the paper's two
/// auxiliary structures rolled into one consistent index:
///
///  - the *remembered set* of partition T: all pointer locations whose
///    target lives in T but whose source lives elsewhere (these act as
///    roots when T is collected), and
///  - the *out-of-partition set* of partition F: all objects in F holding
///    pointers out of F (needed so that when such an object dies, its
///    entries can be removed from the remembered sets it contributed to —
///    otherwise later collections would unnecessarily preserve objects
///    pointed to only by garbage).
///
/// Only inter-partition pointers are indexed; intra-partition pointers are
/// found by the collector's traversal. Because slots store stable
/// ObjectIds, relocation only re-buckets entries between partitions; the
/// entries themselves never go stale.
///
/// The index lives in primary memory (the paper maintains these structures
/// as in-memory auxiliaries) and is never charged I/O.
class InterPartitionIndex {
 public:
  InterPartitionIndex() = default;

  /// Records inter-partition pointer (source.slot -> target). Requires
  /// source_partition != target_partition; call only for such pointers.
  void AddReference(ObjectId source, PartitionId source_partition,
                    uint32_t slot, ObjectId target,
                    PartitionId target_partition);

  /// Removes the record for (source.slot -> target); no-op if absent.
  void RemoveReference(ObjectId source, uint32_t slot, ObjectId target);

  /// Re-buckets all entries involving `object` after it moved between
  /// partitions (both its role as a target and as a source of
  /// out-pointers).
  void OnObjectMoved(ObjectId object, PartitionId from, PartitionId to);

  /// Removes a dead object: erases all remembered-set entries contributed
  /// by its out-pointers, and its out-set membership. The object must have
  /// no incoming external references left (a partition-local collection
  /// treats externally referenced objects as live).
  void OnObjectDied(ObjectId object, PartitionId partition);

  /// Erases all entries contributed by `source`'s out-pointers without
  /// requiring `source` to be unreferenced. The global collector retires a
  /// whole dead set at once: it first strips every dead object's
  /// out-pointers (after which no dead object has external references,
  /// since live objects cannot point at garbage), then drops the bodies.
  void RemoveOutPointersOf(ObjectId source, PartitionId partition);

  /// Remembered set of `partition`: ids of objects in `partition` that
  /// have at least one external reference, in ascending id order
  /// (deterministic collection roots).
  std::vector<ObjectId> ExternalTargetsInPartition(PartitionId partition) const;

  /// All pointer locations referencing `target` from other partitions;
  /// nullptr if none.
  const std::vector<PointerLocation>* EntriesForTarget(ObjectId target) const;

  bool HasExternalReferences(ObjectId target) const;

  /// Out-of-partition set of `partition`: ids of objects in `partition`
  /// holding at least one pointer out of it, ascending order.
  std::vector<ObjectId> SourcesInPartition(PartitionId partition) const;

  /// Out-pointers of `source` (slot, target) pairs; nullptr if none.
  const std::vector<std::pair<uint32_t, ObjectId>>* OutPointersOfSource(
      ObjectId source) const;

  /// Total number of inter-partition pointer entries.
  size_t entry_count() const { return entry_count_; }

  /// Number of remembered-set entries into `partition` (size of its
  /// remembered set in pointers, not targets).
  size_t EntryCountForPartition(PartitionId partition) const;

 private:
  // target -> external pointer locations referencing it.
  std::unordered_map<ObjectId, std::vector<PointerLocation>>
      entries_by_target_;
  // partition -> ids of externally referenced objects living there.
  std::unordered_map<PartitionId, std::set<ObjectId>> targets_in_partition_;
  // source -> its out-pointers (slot, target).
  std::unordered_map<ObjectId, std::vector<std::pair<uint32_t, ObjectId>>>
      out_pointers_by_source_;
  // partition -> ids of out-pointer-holding objects living there.
  std::unordered_map<PartitionId, std::set<ObjectId>> sources_in_partition_;

  size_t entry_count_ = 0;
};

/// Rebuilds the complete index by scanning the store's shadow graph — the
/// index is derivable state, so checkpoint images do not carry it and a
/// restored heap reconstructs it with this.
InterPartitionIndex BuildIndexFromStore(const ObjectStore& store);

}  // namespace odbgc

#endif  // ODBGC_CORE_REMEMBERED_SET_H_
