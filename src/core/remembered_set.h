#ifndef ODBGC_CORE_REMEMBERED_SET_H_
#define ODBGC_CORE_REMEMBERED_SET_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"
#include "util/flat_set.h"
#include "util/inline_vector.h"

namespace odbgc {

/// A pointer field: slot `slot` of object `source`.
struct PointerLocation {
  ObjectId source;
  uint32_t slot = 0;

  friend bool operator==(const PointerLocation& a, const PointerLocation& b) {
    return a.source == b.source && a.slot == b.slot;
  }
  friend bool operator<(const PointerLocation& a, const PointerLocation& b) {
    if (!(a.source == b.source)) return a.source < b.source;
    return a.slot < b.slot;
  }
};

/// External pointer locations referencing one target. Inline capacity 2:
/// most externally referenced objects have one or two referents.
using PointerLocationList = InlineVector<PointerLocation, 2>;

/// Out-of-partition pointers of one source, as (slot, target) pairs.
/// Inline capacity 2: the common out-pointer list is one or two entries
/// (the workload's dense-edge rate is ~0.08 per object).
using OutPointerList = InlineVector<std::pair<uint32_t, ObjectId>, 2>;

/// Tracks every inter-partition pointer in the database — the paper's two
/// auxiliary structures rolled into one consistent index:
///
///  - the *remembered set* of partition T: all pointer locations whose
///    target lives in T but whose source lives elsewhere (these act as
///    roots when T is collected), and
///  - the *out-of-partition set* of partition F: all objects in F holding
///    pointers out of F (needed so that when such an object dies, its
///    entries can be removed from the remembered sets it contributed to —
///    otherwise later collections would unnecessarily preserve objects
///    pointed to only by garbage).
///
/// Only inter-partition pointers are indexed; intra-partition pointers are
/// found by the collector's traversal. Because slots store stable
/// ObjectIds, relocation only re-buckets entries between partitions; the
/// entries themselves never go stale.
///
/// The index lives in primary memory (the paper maintains these structures
/// as in-memory auxiliaries) and is never charged I/O.
///
/// Layout (this is the write barrier's hot path — every pointer store
/// lands here):
///  - per-object records carry their entry list in a small inline buffer
///    plus the partition the object currently occupies, so removal and
///    re-bucketing need no search over partitions;
///  - per-partition membership sets are flat sorted vectors (FlatSet)
///    indexed by partition id, replacing unordered_map<id, std::set> —
///    the collector reads them as contiguous, already-sorted spans.
class InterPartitionIndex {
 public:
  InterPartitionIndex() = default;

  /// Records inter-partition pointer (source.slot -> target). Requires
  /// source_partition != target_partition; call only for such pointers.
  void AddReference(ObjectId source, PartitionId source_partition,
                    uint32_t slot, ObjectId target,
                    PartitionId target_partition);

  /// Removes the record for (source.slot -> target); no-op if absent.
  void RemoveReference(ObjectId source, uint32_t slot, ObjectId target);

  /// Re-buckets all entries involving `object` after it moved between
  /// partitions (both its role as a target and as a source of
  /// out-pointers).
  void OnObjectMoved(ObjectId object, PartitionId from, PartitionId to);

  /// Removes a dead object: erases all remembered-set entries contributed
  /// by its out-pointers, and its out-set membership. The object must have
  /// no incoming external references left (a partition-local collection
  /// treats externally referenced objects as live).
  void OnObjectDied(ObjectId object, PartitionId partition);

  /// Erases all entries contributed by `source`'s out-pointers without
  /// requiring `source` to be unreferenced. The global collector retires a
  /// whole dead set at once: it first strips every dead object's
  /// out-pointers (after which no dead object has external references,
  /// since live objects cannot point at garbage), then drops the bodies.
  void RemoveOutPointersOf(ObjectId source, PartitionId partition);

  /// Remembered set of `partition`: ids of objects in `partition` that
  /// have at least one external reference, in ascending id order
  /// (deterministic collection roots). Zero-copy view into the index;
  /// valid until the next mutation — callers that mutate while iterating
  /// (the collector re-buckets as it copies) must snapshot first.
  std::span<const ObjectId> ExternalTargets(PartitionId partition) const;

  /// Copying convenience over ExternalTargets (tests, tools).
  std::vector<ObjectId> ExternalTargetsInPartition(PartitionId partition) const;

  /// All pointer locations referencing `target` from other partitions;
  /// nullptr if none.
  const PointerLocationList* EntriesForTarget(ObjectId target) const;

  bool HasExternalReferences(ObjectId target) const;

  /// Out-of-partition set of `partition`: ids of objects in `partition`
  /// holding at least one pointer out of it, ascending order. Zero-copy
  /// view with the same validity rule as ExternalTargets.
  std::span<const ObjectId> Sources(PartitionId partition) const;

  /// Copying convenience over Sources (tests, tools).
  std::vector<ObjectId> SourcesInPartition(PartitionId partition) const;

  /// Out-pointers of `source` (slot, target) pairs; nullptr if none.
  const OutPointerList* OutPointersOfSource(ObjectId source) const;

  /// Total number of inter-partition pointer entries.
  size_t entry_count() const { return entry_count_; }

  /// Number of remembered-set entries into `partition` (size of its
  /// remembered set in pointers, not targets).
  size_t EntryCountForPartition(PartitionId partition) const;

 private:
  // An object's role as a target of external references: the referencing
  // locations plus the partition the object currently occupies (so erase
  // and re-bucket know which membership set to touch without searching).
  struct TargetRecord {
    PointerLocationList locations;
    PartitionId partition = kInvalidPartition;
  };
  // An object's role as a holder of out-of-partition pointers.
  struct SourceRecord {
    OutPointerList out_pointers;
    PartitionId partition = kInvalidPartition;
  };

  // Grows the per-partition set directories to cover `partition`.
  void EnsurePartition(PartitionId partition);

  // target -> external pointer locations referencing it (+ its partition).
  std::unordered_map<ObjectId, TargetRecord> entries_by_target_;
  // source -> its out-pointers (slot, target) (+ its partition).
  std::unordered_map<ObjectId, SourceRecord> out_pointers_by_source_;
  // Indexed by partition id: ids of externally referenced objects living
  // there / ids of out-pointer-holding objects living there.
  std::vector<FlatSet<ObjectId>> targets_in_partition_;
  std::vector<FlatSet<ObjectId>> sources_in_partition_;

  size_t entry_count_ = 0;
};

/// Rebuilds the complete index by scanning the store's shadow graph — the
/// index is derivable state, so checkpoint images do not carry it and a
/// restored heap reconstructs it with this.
InterPartitionIndex BuildIndexFromStore(const ObjectStore& store);

}  // namespace odbgc

#endif  // ODBGC_CORE_REMEMBERED_SET_H_
