#include "core/extension_policies.h"

#include <algorithm>

#include "core/policies.h"
#include "util/serde.h"

namespace odbgc {

PartitionId LeastRecentlyCollectedPolicy::Select(
    const SelectionContext& context) {
  PartitionId best = kInvalidPartition;
  uint64_t best_time = 0;
  for (PartitionId candidate : context.candidates) {
    auto it = last_collected_.find(candidate);
    const uint64_t time = it == last_collected_.end() ? 0 : it->second;
    if (best == kInvalidPartition || time < best_time) {
      best = candidate;
      best_time = time;
    }
  }
  return best;
}

double LeastRecentlyCollectedPolicy::Score(PartitionId partition) const {
  auto it = last_collected_.find(partition);
  // Higher score = better victim = longer since collected.
  return it == last_collected_.end()
             ? static_cast<double>(clock_ + 1)
             : static_cast<double>(clock_ - it->second);
}

void LeastRecentlyCollectedPolicy::SaveState(std::ostream& out) const {
  PutVarint(out, clock_);
  SavePartitionMap(out, last_collected_);
}

Status LeastRecentlyCollectedPolicy::LoadState(std::istream& in) {
  auto clock = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(clock.status());
  clock_ = *clock;
  return LoadPartitionMap(in, &last_collected_);
}

void CostBenefitPolicy::OnPointerStore(const SlotWriteEvent& event,
                                       uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_[event.old_target_partition];
  }
}

double CostBenefitPolicy::Score(PartitionId partition) const {
  const ObjectStore* store = store_ == nullptr ? nullptr : *store_;
  if (store == nullptr) {
    // No occupancy available: fall back to the raw hint count.
    auto it = overwrites_into_.find(partition);
    return it == overwrites_into_.end() ? 0.0
                                        : static_cast<double>(it->second);
  }
  if (partition >= store->partition_count()) return 0.0;
  const double allocated =
      static_cast<double>(store->partition(partition).allocated_bytes());
  if (allocated <= 0.0) return 0.0;
  auto it = overwrites_into_.find(partition);
  const double hits =
      it == overwrites_into_.end() ? 0.0 : static_cast<double>(it->second);
  const double predicted_garbage =
      std::min(hits * bytes_per_overwrite_, allocated);
  const double live = allocated - predicted_garbage;
  // benefit/cost; a fully-garbage prediction is unbeatable.
  if (live <= 0.0) return 1e18;
  return predicted_garbage / live;
}

void CostBenefitPolicy::SaveState(std::ostream& out) const {
  SavePartitionMap(out, overwrites_into_);
}

Status CostBenefitPolicy::LoadState(std::istream& in) {
  return LoadPartitionMap(in, &overwrites_into_);
}

PartitionId CostBenefitPolicy::Select(const SelectionContext& context) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId candidate : context.candidates) {
    const double score = Score(candidate);
    if (best == kInvalidPartition || score > best_score) {
      best = candidate;
      best_score = score;
    }
  }
  return best;
}

}  // namespace odbgc
