#include "core/extension_policies.h"

#include <algorithm>

#include "core/policies.h"
#include "util/serde.h"

namespace odbgc {

PartitionId LeastRecentlyCollectedPolicy::Select(
    const SelectionContext& context) {
  PartitionId best = kInvalidPartition;
  uint64_t best_time = 0;
  for (PartitionId candidate : context.candidates) {
    const uint64_t time = last_collected_.Get(candidate);
    if (best == kInvalidPartition || time < best_time) {
      best = candidate;
      best_time = time;
    }
  }
  return best;
}

double LeastRecentlyCollectedPolicy::Score(PartitionId partition) const {
  const uint64_t time = last_collected_.Get(partition);
  // Higher score = better victim = longer since collected.
  return time == 0 ? static_cast<double>(clock_ + 1)
                   : static_cast<double>(clock_ - time);
}

void LeastRecentlyCollectedPolicy::SaveState(std::ostream& out) const {
  PutVarint(out, clock_);
  last_collected_.Save(out);
}

Status LeastRecentlyCollectedPolicy::LoadState(std::istream& in) {
  auto clock = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(clock.status());
  clock_ = *clock;
  return last_collected_.Load(in);
}

void CostBenefitPolicy::OnPointerStore(const SlotWriteEvent& event,
                                       uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_.At(event.old_target_partition);
  }
}

double CostBenefitPolicy::Score(PartitionId partition) const {
  const ObjectStore* store = store_ == nullptr ? nullptr : *store_;
  if (store == nullptr) {
    // No occupancy available: fall back to the raw hint count.
    return static_cast<double>(overwrites_into_.Get(partition));
  }
  if (partition >= store->partition_count()) return 0.0;
  const double allocated =
      static_cast<double>(store->partition(partition).allocated_bytes());
  if (allocated <= 0.0) return 0.0;
  const double hits = static_cast<double>(overwrites_into_.Get(partition));
  const double predicted_garbage =
      std::min(hits * bytes_per_overwrite_, allocated);
  const double live = allocated - predicted_garbage;
  // benefit/cost; a fully-garbage prediction is unbeatable.
  if (live <= 0.0) return 1e18;
  return predicted_garbage / live;
}

void CostBenefitPolicy::SaveState(std::ostream& out) const {
  overwrites_into_.Save(out);
}

Status CostBenefitPolicy::LoadState(std::istream& in) {
  return overwrites_into_.Load(in);
}

PartitionId CostBenefitPolicy::Select(const SelectionContext& context) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId candidate : context.candidates) {
    const double score = Score(candidate);
    if (best == kInvalidPartition || score > best_score) {
      best = candidate;
      best_score = score;
    }
  }
  return best;
}

void PoolPressurePolicy::OnPointerStore(const SlotWriteEvent& event,
                                        uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_.At(event.old_target_partition);
  }
}

double PoolPressurePolicy::Score(PartitionId partition) const {
  const double hits = static_cast<double>(overwrites_into_.Get(partition));
  if (global_ == nullptr) return hits;
  // Pressure boosts every partition of this heap by the same factor:
  // within-heap selection is untouched, cross-heap comparison is not.
  return hits * (1.0 + global_->OccupancyFraction() *
                           global_->TenantPressure());
}

PartitionId PoolPressurePolicy::Select(const SelectionContext& context) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId candidate : context.candidates) {
    const double score = Score(candidate);
    if (best == kInvalidPartition || score > best_score) {
      best = candidate;
      best_score = score;
    }
  }
  return best;
}

void PoolPressurePolicy::SaveState(std::ostream& out) const {
  overwrites_into_.Save(out);
}

Status PoolPressurePolicy::LoadState(std::istream& in) {
  return overwrites_into_.Load(in);
}

}  // namespace odbgc
