#ifndef ODBGC_CORE_WRITE_BARRIER_H_
#define ODBGC_CORE_WRITE_BARRIER_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/remembered_set.h"
#include "odb/object_store.h"
#include "util/status.h"

namespace odbgc {

/// How the write barrier maintains the remembered sets (Table 1's "how to
/// maintain the inter-partition pointers" axis; cf. Hosking, Moss &
/// Stefanovic's comparative evaluation the paper cites).
enum class BarrierMode {
  /// Update the inter-partition index synchronously at every pointer
  /// store, including removing the overwritten pointer's entry. Most
  /// precise, most per-store work; what the paper's simulator assumes.
  kExact,
  /// Log every pointer-store location into a sequential store buffer;
  /// drain the log when a collection is about to run, reading each logged
  /// slot's *current* value (charged I/O) and updating the index then.
  /// Cheap stores, deferred cost, duplicates possible in the log.
  kSequentialStoreBuffer,
  /// Mark the fixed-size card containing the updated slot. When a
  /// collection is about to run, scan every dirty card (charged I/O),
  /// refresh the index from the pointers found, and leave a card dirty
  /// while it still holds any inter-partition pointer — the classic
  /// rescan cost of imprecise card remembering.
  kCardMarking,
};

const char* BarrierModeName(BarrierMode mode);

/// Barrier bookkeeping counters.
struct BarrierStats {
  uint64_t stores_observed = 0;
  uint64_t ssb_entries_logged = 0;
  uint64_t ssb_entries_drained = 0;
  uint64_t cards_marked = 0;
  uint64_t cards_scanned = 0;
  uint64_t cards_left_dirty = 0;
};

/// Maintains the InterPartitionIndex under one of the three barrier
/// implementations. The heap routes every SlotWriteEvent through
/// OnSlotWrite and calls PrepareForCollection before any collection; in
/// exact mode the latter is free, in the deferred modes it performs the
/// postponed work (charging collector-phase I/O through the store).
class WriteBarrier {
 public:
  /// `store` and `index` must outlive the barrier. `card_size` is the
  /// card granularity in bytes for kCardMarking (must divide the page
  /// size evenly for sane scanning; 512 is the classic choice).
  WriteBarrier(BarrierMode mode, ObjectStore* store,
               InterPartitionIndex* index, uint32_t card_size = 512);

  /// Observes one pointer store (in-memory bookkeeping only).
  void OnSlotWrite(const SlotWriteEvent& event);

  /// Brings the index up to date before a collection. Deferred modes
  /// charge their catch-up I/O here (the caller should have switched the
  /// buffer to the collector phase).
  Status PrepareForCollection();

  /// Informs the barrier that `partition` was emptied by a collection
  /// (its cards are clean now).
  void OnPartitionEmptied(PartitionId partition);

  BarrierMode mode() const { return mode_; }
  const BarrierStats& stats() const { return stats_; }
  size_t pending_work() const {
    return ssb_.size() + dirty_cards_.size();
  }

  /// Serializes the deferred work (store buffer in log order, dirty card
  /// set) and the counters for checkpointing.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState on a barrier of the same mode.
  Status LoadState(std::istream& in);

 private:
  struct Card {
    PartitionId partition;
    uint32_t index;  // Card number within the partition.
    friend bool operator<(const Card& a, const Card& b) {
      return a.partition != b.partition ? a.partition < b.partition
                                        : a.index < b.index;
    }
  };

  // Re-derives the index entry for (source, slot) from the shadow state:
  // removes whatever the index had for that location and re-adds the
  // current pointer if it crosses partitions.
  void RecordCurrent(ObjectId source, uint32_t slot);

  Status DrainStoreBuffer();
  Status ScanDirtyCards();

  const BarrierMode mode_;
  ObjectStore* const store_;
  InterPartitionIndex* const index_;
  const uint32_t card_size_;

  std::vector<PointerLocation> ssb_;
  std::set<Card> dirty_cards_;  // Ordered: deterministic scans.
  BarrierStats stats_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_WRITE_BARRIER_H_
