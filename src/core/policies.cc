#include "core/policies.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/weights.h"
#include "util/serde.h"

namespace odbgc {

namespace {

/// Argmax over candidates with deterministic tie-breaking (lowest id).
template <typename ScoreFn>
PartitionId ArgMax(const std::vector<PartitionId>& candidates,
                   ScoreFn score) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId p : candidates) {
    const double s = score(p);
    if (best == kInvalidPartition || s > best_score) {
      best = p;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

// Hint maps are serialized sorted by partition id so the byte stream is a
// deterministic function of the logical state.
void SavePartitionMap(std::ostream& out,
                      const std::unordered_map<PartitionId, uint64_t>& map) {
  std::vector<std::pair<PartitionId, uint64_t>> entries(map.begin(),
                                                        map.end());
  std::sort(entries.begin(), entries.end());
  PutVarint(out, entries.size());
  for (const auto& [partition, value] : entries) {
    PutVarint(out, partition);
    PutVarint(out, value);
  }
}

Status LoadPartitionMap(std::istream& in,
                        std::unordered_map<PartitionId, uint64_t>* map) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  map->clear();
  for (uint64_t i = 0; i < *count; ++i) {
    auto partition = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(partition.status());
    auto value = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(value.status());
    if (!map->emplace(static_cast<PartitionId>(*partition), *value).second) {
      return Status::Corruption("policy state duplicate partition");
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- Mutated

void MutatedPartitionPolicy::OnPointerStore(const SlotWriteEvent& event,
                                            uint8_t /*old_target_weight*/) {
  // "We determine if the value being written is a pointer, and if it is,
  // we increment the counter associated with the partition being written
  // into." Null stores carry no pointer value.
  if (!event.new_target.is_null()) {
    ++stores_into_partition_[event.source_partition];
  }
}

void MutatedPartitionPolicy::OnPartitionCollected(PartitionId partition) {
  stores_into_partition_.erase(partition);
}

double MutatedPartitionPolicy::Score(PartitionId partition) const {
  auto it = stores_into_partition_.find(partition);
  return it == stores_into_partition_.end()
             ? 0.0
             : static_cast<double>(it->second);
}

PartitionId MutatedPartitionPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void MutatedPartitionPolicy::SaveState(std::ostream& out) const {
  SavePartitionMap(out, stores_into_partition_);
}

Status MutatedPartitionPolicy::LoadState(std::istream& in) {
  return LoadPartitionMap(in, &stores_into_partition_);
}

// ---------------------------------------------------------------- Updated

void UpdatedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                          uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_partition_[event.old_target_partition];
  }
}

void UpdatedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  overwrites_into_partition_.erase(partition);
}

double UpdatedPointerPolicy::Score(PartitionId partition) const {
  auto it = overwrites_into_partition_.find(partition);
  return it == overwrites_into_partition_.end()
             ? 0.0
             : static_cast<double>(it->second);
}

PartitionId UpdatedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void UpdatedPointerPolicy::SaveState(std::ostream& out) const {
  SavePartitionMap(out, overwrites_into_partition_);
}

Status UpdatedPointerPolicy::LoadState(std::istream& in) {
  return LoadPartitionMap(in, &overwrites_into_partition_);
}

// --------------------------------------------------------------- Weighted

void WeightedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                           uint8_t old_target_weight) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    assert(old_target_weight >= 1 &&
           old_target_weight <= WeightTracker::kMaxWeight);
    weighted_sum_[event.old_target_partition] +=
        std::exp2(WeightTracker::kMaxWeight - old_target_weight);
  }
}

void WeightedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  weighted_sum_.erase(partition);
}

double WeightedPointerPolicy::Score(PartitionId partition) const {
  auto it = weighted_sum_.find(partition);
  return it == weighted_sum_.end() ? 0.0 : it->second;
}

PartitionId WeightedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void WeightedPointerPolicy::SaveState(std::ostream& out) const {
  std::vector<std::pair<PartitionId, double>> entries(weighted_sum_.begin(),
                                                      weighted_sum_.end());
  std::sort(entries.begin(), entries.end());
  PutVarint(out, entries.size());
  for (const auto& [partition, sum] : entries) {
    PutVarint(out, partition);
    PutDouble(out, sum);
  }
}

Status WeightedPointerPolicy::LoadState(std::istream& in) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  weighted_sum_.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    auto partition = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(partition.status());
    auto sum = GetDouble(in);
    ODBGC_RETURN_IF_ERROR(sum.status());
    if (!weighted_sum_.emplace(static_cast<PartitionId>(*partition), *sum)
             .second) {
      return Status::Corruption("policy state duplicate partition");
    }
  }
  return Status::Ok();
}

// ----------------------------------------------------------------- Random

PartitionId RandomPolicy::Select(const SelectionContext& context) {
  if (context.candidates.empty()) return kInvalidPartition;
  return context.candidates[rng_.UniformInt(context.candidates.size())];
}

void RandomPolicy::SaveState(std::ostream& out) const {
  for (uint64_t word : rng_.GetState()) PutU64(out, word);
}

Status RandomPolicy::LoadState(std::istream& in) {
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    auto w = GetU64(in);
    ODBGC_RETURN_IF_ERROR(w.status());
    word = *w;
  }
  rng_.SetState(state);
  return Status::Ok();
}

// ------------------------------------------------------------ MostGarbage

PartitionId MostGarbagePolicy::Select(const SelectionContext& context) {
  const auto& garbage = context.garbage_bytes_per_partition;
  return ArgMax(context.candidates, [&garbage](PartitionId p) {
    return p < garbage.size() ? static_cast<double>(garbage[p]) : 0.0;
  });
}

// ----------------------------------------------------------- NoCollection

PartitionId NoCollectionPolicy::Select(const SelectionContext& /*context*/) {
  return kInvalidPartition;
}

// ---------------------------------------------------------------- Factory

std::unique_ptr<SelectionPolicy> MakePolicy(PolicyKind kind, uint64_t seed) {
  switch (kind) {
    case PolicyKind::kNoCollection:
      return std::make_unique<NoCollectionPolicy>();
    case PolicyKind::kMutatedPartition:
      return std::make_unique<MutatedPartitionPolicy>();
    case PolicyKind::kUpdatedPointer:
      return std::make_unique<UpdatedPointerPolicy>();
    case PolicyKind::kWeightedPointer:
      return std::make_unique<WeightedPointerPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kMostGarbage:
      return std::make_unique<MostGarbagePolicy>();
  }
  return nullptr;
}

}  // namespace odbgc
