#include "core/policies.h"

#include <cassert>
#include <cmath>

#include "core/weights.h"

namespace odbgc {

namespace {

/// Argmax over candidates with deterministic tie-breaking (lowest id).
template <typename ScoreFn>
PartitionId ArgMax(const std::vector<PartitionId>& candidates,
                   ScoreFn score) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId p : candidates) {
    const double s = score(p);
    if (best == kInvalidPartition || s > best_score) {
      best = p;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------- Mutated

void MutatedPartitionPolicy::OnPointerStore(const SlotWriteEvent& event,
                                            uint8_t /*old_target_weight*/) {
  // "We determine if the value being written is a pointer, and if it is,
  // we increment the counter associated with the partition being written
  // into." Null stores carry no pointer value.
  if (!event.new_target.is_null()) {
    ++stores_into_partition_[event.source_partition];
  }
}

void MutatedPartitionPolicy::OnPartitionCollected(PartitionId partition) {
  stores_into_partition_.erase(partition);
}

double MutatedPartitionPolicy::Score(PartitionId partition) const {
  auto it = stores_into_partition_.find(partition);
  return it == stores_into_partition_.end()
             ? 0.0
             : static_cast<double>(it->second);
}

PartitionId MutatedPartitionPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

// ---------------------------------------------------------------- Updated

void UpdatedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                          uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_partition_[event.old_target_partition];
  }
}

void UpdatedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  overwrites_into_partition_.erase(partition);
}

double UpdatedPointerPolicy::Score(PartitionId partition) const {
  auto it = overwrites_into_partition_.find(partition);
  return it == overwrites_into_partition_.end()
             ? 0.0
             : static_cast<double>(it->second);
}

PartitionId UpdatedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

// --------------------------------------------------------------- Weighted

void WeightedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                           uint8_t old_target_weight) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    assert(old_target_weight >= 1 &&
           old_target_weight <= WeightTracker::kMaxWeight);
    weighted_sum_[event.old_target_partition] +=
        std::exp2(WeightTracker::kMaxWeight - old_target_weight);
  }
}

void WeightedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  weighted_sum_.erase(partition);
}

double WeightedPointerPolicy::Score(PartitionId partition) const {
  auto it = weighted_sum_.find(partition);
  return it == weighted_sum_.end() ? 0.0 : it->second;
}

PartitionId WeightedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

// ----------------------------------------------------------------- Random

PartitionId RandomPolicy::Select(const SelectionContext& context) {
  if (context.candidates.empty()) return kInvalidPartition;
  return context.candidates[rng_.UniformInt(context.candidates.size())];
}

// ------------------------------------------------------------ MostGarbage

PartitionId MostGarbagePolicy::Select(const SelectionContext& context) {
  const auto& garbage = context.garbage_bytes_per_partition;
  return ArgMax(context.candidates, [&garbage](PartitionId p) {
    return p < garbage.size() ? static_cast<double>(garbage[p]) : 0.0;
  });
}

// ----------------------------------------------------------- NoCollection

PartitionId NoCollectionPolicy::Select(const SelectionContext& /*context*/) {
  return kInvalidPartition;
}

// ---------------------------------------------------------------- Factory

std::unique_ptr<SelectionPolicy> MakePolicy(PolicyKind kind, uint64_t seed) {
  switch (kind) {
    case PolicyKind::kNoCollection:
      return std::make_unique<NoCollectionPolicy>();
    case PolicyKind::kMutatedPartition:
      return std::make_unique<MutatedPartitionPolicy>();
    case PolicyKind::kUpdatedPointer:
      return std::make_unique<UpdatedPointerPolicy>();
    case PolicyKind::kWeightedPointer:
      return std::make_unique<WeightedPointerPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kMostGarbage:
      return std::make_unique<MostGarbagePolicy>();
  }
  return nullptr;
}

}  // namespace odbgc
