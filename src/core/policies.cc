#include "core/policies.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/weights.h"
#include "util/serde.h"

namespace odbgc {

namespace {

/// Argmax over candidates with deterministic tie-breaking (lowest id).
template <typename ScoreFn>
PartitionId ArgMax(const std::vector<PartitionId>& candidates,
                   ScoreFn score) {
  PartitionId best = kInvalidPartition;
  double best_score = -1.0;
  for (PartitionId p : candidates) {
    const double s = score(p);
    if (best == kInvalidPartition || s > best_score) {
      best = p;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------- Mutated

void MutatedPartitionPolicy::OnPointerStore(const SlotWriteEvent& event,
                                            uint8_t /*old_target_weight*/) {
  // "We determine if the value being written is a pointer, and if it is,
  // we increment the counter associated with the partition being written
  // into." Null stores carry no pointer value.
  if (!event.new_target.is_null()) {
    ++stores_into_partition_.At(event.source_partition);
  }
}

void MutatedPartitionPolicy::OnPartitionCollected(PartitionId partition) {
  stores_into_partition_.Reset(partition);
}

double MutatedPartitionPolicy::Score(PartitionId partition) const {
  return static_cast<double>(stores_into_partition_.Get(partition));
}

PartitionId MutatedPartitionPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void MutatedPartitionPolicy::SaveState(std::ostream& out) const {
  stores_into_partition_.Save(out);
}

Status MutatedPartitionPolicy::LoadState(std::istream& in) {
  return stores_into_partition_.Load(in);
}

// ---------------------------------------------------------------- Updated

void UpdatedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                          uint8_t /*old_target_weight*/) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    ++overwrites_into_partition_.At(event.old_target_partition);
  }
}

void UpdatedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  overwrites_into_partition_.Reset(partition);
}

double UpdatedPointerPolicy::Score(PartitionId partition) const {
  return static_cast<double>(overwrites_into_partition_.Get(partition));
}

PartitionId UpdatedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void UpdatedPointerPolicy::SaveState(std::ostream& out) const {
  overwrites_into_partition_.Save(out);
}

Status UpdatedPointerPolicy::LoadState(std::istream& in) {
  return overwrites_into_partition_.Load(in);
}

// --------------------------------------------------------------- Weighted

void WeightedPointerPolicy::OnPointerStore(const SlotWriteEvent& event,
                                           uint8_t old_target_weight) {
  if (event.is_overwrite() &&
      event.old_target_partition != kInvalidPartition) {
    assert(old_target_weight >= 1 &&
           old_target_weight <= WeightTracker::kMaxWeight);
    weighted_sum_.At(event.old_target_partition) +=
        std::exp2(WeightTracker::kMaxWeight - old_target_weight);
  }
}

void WeightedPointerPolicy::OnPartitionCollected(PartitionId partition) {
  weighted_sum_.Reset(partition);
}

double WeightedPointerPolicy::Score(PartitionId partition) const {
  return weighted_sum_.Get(partition);
}

PartitionId WeightedPointerPolicy::Select(const SelectionContext& context) {
  return ArgMax(context.candidates,
                [this](PartitionId p) { return Score(p); });
}

void WeightedPointerPolicy::SaveState(std::ostream& out) const {
  weighted_sum_.Save(out);
}

Status WeightedPointerPolicy::LoadState(std::istream& in) {
  return weighted_sum_.Load(in);
}

// ----------------------------------------------------------------- Random

PartitionId RandomPolicy::Select(const SelectionContext& context) {
  if (context.candidates.empty()) return kInvalidPartition;
  return context.candidates[rng_.UniformInt(context.candidates.size())];
}

void RandomPolicy::SaveState(std::ostream& out) const {
  for (uint64_t word : rng_.GetState()) PutU64(out, word);
}

Status RandomPolicy::LoadState(std::istream& in) {
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    auto w = GetU64(in);
    ODBGC_RETURN_IF_ERROR(w.status());
    word = *w;
  }
  rng_.SetState(state);
  return Status::Ok();
}

// ------------------------------------------------------------ MostGarbage

PartitionId MostGarbagePolicy::Select(const SelectionContext& context) {
  const auto& garbage = context.garbage_bytes_per_partition;
  return ArgMax(context.candidates, [&garbage](PartitionId p) {
    return p < garbage.size() ? static_cast<double>(garbage[p]) : 0.0;
  });
}

// ----------------------------------------------------------- NoCollection

PartitionId NoCollectionPolicy::Select(const SelectionContext& /*context*/) {
  return kInvalidPartition;
}

// ---------------------------------------------------------------- Factory

std::unique_ptr<SelectionPolicy> MakePolicy(PolicyKind kind, uint64_t seed) {
  switch (kind) {
    case PolicyKind::kNoCollection:
      return std::make_unique<NoCollectionPolicy>();
    case PolicyKind::kMutatedPartition:
      return std::make_unique<MutatedPartitionPolicy>();
    case PolicyKind::kUpdatedPointer:
      return std::make_unique<UpdatedPointerPolicy>();
    case PolicyKind::kWeightedPointer:
      return std::make_unique<WeightedPointerPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kMostGarbage:
      return std::make_unique<MostGarbagePolicy>();
  }
  return nullptr;
}

}  // namespace odbgc
