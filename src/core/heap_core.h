#ifndef ODBGC_CORE_HEAP_CORE_H_
#define ODBGC_CORE_HEAP_CORE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/replacement_policy.h"
#include "core/copying_collector.h"
#include "core/global_collector.h"
#include "core/reachability.h"
#include "core/remembered_set.h"
#include "core/selection_policy.h"
#include "core/weights.h"
#include "core/write_barrier.h"
#include "observe/observer.h"
#include "odb/object_store.h"
#include "storage/disk.h"
#include "storage/file_device.h"
#include "storage/page_device.h"
#include "storage/ssd_device.h"
#include "util/epoch.h"
#include "util/metrics_registry.h"
#include "util/phase_timer.h"
#include "util/status.h"

namespace odbgc {

/// Whether the heap maintains root-distance weights (needed only by the
/// WeightedPointer policy, and costing header writes to maintain).
enum class WeightMode {
  kAuto,  ///< On iff the policy is WeightedPointer.
  kOn,
  kOff,
};

/// When to perform collection (Table 1's "when to collect" axis). The
/// paper fixes kPointerOverwrites ("garbage is created by overwrites, so
/// the count correlates with collectable garbage, and the criterion is
/// independent of the partition choice"); the others are the listed
/// alternatives, provided for the ablation benches.
enum class TriggerKind {
  /// Collect after `overwrite_trigger` pointer overwrites (the paper).
  kPointerOverwrites,
  /// Collect after `allocation_trigger_bytes` of new allocation
  /// ("when more space is needed", rate-based form).
  kAllocatedBytes,
  /// Collect whenever the database had to grow by a partition
  /// ("when free space is exhausted").
  kDatabaseGrowth,
};

/// Configuration of a collected heap. Defaults reproduce the paper's base
/// configuration (48-page partitions, buffer = one partition, trigger in
/// the 150-300 overwrite range).
struct HeapOptions {
  /// Page size, partition size, empty-partition reservation.
  StoreOptions store;
  /// I/O buffer capacity in pages. The paper sets it equal to the
  /// partition size.
  size_t buffer_pages = 48;
  /// Physically shared frame arena (non-owning; must outlive the heap).
  /// Null — the default, and every standalone run — gives the heap a
  /// private pool. The multi-tenant service sets it so all tenant pools
  /// draw frames from one arena, with `buffer_pages` as this heap's
  /// logical quota and `arena_tenant` its id in the arena's composite
  /// (tenant, page) key space. See DESIGN.md §17.
  SharedFrameArena* shared_arena = nullptr;
  uint32_t arena_tenant = 0;
  /// Storage backend the heap runs on. The default reproduces the paper's
  /// seek/rotation/transfer disk.
  DeviceKind device = DeviceKind::kSimulatedDisk;
  /// Storage backend by registry spec — "disk", "ssd", "file:<path>", or
  /// any name added with RegisterDevice — the open-world twin of
  /// `policy_name`. Takes precedence over `device`; after construction it
  /// always names the instantiated backend. An unknown name aborts —
  /// validate untrusted specs with IsDeviceRegistered at the config
  /// boundary. A "file" spec runs the identical simulated workload against
  /// a real partition file: simulated counters stay bit-identical to the
  /// in-memory backends, and measured wall-clock I/O is reported
  /// separately (PageDevice::MeasuredStats).
  std::string device_spec;
  /// Timing model for DeviceKind::kSimulatedDisk.
  DiskCostParams disk_cost;
  /// Geometry/timing model for DeviceKind::kSsd.
  SsdCostParams ssd_cost;
  /// Options for the "file" backend (direct I/O, fsync barriers,
  /// read-ahead depth, scheduler threads; the path may instead come from
  /// the spec argument, which wins).
  FileDeviceOptions file_device;
  /// Buffer replacement policy. Strict LRU is the paper's cost model.
  ReplacementPolicyKind replacement = ReplacementPolicyKind::kLru;
  /// Partition selection policy, as a behaviour-class enum (the paper's
  /// six). Used only when `policy_name` and `policy_factory` are unset;
  /// after construction it reflects the instantiated policy's kind().
  PolicyKind policy = PolicyKind::kUpdatedPointer;
  /// Partition selection policy, by registry name (see RegisterPolicy) —
  /// the open-world identity surface: any registered policy, including
  /// the extension policies and application-registered ones. Takes
  /// precedence over `policy`; after construction it always holds the
  /// instantiated policy's name(). An unregistered name aborts — validate
  /// with IsPolicyRegistered at the config boundary.
  std::string policy_name;
  /// Optional: construct a custom SelectionPolicy directly, bypassing the
  /// registry (strongest precedence). The factory's policy still receives
  /// every write-barrier notification and the trigger behaves according
  /// to its kind() (a kind() of kNoCollection disables the trigger;
  /// kMostGarbage enables the oracle census).
  std::function<std::unique_ptr<SelectionPolicy>()> policy_factory;
  /// What causes a collection (see TriggerKind).
  TriggerKind trigger = TriggerKind::kPointerOverwrites;
  /// Collect after this many pointer overwrites; 0 disables the automatic
  /// trigger (collections then happen only via CollectNow). Ignored for
  /// NoCollection and for other TriggerKinds.
  uint32_t overwrite_trigger = 200;
  /// For TriggerKind::kAllocatedBytes: collect after this many bytes of
  /// new allocation. 0 disables.
  uint64_t allocation_trigger_bytes = 0;
  /// Number of partitions collected per activation (the paper collects
  /// one; >1 is the multi-partition ablation).
  uint32_t partitions_per_collection = 1;
  /// Traversal/copy order during collection.
  TraversalOrder traversal = TraversalOrder::kBreadthFirst;
  /// If non-zero, run a whole-database mark-and-copy collection (which
  /// also reclaims cross-partition cyclic garbage — the paper's Section
  /// 6.5 future work) after every this-many partition collections.
  uint32_t full_collection_interval = 0;
  /// Weight maintenance.
  WeightMode weights = WeightMode::kAuto;
  /// How the remembered sets are maintained (exact / store buffer / card
  /// marking). Exact is what the paper assumes.
  BarrierMode barrier = BarrierMode::kExact;
  /// Card granularity for BarrierMode::kCardMarking, in bytes.
  uint32_t card_size = 512;
  /// Seed for policy randomness (Random).
  uint64_t seed = 1;
  /// Enables per-event wall-clock timers (index maintenance, trace apply).
  /// The coarse per-phase timers (census, collection) are always on; the
  /// per-event ones cost two clock reads per pointer store, so they are
  /// opt-in for the profiling harness. Wall timings never affect simulated
  /// results (see wall_metrics()).
  bool profile_hot_paths = false;
  /// Parallel marking for the census engine (DESIGN.md §15): number of
  /// marking threads striping the reachability traversal behind every
  /// census/anatomy (the MostGarbage oracle's per-trigger census is the
  /// simulator's hottest path). Values < 2 keep the serial marker. All
  /// results are byte-identical either way — marking computes a unique
  /// fixpoint and the mark merge is deterministic
  /// (tests/core/parallel_marking_test.cc).
  uint32_t parallel_marking_threads = 0;
  /// Optional externally-owned TaskPool for parallel marking (non-owning;
  /// must outlive the heap). Lets many heaps — e.g. the concurrent
  /// simulator's shards — share one pool so idle shard workers help with
  /// a busy shard's marking. Null with parallel_marking_threads >= 2
  /// makes the heap own a private pool of that many threads.
  TaskPool* marking_pool = nullptr;
  /// Run-telemetry sink (non-owning; must outlive the heap). The heap
  /// publishes collection events, the device fault events; the simulator
  /// and durable engine publish run/phase/checkpoint events through the
  /// same pointer. Null (the default) disables publishing entirely.
  SimObserver* observer = nullptr;
  /// Cross-tenant pressure view a multi-tenant host (service/
  /// heap_service.h) binds into registry-built policies via
  /// PolicyContext::global (non-owning; must outlive the heap; refreshed
  /// by the host at its barriers). Null — the default, and the only value
  /// single-heap runs ever use — leaves every policy in its single-heap
  /// behaviour; the paper's six never consult it.
  const GlobalView* global_view = nullptr;
};

/// Aggregate heap statistics.
struct HeapStats {
  uint64_t collections = 0;
  uint64_t full_collections = 0;
  uint64_t pointer_stores = 0;      // Non-null pointer values written.
  uint64_t pointer_overwrites = 0;  // Stores replacing a non-null pointer.
  uint64_t objects_allocated = 0;
  uint64_t bytes_allocated = 0;
  uint64_t garbage_bytes_reclaimed = 0;
  uint64_t garbage_objects_reclaimed = 0;
  uint64_t live_bytes_copied = 0;
  uint64_t live_objects_copied = 0;
  /// High-water mark of the database footprint (all partitions, including
  /// garbage and fragmentation) — the paper's "max storage required".
  uint64_t max_total_bytes = 0;
  /// Partition count at the high-water mark.
  uint64_t max_partitions = 0;
};

/// The heap's internal engine: owns the whole stack (simulated disk,
/// buffer pool, object store, inter-partition index, weights, policy,
/// collector) and wires the write barrier:
///
///   WriteSlot -> remembered-set maintenance + policy notification +
///                weight relaxation + overwrite-count trigger.
///
/// When the trigger fires, the engine asks the policy to select a victim
/// and runs one copying collection (deferred to the end of the triggering
/// operation, never re-entrant).
///
/// Applications use the CollectedHeap facade (core/heap.h), which
/// forwards the mutator API here; internal layers — the simulators, the
/// recovery engine — reach through the facade for the engine-level
/// concurrency hooks (EnableConcurrentMode / OnEpochTick /
/// FlushBarrierBuffer, DESIGN.md §14).
class HeapCore : private SlotWriteObserver {
 public:
  explicit HeapCore(const HeapOptions& options);
  ~HeapCore() override;

  /// Reconstructs a heap from a checkpoint image (see
  /// ObjectStore::Restore): the store is re-materialized, the
  /// inter-partition index rebuilt from the object graph, and all
  /// measurements start from zero. The image's geometry overrides
  /// `options.store`'s; policy/trigger/barrier options apply as usual.
  /// Root-distance weights are derivable but history-free: a restored
  /// WeightedPointer heap recomputes them from the roots.
  static Result<std::unique_ptr<HeapCore>> FromImage(
      const HeapOptions& options, const StoreImage& image);

  /// Captures the database state for checkpointing.
  StoreImage ExtractImage() const { return store_->ExtractImage(); }

  HeapCore(const HeapCore&) = delete;
  HeapCore& operator=(const HeapCore&) = delete;

  // -- Application API (see ObjectStore for the I/O charging model) -------

  /// Allocates an object; may grow the database and may trigger a pending
  /// collection.
  Result<ObjectId> Allocate(uint32_t size, uint32_t num_slots,
                            ObjectId parent_hint = kNullObjectId,
                            uint8_t flags = 0);

  /// Stores a pointer, running the write barrier; may trigger a
  /// collection.
  Status WriteSlot(ObjectId source, uint32_t slot, ObjectId target);

  Result<ObjectId> ReadSlot(ObjectId source, uint32_t slot);
  Status VisitObject(ObjectId object);
  Status WriteData(ObjectId object);

  /// Adds a database root (weight 1 when weights are maintained).
  Status AddRoot(ObjectId object);
  Status RemoveRoot(ObjectId object);

  // -- Collection ----------------------------------------------------------

  /// Runs one policy-selected collection immediately (regardless of the
  /// trigger). Returns the result, or FailedPrecondition if the policy
  /// declined (NoCollection / no candidates).
  Result<CollectionResult> CollectNow();

  /// Collects a specific partition (bypasses the policy).
  Result<CollectionResult> CollectPartition(PartitionId victim);

  /// Runs a whole-database mark-and-copy collection (see
  /// GlobalMarkCollector): reclaims everything unreachable, including
  /// nepotism victims and cross-partition dead cycles.
  Result<GlobalCollectionResult> CollectFullDatabase();

  /// Partitions eligible for collection right now.
  std::vector<PartitionId> CollectionCandidates() const;

  // -- Concurrency hooks (DESIGN.md §14) -----------------------------------

  /// Switches the engine into concurrent-mode operation under a shared
  /// epoch manager (owned by the concurrent simulator, shared across
  /// every shard heap):
  ///   - the object store defers table-slot reclamation through
  ///     per-partition epoch-gated garbage lists (no slot is recycled
  ///     until every thread has passed the retire epoch);
  ///   - write-barrier events are buffered thread-locally (this engine is
  ///     single-writer: its owning mutator thread) and flushed to the
  ///     remembered-set index at epoch boundaries and before any
  ///     collection or index read.
  /// Both transformations are result-neutral — simulated results stay
  /// bit-identical to serial mode — because object ids are never reused,
  /// table-slot indices are unobservable, and the inter-partition index
  /// is only read at flush points. The equivalence suite holds the serial
  /// oracle to that claim.
  void EnableConcurrentMode(EpochManager* epochs);

  /// Epoch-boundary maintenance: flushes the barrier buffer and returns
  /// grace-period-expired table slots to the store's freelist. Called by
  /// the concurrent simulator each time it advances the shared epoch.
  void OnEpochTick();

  /// Replays buffered write-barrier events into the remembered-set index,
  /// in program order. Idempotent; no-op in serial mode.
  void FlushBarrierBuffer();

  /// Buffered barrier events not yet applied to the index (diagnostics).
  size_t pending_barrier_events() const { return barrier_buffer_.size(); }

  // -- Introspection ---------------------------------------------------------

  const ObjectStore& store() const { return *store_; }
  ObjectStore& mutable_store() { return *store_; }
  const BufferPool& buffer() const { return *buffer_; }
  BufferPool& mutable_buffer() { return *buffer_; }
  const PageDevice& device() const { return *device_; }
  PageDevice& mutable_device() { return *device_; }
  /// The stack-wide metrics registry (device + buffer counters, phases).
  MetricsRegistry* metrics() const { return metrics_.get(); }
  /// Wall-clock self-profiling counters ("wall.*_ns"): how long the
  /// *simulator itself* spends in each phase. Deliberately a separate
  /// registry — the main one feeds SimulationResult and checkpoints, both
  /// bit-identical across runs, which wall time never is.
  MetricsRegistry* wall_metrics() const { return wall_metrics_.get(); }
  /// Pre-registered handles into wall_metrics() for hot-path scopes.
  WallPhaseTimers* wall_timers() const { return wall_timers_.get(); }
  /// The effective parallel-marking pool: the injected one, the
  /// heap-owned one, or null when marking is serial. Internal layers
  /// (the simulator's snapshot census engine) share it so every marking
  /// wave in a run draws from one set of workers.
  TaskPool* marking_pool() const {
    return options_.marking_pool != nullptr ? options_.marking_pool
                                            : owned_marking_pool_.get();
  }
  const InterPartitionIndex& index() const { return index_; }
  const WriteBarrier& barrier() const { return *barrier_; }
  const WeightTracker* weights() const { return weights_.get(); }
  SelectionPolicy& policy() { return *policy_; }
  const HeapStats& stats() const { return stats_; }
  const HeapOptions& options() const { return options_; }

  /// Application/collector I/O so far (buffer pool counters).
  uint64_t app_io() const { return buffer_->stats().app_io(); }
  uint64_t gc_io() const { return buffer_->stats().gc_io(); }
  uint64_t total_io() const { return buffer_->stats().total_io(); }

  /// True if the overwrite trigger has fired and a collection will run at
  /// the end of the current/next heap operation.
  bool collection_pending() const { return collection_pending_; }

  /// Results of every collection performed, in order.
  const std::vector<CollectionResult>& collection_log() const {
    return collection_log_;
  }

  /// Zeroes every measurement (buffer/disk transfer counters, heap
  /// statistics, collection log) while leaving the database, the buffer
  /// *contents*, the remembered sets and the policy state untouched.
  /// Used for warm-start experiments (paper, Section 5): build the
  /// database, reset, and measure only the mutation phase.
  void ResetMeasurement();

  /// Serializes all heap runtime state that is NOT derivable from the
  /// store image: measurement counters, trigger progress, policy hints,
  /// weights, deferred barrier work, buffer residency, device-model state
  /// and the metrics registry.
  /// Together with ExtractImage this captures the heap exactly — a heap
  /// restored via FromImage + LoadRuntimeState behaves bit-identically to
  /// the checkpointed one on any further event sequence. The collection
  /// log (introspection only) is intentionally excluded.
  void SaveRuntimeState(std::ostream& out) const;

  /// Restores state written by SaveRuntimeState on a heap rebuilt from the
  /// matching store image with the same HeapOptions. Corruption on a
  /// malformed stream or an options/geometry mismatch.
  Status LoadRuntimeState(std::istream& in);

 private:
  struct RestoreTag {};
  // Builds only the disk and buffer; FromImage fills in the rest.
  HeapCore(const HeapOptions& options, RestoreTag);

  // Constructs weights/policy/barrier/collectors around store_ and
  // installs the write-barrier observer.
  void WireComponents();

  void OnSlotWrite(const SlotWriteEvent& event) override;

  // Runs the deferred collection if the trigger fired.
  Status MaybeCollect();

  // Updates the storage high-water mark.
  void NoteFootprint();

  // Builds the selection context (runs the oracle census for MostGarbage)
  // into reused scratch; the reference is valid until the next call.
  const SelectionContext& MakeSelectionContext() const;

  // Appends CollectionCandidates() into caller-owned storage.
  void AppendCollectionCandidates(std::vector<PartitionId>* out) const;

  // Arms the pending-collection flag according to the trigger kind.
  void CheckTriggers();

  HeapOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  // Wall-clock self-profiling (see wall_metrics()); never checkpointed.
  std::unique_ptr<MetricsRegistry> wall_metrics_;
  std::unique_ptr<WallPhaseTimers> wall_timers_;
  std::unique_ptr<PageDevice> device_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  InterPartitionIndex index_;
  std::unique_ptr<WriteBarrier> barrier_;
  std::unique_ptr<WeightTracker> weights_;  // Null when weights are off.
  std::unique_ptr<SelectionPolicy> policy_;
  // Stable slot handed to registry factories via PolicyContext::store, so
  // a registered policy (e.g. CostBenefit) can observe partition occupancy.
  const ObjectStore* policy_store_view_ = nullptr;
  std::unique_ptr<CopyingCollector> collector_;
  std::unique_ptr<GlobalMarkCollector> global_collector_;

  // Concurrent mode (EnableConcurrentMode): shared epoch manager and the
  // single-writer buffer of pending write-barrier events.
  EpochManager* epochs_ = nullptr;
  bool buffer_barrier_events_ = false;
  std::vector<SlotWriteEvent> barrier_buffer_;

  HeapStats stats_;
  uint32_t overwrites_since_collection_ = 0;
  uint64_t allocated_since_collection_ = 0;
  size_t last_seen_partition_count_ = 0;
  // The most recent allocation, protected as a temporary root until it is
  // linked into the graph (or superseded): a collection firing between an
  // object's birth and its first incoming pointer must not reclaim it.
  ObjectId newborn_;
  bool collection_pending_ = false;
  bool in_collection_ = false;
  std::vector<CollectionResult> collection_log_;

  // Census/selection machinery reused across collections (mutable: the
  // oracle census runs from const MakeSelectionContext; these are pure
  // scratch, not observable heap state).
  mutable ReachabilityAnalyzer census_engine_;
  mutable GarbageCensus census_scratch_;
  mutable SelectionContext selection_scratch_;

  // Private marking pool, created by WireComponents only when
  // parallel_marking_threads >= 2 and no external pool was injected.
  std::unique_ptr<TaskPool> owned_marking_pool_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_HEAP_CORE_H_
