#include "core/weights.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "util/serde.h"

namespace odbgc {

Status WeightTracker::OnRootAdded(ObjectId object) {
  return Relax(object, kRootWeight);
}

Status WeightTracker::OnPointerStored(ObjectId source, ObjectId target) {
  if (target.is_null()) return Status::Ok();
  const uint8_t sw = GetWeight(source);
  const uint8_t candidate =
      sw >= kMaxWeight ? kMaxWeight : static_cast<uint8_t>(sw + 1);
  return Relax(target, candidate);
}

void WeightTracker::SetWeight(ObjectId object, uint8_t w) {
  if (object.value >= weights_.size()) {
    // Size to the store's id horizon so repeated first-touches of fresh
    // ids do not each pay a resize.
    weights_.resize(std::max(object.value + 1, store_->id_limit()),
                    kMaxWeight);
  }
  if (weights_[object.value] == kMaxWeight) ++tracked_;
  weights_[object.value] = w;
}

Status WeightTracker::Relax(ObjectId object, uint8_t w) {
  if (object.is_null() || w >= GetWeight(object)) return Status::Ok();

  std::deque<std::pair<ObjectId, uint8_t>> queue;
  queue.push_back({object, w});
  while (!queue.empty()) {
    auto [id, weight] = queue.front();
    queue.pop_front();
    if (weight >= GetWeight(id)) continue;
    SetWeight(id, weight);
    if (charge_io_) {
      // The 4-bit weight lives in the object header on its page.
      ODBGC_RETURN_IF_ERROR(store_->TouchHeader(id, AccessMode::kWrite));
    }
    if (weight + 1 >= kMaxWeight) continue;  // Children can't improve.
    const ObjectStore::ObjectInfo* info = store_->Lookup(id);
    if (info == nullptr) continue;
    const uint8_t next = static_cast<uint8_t>(weight + 1);
    for (ObjectId child : info->slots) {
      if (!child.is_null() && next < GetWeight(child)) {
        queue.push_back({child, next});
      }
    }
  }
  return Status::Ok();
}

void WeightTracker::SaveState(std::ostream& out) const {
  // A scan in id order reproduces the sorted-entry encoding the map-based
  // tracker wrote, byte for byte.
  PutVarint(out, tracked_);
  for (uint64_t id = 0; id < weights_.size(); ++id) {
    if (weights_[id] == kMaxWeight) continue;
    PutVarint(out, id);
    PutU8(out, weights_[id]);
  }
}

Status WeightTracker::LoadState(std::istream& in) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  weights_.clear();
  tracked_ = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto object = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(object.status());
    auto weight = GetU8(in);
    ODBGC_RETURN_IF_ERROR(weight.status());
    if (*weight < kRootWeight || *weight > kMaxWeight) {
      return Status::Corruption("weight out of range");
    }
    if (*object >= store_->id_limit()) {
      // The dense table is bounded by the store's id horizon; an id past
      // it cannot come from a checkpoint of this store.
      return Status::Corruption("weight state id beyond store");
    }
    if (ObjectId{*object}.is_null()) {
      return Status::Corruption("weight state null object");
    }
    if (*object < weights_.size() && weights_[*object] != kMaxWeight) {
      return Status::Corruption("weight state duplicate object");
    }
    // A kMaxWeight entry is representable in the old format but never
    // produced (Relax only stores lower weights); it means "untracked".
    if (*weight == kMaxWeight) continue;
    SetWeight(ObjectId{*object}, *weight);
  }
  return Status::Ok();
}

}  // namespace odbgc
