#include "core/weights.h"

#include <deque>

namespace odbgc {

uint8_t WeightTracker::GetWeight(ObjectId object) const {
  auto it = weights_.find(object);
  return it == weights_.end() ? kMaxWeight : it->second;
}

Status WeightTracker::OnRootAdded(ObjectId object) {
  return Relax(object, kRootWeight);
}

Status WeightTracker::OnPointerStored(ObjectId source, ObjectId target) {
  if (target.is_null()) return Status::Ok();
  const uint8_t sw = GetWeight(source);
  const uint8_t candidate =
      sw >= kMaxWeight ? kMaxWeight : static_cast<uint8_t>(sw + 1);
  return Relax(target, candidate);
}

Status WeightTracker::Relax(ObjectId object, uint8_t w) {
  if (object.is_null() || w >= GetWeight(object)) return Status::Ok();

  std::deque<std::pair<ObjectId, uint8_t>> queue;
  queue.push_back({object, w});
  while (!queue.empty()) {
    auto [id, weight] = queue.front();
    queue.pop_front();
    if (weight >= GetWeight(id)) continue;
    weights_[id] = weight;
    if (charge_io_) {
      // The 4-bit weight lives in the object header on its page.
      ODBGC_RETURN_IF_ERROR(store_->TouchHeader(id, AccessMode::kWrite));
    }
    if (weight + 1 >= kMaxWeight) continue;  // Children can't improve.
    const ObjectStore::ObjectInfo* info = store_->Lookup(id);
    if (info == nullptr) continue;
    const uint8_t next = static_cast<uint8_t>(weight + 1);
    for (ObjectId child : info->slots) {
      if (!child.is_null() && next < GetWeight(child)) {
        queue.push_back({child, next});
      }
    }
  }
  return Status::Ok();
}

}  // namespace odbgc
