#include "core/weights.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "util/serde.h"

namespace odbgc {

uint8_t WeightTracker::GetWeight(ObjectId object) const {
  auto it = weights_.find(object);
  return it == weights_.end() ? kMaxWeight : it->second;
}

Status WeightTracker::OnRootAdded(ObjectId object) {
  return Relax(object, kRootWeight);
}

Status WeightTracker::OnPointerStored(ObjectId source, ObjectId target) {
  if (target.is_null()) return Status::Ok();
  const uint8_t sw = GetWeight(source);
  const uint8_t candidate =
      sw >= kMaxWeight ? kMaxWeight : static_cast<uint8_t>(sw + 1);
  return Relax(target, candidate);
}

Status WeightTracker::Relax(ObjectId object, uint8_t w) {
  if (object.is_null() || w >= GetWeight(object)) return Status::Ok();

  std::deque<std::pair<ObjectId, uint8_t>> queue;
  queue.push_back({object, w});
  while (!queue.empty()) {
    auto [id, weight] = queue.front();
    queue.pop_front();
    if (weight >= GetWeight(id)) continue;
    weights_[id] = weight;
    if (charge_io_) {
      // The 4-bit weight lives in the object header on its page.
      ODBGC_RETURN_IF_ERROR(store_->TouchHeader(id, AccessMode::kWrite));
    }
    if (weight + 1 >= kMaxWeight) continue;  // Children can't improve.
    const ObjectStore::ObjectInfo* info = store_->Lookup(id);
    if (info == nullptr) continue;
    const uint8_t next = static_cast<uint8_t>(weight + 1);
    for (ObjectId child : info->slots) {
      if (!child.is_null() && next < GetWeight(child)) {
        queue.push_back({child, next});
      }
    }
  }
  return Status::Ok();
}

void WeightTracker::SaveState(std::ostream& out) const {
  std::vector<std::pair<uint64_t, uint8_t>> entries;
  entries.reserve(weights_.size());
  for (const auto& [object, weight] : weights_) {
    entries.emplace_back(object.value, weight);
  }
  std::sort(entries.begin(), entries.end());
  PutVarint(out, entries.size());
  for (const auto& [object, weight] : entries) {
    PutVarint(out, object);
    PutU8(out, weight);
  }
}

Status WeightTracker::LoadState(std::istream& in) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  weights_.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    auto object = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(object.status());
    auto weight = GetU8(in);
    ODBGC_RETURN_IF_ERROR(weight.status());
    if (*weight < kRootWeight || *weight > kMaxWeight) {
      return Status::Corruption("weight out of range");
    }
    if (!weights_.emplace(ObjectId{*object}, *weight).second) {
      return Status::Corruption("weight state duplicate object");
    }
  }
  return Status::Ok();
}

}  // namespace odbgc
