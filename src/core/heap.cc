#include "core/heap.h"

namespace odbgc {

Result<std::unique_ptr<CollectedHeap>> CollectedHeap::FromImage(
    const HeapOptions& options, const StoreImage& image) {
  auto core = HeapCore::FromImage(options, image);
  ODBGC_RETURN_IF_ERROR(core.status());
  return std::unique_ptr<CollectedHeap>(
      new CollectedHeap(std::move(core).value()));
}

}  // namespace odbgc
