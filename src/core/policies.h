#ifndef ODBGC_CORE_POLICIES_H_
#define ODBGC_CORE_POLICIES_H_

#include <iosfwd>

#include "core/partition_counters.h"
#include "core/selection_policy.h"
#include "util/random.h"

namespace odbgc {

/// Selects the partition into which the most pointers were stored since
/// its last collection. Counts *every* pointer store (including slot
/// initialization during object creation) — the paper identifies exactly
/// this failure to distinguish creation stores from overwrites as one of
/// the two reasons the policy guesses poorly.
class MutatedPartitionPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kMutatedPartition; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override;
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  PartitionCounterTable<uint64_t> stores_into_partition_;
};

/// Selects the partition into which the most *overwritten* pointers
/// pointed — overwriting a pointer is a hint that its old target (and
/// whatever hangs off it) may now be garbage. The paper's best
/// implementable policy.
class UpdatedPointerPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override;
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  PartitionCounterTable<uint64_t> overwrites_into_partition_;
};

/// UpdatedPointer refined by root distance: an overwrite of a pointer to an
/// object with weight w adds 2^(16-w) to the old target's partition, so
/// severing a near-root edge (which orphans a whole subtree in a tree-like
/// database) counts exponentially more than snipping a leaf edge.
class WeightedPointerPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kWeightedPointer; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override;
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  PartitionCounterTable<double> weighted_sum_;
};

/// Uniformly random choice among the candidates — the paper's control for
/// how much the clever heuristics actually help.
class RandomPolicy : public SelectionPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : rng_(seed) {}
  PolicyKind kind() const override { return PolicyKind::kRandom; }
  PartitionId Select(const SelectionContext& context) override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  Rng rng_;
};

/// Oracle policy: picks the candidate with the most actual garbage, from
/// the census the simulator runs before each selection. Near-optimal but
/// (outside a simulator) impossible to implement; used as the upper
/// performance bound. Note the paper's caveat: greedily optimal per
/// collection, not globally optimal over a whole run.
class MostGarbagePolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kMostGarbage; }
  PartitionId Select(const SelectionContext& context) override;
};

/// Never collects. The heap additionally disables the trigger for this
/// kind; Select always declines.
class NoCollectionPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kNoCollection; }
  PartitionId Select(const SelectionContext& context) override;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_POLICIES_H_
