#ifndef ODBGC_CORE_REACHABILITY_H_
#define ODBGC_CORE_REACHABILITY_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"

namespace odbgc {

/// A whole-database garbage census: which bytes are live (transitively
/// reachable from the root set) and which are garbage, per partition.
///
/// This is simulator-omniscient information — the oracle behind the
/// MostGarbage policy, the "Actual Garbage" row of Table 4, and the
/// unreclaimed-garbage curves of Figure 4. It walks the store's shadow
/// object graph, so it costs no simulated I/O and does not perturb the
/// experiment.
struct GarbageCensus {
  /// Garbage bytes in each partition, indexed by partition id.
  std::vector<uint64_t> garbage_bytes_per_partition;
  /// Garbage object count per partition.
  std::vector<uint64_t> garbage_objects_per_partition;
  /// Garbage bytes a collection of the partition would reclaim *right
  /// now*: excludes garbage protected by remembered-set entries from dead
  /// objects in other partitions (nepotism) and everything such kept
  /// objects reach within the partition. This is what the MostGarbage
  /// oracle ranks partitions by — ranking by raw garbage would repeatedly
  /// select partitions whose garbage cannot yet be reclaimed.
  std::vector<uint64_t> collectable_bytes_per_partition;
  uint64_t total_garbage_bytes = 0;
  uint64_t total_garbage_objects = 0;
  uint64_t total_collectable_bytes = 0;
  uint64_t total_live_bytes = 0;
  uint64_t total_live_objects = 0;
};

/// Ids of all objects reachable from the root set.
std::unordered_set<ObjectId> ComputeLiveSet(const ObjectStore& store);

/// Full census (one reachability pass).
GarbageCensus ComputeGarbageCensus(const ObjectStore& store);

/// Classifies the *garbage* of a census by why a partition-local collector
/// would or would not find it, quantifying the paper's Section 6.5
/// observations (nepotism and distributed cyclic garbage).
struct GarbageAnatomy {
  /// Garbage objects with no remaining references from other partitions'
  /// objects (live or dead): a collection of their partition reclaims
  /// them immediately.
  uint64_t locally_collectable_bytes = 0;
  /// Garbage kept "live" by pointers from *dead* objects in other
  /// partitions (nepotism): reclaimable only after the referencing
  /// partition is collected first.
  uint64_t nepotism_bytes = 0;
  /// Garbage on inter-partition cycles of dead objects: no ordering of
  /// single-partition collections reclaims it (the paper's "distributed
  /// cyclic garbage").
  uint64_t cross_partition_cycle_bytes = 0;
};

/// Computes the anatomy given the current store contents. The
/// cross-partition-cycle component is found as the fixpoint of repeatedly
/// discarding dead objects that have no external dead referents — what
/// remains is garbage that partition-local collection can never reach.
GarbageAnatomy ComputeGarbageAnatomy(const ObjectStore& store);

}  // namespace odbgc

#endif  // ODBGC_CORE_REACHABILITY_H_
