#ifndef ODBGC_CORE_REACHABILITY_H_
#define ODBGC_CORE_REACHABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"
#include "util/task_pool.h"

namespace odbgc {

/// A whole-database garbage census: which bytes are live (transitively
/// reachable from the root set) and which are garbage, per partition.
///
/// This is simulator-omniscient information — the oracle behind the
/// MostGarbage policy, the "Actual Garbage" row of Table 4, and the
/// unreclaimed-garbage curves of Figure 4. It walks the store's shadow
/// object graph, so it costs no simulated I/O and does not perturb the
/// experiment.
struct GarbageCensus {
  /// Garbage bytes in each partition, indexed by partition id.
  std::vector<uint64_t> garbage_bytes_per_partition;
  /// Garbage object count per partition.
  std::vector<uint64_t> garbage_objects_per_partition;
  /// Garbage bytes a collection of the partition would reclaim *right
  /// now*: excludes garbage protected by remembered-set entries from dead
  /// objects in other partitions (nepotism) and everything such kept
  /// objects reach within the partition. This is what the MostGarbage
  /// oracle ranks partitions by — ranking by raw garbage would repeatedly
  /// select partitions whose garbage cannot yet be reclaimed.
  std::vector<uint64_t> collectable_bytes_per_partition;
  uint64_t total_garbage_bytes = 0;
  uint64_t total_garbage_objects = 0;
  uint64_t total_collectable_bytes = 0;
  uint64_t total_live_bytes = 0;
  uint64_t total_live_objects = 0;
};

/// Classifies the *garbage* of a census by why a partition-local collector
/// would or would not find it, quantifying the paper's Section 6.5
/// observations (nepotism and distributed cyclic garbage).
struct GarbageAnatomy {
  /// Garbage objects with no remaining references from other partitions'
  /// objects (live or dead): a collection of their partition reclaims
  /// them immediately.
  uint64_t locally_collectable_bytes = 0;
  /// Garbage kept "live" by pointers from *dead* objects in other
  /// partitions (nepotism): reclaimable only after the referencing
  /// partition is collected first.
  uint64_t nepotism_bytes = 0;
  /// Garbage on inter-partition cycles of dead objects: no ordering of
  /// single-partition collections reclaims it (the paper's "distributed
  /// cyclic garbage").
  uint64_t cross_partition_cycle_bytes = 0;
};

/// The shared marking core behind every whole-database reachability
/// question — the simulator's single hottest path (the MostGarbage oracle
/// runs a census per collection trigger; Figure 4 runs one per snapshot).
///
/// Instead of a fresh unordered_set per census, liveness is an
/// *epoch-stamped dense mark vector* indexed by ObjectId value (ids are
/// sequential and never reused, so the id doubles as a slot in a flat
/// array): one uint32_t per id, "marked" means stamp == current epoch,
/// and un-marking the whole database is a single epoch increment. After
/// the first census of a run, marking allocates nothing and never
/// rehashes; the traversal worklist and all census scratch buffers are
/// reused across calls.
///
/// The analyzer is measurement machinery only — it reads the shadow
/// object graph, charges no simulated I/O and holds no simulation state,
/// so it is deliberately *not* part of any checkpoint. All results are
/// bit-identical to the original set-based implementation (every output
/// is an order-independent sum over the same live/dead classification);
/// tests/core/census_equivalence_test.cc pins that equivalence against a
/// reference implementation.
class ReachabilityAnalyzer {
 public:
  ReachabilityAnalyzer() = default;

  ReachabilityAnalyzer(const ReachabilityAnalyzer&) = delete;
  ReachabilityAnalyzer& operator=(const ReachabilityAnalyzer&) = delete;

  /// Full census into caller-owned storage (vectors are reused when
  /// already sized). One reachability pass over the shadow graph.
  void CensusInto(const ObjectStore& store, GarbageCensus* census);

  /// Full census (one reachability pass), by value.
  GarbageCensus Census(const ObjectStore& store);

  /// Garbage anatomy for the current store contents. The
  /// cross-partition-cycle component is found via SCCs of the dead
  /// subgraph: a dead cycle spanning partitions keeps itself registered
  /// in remembered sets forever.
  GarbageAnatomy Anatomy(const ObjectStore& store);

  /// Marks the set of objects reachable from the store's roots; afterward
  /// IsLive() answers for any id issued by the store. Exposed for callers
  /// that need only liveness (equivalence tests, tools).
  void MarkLiveSet(const ObjectStore& store);

  /// Switches marking to the parallel path (DESIGN.md §15): the root set
  /// is striped into tasks on `pool`, workers claim objects through an
  /// epoch-stamped atomic claim array (CAS from not-this-epoch to
  /// this-epoch, so every object is traversed exactly once), oversized
  /// worklists split into stealable subtasks, and each task's claimed ids
  /// are merged into the dense mark vector serially after the wave — so
  /// census/anatomy read the same single-threaded stamps as ever.
  ///
  /// Byte-identical to serial marking by construction: the reachable set
  /// is the unique least fixpoint of the edge relation, independent of
  /// traversal order, and every downstream output is an order-independent
  /// sum over that set (tests/core/parallel_marking_test.cc holds census
  /// and anatomy to it field for field).
  ///
  /// `pool` is non-owning and must outlive the analyzer's last marking
  /// call. `stripes` controls fan-out (≈4 root chunks per worker); values
  /// < 2 or a null pool leave the serial path in place. The store must
  /// not be mutated during marking (the usual census contract: the
  /// mutator is stopped inside a collection/census).
  void EnableParallelMarking(TaskPool* pool, uint32_t stripes);

  /// True when EnableParallelMarking installed a usable configuration.
  bool parallel_marking_enabled() const {
    return marking_pool_ != nullptr && marking_stripes_ > 1;
  }

  /// True iff `id` was marked by the most recent MarkLiveSet/Census/
  /// Anatomy call on this analyzer.
  bool IsLive(ObjectId id) const {
    return id.value < live_stamp_.size() && live_stamp_[id.value] == epoch_;
  }

 private:
  // One dead object, in partition-roster order (the census iteration
  // order, kept for deterministic replay of the reference algorithm).
  struct DeadObject {
    ObjectId id;
    PartitionId partition;
    uint32_t size;
  };

  // Starts a new mark generation covering ids < store.id_limit():
  // increments the epoch and grows the stamp arrays (handling the
  // ~4-billion-census wraparound by clearing).
  void BeginEpoch(const ObjectStore& store);

  // Aux-stamps `id` (the per-census scratch set: census "kept" marks,
  // anatomy dead-graph indices). Returns false if already stamped.
  bool AuxMark(ObjectId id) {
    uint32_t& stamp = aux_stamp_[id.value];
    if (stamp == epoch_) return false;
    stamp = epoch_;
    return true;
  }
  bool AuxMarked(ObjectId id) const {
    return aux_stamp_[id.value] == epoch_;
  }

  // Parallel marking (EnableParallelMarking): drains one task's worklist,
  // splitting oversized backlogs into stealable subtasks, recording every
  // claimed id value into `marked`.
  void DrainMarkWorklist(const ObjectStore& store, std::vector<ObjectId>* work,
                         std::vector<uint64_t>* marked,
                         TaskPool::TaskGroup* group, TaskPool::Context& ctx);
  // Hands a task's claimed-id list to the merge step (thread-safe).
  void PublishMarked(std::vector<uint64_t>* marked);
  void MarkLiveSetParallel(const ObjectStore& store);
  // CAS-claims `id` for the current generation; true iff this caller won.
  bool ClaimParallel(uint64_t id_value) {
    uint32_t seen = claim_stamp_[id_value].load(std::memory_order_relaxed);
    while (seen != epoch_) {
      if (claim_stamp_[id_value].compare_exchange_weak(
              seen, epoch_, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  // Current mark generation; 0 is reserved as "never marked".
  uint32_t epoch_ = 0;
  // stamp == epoch_  <=>  marked in the current generation.
  std::vector<uint32_t> live_stamp_;
  std::vector<uint32_t> aux_stamp_;
  // Aux payload: for anatomy, the dead-graph index of an aux-marked id.
  std::vector<uint32_t> aux_value_;

  // Reusable traversal worklist (explicit stack — order is irrelevant to
  // every consumer, all outputs being order-independent sums).
  std::vector<ObjectId> worklist_;
  // Census scratch: the dead objects of the current census, roster order.
  std::vector<DeadObject> dead_;

  // Parallel marking state (unused on the serial path). The claim array
  // is the concurrent twin of live_stamp_: claim == epoch_ means "some
  // task owns/owned this object's traversal". Workers never touch
  // live_stamp_; the post-wave merge does, single-threaded.
  TaskPool* marking_pool_ = nullptr;
  uint32_t marking_stripes_ = 1;
  std::unique_ptr<std::atomic<uint32_t>[]> claim_stamp_;
  size_t claim_capacity_ = 0;
  // Per-task output: claimed id values, appended under marked_mutex_.
  std::mutex marked_mutex_;
  std::vector<std::vector<uint64_t>> marked_lists_;
  size_t marked_lists_used_ = 0;
};

/// Ids of all objects reachable from the root set.
///
/// Note for hot paths: prefer ReachabilityAnalyzer, which marks without
/// building a set. This remains for callers that need a materialized set
/// with the historical iteration behaviour (the global collector's visit
/// order, tests).
std::unordered_set<ObjectId> ComputeLiveSet(const ObjectStore& store);

/// Full census (one reachability pass). Convenience wrapper constructing
/// a transient ReachabilityAnalyzer; repeated callers should hold an
/// analyzer and amortize its buffers.
GarbageCensus ComputeGarbageCensus(const ObjectStore& store);

/// Computes the anatomy given the current store contents (see
/// ReachabilityAnalyzer::Anatomy).
GarbageAnatomy ComputeGarbageAnatomy(const ObjectStore& store);

}  // namespace odbgc

#endif  // ODBGC_CORE_REACHABILITY_H_
