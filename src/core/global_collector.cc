#include "core/global_collector.h"

#include <cassert>
#include <vector>

#include "core/reachability.h"

namespace odbgc {

GlobalMarkCollector::GlobalMarkCollector(ObjectStore* store,
                                         BufferPool* buffer,
                                         InterPartitionIndex* index,
                                         WeightTracker* weights)
    : store_(store), buffer_(buffer), index_(index), weights_(weights) {
  assert(store_ != nullptr && buffer_ != nullptr && index_ != nullptr);
}

Result<GlobalCollectionResult> GlobalMarkCollector::CollectAll(
    const std::vector<ObjectId>& extra_roots) {
  if (store_->empty_partition() == kInvalidPartition) {
    return Status::FailedPrecondition(
        "CollectAll: store has no reserved empty partition");
  }

  PhaseScope phase(buffer_, IoPhase::kCollector);
  const BufferStats before = buffer_->stats();
  GlobalCollectionResult result;

  // --- 1. Mark. The live set comes from the shadow graph, but the I/O a
  // real marker would do is charged: one header+slots read per live
  // object.
  auto live = ComputeLiveSet(*store_);
  // Extra roots (e.g. the not-yet-linked newest allocation) and their
  // reachable closure join the live set.
  std::vector<ObjectId> frontier;
  for (ObjectId extra : extra_roots) {
    if (store_->Exists(extra) && live.insert(extra).second) {
      frontier.push_back(extra);
    }
  }
  while (!frontier.empty()) {
    const ObjectId id = frontier.back();
    frontier.pop_back();
    for (ObjectId child : store_->Lookup(id)->slots) {
      if (!child.is_null() && store_->Exists(child) &&
          live.insert(child).second) {
        frontier.push_back(child);
      }
    }
  }
  for (ObjectId id : live) {
    ODBGC_RETURN_IF_ERROR(store_->VisitObject(id));
  }

  // --- 2. Retire the dead set's inter-partition entries wholesale.
  std::vector<std::pair<ObjectId, PartitionId>> dead;
  const size_t total_objects = store_->object_count();
  dead.reserve(total_objects > live.size() ? total_objects - live.size() : 0);
  for (size_t pid = 0; pid < store_->partition_count(); ++pid) {
    for (const auto& [offset, id] :
         store_->partition(pid).objects_by_offset()) {
      if (live.count(id) == 0) {
        dead.push_back({id, static_cast<PartitionId>(pid)});
      }
    }
  }
  for (const auto& [id, pid] : dead) {
    index_->RemoveOutPointersOf(id, pid);
    if (weights_ != nullptr) weights_->OnObjectDied(id);
  }

  // --- 3. Sweep: per partition, copy survivors into the empty partition
  // and drop the rest; the vacated partition becomes the next copy target.
  // A partition that has served as a copy target holds only survivors
  // that were already copied once — skipping it keeps every object's copy
  // count at exactly one. The original empty partition starts processed;
  // thereafter every new empty is the just-swept victim, so the current
  // target is always in the processed set.
  const size_t partition_count = store_->partition_count();
  std::vector<bool> processed(partition_count, false);
  processed[store_->empty_partition()] = true;
  for (size_t pid = 0; pid < partition_count; ++pid) {
    const PartitionId victim = static_cast<PartitionId>(pid);
    if (processed[victim]) continue;
    processed[victim] = true;
    if (store_->partition(victim).allocated_bytes() == 0) continue;
    const PartitionId target = store_->empty_partition();

    // Snapshot (copying mutates the roster).
    std::vector<ObjectId> residents;
    residents.reserve(store_->partition(victim).objects_by_offset().size());
    for (const auto& [offset, id] :
         store_->partition(victim).objects_by_offset()) {
      residents.push_back(id);
    }
    for (ObjectId id : residents) {
      if (live.count(id) > 0) {
        const ObjectStore::ObjectInfo* info = store_->Lookup(id);
        result.live_bytes_copied += info->size;
        ++result.live_objects_copied;
        ODBGC_RETURN_IF_ERROR(store_->RelocateObject(id, target));
        index_->OnObjectMoved(id, victim, target);
      } else {
        const ObjectStore::ObjectInfo* info = store_->Lookup(id);
        result.garbage_bytes_reclaimed += info->size;
        ++result.garbage_objects_reclaimed;
        assert(!index_->HasExternalReferences(id));
        ODBGC_RETURN_IF_ERROR(store_->DropObject(id));
      }
    }
    ODBGC_RETURN_IF_ERROR(store_->SwapEmptyPartition(victim));
    ++result.partitions_processed;
  }

  const BufferStats after = buffer_->stats();
  result.page_reads = after.reads_gc - before.reads_gc;
  result.page_writes = after.writes_gc - before.writes_gc;
  return result;
}

}  // namespace odbgc
