#ifndef ODBGC_CORE_SELECTION_POLICY_H_
#define ODBGC_CORE_SELECTION_POLICY_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"
#include "util/random.h"
#include "util/status.h"

namespace odbgc {

class ObjectStore;  // Bound into registry-built policies that need it.

/// The six partition selection policies of the paper (Section 3.1).
///
/// This enum is the *behaviour class* of a policy, not its identity:
/// policies are identified by their registry `name()` (see RegisterPolicy
/// below), and several distinct named policies may share one kind — the
/// heap consults `kind()` only for the two behavioural special cases
/// (kNoCollection disables the trigger, kMostGarbage runs the oracle
/// census). The enum is kept as a thin alias layer so the paper's six
/// policies remain configurable (and checkpoint-compatible) by kind.
enum class PolicyKind {
  /// Never collect; grow the database instead (upper space bound).
  kNoCollection,
  /// Most pointer stores into a partition since its last collection
  /// (the enhanced Yong/Naughton/Yu heuristic).
  kMutatedPartition,
  /// Most overwritten pointers that pointed *into* a partition — the
  /// paper's winning policy.
  kUpdatedPointer,
  /// Like UpdatedPointer, but each overwrite weighted 2^(16-w) by the old
  /// target's root-distance weight w.
  kWeightedPointer,
  /// Uniformly random partition (control).
  kRandom,
  /// Oracle: the partition currently containing the most garbage
  /// (near-optimal, impractical to implement outside a simulator).
  kMostGarbage,
};

/// All six kinds, in the paper's table order.
const std::vector<PolicyKind>& AllPolicyKinds();

/// Registry names of the paper's six policies, in AllPolicyKinds order —
/// the default policy axis of an ExperimentSpec.
const std::vector<std::string>& PaperPolicyNames();

/// "UpdatedPointer", "MostGarbage", ...
const char* PolicyName(PolicyKind kind);

/// Parses a policy name (exact match); InvalidArgument if unknown.
Result<PolicyKind> ParsePolicyName(const std::string& name);

/// Everything a policy may consult when choosing a victim partition.
struct SelectionContext {
  /// Partitions eligible for collection: every non-empty partition except
  /// the reserved copy target. Ascending id order.
  std::vector<PartitionId> candidates;
  /// Actual garbage bytes per partition (indexed by partition id). Only
  /// populated when an oracle census was run (MostGarbage); empty
  /// otherwise.
  std::vector<uint64_t> garbage_bytes_per_partition;
};

/// A partition selection policy. The heap notifies the policy of every
/// pointer store (the write-barrier hook it shares with the remembered-set
/// machinery) and of each completed collection; when a collection triggers,
/// `Select` chooses the victim.
///
/// Implementations must be deterministic given the notification sequence
/// (Random draws from an explicitly seeded Rng).
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// The behaviour class (see PolicyKind). Policies outside the paper's
  /// six return the kind whose trigger/census behaviour they want.
  virtual PolicyKind kind() const = 0;

  /// The policy's identity: the registry name manifests, reports and
  /// checkpoint directories key on. Defaults to the paper name of
  /// `kind()`; every policy beyond the six must override it.
  virtual std::string name() const { return PolicyName(kind()); }

  /// Notification of one pointer store. `old_target_weight` is the
  /// root-distance weight of the overwritten target at the moment of the
  /// store (kMaxWeight when weights are not maintained); only
  /// WeightedPointer consumes it.
  virtual void OnPointerStore(const SlotWriteEvent& event,
                              uint8_t old_target_weight) {
    (void)event;
    (void)old_target_weight;
  }

  /// Notification that `partition` was just collected; policies reset that
  /// partition's accumulated hints ("zero the counter and begin again").
  virtual void OnPartitionCollected(PartitionId partition) {
    (void)partition;
  }

  /// Chooses the partition to collect. Returns kInvalidPartition if the
  /// policy declines (NoCollection, or no candidates).
  virtual PartitionId Select(const SelectionContext& context) = 0;

  /// The policy's current hint value for `partition` (counter, weighted
  /// sum, or garbage estimate) — exposed for tests and inspection tools.
  virtual double Score(PartitionId partition) const {
    (void)partition;
    return 0.0;
  }

  /// Serializes the policy's accumulated hint state for checkpointing.
  /// Stateless policies write nothing.
  virtual void SaveState(std::ostream& out) const { (void)out; }

  /// Restores state written by SaveState on a policy of the same kind.
  virtual Status LoadState(std::istream& in) {
    (void)in;
    return Status::Ok();
  }
};

/// Creates a policy instance. `seed` feeds Random's generator; other
/// policies ignore it. Thin alias over the name registry below:
/// MakePolicy(kind, seed) == *MakePolicy(PolicyName(kind), seed).
std::unique_ptr<SelectionPolicy> MakePolicy(PolicyKind kind, uint64_t seed);

// ---------------------------------------------------------------------------
// Named policy registry: the open-world identity surface. The paper's six
// kinds and the extension policies are pre-registered; libraries and
// applications add their own with RegisterPolicy and then select them by
// name everywhere a built-in fits (HeapOptions::policy_name,
// ExperimentSpec, run manifests, odbgc-report).

/// Cross-heap pressure snapshot a multi-tenant host (src/service/) exposes
/// to its tenants' policies. The host owns one instance per tenant heap and
/// refreshes every field at deterministic synchronization points (the
/// service's round barriers), so reads between barriers always see the
/// previous barrier's values — a pure function of the simulated run, never
/// of thread scheduling.
///
/// Single-heap runs never construct one: PolicyContext::global stays null
/// and every policy must degrade to its single-heap behaviour, which is
/// what keeps the paper's six policies byte-identical with or without this
/// struct in the build.
struct GlobalView {
  /// Shared frame budget across all tenant buffer pools.
  uint64_t shared_pool_frames = 0;
  /// Frames currently resident across all tenant pools.
  uint64_t shared_resident_frames = 0;
  /// Frames this tenant's pool holds resident / may hold at most.
  uint64_t tenant_resident_frames = 0;
  uint64_t tenant_frame_cap = 0;
  /// Live bytes, this tenant / all tenants (from the latest census or
  /// heap accounting the host maintains).
  uint64_t tenant_live_bytes = 0;
  uint64_t total_live_bytes = 0;
  /// Batches pending in the shared I/O scheduler (0 for in-memory
  /// backends).
  uint64_t device_queue_depth = 0;

  /// Shared-pool occupancy in [0, 1] (0 when the budget is unset).
  double OccupancyFraction() const {
    return shared_pool_frames == 0
               ? 0.0
               : static_cast<double>(shared_resident_frames) /
                     static_cast<double>(shared_pool_frames);
  }
  /// This tenant's share of its own cap in [0, 1] (0 when the cap is
  /// unset).
  double TenantPressure() const {
    return tenant_frame_cap == 0
               ? 0.0
               : static_cast<double>(tenant_resident_frames) /
                     static_cast<double>(tenant_frame_cap);
  }
};

/// What a registry factory may bind when constructing a policy.
struct PolicyContext {
  /// Seed for policy randomness (Random draws from it; others ignore it).
  uint64_t seed = 0;
  /// Stable slot holding the heap's object store, for policies that
  /// consult DBA-visible state (CostBenefit's occupancy). Null when the
  /// policy is built outside a heap; the slot's pointee is null until the
  /// heap finishes wiring, so factories must keep the slot, not deref it.
  const ObjectStore* const* store = nullptr;
  /// Cross-tenant pressure view (see GlobalView), bound by a multi-tenant
  /// host through HeapOptions::global_view. Null in single-heap runs — the
  /// common case — so policies that consult it must treat null as "no
  /// pressure" and none of the paper's six read it at all.
  const GlobalView* global = nullptr;
};

using PolicyFactory =
    std::function<std::unique_ptr<SelectionPolicy>(const PolicyContext&)>;

/// Registers `factory` under `name`. AlreadyExists if the name is taken
/// (including the pre-registered built-ins). Thread-safe.
Status RegisterPolicy(const std::string& name, PolicyFactory factory);

/// Creates the policy registered under `name`. InvalidArgument (listing
/// the registered names) if unknown. Thread-safe.
Result<std::unique_ptr<SelectionPolicy>> MakePolicy(const PolicyContext& context,
                                                    const std::string& name);

/// Convenience overload without a store binding.
Result<std::unique_ptr<SelectionPolicy>> MakePolicy(const std::string& name,
                                                    uint64_t seed);

/// True if `name` is registered.
bool IsPolicyRegistered(const std::string& name);

/// Every registered name, sorted: the six paper policies, the extension
/// policies, and anything the application registered.
std::vector<std::string> RegisteredPolicyNames();

}  // namespace odbgc

#endif  // ODBGC_CORE_SELECTION_POLICY_H_
