#ifndef ODBGC_CORE_PARTITION_COUNTERS_H_
#define ODBGC_CORE_PARTITION_COUNTERS_H_

#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <vector>

#include "odb/object_id.h"
#include "util/serde.h"
#include "util/status.h"

namespace odbgc {

/// Dense per-partition accumulator for selection-policy hints. Partition
/// ids are small and dense (the store's directory index), so a flat
/// vector indexed by PartitionId replaces the hint unordered_maps on the
/// write-barrier hot path: bumping a counter is one indexed add, no
/// hashing. The zero value doubles as "absent" — collection resets a
/// partition's entry to zero, which is exactly the old map's erase, since
/// live hint values are always positive.
///
/// Serialization is byte-compatible with the old sorted-map encoding:
/// non-zero entries are emitted in ascending partition order with the
/// same varint/double value coding.
template <typename V>
class PartitionCounterTable {
  static_assert(std::is_same_v<V, uint64_t> || std::is_same_v<V, double>,
                "hint counters are uint64_t or double");

 public:
  V Get(PartitionId partition) const {
    return partition < values_.size() ? values_[partition] : V{};
  }

  /// Mutable entry for `partition`, growing the table on demand (the
  /// directory only ever appends partitions).
  V& At(PartitionId partition) {
    if (partition >= values_.size()) values_.resize(partition + 1, V{});
    return values_[partition];
  }

  /// The "dirty-list reset": a collected partition's hints start over.
  void Reset(PartitionId partition) {
    if (partition < values_.size()) values_[partition] = V{};
  }

  void Clear() { values_.clear(); }

  size_t NonZeroCount() const {
    size_t count = 0;
    for (const V& value : values_) count += (value != V{}) ? 1 : 0;
    return count;
  }

  void Save(std::ostream& out) const {
    PutVarint(out, NonZeroCount());
    for (PartitionId p = 0; p < values_.size(); ++p) {
      if (values_[p] == V{}) continue;
      PutVarint(out, p);
      if constexpr (std::is_same_v<V, double>) {
        PutDouble(out, values_[p]);
      } else {
        PutVarint(out, values_[p]);
      }
    }
  }

  Status Load(std::istream& in) {
    auto count = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(count.status());
    values_.clear();
    std::vector<bool> seen;
    for (uint64_t i = 0; i < *count; ++i) {
      auto partition = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(partition.status());
      // The dense table is indexed by partition id, so an absurd id from
      // a damaged stream must fail cleanly instead of exhausting memory.
      if (*partition >= (1u << 20)) {
        return Status::Corruption("policy state partition id implausible");
      }
      const PartitionId p = static_cast<PartitionId>(*partition);
      if (p < seen.size() && seen[p]) {
        return Status::Corruption("policy state duplicate partition");
      }
      if (p >= seen.size()) seen.resize(p + 1, false);
      seen[p] = true;
      if constexpr (std::is_same_v<V, double>) {
        auto value = GetDouble(in);
        ODBGC_RETURN_IF_ERROR(value.status());
        At(p) = *value;
      } else {
        auto value = GetVarint(in);
        ODBGC_RETURN_IF_ERROR(value.status());
        At(p) = *value;
      }
    }
    return Status::Ok();
  }

 private:
  std::vector<V> values_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_PARTITION_COUNTERS_H_
