#include "core/write_barrier.h"

#include <cassert>

#include "odb/object_layout.h"
#include "util/serde.h"

namespace odbgc {

const char* BarrierModeName(BarrierMode mode) {
  switch (mode) {
    case BarrierMode::kExact: return "exact";
    case BarrierMode::kSequentialStoreBuffer: return "store-buffer";
    case BarrierMode::kCardMarking: return "card-marking";
  }
  return "unknown";
}

WriteBarrier::WriteBarrier(BarrierMode mode, ObjectStore* store,
                           InterPartitionIndex* index, uint32_t card_size)
    : mode_(mode), store_(store), index_(index), card_size_(card_size) {
  assert(store_ != nullptr && index_ != nullptr);
  assert(card_size_ > 0);
}

void WriteBarrier::OnSlotWrite(const SlotWriteEvent& event) {
  ++stats_.stores_observed;
  switch (mode_) {
    case BarrierMode::kExact:
      if (event.is_overwrite() &&
          event.old_target_partition != kInvalidPartition &&
          event.old_target_partition != event.source_partition) {
        index_->RemoveReference(event.source, event.slot, event.old_target);
      }
      if (!event.new_target.is_null() &&
          event.new_target_partition != event.source_partition) {
        index_->AddReference(event.source, event.source_partition,
                             event.slot, event.new_target,
                             event.new_target_partition);
      }
      break;
    case BarrierMode::kSequentialStoreBuffer:
      ssb_.push_back({event.source, event.slot});
      ++stats_.ssb_entries_logged;
      break;
    case BarrierMode::kCardMarking: {
      const ObjectStore::ObjectInfo* info = store_->Lookup(event.source);
      assert(info != nullptr);
      const uint32_t at =
          info->offset + static_cast<uint32_t>(SlotOffset(event.slot));
      const Card card{info->partition, at / card_size_};
      if (dirty_cards_.insert(card).second) ++stats_.cards_marked;
      break;
    }
  }
}

void WriteBarrier::RecordCurrent(ObjectId source, uint32_t slot) {
  // Remove whatever the index believes about this location.
  if (const auto* outs = index_->OutPointersOfSource(source)) {
    for (const auto& [s, target] : *outs) {
      if (s == slot) {
        index_->RemoveReference(source, slot, target);
        break;
      }
    }
  }
  const ObjectStore::ObjectInfo* info = store_->Lookup(source);
  if (info == nullptr || slot >= info->num_slots) return;
  const ObjectId target = info->slots[slot];
  if (target.is_null()) return;
  const ObjectStore::ObjectInfo* target_info = store_->Lookup(target);
  if (target_info == nullptr || target_info->partition == info->partition) {
    return;
  }
  index_->AddReference(source, info->partition, slot, target,
                       target_info->partition);
}

Status WriteBarrier::DrainStoreBuffer() {
  for (const PointerLocation& location : ssb_) {
    ++stats_.ssb_entries_drained;
    if (!store_->Exists(location.source)) continue;  // Died since logging.
    // A real drain reads the slot's current value from its page.
    ODBGC_RETURN_IF_ERROR(
        store_->ReadSlot(location.source, location.slot).status());
    RecordCurrent(location.source, location.slot);
  }
  ssb_.clear();
  return Status::Ok();
}

Status WriteBarrier::ScanDirtyCards() {
  std::vector<std::byte> scratch(card_size_);
  std::set<Card> still_dirty;
  for (const Card& card : dirty_cards_) {
    ++stats_.cards_scanned;
    if (card.partition >= store_->partition_count()) continue;
    const Partition& partition = store_->partition(card.partition);
    const uint32_t card_start = card.index * card_size_;
    if (card_start >= partition.capacity_bytes()) continue;
    const uint32_t card_end =
        std::min(card_start + card_size_, partition.capacity_bytes());

    // Scanning the card is a real read of its bytes.
    ODBGC_RETURN_IF_ERROR(store_->ReadBytes(
        card.partition, card_start,
        std::span<std::byte>(scratch.data(), card_end - card_start)));

    // Objects overlapping the card: start from the last object whose
    // offset is <= card_start.
    const auto& roster = partition.objects_by_offset();
    auto it = partition.UpperBound(card_start);
    if (it != roster.begin()) --it;
    bool keeps_inter_partition_pointer = false;
    for (; it != roster.end() && it->offset < card_end; ++it) {
      const ObjectId id = it->id;
      const ObjectStore::ObjectInfo* info = store_->Lookup(id);
      if (info == nullptr) continue;
      for (uint32_t s = 0; s < info->num_slots; ++s) {
        const uint32_t slot_at =
            info->offset + static_cast<uint32_t>(SlotOffset(s));
        if (slot_at + kSlotSize <= card_start || slot_at >= card_end) {
          continue;
        }
        RecordCurrent(id, s);
        const ObjectId target = info->slots[s];
        if (!target.is_null()) {
          const ObjectStore::ObjectInfo* target_info = store_->Lookup(target);
          if (target_info != nullptr &&
              target_info->partition != info->partition) {
            keeps_inter_partition_pointer = true;
          }
        }
      }
    }
    // The imprecision cost: a card holding any inter-partition pointer
    // stays dirty and will be rescanned at the next collection.
    if (keeps_inter_partition_pointer) {
      still_dirty.insert(card);
      ++stats_.cards_left_dirty;
    }
  }
  dirty_cards_ = std::move(still_dirty);
  return Status::Ok();
}

Status WriteBarrier::PrepareForCollection() {
  switch (mode_) {
    case BarrierMode::kExact:
      return Status::Ok();
    case BarrierMode::kSequentialStoreBuffer:
      return DrainStoreBuffer();
    case BarrierMode::kCardMarking:
      return ScanDirtyCards();
  }
  return Status::Ok();
}

void WriteBarrier::OnPartitionEmptied(PartitionId partition) {
  for (auto it = dirty_cards_.begin(); it != dirty_cards_.end();) {
    if (it->partition == partition) {
      it = dirty_cards_.erase(it);
    } else {
      ++it;
    }
  }
}

void WriteBarrier::SaveState(std::ostream& out) const {
  PutU8(out, static_cast<uint8_t>(mode_));
  PutVarint(out, ssb_.size());
  for (const PointerLocation& loc : ssb_) {  // Log order matters for drain.
    PutVarint(out, loc.source.value);
    PutVarint(out, loc.slot);
  }
  PutVarint(out, dirty_cards_.size());
  for (const Card& card : dirty_cards_) {  // std::set: already sorted.
    PutVarint(out, card.partition);
    PutVarint(out, card.index);
  }
  PutVarint(out, stats_.stores_observed);
  PutVarint(out, stats_.ssb_entries_logged);
  PutVarint(out, stats_.ssb_entries_drained);
  PutVarint(out, stats_.cards_marked);
  PutVarint(out, stats_.cards_scanned);
  PutVarint(out, stats_.cards_left_dirty);
}

Status WriteBarrier::LoadState(std::istream& in) {
  auto mode = GetU8(in);
  ODBGC_RETURN_IF_ERROR(mode.status());
  if (*mode != static_cast<uint8_t>(mode_)) {
    return Status::Corruption("barrier state mode mismatch");
  }
  auto ssb_size = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(ssb_size.status());
  std::vector<PointerLocation> ssb;
  ssb.reserve(*ssb_size);
  for (uint64_t i = 0; i < *ssb_size; ++i) {
    auto source = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(source.status());
    auto slot = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(slot.status());
    ssb.push_back({ObjectId{*source}, static_cast<uint32_t>(*slot)});
  }
  auto card_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(card_count.status());
  std::set<Card> cards;
  for (uint64_t i = 0; i < *card_count; ++i) {
    auto partition = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(partition.status());
    auto index = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(index.status());
    cards.insert({static_cast<PartitionId>(*partition),
                  static_cast<uint32_t>(*index)});
  }
  BarrierStats stats;
  auto get = [&in](uint64_t* out_value) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };
  ODBGC_RETURN_IF_ERROR(get(&stats.stores_observed));
  ODBGC_RETURN_IF_ERROR(get(&stats.ssb_entries_logged));
  ODBGC_RETURN_IF_ERROR(get(&stats.ssb_entries_drained));
  ODBGC_RETURN_IF_ERROR(get(&stats.cards_marked));
  ODBGC_RETURN_IF_ERROR(get(&stats.cards_scanned));
  ODBGC_RETURN_IF_ERROR(get(&stats.cards_left_dirty));
  ssb_ = std::move(ssb);
  dirty_cards_ = std::move(cards);
  stats_ = stats;
  return Status::Ok();
}

}  // namespace odbgc
