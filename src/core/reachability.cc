#include "core/reachability.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace odbgc {

std::unordered_set<ObjectId> ComputeLiveSet(const ObjectStore& store) {
  std::unordered_set<ObjectId> live;
  std::deque<ObjectId> queue;
  for (ObjectId root : store.roots()) {
    if (live.insert(root).second) queue.push_back(root);
  }
  while (!queue.empty()) {
    const ObjectId id = queue.front();
    queue.pop_front();
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    if (info == nullptr) continue;
    for (ObjectId child : info->slots) {
      if (!child.is_null() && store.Exists(child) &&
          live.insert(child).second) {
        queue.push_back(child);
      }
    }
  }
  return live;
}

GarbageCensus ComputeGarbageCensus(const ObjectStore& store) {
  const std::unordered_set<ObjectId> live = ComputeLiveSet(store);

  GarbageCensus census;
  census.garbage_bytes_per_partition.assign(store.partition_count(), 0);
  census.garbage_objects_per_partition.assign(store.partition_count(), 0);
  census.collectable_bytes_per_partition.assign(store.partition_count(), 0);

  struct DeadEntry {
    PartitionId partition;
    uint32_t size;
  };
  std::unordered_map<ObjectId, DeadEntry> dead;

  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      if (live.count(id) > 0) {
        census.total_live_bytes += info->size;
        ++census.total_live_objects;
      } else {
        census.garbage_bytes_per_partition[pid] += info->size;
        ++census.garbage_objects_per_partition[pid];
        census.total_garbage_bytes += info->size;
        ++census.total_garbage_objects;
        dead.emplace(id,
                     DeadEntry{static_cast<PartitionId>(pid), info->size});
      }
    }
  }

  // Kept-but-dead: garbage with a cross-partition in-edge from another
  // dead object (only dead sources can reference garbage), plus everything
  // those objects reach through intra-partition dead edges — the
  // collector's conservative remembered-set treatment keeps all of it.
  std::unordered_set<ObjectId> kept;
  std::deque<ObjectId> queue;
  for (const auto& [id, entry] : dead) {
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      auto cit = dead.find(child);
      if (cit == dead.end() || cit->second.partition == entry.partition) {
        continue;
      }
      if (kept.insert(child).second) queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    const ObjectId id = queue.front();
    queue.pop_front();
    const PartitionId partition = dead.at(id).partition;
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      auto cit = dead.find(child);
      if (cit == dead.end() || cit->second.partition != partition) continue;
      if (kept.insert(child).second) queue.push_back(child);
    }
  }

  for (const auto& [id, entry] : dead) {
    if (kept.count(id) > 0) continue;
    census.collectable_bytes_per_partition[entry.partition] += entry.size;
    census.total_collectable_bytes += entry.size;
  }
  return census;
}

namespace {

// Dense view of the dead-object subgraph used by ComputeGarbageAnatomy.
struct DeadGraph {
  std::vector<ObjectId> ids;
  std::vector<PartitionId> partitions;
  std::vector<uint32_t> sizes;
  std::vector<std::vector<uint32_t>> out_edges;  // Dead -> dead only.
  std::unordered_map<ObjectId, uint32_t> index_of;
};

DeadGraph BuildDeadGraph(const ObjectStore& store,
                         const std::unordered_set<ObjectId>& live) {
  DeadGraph g;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      if (live.count(id) > 0) continue;
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      g.index_of.emplace(id, static_cast<uint32_t>(g.ids.size()));
      g.ids.push_back(id);
      g.partitions.push_back(static_cast<PartitionId>(pid));
      g.sizes.push_back(info->size);
    }
  }
  g.out_edges.resize(g.ids.size());
  for (uint32_t i = 0; i < g.ids.size(); ++i) {
    const ObjectStore::ObjectInfo* info = store.Lookup(g.ids[i]);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      auto it = g.index_of.find(child);
      if (it != g.index_of.end()) g.out_edges[i].push_back(it->second);
    }
  }
  return g;
}

// Iterative Tarjan SCC over the dead graph; returns component id per node.
std::vector<uint32_t> StronglyConnectedComponents(const DeadGraph& g,
                                                  uint32_t* num_components) {
  const uint32_t n = static_cast<uint32_t>(g.ids.size());
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited), lowlink(n, 0), component(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0, next_component = 0;

  struct Frame {
    uint32_t node;
    size_t edge;
  };
  std::vector<Frame> call_stack;

  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const uint32_t v = frame.node;
      if (frame.edge < g.out_edges[v].size()) {
        const uint32_t w = g.out_edges[v][frame.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          for (;;) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const uint32_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  *num_components = next_component;
  return component;
}

}  // namespace

GarbageAnatomy ComputeGarbageAnatomy(const ObjectStore& store) {
  const std::unordered_set<ObjectId> live = ComputeLiveSet(store);
  const DeadGraph g = BuildDeadGraph(store, live);
  const uint32_t n = static_cast<uint32_t>(g.ids.size());

  GarbageAnatomy anatomy;
  if (n == 0) return anatomy;

  // --- Stuck garbage: reachable from an SCC containing a cross-partition
  // edge. Such a cycle of dead objects keeps itself registered in
  // remembered sets forever, and everything it references stays protected.
  uint32_t num_components = 0;
  const std::vector<uint32_t> component =
      StronglyConnectedComponents(g, &num_components);
  std::vector<bool> component_self_sustaining(num_components, false);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.out_edges[v]) {
      if (component[v] == component[w] &&
          g.partitions[v] != g.partitions[w]) {
        component_self_sustaining[component[v]] = true;
      }
    }
  }
  std::vector<bool> stuck(n, false);
  std::deque<uint32_t> queue;
  for (uint32_t v = 0; v < n; ++v) {
    if (component_self_sustaining[component[v]]) {
      stuck[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t w : g.out_edges[v]) {
      if (!stuck[w]) {
        stuck[w] = true;
        queue.push_back(w);
      }
    }
  }

  // --- Locally collectable *now*: dead objects a collection of their own
  // partition would reclaim at this instant. Kept instead are dead objects
  // with a cross-partition dead in-edge (they look like remembered-set
  // roots) plus everything they reach through intra-partition dead edges
  // (the collector traverses kept objects).
  std::vector<bool> kept(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.out_edges[v]) {
      if (g.partitions[v] != g.partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t w : g.out_edges[v]) {
      if (g.partitions[v] == g.partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }

  for (uint32_t v = 0; v < n; ++v) {
    if (stuck[v]) {
      anatomy.cross_partition_cycle_bytes += g.sizes[v];
    } else if (kept[v]) {
      anatomy.nepotism_bytes += g.sizes[v];
    } else {
      anatomy.locally_collectable_bytes += g.sizes[v];
    }
  }
  return anatomy;
}

}  // namespace odbgc
