#include "core/reachability.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace odbgc {

void ReachabilityAnalyzer::BeginEpoch(const ObjectStore& store) {
  ++epoch_;
  if (epoch_ == 0) {
    // uint32 epoch wrapped (one wrap per ~4 billion censuses): stale
    // stamps could alias the new epoch, so clear once and restart at 1.
    std::fill(live_stamp_.begin(), live_stamp_.end(), 0);
    std::fill(aux_stamp_.begin(), aux_stamp_.end(), 0);
    for (size_t i = 0; i < claim_capacity_; ++i) {
      claim_stamp_[i].store(0, std::memory_order_relaxed);
    }
    epoch_ = 1;
  }
  const size_t limit = static_cast<size_t>(store.id_limit());
  if (live_stamp_.size() < limit) {
    // Zero-fill is correct for any epoch: 0 is never a live epoch value.
    live_stamp_.resize(limit, 0);
    aux_stamp_.resize(limit, 0);
    aux_value_.resize(limit, 0);
  }
}

void ReachabilityAnalyzer::EnableParallelMarking(TaskPool* pool,
                                                uint32_t stripes) {
  marking_pool_ = pool;
  marking_stripes_ = stripes;
}

void ReachabilityAnalyzer::MarkLiveSet(const ObjectStore& store) {
  if (parallel_marking_enabled() && !store.roots().empty()) {
    MarkLiveSetParallel(store);
    return;
  }
  BeginEpoch(store);
  worklist_.clear();
  worklist_.reserve(store.object_count());
  for (ObjectId root : store.roots()) {
    assert(root.value < live_stamp_.size());
    uint32_t& stamp = live_stamp_[root.value];
    if (stamp == epoch_) continue;
    stamp = epoch_;
    worklist_.push_back(root);
  }
  while (!worklist_.empty()) {
    const ObjectId id = worklist_.back();
    worklist_.pop_back();
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    if (info == nullptr) continue;  // Dangling root.
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      uint32_t& stamp = live_stamp_[child.value];
      if (stamp == epoch_) continue;
      if (!store.Exists(child)) continue;
      stamp = epoch_;
      worklist_.push_back(child);
    }
  }
}

void ReachabilityAnalyzer::DrainMarkWorklist(const ObjectStore& store,
                                             std::vector<ObjectId>* work,
                                             std::vector<uint64_t>* marked,
                                             TaskPool::TaskGroup* group,
                                             TaskPool::Context& ctx) {
  // Backlogs beyond this split in half, the older half becoming a
  // stealable subtask in the same wave. The threshold keeps split
  // overhead (a vector copy + a task submit) well under the traversal
  // work it exports.
  constexpr size_t kSplitThreshold = 1024;
  while (!work->empty()) {
    if (work->size() > kSplitThreshold) {
      const size_t half = work->size() / 2;
      std::vector<ObjectId> exported(work->begin(), work->begin() + half);
      work->erase(work->begin(), work->begin() + half);
      const ObjectStore* store_ptr = &store;
      ctx.pool->Submit(group, [this, store_ptr, group,
                               seed = std::move(exported)](
                                  TaskPool::Context& sub_ctx) mutable {
        std::vector<uint64_t> sub_marked;
        DrainMarkWorklist(*store_ptr, &seed, &sub_marked, group, sub_ctx);
        PublishMarked(&sub_marked);
      });
    }
    const ObjectId id = work->back();
    work->pop_back();
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    if (info == nullptr) continue;  // Dangling root.
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      if (claim_stamp_[child.value].load(std::memory_order_relaxed) ==
          epoch_) {
        continue;
      }
      if (!store.Exists(child)) continue;
      if (!ClaimParallel(child.value)) continue;  // Another task won.
      marked->push_back(child.value);
      work->push_back(child);
    }
  }
}

void ReachabilityAnalyzer::PublishMarked(std::vector<uint64_t>* marked) {
  std::lock_guard<std::mutex> lock(marked_mutex_);
  if (marked_lists_used_ == marked_lists_.size()) {
    marked_lists_.emplace_back();
  }
  marked_lists_[marked_lists_used_++].swap(*marked);
}

void ReachabilityAnalyzer::MarkLiveSetParallel(const ObjectStore& store) {
  BeginEpoch(store);
  const size_t limit = live_stamp_.size();
  if (claim_capacity_ < limit) {
    // Fresh zero-filled array: dropping older generations' claims is
    // fine, 0 never equals a live epoch.
    size_t capacity = claim_capacity_ == 0 ? 1024 : claim_capacity_;
    while (capacity < limit) capacity *= 2;
    claim_stamp_ = std::make_unique<std::atomic<uint32_t>[]>(capacity);
    for (size_t i = 0; i < capacity; ++i) {
      claim_stamp_[i].store(0, std::memory_order_relaxed);
    }
    claim_capacity_ = capacity;
  }

  const std::vector<ObjectId>& roots = store.roots();
  // ~4 chunks per stripe so early-finishing workers have something to
  // steal even before any worklist splits.
  const size_t target_tasks =
      std::max<size_t>(1, static_cast<size_t>(marking_stripes_) * 4);
  const size_t chunk =
      std::max<size_t>(1, (roots.size() + target_tasks - 1) / target_tasks);

  marked_lists_used_ = 0;
  TaskPool::TaskGroup group;
  const ObjectStore* store_ptr = &store;
  for (size_t begin = 0; begin < roots.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, roots.size());
    marking_pool_->Submit(&group, [this, store_ptr, begin, end,
                                   group_ptr = &group](
                                      TaskPool::Context& ctx) {
      std::vector<uint64_t> marked;
      std::vector<ObjectId> work;
      const std::vector<ObjectId>& chunk_roots = store_ptr->roots();
      for (size_t i = begin; i < end; ++i) {
        const ObjectId root = chunk_roots[i];
        assert(root.value < claim_capacity_);
        // Serial marking stamps every root, dangling ones included (the
        // traversal then skips them on Lookup) — claim the same set.
        if (!ClaimParallel(root.value)) continue;
        marked.push_back(root.value);
        work.push_back(root);
      }
      DrainMarkWorklist(*store_ptr, &work, &marked, group_ptr, ctx);
      PublishMarked(&marked);
    });
  }
  marking_pool_->Wait(&group);

  // Deterministic merge: the claimed set is the unique reachability
  // fixpoint regardless of which task claimed what; stamping it into
  // live_stamp_ is order-independent (every stamp writes the same epoch).
  // After this loop the analyzer is indistinguishable from a serial mark.
  for (size_t i = 0; i < marked_lists_used_; ++i) {
    for (const uint64_t id_value : marked_lists_[i]) {
      live_stamp_[id_value] = epoch_;
    }
    marked_lists_[i].clear();
  }
}

void ReachabilityAnalyzer::CensusInto(const ObjectStore& store,
                                      GarbageCensus* census) {
  MarkLiveSet(store);

  const size_t partition_count = store.partition_count();
  census->garbage_bytes_per_partition.assign(partition_count, 0);
  census->garbage_objects_per_partition.assign(partition_count, 0);
  census->collectable_bytes_per_partition.assign(partition_count, 0);
  census->total_garbage_bytes = 0;
  census->total_garbage_objects = 0;
  census->total_collectable_bytes = 0;
  census->total_live_bytes = 0;
  census->total_live_objects = 0;

  dead_.clear();
  for (size_t pid = 0; pid < partition_count; ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      if (IsLive(id)) {
        census->total_live_bytes += info->size;
        ++census->total_live_objects;
      } else {
        census->garbage_bytes_per_partition[pid] += info->size;
        ++census->garbage_objects_per_partition[pid];
        census->total_garbage_bytes += info->size;
        ++census->total_garbage_objects;
        dead_.push_back(
            {id, static_cast<PartitionId>(pid), info->size});
      }
    }
  }

  // Kept-but-dead: garbage with a cross-partition in-edge from another
  // dead object (only dead sources can reference garbage), plus everything
  // those objects reach through intra-partition dead edges — the
  // collector's conservative remembered-set treatment keeps all of it.
  // "Dead" membership is (resident && !live), so the aux stamps replace
  // the old per-census kept-set allocation.
  worklist_.clear();
  for (const DeadObject& dead : dead_) {
    const ObjectStore::ObjectInfo* info = store.Lookup(dead.id);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      const ObjectStore::ObjectInfo* child_info = store.Lookup(child);
      if (child_info == nullptr || IsLive(child) ||
          child_info->partition == dead.partition) {
        continue;
      }
      if (AuxMark(child)) worklist_.push_back(child);
    }
  }
  while (!worklist_.empty()) {
    const ObjectId id = worklist_.back();
    worklist_.pop_back();
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      const ObjectStore::ObjectInfo* child_info = store.Lookup(child);
      if (child_info == nullptr || IsLive(child) ||
          child_info->partition != info->partition) {
        continue;
      }
      if (AuxMark(child)) worklist_.push_back(child);
    }
  }

  for (const DeadObject& dead : dead_) {
    if (AuxMarked(dead.id)) continue;
    census->collectable_bytes_per_partition[dead.partition] += dead.size;
    census->total_collectable_bytes += dead.size;
  }
}

GarbageCensus ReachabilityAnalyzer::Census(const ObjectStore& store) {
  GarbageCensus census;
  CensusInto(store, &census);
  return census;
}

namespace {

// Dense view of the dead-object subgraph used by Anatomy.
struct DeadGraph {
  std::vector<ObjectId> ids;
  std::vector<PartitionId> partitions;
  std::vector<uint32_t> sizes;
  std::vector<std::vector<uint32_t>> out_edges;  // Dead -> dead only.
};

// Iterative Tarjan SCC over the dead graph; returns component id per node.
std::vector<uint32_t> StronglyConnectedComponents(const DeadGraph& g,
                                                  uint32_t* num_components) {
  const uint32_t n = static_cast<uint32_t>(g.ids.size());
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited), lowlink(n, 0), component(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0, next_component = 0;

  struct Frame {
    uint32_t node;
    size_t edge;
  };
  std::vector<Frame> call_stack;

  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const uint32_t v = frame.node;
      if (frame.edge < g.out_edges[v].size()) {
        const uint32_t w = g.out_edges[v][frame.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          for (;;) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const uint32_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  *num_components = next_component;
  return component;
}

}  // namespace

GarbageAnatomy ReachabilityAnalyzer::Anatomy(const ObjectStore& store) {
  MarkLiveSet(store);

  // Dense dead graph; the aux stamps map id -> dead-graph index without a
  // per-call hash map. (Anatomy itself is a cold path — ablations and
  // tests — but it shares the hot marking core.)
  DeadGraph g;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      if (IsLive(id)) continue;
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      AuxMark(id);
      aux_value_[id.value] = static_cast<uint32_t>(g.ids.size());
      g.ids.push_back(id);
      g.partitions.push_back(static_cast<PartitionId>(pid));
      g.sizes.push_back(info->size);
    }
  }
  g.out_edges.resize(g.ids.size());
  for (uint32_t i = 0; i < g.ids.size(); ++i) {
    const ObjectStore::ObjectInfo* info = store.Lookup(g.ids[i]);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      if (AuxMarked(child)) g.out_edges[i].push_back(aux_value_[child.value]);
    }
  }

  const uint32_t n = static_cast<uint32_t>(g.ids.size());
  GarbageAnatomy anatomy;
  if (n == 0) return anatomy;

  // --- Stuck garbage: reachable from an SCC containing a cross-partition
  // edge. Such a cycle of dead objects keeps itself registered in
  // remembered sets forever, and everything it references stays protected.
  uint32_t num_components = 0;
  const std::vector<uint32_t> component =
      StronglyConnectedComponents(g, &num_components);
  std::vector<bool> component_self_sustaining(num_components, false);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.out_edges[v]) {
      if (component[v] == component[w] &&
          g.partitions[v] != g.partitions[w]) {
        component_self_sustaining[component[v]] = true;
      }
    }
  }
  std::vector<bool> stuck(n, false);
  std::deque<uint32_t> queue;
  for (uint32_t v = 0; v < n; ++v) {
    if (component_self_sustaining[component[v]]) {
      stuck[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t w : g.out_edges[v]) {
      if (!stuck[w]) {
        stuck[w] = true;
        queue.push_back(w);
      }
    }
  }

  // --- Locally collectable *now*: dead objects a collection of their own
  // partition would reclaim at this instant. Kept instead are dead objects
  // with a cross-partition dead in-edge (they look like remembered-set
  // roots) plus everything they reach through intra-partition dead edges
  // (the collector traverses kept objects).
  std::vector<bool> kept(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.out_edges[v]) {
      if (g.partitions[v] != g.partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t w : g.out_edges[v]) {
      if (g.partitions[v] == g.partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }

  for (uint32_t v = 0; v < n; ++v) {
    if (stuck[v]) {
      anatomy.cross_partition_cycle_bytes += g.sizes[v];
    } else if (kept[v]) {
      anatomy.nepotism_bytes += g.sizes[v];
    } else {
      anatomy.locally_collectable_bytes += g.sizes[v];
    }
  }
  return anatomy;
}

std::unordered_set<ObjectId> ComputeLiveSet(const ObjectStore& store) {
  // Kept verbatim from the original implementation: the global collector
  // iterates the returned set, and its (implementation-defined but
  // deterministic) iteration order decides the order of simulated marking
  // I/O — replaying it exactly keeps full-collection runs bit-identical.
  std::unordered_set<ObjectId> live;
  std::deque<ObjectId> queue;
  for (ObjectId root : store.roots()) {
    if (live.insert(root).second) queue.push_back(root);
  }
  while (!queue.empty()) {
    const ObjectId id = queue.front();
    queue.pop_front();
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    if (info == nullptr) continue;
    for (ObjectId child : info->slots) {
      if (!child.is_null() && store.Exists(child) &&
          live.insert(child).second) {
        queue.push_back(child);
      }
    }
  }
  return live;
}

GarbageCensus ComputeGarbageCensus(const ObjectStore& store) {
  ReachabilityAnalyzer analyzer;
  return analyzer.Census(store);
}

GarbageAnatomy ComputeGarbageAnatomy(const ObjectStore& store) {
  ReachabilityAnalyzer analyzer;
  return analyzer.Anatomy(store);
}

}  // namespace odbgc
