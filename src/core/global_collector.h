#ifndef ODBGC_CORE_GLOBAL_COLLECTOR_H_
#define ODBGC_CORE_GLOBAL_COLLECTOR_H_

#include <cstdint>

#include "core/remembered_set.h"
#include "core/weights.h"
#include "odb/object_store.h"
#include "util/status.h"

namespace odbgc {

/// Outcome of a whole-database collection.
struct GlobalCollectionResult {
  uint64_t live_objects_copied = 0;
  uint64_t live_bytes_copied = 0;
  uint64_t garbage_objects_reclaimed = 0;
  uint64_t garbage_bytes_reclaimed = 0;
  uint32_t partitions_processed = 0;
  /// Collector-phase disk page transfers attributable to this collection.
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
};

/// A whole-database mark-and-copy collection — the paper's Section 6.5
/// future work made concrete. Partition-local collection can never reclaim
/// garbage on inter-partition cycles of dead objects, and reclaims
/// nepotism-protected garbage only after its dead referents' partitions
/// happen to be collected. A (rare, expensive) global pass removes both:
///
///  1. Mark: compute exact reachability from the database roots, reading
///     every live object's header and slots (charged as collector I/O —
///     a real marker must traverse the whole live graph on disk).
///  2. Retire the dead set's remembered-set contributions wholesale (after
///     which no dead object appears externally referenced).
///  3. Sweep partition by partition: copy the globally-live survivors into
///     the empty partition (compacting, exactly like a normal collection)
///     and drop everything else — including cross-partition cycles.
///
/// The cascade of copy-then-swap leaves the heap with the same invariants
/// as single-partition collection: one reserved empty partition, compact
/// survivors, a consistent inter-partition index.
class GlobalMarkCollector {
 public:
  /// All pointers must outlive the collector; `weights` may be null.
  GlobalMarkCollector(ObjectStore* store, BufferPool* buffer,
                      InterPartitionIndex* index, WeightTracker* weights);

  /// Collects the whole database. Requires a reserved empty partition.
  /// `extra_roots` are kept alive along with everything they reach (the
  /// heap passes the not-yet-linked most recent allocation).
  Result<GlobalCollectionResult> CollectAll(
      const std::vector<ObjectId>& extra_roots = {});

 private:
  ObjectStore* const store_;
  BufferPool* const buffer_;
  InterPartitionIndex* const index_;
  WeightTracker* const weights_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_GLOBAL_COLLECTOR_H_
