#ifndef ODBGC_CORE_WEIGHTS_H_
#define ODBGC_CORE_WEIGHTS_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "odb/object_id.h"
#include "odb/object_store.h"
#include "util/status.h"

namespace odbgc {

/// Maintains the WeightedPointer policy's per-object root-distance weights
/// (paper, Section 3.1): a root object has weight 1, and every other
/// object's weight is one plus the minimum weight among the objects
/// pointing to it, clamped to kMaxWeight. The weight approximates distance
/// from the database roots; overwriting a pointer to a low-weight (near-
/// root) object is a hint that a large subtree may have died.
///
/// Maintenance matches the paper's description: when a pointer is stored,
/// the target's weight is lowered to source+1 if that is smaller, and the
/// decrease is propagated transitively through the target's out-pointers.
/// Weight *increases* (when the cheapest in-edge disappears) are not
/// tracked — the paper maintains weights the same one-sided way, which is
/// part of why WeightedPointer is only a heuristic.
///
/// Cost model: weights are conceptually 4 bits in each object's header, so
/// every weight change rewrites the header's page (charged through the
/// store); weight *reads* come from this in-memory mirror free of charge,
/// mirroring the paper's in-memory auxiliary tables.
class WeightTracker {
 public:
  static constexpr uint8_t kMaxWeight = 16;
  static constexpr uint8_t kRootWeight = 1;

  /// `store` must outlive the tracker. If `charge_io` is true, weight
  /// updates rewrite object headers via the store (the faithful cost);
  /// tests may disable charging.
  explicit WeightTracker(ObjectStore* store, bool charge_io = true)
      : store_(store), charge_io_(charge_io) {}

  /// Weight of `object`; kMaxWeight for unknown/new objects.
  uint8_t GetWeight(ObjectId object) const {
    return object.value < weights_.size() ? weights_[object.value]
                                          : kMaxWeight;
  }

  /// Marks `object` as a root (weight 1) and propagates the decrease.
  Status OnRootAdded(ObjectId object);

  /// Relaxes `target` via a newly stored pointer from `source`, and
  /// propagates any decrease transitively through shadow slots.
  Status OnPointerStored(ObjectId source, ObjectId target);

  /// Forgets a reclaimed object.
  void OnObjectDied(ObjectId object) {
    if (object.value < weights_.size() &&
        weights_[object.value] != kMaxWeight) {
      weights_[object.value] = kMaxWeight;
      --tracked_;
    }
  }

  size_t tracked_count() const { return tracked_; }

  /// Serializes the weight map (sorted by object id) for checkpointing.
  /// Weights cannot be recomputed from the heap image: maintenance is
  /// one-sided (decreases only), so the incremental history matters.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState. Fills the mirror directly — no
  /// header I/O is charged, since the checkpointed cost counters already
  /// include the original updates.
  Status LoadState(std::istream& in);

 private:
  // Sets object's weight to `w` if lower, charging a header write, and
  // propagates breadth-first.
  Status Relax(ObjectId object, uint8_t w);

  // Stores `w` (< kMaxWeight) for `object`, growing the table to the
  // store's id limit on demand and maintaining tracked_.
  void SetWeight(ObjectId object, uint8_t w);

  ObjectStore* const store_;
  const bool charge_io_;
  // Dense weight table indexed by object id. Relax only ever stores
  // weights below kMaxWeight, so kMaxWeight doubles as "untracked" — a
  // byte per ever-issued id replaces a node-based map on the pointer-
  // store hot path. Ids at or beyond the vector's size are untracked.
  std::vector<uint8_t> weights_;
  size_t tracked_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_WEIGHTS_H_
