#include "core/heap_core.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/reachability.h"
#include "storage/device_registry.h"
#include "util/serde.h"

namespace odbgc {

namespace {

// Builds the configured backend through the device registry; `device_spec`
// wins over the `device` kind enum. Like an unregistered policy name, a
// bad spec is a configuration error and fails loudly.
std::unique_ptr<PageDevice> MakeConfiguredDevice(HeapOptions& options,
                                                 MetricsRegistry* registry) {
  DeviceContext context;
  context.page_size = options.store.page_size;
  context.registry = registry;
  context.disk_cost = options.disk_cost;
  context.ssd_cost = options.ssd_cost;
  context.file = options.file_device;
  // The file backend's estimated-time surface uses the paper's disk model
  // unless the caller overrode it explicitly.
  context.file.cost = options.disk_cost;
  const std::string spec = options.device_spec.empty()
                               ? DeviceKindName(options.device)
                               : options.device_spec;
  auto made = MakeDeviceFromSpec(spec, context);
  if (!made.ok()) {
    std::fprintf(stderr, "odbgc: %s\n", made.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<PageDevice> device = std::move(made).value();
  // Both identity surfaces now reflect the instantiated backend.
  options.device = device->kind();
  options.device_spec = spec;
  return device;
}

// Phase-event publication: the clock is only read when a run is observed.
using PhaseClock = std::chrono::steady_clock;

PhaseClock::time_point PhaseStartIf(const SimObserver* observer) {
  return observer != nullptr ? PhaseClock::now() : PhaseClock::time_point{};
}

void PublishPhase(SimObserver* observer, const char* phase,
                  PhaseClock::time_point start) {
  if (observer == nullptr) return;
  PhaseEvent event;
  event.phase = phase;
  event.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(PhaseClock::now() -
                                                           start)
          .count());
  observer->OnPhase(event);
}

}  // namespace

HeapCore::HeapCore(const HeapOptions& options) : options_(options) {
  metrics_ = std::make_unique<MetricsRegistry>();
  device_ = MakeConfiguredDevice(options_, metrics_.get());
  buffer_ = std::make_unique<BufferPool>(device_.get(), options_.buffer_pages,
                                         options_.replacement,
                                         options_.shared_arena,
                                         options_.arena_tenant);
  store_ = std::make_unique<ObjectStore>(options_.store, device_.get(),
                                         buffer_.get());
  WireComponents();
}

HeapCore::HeapCore(const HeapOptions& options, RestoreTag)
    : options_(options) {
  metrics_ = std::make_unique<MetricsRegistry>();
  device_ = MakeConfiguredDevice(options_, metrics_.get());
  buffer_ = std::make_unique<BufferPool>(device_.get(), options_.buffer_pages,
                                         options_.replacement,
                                         options_.shared_arena,
                                         options_.arena_tenant);
}

void HeapCore::WireComponents() {
  wall_metrics_ = std::make_unique<MetricsRegistry>();
  wall_timers_ = std::make_unique<WallPhaseTimers>(wall_metrics_.get());
  policy_store_view_ = store_.get();
  if (options_.policy_factory) {
    policy_ = options_.policy_factory();
  } else if (!options_.policy_name.empty()) {
    PolicyContext context;
    context.seed = options_.seed;
    context.store = &policy_store_view_;
    context.global = options_.global_view;
    auto made = MakePolicy(context, options_.policy_name);
    if (!made.ok()) {
      // Configuration error, not a runtime condition: the registry is
      // fixed by the time a heap is built, so fail loudly. Callers that
      // take untrusted names validate with IsPolicyRegistered first.
      std::fprintf(stderr, "odbgc: %s\n",
                   made.status().ToString().c_str());
      std::abort();
    }
    policy_ = std::move(made).value();
  } else {
    policy_ = MakePolicy(options_.policy, options_.seed);
  }
  // Whichever path built the policy, both identity surfaces now reflect it.
  options_.policy = policy_->kind();
  options_.policy_name = policy_->name();
  device_->set_observer(options_.observer);
  const bool want_weights =
      options_.weights == WeightMode::kOn ||
      (options_.weights == WeightMode::kAuto &&
       options_.policy == PolicyKind::kWeightedPointer);
  if (want_weights) {
    weights_ = std::make_unique<WeightTracker>(store_.get());
  }
  barrier_ = std::make_unique<WriteBarrier>(options_.barrier, store_.get(),
                                            &index_, options_.card_size);
  collector_ = std::make_unique<CopyingCollector>(
      store_.get(), buffer_.get(), &index_, weights_.get(),
      options_.traversal);
  global_collector_ = std::make_unique<GlobalMarkCollector>(
      store_.get(), buffer_.get(), &index_, weights_.get());
  store_->set_slot_write_observer(this);
  if (options_.parallel_marking_threads >= 2) {
    TaskPool* pool = options_.marking_pool;
    if (pool == nullptr) {
      owned_marking_pool_ =
          std::make_unique<TaskPool>(options_.parallel_marking_threads);
      pool = owned_marking_pool_.get();
    }
    census_engine_.EnableParallelMarking(pool,
                                         options_.parallel_marking_threads);
  }
  last_seen_partition_count_ = store_->partition_count();
  NoteFootprint();
}

Result<std::unique_ptr<HeapCore>> HeapCore::FromImage(
    const HeapOptions& options, const StoreImage& image) {
  HeapOptions effective = options;
  effective.store.page_size = image.page_size;
  effective.store.pages_per_partition = image.pages_per_partition;
  effective.store.reserve_empty_partition = image.reserve_empty_partition;

  auto heap = std::unique_ptr<HeapCore>(
      new HeapCore(effective, RestoreTag{}));
  auto store =
      ObjectStore::Restore(image, heap->device_.get(), heap->buffer_.get(),
                           effective.store.placement);
  ODBGC_RETURN_IF_ERROR(store.status());
  heap->store_ = std::move(store).value();
  heap->index_ = BuildIndexFromStore(*heap->store_);
  heap->WireComponents();

  // Recompute derivable weight state for WeightedPointer heaps.
  if (heap->weights_ != nullptr) {
    WeightTracker* weights = heap->weights_.get();
    for (ObjectId root : heap->store_->roots()) {
      ODBGC_RETURN_IF_ERROR(weights->OnRootAdded(root));
    }
  }
  // Restoration I/O (page materialization, weight recomputation) is not
  // part of any experiment.
  heap->ResetMeasurement();
  return heap;
}

HeapCore::~HeapCore() { store_->set_slot_write_observer(nullptr); }

Result<ObjectId> HeapCore::Allocate(uint32_t size, uint32_t num_slots,
                                         ObjectId parent_hint, uint8_t flags) {
  auto id = store_->Allocate(size, num_slots, parent_hint, flags);
  if (id.ok()) {
    ++stats_.objects_allocated;
    stats_.bytes_allocated += size;
    allocated_since_collection_ += size;
    newborn_ = *id;
    NoteFootprint();
    CheckTriggers();
    ODBGC_RETURN_IF_ERROR(MaybeCollect());
  }
  return id;
}

Status HeapCore::WriteSlot(ObjectId source, uint32_t slot,
                                ObjectId target) {
  ODBGC_RETURN_IF_ERROR(store_->WriteSlot(source, slot, target));
  // Weight relaxation happens after the barrier observer so the policy saw
  // the *old* target's weight; the new edge may now lower the new
  // target's weight.
  if (weights_ != nullptr && !target.is_null()) {
    ODBGC_RETURN_IF_ERROR(weights_->OnPointerStored(source, target));
  }
  return MaybeCollect();
}

Result<ObjectId> HeapCore::ReadSlot(ObjectId source, uint32_t slot) {
  return store_->ReadSlot(source, slot);
}

Status HeapCore::VisitObject(ObjectId object) {
  return store_->VisitObject(object);
}

Status HeapCore::WriteData(ObjectId object) {
  return store_->WriteData(object);
}

Status HeapCore::AddRoot(ObjectId object) {
  ODBGC_RETURN_IF_ERROR(store_->AddRoot(object));
  if (object == newborn_) newborn_ = kNullObjectId;
  if (weights_ != nullptr) {
    ODBGC_RETURN_IF_ERROR(weights_->OnRootAdded(object));
  }
  return Status::Ok();
}

Status HeapCore::RemoveRoot(ObjectId object) {
  return store_->RemoveRoot(object);
}

void HeapCore::OnSlotWrite(const SlotWriteEvent& event) {
  // Once the newest allocation is referenced from the graph, it no longer
  // needs birth protection.
  if (!event.new_target.is_null() && event.new_target == newborn_) {
    newborn_ = kNullObjectId;
  }
  if (!event.new_target.is_null()) ++stats_.pointer_stores;
  if (event.is_overwrite()) {
    ++stats_.pointer_overwrites;
    ++overwrites_since_collection_;
  }

  // Policy hint first (needs the overwritten target's pre-store weight).
  const uint8_t old_weight =
      (weights_ != nullptr && !event.old_target.is_null())
          ? weights_->GetWeight(event.old_target)
          : WeightTracker::kMaxWeight;
  policy_->OnPointerStore(event, old_weight);

  // Remembered-set maintenance: the write barrier sees inter-partition
  // references created and destroyed (synchronously or deferred,
  // depending on the configured BarrierMode). In concurrent mode the
  // event is parked in the single-writer buffer instead and replayed in
  // program order at the next flush point (epoch tick / collection) —
  // result-neutral because the index is only read after a flush.
  if (buffer_barrier_events_) {
    barrier_buffer_.push_back(event);
  } else {
    ScopedWallTimer timer(options_.profile_hot_paths
                              ? wall_timers_->index_maintenance
                              : nullptr);
    barrier_->OnSlotWrite(event);
  }

  CheckTriggers();
}

void HeapCore::CheckTriggers() {
  if (in_collection_ || options_.policy == PolicyKind::kNoCollection) {
    return;
  }
  switch (options_.trigger) {
    case TriggerKind::kPointerOverwrites:
      // The paper's choice: a fixed number of pointer overwrites.
      if (options_.overwrite_trigger > 0 &&
          overwrites_since_collection_ >= options_.overwrite_trigger) {
        collection_pending_ = true;
      }
      break;
    case TriggerKind::kAllocatedBytes:
      if (options_.allocation_trigger_bytes > 0 &&
          allocated_since_collection_ >= options_.allocation_trigger_bytes) {
        collection_pending_ = true;
      }
      break;
    case TriggerKind::kDatabaseGrowth:
      if (store_->partition_count() > last_seen_partition_count_) {
        last_seen_partition_count_ = store_->partition_count();
        collection_pending_ = true;
      }
      break;
  }
}

Status HeapCore::MaybeCollect() {
  if (!collection_pending_ || in_collection_) return Status::Ok();
  collection_pending_ = false;
  overwrites_since_collection_ = 0;
  allocated_since_collection_ = 0;
  last_seen_partition_count_ = store_->partition_count();
  for (uint32_t i = 0; i < options_.partitions_per_collection; ++i) {
    auto result = CollectNow();
    if (!result.ok()) {
      // Declining (no candidates) is not an error for the trigger path.
      if (result.status().code() == StatusCode::kFailedPrecondition) break;
      return result.status();
    }
  }
  return Status::Ok();
}

void HeapCore::AppendCollectionCandidates(
    std::vector<PartitionId>* out) const {
  for (size_t pid = 0; pid < store_->partition_count(); ++pid) {
    const PartitionId id = static_cast<PartitionId>(pid);
    if (id == store_->empty_partition()) continue;
    if (store_->partition(id).allocated_bytes() == 0) continue;
    out->push_back(id);
  }
}

std::vector<PartitionId> HeapCore::CollectionCandidates() const {
  std::vector<PartitionId> candidates;
  AppendCollectionCandidates(&candidates);
  return candidates;
}

const SelectionContext& HeapCore::MakeSelectionContext() const {
  selection_scratch_.candidates.clear();
  AppendCollectionCandidates(&selection_scratch_.candidates);
  selection_scratch_.garbage_bytes_per_partition.clear();
  if (options_.policy == PolicyKind::kMostGarbage) {
    // The oracle ranks partitions by garbage a collection would actually
    // reclaim now (excluding remembered-set-protected garbage) — ranking
    // by raw garbage would keep re-selecting protected partitions.
    ScopedWallTimer timer(wall_timers_->census);
    census_engine_.CensusInto(*store_, &census_scratch_);
    selection_scratch_.garbage_bytes_per_partition =
        census_scratch_.collectable_bytes_per_partition;
  }
  return selection_scratch_;
}

Result<CollectionResult> HeapCore::CollectNow() {
  const SelectionContext& context = MakeSelectionContext();
  const PartitionId victim = policy_->Select(context);
  if (victim == kInvalidPartition) {
    return Status::FailedPrecondition(
        "policy declined to select a partition");
  }
  return CollectPartition(victim);
}

Result<CollectionResult> HeapCore::CollectPartition(PartitionId victim) {
  assert(!in_collection_);
  // The collector reads the inter-partition index (victim roots), so any
  // buffered barrier events must land first.
  FlushBarrierBuffer();
  std::vector<ObjectId> extra_roots;
  if (!newborn_.is_null() && store_->Exists(newborn_)) {
    extra_roots.push_back(newborn_);
  }
  // The lambda scopes the wall timer to the collection proper: a chained
  // full collection below must land in wall.full_collection_ns only.
  const PhaseClock::time_point phase_start = PhaseStartIf(options_.observer);
  auto result = [&]() -> Result<CollectionResult> {
    ScopedWallTimer timer(wall_timers_->collection);
    in_collection_ = true;
    {
      // Deferred barrier modes catch the index up now, charging their
      // catch-up I/O to the collector.
      PhaseScope phase(buffer_.get(), IoPhase::kCollector);
      const Status prepared = barrier_->PrepareForCollection();
      if (!prepared.ok()) {
        in_collection_ = false;
        return prepared;
      }
    }
    auto collected = collector_->Collect(victim, extra_roots);
    in_collection_ = false;
    return collected;
  }();
  PublishPhase(options_.observer, "collection", phase_start);
  if (!result.ok()) return result;
  barrier_->OnPartitionEmptied(victim);

  ++stats_.collections;
  stats_.garbage_bytes_reclaimed += result->garbage_bytes_reclaimed;
  stats_.garbage_objects_reclaimed += result->garbage_objects_reclaimed;
  stats_.live_bytes_copied += result->live_bytes_copied;
  stats_.live_objects_copied += result->live_objects_copied;
  policy_->OnPartitionCollected(victim);
  collection_log_.push_back(*result);
  if (options_.observer != nullptr) {
    CollectionEvent event;
    event.ordinal = stats_.collections;
    event.victim = victim;
    event.copy_target = result->copy_target;
    event.garbage_reclaimed_bytes = result->garbage_bytes_reclaimed;
    event.live_bytes_copied = result->live_bytes_copied;
    event.page_reads = result->page_reads;
    event.page_writes = result->page_writes;
    options_.observer->OnCollection(event);
  }
  NoteFootprint();

  if (options_.full_collection_interval > 0 &&
      stats_.collections % options_.full_collection_interval == 0) {
    ODBGC_RETURN_IF_ERROR(CollectFullDatabase().status());
  }
  return result;
}

Result<GlobalCollectionResult> HeapCore::CollectFullDatabase() {
  assert(!in_collection_);
  FlushBarrierBuffer();
  std::vector<ObjectId> extra_roots;
  if (!newborn_.is_null() && store_->Exists(newborn_)) {
    extra_roots.push_back(newborn_);
  }
  const PhaseClock::time_point phase_start = PhaseStartIf(options_.observer);
  auto result = [&]() -> Result<GlobalCollectionResult> {
    ScopedWallTimer timer(wall_timers_->full_collection);
    in_collection_ = true;
    {
      PhaseScope phase(buffer_.get(), IoPhase::kCollector);
      const Status prepared = barrier_->PrepareForCollection();
      if (!prepared.ok()) {
        in_collection_ = false;
        return prepared;
      }
    }
    auto collected = global_collector_->CollectAll(extra_roots);
    in_collection_ = false;
    return collected;
  }();
  PublishPhase(options_.observer, "full_collection", phase_start);
  if (!result.ok()) return result;
  // Every partition's contents moved or died; all cards are stale-clean.
  for (size_t pid = 0; pid < store_->partition_count(); ++pid) {
    barrier_->OnPartitionEmptied(static_cast<PartitionId>(pid));
  }

  ++stats_.full_collections;
  stats_.garbage_bytes_reclaimed += result->garbage_bytes_reclaimed;
  stats_.garbage_objects_reclaimed += result->garbage_objects_reclaimed;
  stats_.live_bytes_copied += result->live_bytes_copied;
  stats_.live_objects_copied += result->live_objects_copied;
  // Every partition was collected: reset all policy hints.
  for (size_t pid = 0; pid < store_->partition_count(); ++pid) {
    policy_->OnPartitionCollected(static_cast<PartitionId>(pid));
  }
  NoteFootprint();
  return result;
}

void HeapCore::EnableConcurrentMode(EpochManager* epochs) {
  assert(epochs != nullptr);
  epochs_ = epochs;
  buffer_barrier_events_ = true;
  store_->EnableDeferredReclamation(epochs);
}

void HeapCore::FlushBarrierBuffer() {
  if (barrier_buffer_.empty()) return;
  ScopedWallTimer timer(options_.profile_hot_paths
                            ? wall_timers_->index_maintenance
                            : nullptr);
  for (const SlotWriteEvent& event : barrier_buffer_) {
    barrier_->OnSlotWrite(event);
  }
  barrier_buffer_.clear();
}

void HeapCore::OnEpochTick() {
  FlushBarrierBuffer();
  if (epochs_ != nullptr) store_->ReclaimDeferredSlots();
}

void HeapCore::ResetMeasurement() {
  buffer_->ResetStats();
  device_->ResetStats();
  wall_metrics_->ResetCounters();
  stats_ = HeapStats{};
  collection_log_.clear();
  NoteFootprint();
}

void HeapCore::NoteFootprint() {
  const uint64_t total = store_->total_bytes();
  if (total > stats_.max_total_bytes) {
    stats_.max_total_bytes = total;
    stats_.max_partitions = store_->partition_count();
  }
}

void HeapCore::SaveRuntimeState(std::ostream& out) const {
  PutVarint(out, stats_.collections);
  PutVarint(out, stats_.full_collections);
  PutVarint(out, stats_.pointer_stores);
  PutVarint(out, stats_.pointer_overwrites);
  PutVarint(out, stats_.objects_allocated);
  PutVarint(out, stats_.bytes_allocated);
  PutVarint(out, stats_.garbage_bytes_reclaimed);
  PutVarint(out, stats_.garbage_objects_reclaimed);
  PutVarint(out, stats_.live_bytes_copied);
  PutVarint(out, stats_.live_objects_copied);
  PutVarint(out, stats_.max_total_bytes);
  PutVarint(out, stats_.max_partitions);

  PutVarint(out, overwrites_since_collection_);
  PutVarint(out, allocated_since_collection_);
  PutVarint(out, last_seen_partition_count_);
  PutVarint(out, newborn_.value);
  PutBool(out, collection_pending_);
  // Placement cursors live in the store but are not part of the image
  // (the image records where objects *are*, not where the next one goes).
  PutVarint(out, store_->current_alloc_partition());
  PutVarint(out, store_->round_robin_cursor());

  policy_->SaveState(out);
  PutBool(out, weights_ != nullptr);
  if (weights_ != nullptr) weights_->SaveState(out);
  barrier_->SaveState(out);
  buffer_->SaveState(out);
  // Device-model state, then the registry, go last: buffer reconstruction
  // issues real transfers (perturbing both), so LoadRuntimeState restores
  // the device model after the buffer and every counter after that.
  device_->SaveState(out);
  metrics_->Save(out);
}

Status HeapCore::LoadRuntimeState(std::istream& in) {
  auto get = [&in](uint64_t* out_value) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };
  HeapStats stats;
  ODBGC_RETURN_IF_ERROR(get(&stats.collections));
  ODBGC_RETURN_IF_ERROR(get(&stats.full_collections));
  ODBGC_RETURN_IF_ERROR(get(&stats.pointer_stores));
  ODBGC_RETURN_IF_ERROR(get(&stats.pointer_overwrites));
  ODBGC_RETURN_IF_ERROR(get(&stats.objects_allocated));
  ODBGC_RETURN_IF_ERROR(get(&stats.bytes_allocated));
  ODBGC_RETURN_IF_ERROR(get(&stats.garbage_bytes_reclaimed));
  ODBGC_RETURN_IF_ERROR(get(&stats.garbage_objects_reclaimed));
  ODBGC_RETURN_IF_ERROR(get(&stats.live_bytes_copied));
  ODBGC_RETURN_IF_ERROR(get(&stats.live_objects_copied));
  ODBGC_RETURN_IF_ERROR(get(&stats.max_total_bytes));
  ODBGC_RETURN_IF_ERROR(get(&stats.max_partitions));

  uint64_t overwrites = 0;
  uint64_t allocated = 0;
  uint64_t partitions = 0;
  uint64_t newborn = 0;
  ODBGC_RETURN_IF_ERROR(get(&overwrites));
  ODBGC_RETURN_IF_ERROR(get(&allocated));
  ODBGC_RETURN_IF_ERROR(get(&partitions));
  ODBGC_RETURN_IF_ERROR(get(&newborn));
  auto pending = GetBool(in);
  ODBGC_RETURN_IF_ERROR(pending.status());
  uint64_t alloc_cursor = 0;
  uint64_t round_robin = 0;
  ODBGC_RETURN_IF_ERROR(get(&alloc_cursor));
  ODBGC_RETURN_IF_ERROR(get(&round_robin));
  ODBGC_RETURN_IF_ERROR(store_->RestoreAllocCursors(
      static_cast<PartitionId>(alloc_cursor),
      static_cast<PartitionId>(round_robin)));

  ODBGC_RETURN_IF_ERROR(policy_->LoadState(in));
  auto has_weights = GetBool(in);
  ODBGC_RETURN_IF_ERROR(has_weights.status());
  if (*has_weights != (weights_ != nullptr)) {
    return Status::Corruption("heap state weight-mode mismatch");
  }
  if (weights_ != nullptr) {
    ODBGC_RETURN_IF_ERROR(weights_->LoadState(in));
  }
  ODBGC_RETURN_IF_ERROR(barrier_->LoadState(in));
  ODBGC_RETURN_IF_ERROR(buffer_->LoadState(in));
  ODBGC_RETURN_IF_ERROR(device_->LoadState(in));
  ODBGC_RETURN_IF_ERROR(metrics_->Load(in));

  stats_ = stats;
  overwrites_since_collection_ = static_cast<uint32_t>(overwrites);
  allocated_since_collection_ = allocated;
  last_seen_partition_count_ = static_cast<size_t>(partitions);
  newborn_ = ObjectId{newborn};
  collection_pending_ = *pending;
  return Status::Ok();
}

}  // namespace odbgc
