#ifndef ODBGC_CORE_EXTENSION_POLICIES_H_
#define ODBGC_CORE_EXTENSION_POLICIES_H_

#include <cstdint>
#include <unordered_map>

#include "core/selection_policy.h"
#include "odb/object_store.h"

namespace odbgc {

/// Extension policies beyond the paper's six, built on the same
/// SelectionPolicy interface (install via HeapOptions::policy_factory).
/// They represent the obvious neighbours in the design space that later
/// storage-reclamation literature explored, and serve as additional
/// baselines for the `extension_policies` bench.

/// Collects partitions in least-recently-collected order — the fairness
/// baseline (every partition eventually gets collected, no hints used).
/// Never-collected partitions go first, lowest id first.
class LeastRecentlyCollectedPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  void OnPartitionCollected(PartitionId partition) override {
    last_collected_[partition] = ++clock_;
  }
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  uint64_t clock_ = 0;
  std::unordered_map<PartitionId, uint64_t> last_collected_;
};

/// An LFS-style cost-benefit policy (Rosenblum & Ousterhout's segment
/// cleaning heuristic transplanted to partition selection): benefit is the
/// garbage the overwritten-pointer hints predict, cost is copying the
/// partition's remaining live data, and the victim maximizes
///
///     benefit / cost  =  predicted_garbage / (allocated - predicted_garbage)
///
/// where predicted_garbage = overwrite hits into the partition since its
/// last collection x the expected bytes freed per overwrite. Unlike
/// UpdatedPointer's raw count, a nearly-full partition needs
/// proportionally more hints to win than a sparse one.
///
/// Needs the store for partition occupancy (a DBA-visible quantity); the
/// heap exposes it naturally through the factory closure.
class CostBenefitPolicy : public SelectionPolicy {
 public:
  /// `store` is bound by the caller (may dereference lazily; must outlive
  /// the policy). `bytes_per_overwrite` calibrates predicted garbage; the
  /// base workload frees ~1.2 KB per overwritten pointer (a ~12-object
  /// subtree of ~100-byte objects).
  explicit CostBenefitPolicy(const ObjectStore* const* store,
                             double bytes_per_overwrite = 1200.0)
      : store_(store), bytes_per_overwrite_(bytes_per_overwrite) {}

  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override {
    overwrites_into_.erase(partition);
  }
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  const ObjectStore* const* store_;
  const double bytes_per_overwrite_;
  std::unordered_map<PartitionId, uint64_t> overwrites_into_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_EXTENSION_POLICIES_H_
