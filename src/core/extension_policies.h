#ifndef ODBGC_CORE_EXTENSION_POLICIES_H_
#define ODBGC_CORE_EXTENSION_POLICIES_H_

#include <cstdint>

#include "core/partition_counters.h"
#include "core/selection_policy.h"
#include "odb/object_store.h"

namespace odbgc {

/// Extension policies beyond the paper's six, built on the same
/// SelectionPolicy interface. Pre-registered in the policy registry under
/// their `name()` ("LeastRecentlyCollected", "CostBenefit"), so they are
/// selectable anywhere a built-in is (HeapOptions::policy_name,
/// ExperimentSpec, odbgc-report). They represent the obvious neighbours in
/// the design space that later storage-reclamation literature explored,
/// and serve as additional baselines for the `extension_policies` bench.
///
/// Both return kind() == kUpdatedPointer: that is the *behaviour class*
/// they want from the heap (normal trigger, no oracle census) — their
/// identity is the name.

/// Collects partitions in least-recently-collected order — the fairness
/// baseline (every partition eventually gets collected, no hints used).
/// Never-collected partitions go first, lowest id first.
class LeastRecentlyCollectedPolicy : public SelectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  std::string name() const override { return "LeastRecentlyCollected"; }
  void OnPartitionCollected(PartitionId partition) override {
    last_collected_.At(partition) = ++clock_;
  }
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  uint64_t clock_ = 0;
  // Timestamp of each partition's last collection; 0 = never collected
  // (collection stamps are always >= 1).
  PartitionCounterTable<uint64_t> last_collected_;
};

/// An LFS-style cost-benefit policy (Rosenblum & Ousterhout's segment
/// cleaning heuristic transplanted to partition selection): benefit is the
/// garbage the overwritten-pointer hints predict, cost is copying the
/// partition's remaining live data, and the victim maximizes
///
///     benefit / cost  =  predicted_garbage / (allocated - predicted_garbage)
///
/// where predicted_garbage = overwrite hits into the partition since its
/// last collection x the expected bytes freed per overwrite. Unlike
/// UpdatedPointer's raw count, a nearly-full partition needs
/// proportionally more hints to win than a sparse one.
///
/// Needs the store for partition occupancy (a DBA-visible quantity); the
/// heap binds it through PolicyContext::store (or a factory closure).
class CostBenefitPolicy : public SelectionPolicy {
 public:
  /// `store` is bound by the caller (may dereference lazily; must outlive
  /// the policy). A null slot (or a slot holding null) degrades to ranking
  /// by raw overwrite hits — i.e. plain UpdatedPointer behaviour — so the
  /// policy stays usable where no store is available.
  /// `bytes_per_overwrite` calibrates predicted garbage; the base workload
  /// frees ~1.2 KB per overwritten pointer (a ~12-object subtree of
  /// ~100-byte objects).
  explicit CostBenefitPolicy(const ObjectStore* const* store,
                             double bytes_per_overwrite = 1200.0)
      : store_(store), bytes_per_overwrite_(bytes_per_overwrite) {}

  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  std::string name() const override { return "CostBenefit"; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override {
    overwrites_into_.Reset(partition);
  }
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  const ObjectStore* const* store_;
  const double bytes_per_overwrite_;
  PartitionCounterTable<uint64_t> overwrites_into_;
};

/// UpdatedPointer made shared-pool-aware (the GlobalView exemplar): hints
/// accumulate exactly like UpdatedPointer's overwrite counts, but the score
/// is boosted by the pressure the heap's tenant puts on a shared buffer
/// pool,
///
///     score(p) = overwrites_into(p) x (1 + occupancy x tenant_pressure)
///
/// with occupancy = shared resident/budget and tenant_pressure = this
/// tenant's resident/cap, both read from PolicyContext::global. Inside one
/// heap the boost is a common factor — victim choice is identical to
/// UpdatedPointer — but a cross-tenant scheduler comparing Score() across
/// heaps (service/heap_service.h) sees pressured tenants' partitions
/// amplified. With no GlobalView bound (every single-heap run) the boost is
/// zero and the policy *is* UpdatedPointer under another name.
class PoolPressurePolicy : public SelectionPolicy {
 public:
  /// `global` may be null (single-heap runs) and must otherwise outlive the
  /// policy; the host refreshes it between reads.
  explicit PoolPressurePolicy(const GlobalView* global) : global_(global) {}

  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
  std::string name() const override { return "PoolPressure"; }
  void OnPointerStore(const SlotWriteEvent& event,
                      uint8_t old_target_weight) override;
  void OnPartitionCollected(PartitionId partition) override {
    overwrites_into_.Reset(partition);
  }
  PartitionId Select(const SelectionContext& context) override;
  double Score(PartitionId partition) const override;
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  const GlobalView* const global_;
  PartitionCounterTable<uint64_t> overwrites_into_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_EXTENSION_POLICIES_H_
