#include "core/selection_policy.h"

namespace odbgc {

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind>* const kAll = new std::vector<PolicyKind>{
      PolicyKind::kNoCollection,    PolicyKind::kMutatedPartition,
      PolicyKind::kRandom,          PolicyKind::kWeightedPointer,
      PolicyKind::kUpdatedPointer,  PolicyKind::kMostGarbage,
  };
  return *kAll;
}

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCollection: return "NoCollection";
    case PolicyKind::kMutatedPartition: return "MutatedPartition";
    case PolicyKind::kUpdatedPointer: return "UpdatedPointer";
    case PolicyKind::kWeightedPointer: return "WeightedPointer";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kMostGarbage: return "MostGarbage";
  }
  return "Unknown";
}

Result<PolicyKind> ParsePolicyName(const std::string& name) {
  for (PolicyKind kind : AllPolicyKinds()) {
    if (name == PolicyName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown policy name: " + name);
}

}  // namespace odbgc
