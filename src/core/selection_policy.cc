#include "core/selection_policy.h"

#include <map>
#include <mutex>
#include <utility>

#include "core/extension_policies.h"
#include "core/policies.h"

namespace odbgc {

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind>* const kAll = new std::vector<PolicyKind>{
      PolicyKind::kNoCollection,    PolicyKind::kMutatedPartition,
      PolicyKind::kRandom,          PolicyKind::kWeightedPointer,
      PolicyKind::kUpdatedPointer,  PolicyKind::kMostGarbage,
  };
  return *kAll;
}

const std::vector<std::string>& PaperPolicyNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>;
    for (PolicyKind kind : AllPolicyKinds()) names->push_back(PolicyName(kind));
    return names;
  }();
  return *kNames;
}

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCollection: return "NoCollection";
    case PolicyKind::kMutatedPartition: return "MutatedPartition";
    case PolicyKind::kUpdatedPointer: return "UpdatedPointer";
    case PolicyKind::kWeightedPointer: return "WeightedPointer";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kMostGarbage: return "MostGarbage";
  }
  return "Unknown";
}

Result<PolicyKind> ParsePolicyName(const std::string& name) {
  for (PolicyKind kind : AllPolicyKinds()) {
    if (name == PolicyName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown policy name: " + name);
}

// ------------------------------------------------------------ Registry

namespace {

struct PolicyRegistry {
  std::mutex mutex;
  std::map<std::string, PolicyFactory> factories;
};

// The paper's six and the two extension policies are seeded here rather
// than via static initializers: a static-library registrar object would be
// dropped by the linker in binaries that reference no symbol of its
// translation unit, silently shrinking the registry.
PolicyRegistry& GlobalPolicyRegistry() {
  static PolicyRegistry* const registry = [] {
    auto* r = new PolicyRegistry;
    for (PolicyKind kind : AllPolicyKinds()) {
      r->factories.emplace(PolicyName(kind),
                           [kind](const PolicyContext& context) {
                             return MakePolicy(kind, context.seed);
                           });
    }
    r->factories.emplace("LeastRecentlyCollected", [](const PolicyContext&) {
      return std::make_unique<LeastRecentlyCollectedPolicy>();
    });
    r->factories.emplace("CostBenefit", [](const PolicyContext& context) {
      return std::make_unique<CostBenefitPolicy>(context.store);
    });
    r->factories.emplace("PoolPressure", [](const PolicyContext& context) {
      return std::make_unique<PoolPressurePolicy>(context.global);
    });
    return r;
  }();
  return *registry;
}

}  // namespace

Status RegisterPolicy(const std::string& name, PolicyFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("policy name must be non-empty");
  }
  if (!factory) {
    return Status::InvalidArgument("policy factory must be callable");
  }
  PolicyRegistry& registry = GlobalPolicyRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (!registry.factories.emplace(name, std::move(factory)).second) {
    return Status::AlreadyExists("policy name already registered: " + name);
  }
  return Status::Ok();
}

Result<std::unique_ptr<SelectionPolicy>> MakePolicy(
    const PolicyContext& context, const std::string& name) {
  PolicyFactory factory;
  {
    PolicyRegistry& registry = GlobalPolicyRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.factories.find(name);
    if (it == registry.factories.end()) {
      std::string known;
      for (const auto& [known_name, unused] : registry.factories) {
        if (!known.empty()) known += ", ";
        known += known_name;
      }
      return Status::InvalidArgument("unknown policy name: " + name +
                                     " (registered: " + known + ")");
    }
    factory = it->second;
  }
  // Invoke outside the lock: factories may themselves consult the registry.
  return factory(context);
}

Result<std::unique_ptr<SelectionPolicy>> MakePolicy(const std::string& name,
                                                    uint64_t seed) {
  PolicyContext context;
  context.seed = seed;
  return MakePolicy(context, name);
}

bool IsPolicyRegistered(const std::string& name) {
  PolicyRegistry& registry = GlobalPolicyRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.factories.count(name) != 0;
}

std::vector<std::string> RegisteredPolicyNames() {
  PolicyRegistry& registry = GlobalPolicyRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, unused] : registry.factories) names.push_back(name);
  return names;
}

}  // namespace odbgc
