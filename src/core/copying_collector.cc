#include "core/copying_collector.h"

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

namespace odbgc {

CopyingCollector::CopyingCollector(ObjectStore* store, BufferPool* buffer,
                                   InterPartitionIndex* index,
                                   WeightTracker* weights,
                                   TraversalOrder order)
    : store_(store),
      buffer_(buffer),
      index_(index),
      weights_(weights),
      order_(order) {
  assert(store_ != nullptr && buffer_ != nullptr && index_ != nullptr);
}

void CopyingCollector::BeginCopyEpoch() {
  ++copy_epoch_;
  if (copy_epoch_ == 0) {
    std::fill(copied_stamp_.begin(), copied_stamp_.end(), 0);
    copy_epoch_ = 1;
  }
  const size_t limit = static_cast<size_t>(store_->id_limit());
  if (copied_stamp_.size() < limit) copied_stamp_.resize(limit, 0);
}

Result<CollectionResult> CopyingCollector::Collect(
    PartitionId victim, const std::vector<ObjectId>& extra_roots) {
  if (victim >= store_->partition_count()) {
    return Status::OutOfRange("Collect: no such partition");
  }
  const PartitionId target = store_->empty_partition();
  if (target == kInvalidPartition) {
    return Status::FailedPrecondition(
        "Collect: store has no reserved empty partition");
  }
  if (victim == target) {
    return Status::InvalidArgument(
        "Collect: cannot collect the reserved empty partition");
  }

  PhaseScope phase(buffer_, IoPhase::kCollector);
  // Announce the victim's extent before the copy traversal touches it: a
  // read-ahead backend stages those pages while the traversal works, an
  // in-memory backend ignores the hint. Never affects simulated I/O.
  buffer_->PrefetchExtent(store_->partition(victim).extent());
  const BufferStats before = buffer_->stats();

  CollectionResult result;
  result.collected = victim;
  result.copy_target = target;

  // "Copied" marks are epoch stamps over the dense id space (no per-
  // collection set allocation; collection never issues new ids, so the
  // stamp array cannot need growing mid-traversal).
  BeginCopyEpoch();
  const auto is_copied = [&](ObjectId id) {
    return copied_stamp_[id.value] == copy_epoch_;
  };

  // Copies `id` into the target partition, charging read+write I/O.
  auto copy_object = [&](ObjectId id) -> Status {
    const ObjectStore::ObjectInfo* info = store_->Lookup(id);
    assert(info != nullptr && info->partition == victim);
    result.live_bytes_copied += info->size;
    ++result.live_objects_copied;
    ODBGC_RETURN_IF_ERROR(store_->RelocateObject(id, target));
    index_->OnObjectMoved(id, victim, target);
    return Status::Ok();
  };

  // Roots one at a time, as the paper describes ("iterating over the
  // roots one at a time"): database roots in the victim first, then
  // remembered-set targets (snapshot — copying re-buckets entries, so the
  // index's zero-copy span cannot be iterated live).
  roots_.clear();
  for (ObjectId root : store_->roots()) {
    const ObjectStore::ObjectInfo* info = store_->Lookup(root);
    if (info != nullptr && info->partition == victim) {
      roots_.push_back(root);
    }
  }
  for (ObjectId extra : extra_roots) {
    const ObjectStore::ObjectInfo* info = store_->Lookup(extra);
    if (info != nullptr && info->partition == victim) {
      roots_.push_back(extra);
    }
  }
  {
    const std::span<const ObjectId> external = index_->ExternalTargets(victim);
    roots_.insert(roots_.end(), external.begin(), external.end());
  }

  // Objects are copied when dequeued, so the physical order in the copy
  // target is the traversal order: FIFO gives the paper's breadth-first
  // layout (Cheney-style — children are found in the already-copied
  // parent image, so scanning costs no extra I/O), LIFO gives the
  // depth-first ablation. The worklist is a reused vector: BFS consumes
  // it through a head cursor (identical order to the old deque), DFS off
  // the back.
  work_.clear();
  size_t head = 0;
  for (ObjectId root : roots_) {
    if (is_copied(root)) continue;
    work_.push_back(root);
    while (order_ == TraversalOrder::kBreadthFirst ? head < work_.size()
                                                   : !work_.empty()) {
      ObjectId id;
      if (order_ == TraversalOrder::kBreadthFirst) {
        id = work_[head++];
      } else {
        id = work_.back();
        work_.pop_back();
      }
      if (is_copied(id)) continue;
      copied_stamp_[id.value] = copy_epoch_;
      ODBGC_RETURN_IF_ERROR(copy_object(id));

      const ObjectStore::ObjectInfo* obj = store_->Lookup(id);
      assert(obj != nullptr);
      auto enqueue = [&](ObjectId child) {
        if (child.is_null() || is_copied(child)) return;
        const ObjectStore::ObjectInfo* child_info = store_->Lookup(child);
        // Pointers leaving the collected partition are not traversed.
        if (child_info == nullptr || child_info->partition != victim) return;
        work_.push_back(child);
      };
      if (order_ == TraversalOrder::kBreadthFirst) {
        for (ObjectId child : obj->slots) enqueue(child);
      } else {
        // Reverse slot order so slot 0 is visited first off the stack.
        for (auto it = obj->slots.rbegin(); it != obj->slots.rend(); ++it) {
          enqueue(*it);
        }
      }
    }
  }

  // Everything still resident in the victim is garbage. Snapshot in
  // physical (offset) order for determinism.
  garbage_.clear();
  garbage_.reserve(store_->partition(victim).objects_by_offset().size());
  for (const auto& [offset, id] :
       store_->partition(victim).objects_by_offset()) {
    garbage_.push_back(id);
  }
  for (ObjectId id : garbage_) {
    const ObjectStore::ObjectInfo* info = store_->Lookup(id);
    assert(info != nullptr);
    result.garbage_bytes_reclaimed += info->size;
    ++result.garbage_objects_reclaimed;
    // Remove the dead object's out-of-partition pointers from the
    // remembered sets they contributed to.
    index_->OnObjectDied(id, victim);
    if (weights_ != nullptr) weights_->OnObjectDied(id);
    ODBGC_RETURN_IF_ERROR(store_->DropObject(id));
  }

  ODBGC_RETURN_IF_ERROR(store_->SwapEmptyPartition(victim));

  const BufferStats after = buffer_->stats();
  result.page_reads = after.reads_gc - before.reads_gc;
  result.page_writes = after.writes_gc - before.writes_gc;
  return result;
}

}  // namespace odbgc
