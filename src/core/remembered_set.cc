#include "core/remembered_set.h"

#include <algorithm>
#include <cassert>

namespace odbgc {

void InterPartitionIndex::AddReference(ObjectId source,
                                       PartitionId source_partition,
                                       uint32_t slot, ObjectId target,
                                       PartitionId target_partition) {
  assert(source_partition != target_partition);
  entries_by_target_[target].push_back({source, slot});
  targets_in_partition_[target_partition].insert(target);
  out_pointers_by_source_[source].push_back({slot, target});
  sources_in_partition_[source_partition].insert(source);
  ++entry_count_;
}

void InterPartitionIndex::RemoveReference(ObjectId source, uint32_t slot,
                                          ObjectId target) {
  auto tit = entries_by_target_.find(target);
  if (tit == entries_by_target_.end()) return;
  auto& locs = tit->second;
  auto lit = std::find(locs.begin(), locs.end(), PointerLocation{source, slot});
  if (lit == locs.end()) return;
  locs.erase(lit);
  --entry_count_;
  if (locs.empty()) {
    entries_by_target_.erase(tit);
    // Drop the target from whichever partition bucket holds it.
    for (auto& [pid, ids] : targets_in_partition_) {
      if (ids.erase(target) > 0) break;
    }
  }

  auto sit = out_pointers_by_source_.find(source);
  if (sit != out_pointers_by_source_.end()) {
    auto& outs = sit->second;
    auto oit = std::find(outs.begin(), outs.end(),
                         std::make_pair(slot, target));
    if (oit != outs.end()) outs.erase(oit);
    if (outs.empty()) {
      out_pointers_by_source_.erase(sit);
      for (auto& [pid, ids] : sources_in_partition_) {
        if (ids.erase(source) > 0) break;
      }
    }
  }
}

void InterPartitionIndex::OnObjectMoved(ObjectId object, PartitionId from,
                                        PartitionId to) {
  if (entries_by_target_.count(object) > 0) {
    auto fit = targets_in_partition_.find(from);
    if (fit != targets_in_partition_.end() && fit->second.erase(object) > 0) {
      targets_in_partition_[to].insert(object);
    }
  }
  if (out_pointers_by_source_.count(object) > 0) {
    auto fit = sources_in_partition_.find(from);
    if (fit != sources_in_partition_.end() && fit->second.erase(object) > 0) {
      sources_in_partition_[to].insert(object);
    }
  }
}

void InterPartitionIndex::OnObjectDied(ObjectId object, PartitionId partition) {
  assert(!HasExternalReferences(object) &&
         "a partition-local collection cannot reclaim an externally "
         "referenced object");
  RemoveOutPointersOf(object, partition);
}

void InterPartitionIndex::RemoveOutPointersOf(ObjectId source,
                                              PartitionId partition) {
  auto sit = out_pointers_by_source_.find(source);
  if (sit != out_pointers_by_source_.end()) {
    // RemoveReference mutates the source's out list; work on a copy.
    const auto outs = sit->second;
    for (const auto& [slot, target] : outs) {
      RemoveReference(source, slot, target);
    }
  }
  auto pit = sources_in_partition_.find(partition);
  if (pit != sources_in_partition_.end()) pit->second.erase(source);
}

std::vector<ObjectId> InterPartitionIndex::ExternalTargetsInPartition(
    PartitionId partition) const {
  auto it = targets_in_partition_.find(partition);
  if (it == targets_in_partition_.end()) return {};
  return std::vector<ObjectId>(it->second.begin(), it->second.end());
}

const std::vector<PointerLocation>* InterPartitionIndex::EntriesForTarget(
    ObjectId target) const {
  auto it = entries_by_target_.find(target);
  return it == entries_by_target_.end() ? nullptr : &it->second;
}

bool InterPartitionIndex::HasExternalReferences(ObjectId target) const {
  return entries_by_target_.count(target) > 0;
}

std::vector<ObjectId> InterPartitionIndex::SourcesInPartition(
    PartitionId partition) const {
  auto it = sources_in_partition_.find(partition);
  if (it == sources_in_partition_.end()) return {};
  return std::vector<ObjectId>(it->second.begin(), it->second.end());
}

const std::vector<std::pair<uint32_t, ObjectId>>*
InterPartitionIndex::OutPointersOfSource(ObjectId source) const {
  auto it = out_pointers_by_source_.find(source);
  return it == out_pointers_by_source_.end() ? nullptr : &it->second;
}

InterPartitionIndex BuildIndexFromStore(const ObjectStore& store) {
  InterPartitionIndex index;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      for (uint32_t s = 0; s < info->num_slots; ++s) {
        const ObjectId target = info->slots[s];
        if (target.is_null()) continue;
        const ObjectStore::ObjectInfo* target_info = store.Lookup(target);
        if (target_info == nullptr ||
            target_info->partition == info->partition) {
          continue;
        }
        index.AddReference(id, info->partition, s, target,
                           target_info->partition);
      }
    }
  }
  return index;
}

size_t InterPartitionIndex::EntryCountForPartition(
    PartitionId partition) const {
  auto it = targets_in_partition_.find(partition);
  if (it == targets_in_partition_.end()) return 0;
  size_t n = 0;
  for (ObjectId target : it->second) {
    auto eit = entries_by_target_.find(target);
    if (eit != entries_by_target_.end()) n += eit->second.size();
  }
  return n;
}

}  // namespace odbgc
