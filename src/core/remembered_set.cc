#include "core/remembered_set.h"

#include <algorithm>
#include <cassert>

namespace odbgc {

void InterPartitionIndex::EnsurePartition(PartitionId partition) {
  assert(partition != kInvalidPartition);
  const size_t needed = static_cast<size_t>(partition) + 1;
  if (targets_in_partition_.size() < needed) {
    targets_in_partition_.resize(needed);
    sources_in_partition_.resize(needed);
  }
}

void InterPartitionIndex::AddReference(ObjectId source,
                                       PartitionId source_partition,
                                       uint32_t slot, ObjectId target,
                                       PartitionId target_partition) {
  assert(source_partition != target_partition);
  EnsurePartition(std::max(source_partition, target_partition));

  TargetRecord& target_record = entries_by_target_[target];
  target_record.locations.push_back({source, slot});
  target_record.partition = target_partition;
  targets_in_partition_[target_partition].insert(target);

  SourceRecord& source_record = out_pointers_by_source_[source];
  source_record.out_pointers.push_back({slot, target});
  source_record.partition = source_partition;
  sources_in_partition_[source_partition].insert(source);

  ++entry_count_;
}

void InterPartitionIndex::RemoveReference(ObjectId source, uint32_t slot,
                                          ObjectId target) {
  auto tit = entries_by_target_.find(target);
  if (tit == entries_by_target_.end()) return;
  PointerLocationList& locs = tit->second.locations;
  auto lit = std::find(locs.begin(), locs.end(), PointerLocation{source, slot});
  if (lit == locs.end()) return;
  locs.erase(lit);
  --entry_count_;
  if (locs.empty()) {
    const PartitionId target_partition = tit->second.partition;
    entries_by_target_.erase(tit);
    if (target_partition < targets_in_partition_.size()) {
      targets_in_partition_[target_partition].erase(target);
    }
  }

  auto sit = out_pointers_by_source_.find(source);
  if (sit != out_pointers_by_source_.end()) {
    OutPointerList& outs = sit->second.out_pointers;
    auto oit =
        std::find(outs.begin(), outs.end(), std::make_pair(slot, target));
    if (oit != outs.end()) outs.erase(oit);
    if (outs.empty()) {
      const PartitionId source_partition = sit->second.partition;
      out_pointers_by_source_.erase(sit);
      if (source_partition < sources_in_partition_.size()) {
        sources_in_partition_[source_partition].erase(source);
      }
    }
  }
}

void InterPartitionIndex::OnObjectMoved(ObjectId object, PartitionId from,
                                        PartitionId to) {
  EnsurePartition(std::max(from, to));
  auto tit = entries_by_target_.find(object);
  if (tit != entries_by_target_.end() &&
      targets_in_partition_[from].erase(object)) {
    targets_in_partition_[to].insert(object);
    tit->second.partition = to;
  }
  auto sit = out_pointers_by_source_.find(object);
  if (sit != out_pointers_by_source_.end() &&
      sources_in_partition_[from].erase(object)) {
    sources_in_partition_[to].insert(object);
    sit->second.partition = to;
  }
}

void InterPartitionIndex::OnObjectDied(ObjectId object, PartitionId partition) {
  assert(!HasExternalReferences(object) &&
         "a partition-local collection cannot reclaim an externally "
         "referenced object");
  RemoveOutPointersOf(object, partition);
}

void InterPartitionIndex::RemoveOutPointersOf(ObjectId source,
                                              PartitionId partition) {
  auto sit = out_pointers_by_source_.find(source);
  if (sit != out_pointers_by_source_.end()) {
    // RemoveReference mutates the source's out list; work on a copy.
    const OutPointerList outs = sit->second.out_pointers;
    for (const auto& [slot, target] : outs) {
      RemoveReference(source, slot, target);
    }
  }
  if (partition < sources_in_partition_.size()) {
    sources_in_partition_[partition].erase(source);
  }
}

std::span<const ObjectId> InterPartitionIndex::ExternalTargets(
    PartitionId partition) const {
  if (partition >= targets_in_partition_.size()) return {};
  return targets_in_partition_[partition].sorted();
}

std::vector<ObjectId> InterPartitionIndex::ExternalTargetsInPartition(
    PartitionId partition) const {
  const std::span<const ObjectId> view = ExternalTargets(partition);
  return std::vector<ObjectId>(view.begin(), view.end());
}

const PointerLocationList* InterPartitionIndex::EntriesForTarget(
    ObjectId target) const {
  auto it = entries_by_target_.find(target);
  return it == entries_by_target_.end() ? nullptr : &it->second.locations;
}

bool InterPartitionIndex::HasExternalReferences(ObjectId target) const {
  return entries_by_target_.count(target) > 0;
}

std::span<const ObjectId> InterPartitionIndex::Sources(
    PartitionId partition) const {
  if (partition >= sources_in_partition_.size()) return {};
  return sources_in_partition_[partition].sorted();
}

std::vector<ObjectId> InterPartitionIndex::SourcesInPartition(
    PartitionId partition) const {
  const std::span<const ObjectId> view = Sources(partition);
  return std::vector<ObjectId>(view.begin(), view.end());
}

const OutPointerList* InterPartitionIndex::OutPointersOfSource(
    ObjectId source) const {
  auto it = out_pointers_by_source_.find(source);
  return it == out_pointers_by_source_.end() ? nullptr
                                             : &it->second.out_pointers;
}

InterPartitionIndex BuildIndexFromStore(const ObjectStore& store) {
  InterPartitionIndex index;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      for (uint32_t s = 0; s < info->num_slots; ++s) {
        const ObjectId target = info->slots[s];
        if (target.is_null()) continue;
        const ObjectStore::ObjectInfo* target_info = store.Lookup(target);
        if (target_info == nullptr ||
            target_info->partition == info->partition) {
          continue;
        }
        index.AddReference(id, info->partition, s, target,
                           target_info->partition);
      }
    }
  }
  return index;
}

size_t InterPartitionIndex::EntryCountForPartition(
    PartitionId partition) const {
  size_t n = 0;
  for (ObjectId target : ExternalTargets(partition)) {
    auto eit = entries_by_target_.find(target);
    if (eit != entries_by_target_.end()) n += eit->second.locations.size();
  }
  return n;
}

}  // namespace odbgc
