#ifndef ODBGC_CORE_HEAP_H_
#define ODBGC_CORE_HEAP_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/heap_core.h"

namespace odbgc {

/// A garbage-collected partitioned object database: the library's main
/// entry point, and the mutator-facing facade over the HeapCore engine
/// (core/heap_core.h, which holds HeapOptions/HeapStats and the whole
/// component stack).
///
/// The facade exists so the application surface stays a stable,
/// single-threaded mutator API while the engine grows concurrency hooks:
/// internal layers (the concurrent simulator, the recovery engine) reach
/// the engine through core() for epoch wiring and barrier-buffer flushes;
/// applications never need to. Every forwarder is inline, so the split
/// costs the hot paths nothing beyond one pointer indirection.
class CollectedHeap {
 public:
  explicit CollectedHeap(const HeapOptions& options)
      : core_(std::make_unique<HeapCore>(options)) {}

  /// Reconstructs a heap from a checkpoint image; see HeapCore::FromImage.
  static Result<std::unique_ptr<CollectedHeap>> FromImage(
      const HeapOptions& options, const StoreImage& image);

  /// Captures the database state for checkpointing.
  StoreImage ExtractImage() const { return core_->ExtractImage(); }

  CollectedHeap(const CollectedHeap&) = delete;
  CollectedHeap& operator=(const CollectedHeap&) = delete;

  /// The engine, for internal layers that need more than the mutator API
  /// (concurrency hooks, recovery). Application code should not need it.
  HeapCore& core() { return *core_; }
  const HeapCore& core() const { return *core_; }

  // -- Application API (see ObjectStore for the I/O charging model) -------

  /// Allocates an object; may grow the database and may trigger a pending
  /// collection.
  Result<ObjectId> Allocate(uint32_t size, uint32_t num_slots,
                            ObjectId parent_hint = kNullObjectId,
                            uint8_t flags = 0) {
    return core_->Allocate(size, num_slots, parent_hint, flags);
  }

  /// Stores a pointer, running the write barrier; may trigger a
  /// collection.
  Status WriteSlot(ObjectId source, uint32_t slot, ObjectId target) {
    return core_->WriteSlot(source, slot, target);
  }

  Result<ObjectId> ReadSlot(ObjectId source, uint32_t slot) {
    return core_->ReadSlot(source, slot);
  }
  Status VisitObject(ObjectId object) { return core_->VisitObject(object); }
  Status WriteData(ObjectId object) { return core_->WriteData(object); }

  /// Adds a database root (weight 1 when weights are maintained).
  Status AddRoot(ObjectId object) { return core_->AddRoot(object); }
  Status RemoveRoot(ObjectId object) { return core_->RemoveRoot(object); }

  // -- Collection ----------------------------------------------------------

  /// Runs one policy-selected collection immediately (regardless of the
  /// trigger). Returns the result, or FailedPrecondition if the policy
  /// declined (NoCollection / no candidates).
  Result<CollectionResult> CollectNow() { return core_->CollectNow(); }

  /// Collects a specific partition (bypasses the policy).
  Result<CollectionResult> CollectPartition(PartitionId victim) {
    return core_->CollectPartition(victim);
  }

  /// Runs a whole-database mark-and-copy collection (see
  /// GlobalMarkCollector): reclaims everything unreachable, including
  /// nepotism victims and cross-partition dead cycles.
  Result<GlobalCollectionResult> CollectFullDatabase() {
    return core_->CollectFullDatabase();
  }

  /// Partitions eligible for collection right now.
  std::vector<PartitionId> CollectionCandidates() const {
    return core_->CollectionCandidates();
  }

  // -- Introspection ---------------------------------------------------------

  const ObjectStore& store() const { return core_->store(); }
  ObjectStore& mutable_store() { return core_->mutable_store(); }
  const BufferPool& buffer() const { return core_->buffer(); }
  BufferPool& mutable_buffer() { return core_->mutable_buffer(); }
  const PageDevice& disk() const { return core_->device(); }
  PageDevice& mutable_disk() { return core_->mutable_device(); }
  const PageDevice& device() const { return core_->device(); }
  PageDevice& mutable_device() { return core_->mutable_device(); }
  /// The stack-wide metrics registry (device + buffer counters, phases).
  MetricsRegistry* metrics() const { return core_->metrics(); }
  /// Wall-clock self-profiling counters; see HeapCore::wall_metrics().
  MetricsRegistry* wall_metrics() const { return core_->wall_metrics(); }
  /// Pre-registered handles into wall_metrics() for hot-path scopes.
  WallPhaseTimers* wall_timers() const { return core_->wall_timers(); }
  const InterPartitionIndex& index() const { return core_->index(); }
  const WriteBarrier& barrier() const { return core_->barrier(); }
  const WeightTracker* weights() const { return core_->weights(); }
  SelectionPolicy& policy() { return core_->policy(); }
  const HeapStats& stats() const { return core_->stats(); }
  const HeapOptions& options() const { return core_->options(); }

  /// Application/collector I/O so far (buffer pool counters).
  uint64_t app_io() const { return core_->app_io(); }
  uint64_t gc_io() const { return core_->gc_io(); }
  uint64_t total_io() const { return core_->total_io(); }

  /// True if the overwrite trigger has fired and a collection will run at
  /// the end of the current/next heap operation.
  bool collection_pending() const { return core_->collection_pending(); }

  /// Results of every collection performed, in order.
  const std::vector<CollectionResult>& collection_log() const {
    return core_->collection_log();
  }

  /// Zeroes every measurement while leaving the database untouched; see
  /// HeapCore::ResetMeasurement.
  void ResetMeasurement() { core_->ResetMeasurement(); }

  /// Serializes heap runtime state; see HeapCore::SaveRuntimeState.
  void SaveRuntimeState(std::ostream& out) const {
    core_->SaveRuntimeState(out);
  }

  /// Restores state written by SaveRuntimeState; see
  /// HeapCore::LoadRuntimeState.
  Status LoadRuntimeState(std::istream& in) {
    return core_->LoadRuntimeState(in);
  }

 private:
  explicit CollectedHeap(std::unique_ptr<HeapCore> core)
      : core_(std::move(core)) {}

  std::unique_ptr<HeapCore> core_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_HEAP_H_
