#ifndef ODBGC_CORE_COPYING_COLLECTOR_H_
#define ODBGC_CORE_COPYING_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "core/remembered_set.h"
#include "core/weights.h"
#include "odb/object_id.h"
#include "odb/object_store.h"
#include "util/status.h"

namespace odbgc {

/// Order in which a collection traverses and copies live objects. The
/// paper fixes breadth-first (it preserves the test database's placement
/// policy); depth-first is provided for the Table 1 ablation.
enum class TraversalOrder { kBreadthFirst, kDepthFirst };

/// Outcome of collecting one partition.
struct CollectionResult {
  PartitionId collected = kInvalidPartition;
  /// The partition the survivors were copied into (the former empty
  /// partition, which is now a normal partition; `collected` is the new
  /// empty partition).
  PartitionId copy_target = kInvalidPartition;
  uint64_t live_objects_copied = 0;
  uint64_t live_bytes_copied = 0;
  uint64_t garbage_objects_reclaimed = 0;
  uint64_t garbage_bytes_reclaimed = 0;
  /// Collector-phase disk page reads/writes attributable to this
  /// collection (deltas of the buffer pool's GC-phase counters).
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
};

/// The partitioned copying garbage collector (paper, Section 4.1).
///
/// Collecting partition P:
///  1. Roots of P = database roots residing in P, plus every object in P
///     with a remembered-set entry (referenced from another partition —
///     conservatively treated as live, which is where nepotism enters).
///  2. Live objects are copied into the reserved empty partition in
///     traversal order (breadth-first by default, Cheney-style: an
///     object's children are discovered from its already-copied image, so
///     scanning costs no extra I/O). Pointers leaving P are not traversed.
///  3. Objects remaining in P are garbage: their out-of-partition pointer
///     entries are deleted from the other partitions' remembered sets (so
///     later collections don't preserve objects referenced only by this
///     garbage), and they are dropped.
///  4. P is reset and becomes the new reserved empty partition; the copy
///     target becomes an ordinary partition. Compaction of survivors has
///     eliminated P's internal fragmentation.
///
/// All page traffic during a collection is charged to the collector phase.
class CopyingCollector {
 public:
  /// All pointers must outlive the collector. `weights` may be null when
  /// weights are not maintained.
  CopyingCollector(ObjectStore* store, BufferPool* buffer,
                   InterPartitionIndex* index, WeightTracker* weights,
                   TraversalOrder order = TraversalOrder::kBreadthFirst);

  /// Collects `victim`, which must not be the reserved empty partition.
  /// `extra_roots` are treated as additional roots (the heap passes the
  /// most recently allocated object, which the application may not have
  /// linked into the graph yet — collecting it mid-birth would corrupt
  /// the application's view).
  Result<CollectionResult> Collect(
      PartitionId victim, const std::vector<ObjectId>& extra_roots = {});

 private:
  // Starts a new "copied" mark generation (see copied_stamp_).
  void BeginCopyEpoch();

  ObjectStore* const store_;
  BufferPool* const buffer_;
  InterPartitionIndex* const index_;
  WeightTracker* const weights_;
  const TraversalOrder order_;

  // Per-collection scratch, reused across collections so the hot path
  // allocates only when a high-water mark grows. "Copied" is an
  // epoch-stamped dense mark vector indexed by ObjectId value (same
  // technique as ReachabilityAnalyzer); the worklist vector serves as a
  // FIFO via head cursor (breadth-first) or a stack (depth-first).
  uint32_t copy_epoch_ = 0;
  std::vector<uint32_t> copied_stamp_;
  std::vector<ObjectId> work_;
  std::vector<ObjectId> roots_;
  std::vector<ObjectId> garbage_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_COPYING_COLLECTOR_H_
