#ifndef ODBGC_UTIL_TABLE_PRINTER_H_
#define ODBGC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace odbgc {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Formats rows of strings as an aligned plain-text table (for the
/// paper-style tables the bench binaries print) and as CSV.
///
/// Usage:
///   TablePrinter t({"Policy", "Mean", "Std Dev"});
///   t.AddRow({"UpdatedPointer", "33098", "5559"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers. All columns default to
  /// right alignment except the first, which is left-aligned (row labels).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Overrides the alignment of column `col`.
  void SetAlign(size_t col, Align align);

  /// Appends a row. Rows shorter than the header are padded with empty
  /// cells; longer rows are truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Writes the aligned table.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (headers first; separators skipped).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  // A row with the sentinel value {kSeparatorTag} renders as a rule.
  std::vector<std::vector<std::string>> rows_;

  static const char* const kSeparatorTag;
};

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double x, int digits);

/// Formats a count with no decimals (rounded).
std::string FormatCount(double x);

}  // namespace odbgc

#endif  // ODBGC_UTIL_TABLE_PRINTER_H_
