#ifndef ODBGC_UTIL_THREAD_SAFE_QUEUE_H_
#define ODBGC_UTIL_THREAD_SAFE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace odbgc {

/// A multi-producer multi-consumer FIFO queue with a close signal — the
/// work-distribution primitive of the concurrent simulator (mutator
/// threads pull trace shards from one of these) and of its stress suite.
///
/// Deliberately mutex+condvar rather than lock-free: every operation is
/// trivially linearizable, TSan verifies it as written, and the queue is
/// never on a per-event hot path (it hands out whole shards / batches).
/// The ROADMAP's `thread_safe_queue.h` reference has the same shape.
///
/// Semantics:
///  - Push: appends; returns false (drops) after Close.
///  - TryPop: non-blocking; empty optional when nothing is queued.
///  - WaitPop: blocks until an element arrives or the queue is closed and
///    drained; empty optional only on closed-and-drained.
///  - Close: wakes all waiters; queued elements remain poppable.
///
/// Blocking audit (PR 8): WaitPop is the queue's only blocking entry
/// point, and it parks on the condition variable — a consumer waiting on
/// an empty open queue burns no CPU until a Push or Close notifies it
/// (verified by the ParkedConsumerBurnsNoCpu test). There is no spin
/// loop to convert; the busy-waiting concern applies to schedulers built
/// *on top* of pops (claim-a-whole-shard-and-poll), which is what the
/// work-stealing TaskPool (util/task_pool.h, DESIGN.md §15) replaces.
/// TaskPool idles the same way: workers park on a condvar when both
/// their deques and the injector are empty.
template <typename T>
class ThreadSafeQueue {
 public:
  ThreadSafeQueue() = default;
  ThreadSafeQueue(const ThreadSafeQueue&) = delete;
  ThreadSafeQueue& operator=(const ThreadSafeQueue&) = delete;

  bool Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    ready_.notify_one();
    return true;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  std::optional<T> WaitPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_THREAD_SAFE_QUEUE_H_
