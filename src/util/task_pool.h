#ifndef ODBGC_UTIL_TASK_POOL_H_
#define ODBGC_UTIL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_stealing_deque.h"

namespace odbgc {

/// A reusable work-stealing thread pool (DESIGN.md §15): the execution
/// engine behind the concurrent simulator's shard scheduler, the parallel
/// marking inside ReachabilityAnalyzer, and the experiment grid.
///
/// Structure: N workers, each with a private Chase–Lev deque, plus one
/// mutex-protected injector queue for submissions from outside the pool.
/// A worker acquires work in the order local-pop → injector → randomized
/// steal sweep, and parks on a condition variable only after a full sweep
/// finds nothing — so an idle pool burns no CPU, and a skewed load (one
/// giant producer, the exact shape the paper's mixed-size forests give
/// the shard scheduler) drains through stealing instead of idling cores.
///
/// Tasks are grouped: every Submit names a TaskGroup, and Wait(group)
/// returns when all of the group's tasks (including tasks they spawned
/// into the group) have finished. Wait called *on a worker thread* helps:
/// it executes available tasks — any tasks, not just the group's — while
/// it waits, which is what lets a shard task block on a parallel-marking
/// wave without idling its core or deadlocking the pool. Wait called on
/// an external thread blocks on a condition variable, deliberately NOT
/// executing tasks: the pool's worker count is the experiment's
/// parallelism knob, and a helping caller would add a hidden extra
/// executor.
///
/// Determinism: the pool provides none by itself — tasks run in an
/// arbitrary order on arbitrary workers. Every client is required to make
/// scheduling unobservable (shards are independent heaps summed by an
/// order-independent rule; marking is an idempotent fixpoint merged
/// deterministically; grid cells write to disjoint slots). DESIGN.md §15
/// spells out each argument.
class TaskPool {
 public:
  /// Worker identity passed to every task. `worker_index` is stable for
  /// the life of the pool and < worker_count() — clients key per-thread
  /// state (epoch slots, scratch) off it.
  struct Context {
    TaskPool* pool = nullptr;
    uint32_t worker_index = 0;
  };

  using Task = std::function<void(Context&)>;

  /// A wave of related tasks. Reusable after Wait returns. Outstanding
  /// counter only — groups hold no task memory.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class TaskPool;
    std::atomic<uint64_t> pending_{0};
  };

  /// Spawns `workers` threads (at least 1).
  explicit TaskPool(uint32_t workers);

  /// Drains every submitted task, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  uint32_t worker_count() const { return worker_count_; }

  /// Enqueues `task` under `group`. Callable from anywhere: a worker of
  /// this pool pushes to its own deque (stealable by the others); any
  /// other thread goes through the injector queue. `group` must outlive
  /// the matching Wait.
  void Submit(TaskGroup* group, Task task);

  /// Blocks until every task submitted under `group` has finished.
  /// Helping semantics per the class comment. Multiple concurrent Waits
  /// on the same group are allowed.
  void Wait(TaskGroup* group);

  /// Per-worker wall time spent executing task bodies, in seconds —
  /// busy/wall per thread is the scheduler-efficiency number
  /// bench/mt_barrier_heavy reports.
  std::vector<double> BusySeconds() const;

  /// Tasks that migrated off their submitter via a steal (diagnostics).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Tasks executed in total (diagnostics).
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

 private:
  struct TaskNode {
    Task fn;
    TaskGroup* group = nullptr;
  };

  struct WorkerState {
    explicit WorkerState(TaskPool* p, uint32_t index)
        : pool(p), worker_index(index), rng_state(0x9e3779b97f4a7c15ull ^
                                                  (uint64_t{index} + 1)) {}
    TaskPool* pool;
    uint32_t worker_index;
    WorkStealingDeque<TaskNode*> deque;
    uint64_t rng_state;  // xorshift64 for victim selection; worker-local.
    std::atomic<uint64_t> busy_ns{0};
  };

  void WorkerLoop(WorkerState* self);
  // One acquire attempt over all sources; null when nothing is available.
  TaskNode* AcquireTask(WorkerState* self);
  TaskNode* StealSweep(WorkerState* self);
  void RunTask(WorkerState* self, TaskNode* node);
  void NotifyOne();

  // Fixed before any worker thread starts; workers_ itself grows during
  // construction while early workers are already running, so they must
  // read this, never workers_.size().
  uint32_t worker_count_ = 0;
  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;

  // Injector queue: external submissions and overflow.
  std::mutex injector_mutex_;
  std::deque<TaskNode*> injector_;

  // Tasks queued anywhere (local deques + injector) — the sleep predicate.
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint32_t> sleepers_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> shutdown_{false};

  // External Wait parking.
  std::mutex completion_mutex_;
  std::condition_variable completion_cv_;

  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> executed_{0};
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_TASK_POOL_H_
