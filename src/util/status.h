#ifndef ODBGC_UTIL_STATUS_H_
#define ODBGC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace odbgc {

/// Error category for Status. Kept deliberately small; the library reports
/// failures by value instead of throwing across its boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kResourceExhausted,
  kAlreadyExists,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
  }
  return "Unknown";
}

/// Value-semantics error type, in the style of absl::Status / rocksdb::Status.
/// Default-constructed Status is OK; errors carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a T or an error Status (like absl::StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. The status must not be OK.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK status out of the current function.
#define ODBGC_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::odbgc::Status _odbgc_status = (expr);         \
    if (!_odbgc_status.ok()) return _odbgc_status;  \
  } while (0)

}  // namespace odbgc

#endif  // ODBGC_UTIL_STATUS_H_
