#ifndef ODBGC_UTIL_RANDOM_H_
#define ODBGC_UTIL_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace odbgc {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All randomness in the library flows through explicit Rng
/// instances so that every simulation is reproducible from a single seed,
/// which the paper's methodology (10 runs differing only in seed) depends on.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances constructed with the same seed
  /// produce identical streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniformly distributed integer in [0, bound). `bound` must be
  /// greater than zero. Uses rejection sampling, so the distribution is
  /// exactly uniform.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  /// Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Forks an independent generator whose stream is decorrelated from this
  /// one. Useful for giving subsystems their own streams so that adding a
  /// random draw in one subsystem does not perturb another.
  Rng Fork();

  /// The raw generator state, for checkpointing: a generator restored with
  /// SetState continues the exact stream it would have produced.
  std::array<uint64_t, 4> GetState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  uint64_t state_[4];
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_RANDOM_H_
