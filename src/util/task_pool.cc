#include "util/task_pool.h"

#include <cassert>
#include <chrono>

namespace odbgc {

namespace {

// (pool, state) of the worker thread currently executing, if any. The
// pool pointer disambiguates nested pools: a task of pool A may construct
// and drive pool B (the heap-owned marking pool inside a grid worker);
// B's submissions from A's worker must go through B's injector, not A's
// deque.
thread_local TaskPool::Context tl_context;

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

}  // namespace

TaskPool::TaskPool(uint32_t workers) {
  if (workers == 0) workers = 1;
  worker_count_ = workers;
  states_.reserve(workers);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    states_.push_back(std::make_unique<WorkerState>(this, i));
  }
  // States are fully built before any thread starts: WorkerLoop and
  // StealSweep index the whole vector.
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&TaskPool::WorkerLoop, this, states_[i].get());
  }
}

TaskPool::~TaskPool() {
  // Workers drain everything still queued before exiting (the loop only
  // returns on shutdown AND empty), so submitted-but-unwaited work is
  // completed, not dropped.
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : workers_) thread.join();
}

bool TaskPool::OnWorkerThread() const { return tl_context.pool == this; }

void TaskPool::Submit(TaskGroup* group, Task task) {
  assert(group != nullptr);
  TaskNode* node = new TaskNode{std::move(task), group};
  group->pending_.fetch_add(1, std::memory_order_acq_rel);
  if (tl_context.pool == this) {
    states_[tl_context.worker_index]->deque.PushBottom(node);
  } else {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(node);
  }
  queued_.fetch_add(1, std::memory_order_release);
  NotifyOne();
}

void TaskPool::NotifyOne() {
  if (sleepers_.load(std::memory_order_acquire) == 0) return;
  {
    // Empty critical section: pairs the queued_ increment with the
    // sleeper's predicate re-check so the wakeup cannot be lost.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

TaskPool::TaskNode* TaskPool::StealSweep(WorkerState* self) {
  const uint32_t n = worker_count();
  if (n <= 1) return nullptr;
  // Randomized start, full rotation: every victim is visited once per
  // sweep, in an order that decorrelates thieves.
  const uint32_t start =
      static_cast<uint32_t>(XorShift64(&self->rng_state) % n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t victim = (start + i) % n;
    if (victim == self->worker_index) continue;
    if (auto stolen = states_[victim]->deque.StealTop()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return *stolen;
    }
  }
  return nullptr;
}

TaskPool::TaskNode* TaskPool::AcquireTask(WorkerState* self) {
  if (auto local = self->deque.PopBottom()) return *local;
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      TaskNode* node = injector_.front();
      injector_.pop_front();
      return node;
    }
  }
  return StealSweep(self);
}

void TaskPool::RunTask(WorkerState* self, TaskNode* node) {
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  const auto start = std::chrono::steady_clock::now();
  Context context{this, self->worker_index};
  node->fn(context);
  self->busy_ns.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count()),
      std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  TaskGroup* group = node->group;
  delete node;
  // The group decrement is the completion publication: Wait's acquire
  // load of pending_ synchronizes with it.
  if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
    }
    completion_cv_.notify_all();
  }
}

void TaskPool::WorkerLoop(WorkerState* self) {
  tl_context = Context{this, self->worker_index};
  for (;;) {
    if (TaskNode* node = AcquireTask(self)) {
      RunTask(self, node);
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      break;
    }
    // Nothing found in a full sweep: park until a submission (or
    // shutdown). queued_ is re-checked under the lock, and Submit
    // bumps it before locking, so a wakeup cannot slip through.
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  }
  tl_context = Context{};
}

void TaskPool::Wait(TaskGroup* group) {
  if (tl_context.pool == this) {
    // On a worker: help. Run whatever is available — the group's own
    // tasks if they are still queued locally, anything else otherwise
    // (progress on any task is progress toward this group's tasks getting
    // a core). Yield rather than park: the group is in flight on other
    // workers, and this wait is short-lived by construction.
    WorkerState* self = states_[tl_context.worker_index].get();
    while (group->pending_.load(std::memory_order_acquire) > 0) {
      if (TaskNode* node = AcquireTask(self)) {
        RunTask(self, node);
      } else {
        std::this_thread::yield();
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [group] {
    return group->pending_.load(std::memory_order_acquire) == 0;
  });
}

std::vector<double> TaskPool::BusySeconds() const {
  std::vector<double> seconds;
  seconds.reserve(states_.size());
  for (const auto& state : states_) {
    seconds.push_back(
        static_cast<double>(state->busy_ns.load(std::memory_order_relaxed)) *
        1e-9);
  }
  return seconds;
}

}  // namespace odbgc
