#ifndef ODBGC_UTIL_TIME_SERIES_H_
#define ODBGC_UTIL_TIME_SERIES_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace odbgc {

/// A named (x, y) series sampled over simulation time. Used for the paper's
/// time-varying plots (Figures 4 and 5): x is the application event count,
/// y a byte or KB quantity.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Add(double x, double y) { points_.push_back({x, y}); }

  const std::string& name() const { return name_; }

  struct Point {
    double x;
    double y;
  };
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Largest y value seen; 0 if empty.
  double MaxY() const;

  /// Final y value; 0 if empty.
  double LastY() const;

  /// Returns a copy containing at most `max_points` points, evenly sampled
  /// (always keeps the first and last point).
  TimeSeries Downsample(size_t max_points) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// Writes several series in a gnuplot-friendly layout: one block per series
/// ("# <name>" then "x y" lines), blocks separated by blank lines.
void WriteGnuplot(const std::vector<TimeSeries>& series, std::ostream& os);

/// Writes several series as one CSV: header "x,<name1>,<name2>,..." and one
/// row per union x value; series without a point at that x leave the cell
/// empty. Assumes each series' x values are non-decreasing.
void WriteCsv(const std::vector<TimeSeries>& series, std::ostream& os);

/// Renders the series as a coarse ASCII chart (for terminal inspection of
/// the figure benches). `width` x `height` character cells.
void RenderAscii(const std::vector<TimeSeries>& series, std::ostream& os,
                 size_t width = 72, size_t height = 20);

}  // namespace odbgc

#endif  // ODBGC_UTIL_TIME_SERIES_H_
