#ifndef ODBGC_UTIL_WORK_STEALING_DEQUE_H_
#define ODBGC_UTIL_WORK_STEALING_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace odbgc {

/// A Chase–Lev work-stealing deque (DESIGN.md §15): the per-worker run
/// queue of the TaskPool. One *owner* thread pushes and pops at the
/// bottom (LIFO — freshly spawned subtasks run first, keeping their data
/// warm); any number of *thief* threads steal from the top (FIFO — the
/// oldest, usually largest, unit of work migrates, which is the right
/// granularity to move between cores).
///
/// The implementation follows the C11-atomics formulation of Lê et al.,
/// "Correct and Efficient Work-Stealing for Weak Memory Models", with two
/// deliberate deviations:
///  - no standalone memory fences: the ordering-critical operations on
///    `top_`/`bottom_` are seq_cst instead. TSan does not model
///    `atomic_thread_fence`, and this repo's concurrency claims are only
///    worth having if the sanitizer job can verify them as written. The
///    cost is a few extra ordered operations on an already-uncontended
///    path (pop/steal race only on the last element).
///  - buffer cells are `std::atomic<T>`: a thief may read a cell while
///    the owner writes a neighbouring index after wraparound was ruled
///    out; making the cells atomic keeps every access a data-race-free
///    atomic load/store. `T` must be trivially copyable (the pool stores
///    raw task pointers).
///
/// Growth: when the ring fills, the owner allocates a doubled array and
/// copies the live range. Retired arrays are kept until destruction — a
/// thief that loaded the old array pointer may still be reading from it,
/// and parking a few stale KiB beats a hazard-pointer scheme for queues
/// that live for one simulation run.
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingDeque cells are atomics; T must be trivially "
                "copyable (store pointers to anything bigger)");

 public:
  explicit WorkStealingDeque(uint64_t initial_capacity = 64) {
    // Round up to a power of two so indexing is a mask.
    uint64_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    auto array = std::make_unique<Array>(cap);
    array_.store(array.get(), std::memory_order_relaxed);
    arrays_.push_back(std::move(array));
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: pushes `value` at the bottom.
  void PushBottom(T value) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(a->capacity)) {
      a = Grow(a, t, b);
    }
    a->Put(b, value);
    // The release on bottom_ publishes the cell write to thieves that
    // subsequently observe the new bottom.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pops the most recently pushed element, empty if none.
  std::optional<T> PopBottom() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // Reserve the bottom slot before examining top: a concurrent thief
    // must see either our reservation or lose the CAS below (seq_cst on
    // both sides replaces the algorithm's fence).
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = a->Get(b);
    if (t == b) {
      // Last element: race the thieves for it via top.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return std::nullopt;
    }
    return value;
  }

  /// Any thread: steals the oldest element, empty if none (or if the
  /// steal lost a race — callers retry or move to another victim).
  std::optional<T> StealTop() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    Array* a = array_.load(std::memory_order_acquire);
    T value = a->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // Lost to the owner or another thief.
    }
    return value;
  }

  /// Approximate (racy) size — scheduling heuristics only.
  size_t SizeEstimate() const {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  bool Empty() const { return SizeEstimate() == 0; }

  /// Current ring capacity (tests).
  uint64_t Capacity() const {
    return array_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Array {
    explicit Array(uint64_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    void Put(int64_t index, T value) {
      cells[static_cast<uint64_t>(index) & mask].store(
          value, std::memory_order_relaxed);
    }
    T Get(int64_t index) const {
      return cells[static_cast<uint64_t>(index) & mask].load(
          std::memory_order_relaxed);
    }
    const uint64_t capacity;
    const uint64_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  // Owner only: doubles the ring, copying the live range [t, b).
  Array* Grow(Array* old, int64_t t, int64_t b) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    arrays_.push_back(std::move(bigger));  // Old array parked, not freed.
    return raw;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  // Every array ever allocated, newest last; mutated by the owner only.
  std::vector<std::unique_ptr<Array>> arrays_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_WORK_STEALING_DEQUE_H_
