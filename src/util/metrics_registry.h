#ifndef ODBGC_UTIL_METRICS_REGISTRY_H_
#define ODBGC_UTIL_METRICS_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace odbgc {

/// Which phase of the run a measurement is attributed to. Mirrors the
/// paper's split between "Application I/Os" and "Collector I/Os" (Table 2)
/// and applies to every counter in the registry.
enum class MetricPhase : uint8_t { kApplication = 0, kCollector = 1 };

inline constexpr size_t kMetricPhaseCount = 2;

/// One named counter with per-phase attribution. Counters live inside a
/// MetricsRegistry; components hold a stable `MetricCounter*` handle
/// obtained at construction, so hot-path increments are a single add.
class MetricCounter {
 public:
  void Add(MetricPhase phase, uint64_t delta = 1) {
    values_[static_cast<size_t>(phase)] += delta;
  }
  uint64_t value(MetricPhase phase) const {
    return values_[static_cast<size_t>(phase)];
  }
  uint64_t total() const {
    return values_[0] + values_[1];
  }
  void Reset() { values_[0] = values_[1] = 0; }

 private:
  friend class MetricsRegistry;
  uint64_t values_[kMetricPhaseCount] = {0, 0};
};

/// One row of a registry snapshot.
struct MetricSample {
  std::string name;
  uint64_t application = 0;
  uint64_t collector = 0;
  uint64_t total() const { return application + collector; }
};

/// Merges per-thread snapshot deltas into one sorted sample vector,
/// summing per-phase values by counter name. Deterministic regardless of
/// the order the parts arrive in (addition over a name-sorted map), which
/// is what lets the concurrent simulator aggregate shard registries
/// without caring which worker finished first.
std::vector<MetricSample> MergeMetricSamples(
    const std::vector<std::vector<MetricSample>>& parts);

/// The unified measurement surface of the I/O subsystem: every component
/// (device, buffer pool, heap) registers named counters here instead of
/// keeping private stat structs, so one object carries the complete
/// instrumentation of a run — through checkpoints, into SimulationResult
/// and out to the report.
///
/// The registry also owns the *current phase*: a transfer is charged to
/// whichever phase was active when it happened, regardless of which
/// component issued it (a dirty write-back during collection is collector
/// I/O even though the page was dirtied by the application).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it (zeroed) on first use.
  /// The pointer is stable for the registry's lifetime.
  MetricCounter* Register(const std::string& name);

  /// Returns the counter named `name`, or nullptr if never registered.
  const MetricCounter* Find(const std::string& name) const;

  void set_phase(MetricPhase phase) { phase_ = phase; }
  MetricPhase phase() const { return phase_; }

  /// Shorthand: bump `counter` by `delta` under the current phase.
  void Count(MetricCounter* counter, uint64_t delta = 1) {
    counter->Add(phase_, delta);
  }

  /// Zeroes every counter (names and handles survive).
  void ResetCounters();

  /// All counters, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const { return counters_.size(); }

  /// Serializes every counter (name + both phase values), sorted by name.
  /// Part of the v2 checkpoint format: counters are restored wholesale
  /// after the store/buffer reconstruction's uncounted transfers.
  void Save(std::ostream& out) const;

  /// Restores counters written by Save. Counters present in the stream are
  /// registered if needed; counters absent from the stream are zeroed, so
  /// the registry ends up exactly in the checkpointed state.
  Status Load(std::istream& in);

 private:
  // std::map: node-based (stable MetricCounter addresses across inserts)
  // and sorted (deterministic Save/Snapshot order).
  std::map<std::string, MetricCounter> counters_;
  MetricPhase phase_ = MetricPhase::kApplication;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_METRICS_REGISTRY_H_
