#ifndef ODBGC_UTIL_FLAT_SET_H_
#define ODBGC_UTIL_FLAT_SET_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace odbgc {

/// An ordered set stored as a flat sorted vector, with a small unsorted
/// staging buffer so inserts are amortized instead of paying an O(n)
/// memmove each. Replaces std::set in the inter-partition index, whose
/// per-partition target/source sets are queried far more often than they
/// are mutated and whose node-based layout cost a cache miss per element.
///
///  - insert:   dedup check (binary search + staging scan), then an O(1)
///              append to the staging buffer; every kStagingLimit inserts
///              the staging buffer is sorted and merged in one pass.
///  - erase:    binary search in the sorted body (single memmove) or a
///              swap-remove from the staging buffer.
///  - sorted(): compacts and exposes the elements ascending — contiguous,
///              so callers iterate it with zero indirection and the
///              "remembered set in ascending id order" contract needs no
///              per-collection sort or copy.
///
/// Fully deterministic: the observable element order is always the sorted
/// order, independent of insertion history.
template <typename T>
class FlatSet {
 public:
  /// Staging inserts beyond this trigger a merge. Keeps membership scans
  /// O(64) while amortizing the merge memmove over 64 inserts.
  static constexpr size_t kStagingLimit = 64;

  bool contains(const T& value) const {
    return std::binary_search(sorted_.begin(), sorted_.end(), value) ||
           std::find(staging_.begin(), staging_.end(), value) !=
               staging_.end();
  }

  /// Inserts `value`; returns false if already present.
  bool insert(const T& value) {
    if (contains(value)) return false;
    staging_.push_back(value);
    if (staging_.size() >= kStagingLimit) Compact();
    return true;
  }

  /// Erases `value`; returns false if absent.
  bool erase(const T& value) {
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), value);
    if (it != sorted_.end() && *it == value) {
      sorted_.erase(it);
      return true;
    }
    auto sit = std::find(staging_.begin(), staging_.end(), value);
    if (sit != staging_.end()) {
      // Staging is unsorted; swap-remove avoids the shift.
      *sit = staging_.back();
      staging_.pop_back();
      return true;
    }
    return false;
  }

  size_t size() const { return sorted_.size() + staging_.size(); }
  bool empty() const { return sorted_.empty() && staging_.empty(); }

  /// All elements, ascending. Compacts the staging buffer first, so the
  /// reference stays valid until the next mutation.
  const std::vector<T>& sorted() const {
    Compact();
    return sorted_;
  }

  void clear() {
    sorted_.clear();
    staging_.clear();
  }

 private:
  void Compact() const {
    if (staging_.empty()) return;
    std::sort(staging_.begin(), staging_.end());
    const size_t old_size = sorted_.size();
    sorted_.insert(sorted_.end(), staging_.begin(), staging_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + old_size,
                       sorted_.end());
    staging_.clear();
  }

  // Compaction is logically const (same element set); both buffers are
  // mutable so read accessors can normalize.
  mutable std::vector<T> sorted_;
  mutable std::vector<T> staging_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_FLAT_SET_H_
