#ifndef ODBGC_UTIL_HASH_H_
#define ODBGC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace odbgc {

/// Fibonacci (multiplicative) mixing constant: 2^64 / phi, rounded to odd.
/// Every hot identifier in the simulator — object ids, page ids, packed
/// (object, slot) keys — is sequential or near-sequential, so an identity
/// hash clusters them into runs of adjacent buckets and probe chains
/// degenerate. One multiply by this constant spreads consecutive keys
/// across the whole table.
inline constexpr uint64_t kFibonacciMultiplier = 0x9e3779b97f4a7c15ULL;

inline constexpr uint64_t FibonacciHash64(uint64_t key) {
  return key * kFibonacciMultiplier;
}

/// Drop-in hasher for hash containers keyed by sequential 64-bit ids.
struct FibonacciHash {
  size_t operator()(uint64_t key) const noexcept {
    return static_cast<size_t>(FibonacciHash64(key));
  }
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_HASH_H_
