#include "util/metrics_registry.h"

#include <ostream>

#include "util/serde.h"

namespace odbgc {

MetricCounter* MetricsRegistry::Register(const std::string& name) {
  return &counters_[name];
}

const MetricCounter* MetricsRegistry::Find(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

void MetricsRegistry::ResetCounters() {
  for (auto& [name, counter] : counters_) counter.Reset();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    samples.push_back({name, counter.value(MetricPhase::kApplication),
                       counter.value(MetricPhase::kCollector)});
  }
  return samples;
}

void MetricsRegistry::Save(std::ostream& out) const {
  PutVarint(out, counters_.size());
  for (const auto& [name, counter] : counters_) {
    PutVarint(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    PutVarint(out, counter.value(MetricPhase::kApplication));
    PutVarint(out, counter.value(MetricPhase::kCollector));
  }
}

Status MetricsRegistry::Load(std::istream& in) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  ResetCounters();
  for (uint64_t i = 0; i < *count; ++i) {
    auto name_size = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(name_size.status());
    if (*name_size > 256) {
      return Status::Corruption("metric name implausibly long");
    }
    std::string name(*name_size, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name.size()));
    if (in.gcount() != static_cast<std::streamsize>(name.size())) {
      return Status::Corruption("truncated metric name");
    }
    auto application = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(application.status());
    auto collector = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(collector.status());
    MetricCounter* counter = Register(name);
    counter->values_[static_cast<size_t>(MetricPhase::kApplication)] =
        *application;
    counter->values_[static_cast<size_t>(MetricPhase::kCollector)] =
        *collector;
  }
  return Status::Ok();
}

std::vector<MetricSample> MergeMetricSamples(
    const std::vector<std::vector<MetricSample>>& parts) {
  std::map<std::string, MetricSample> merged;
  for (const std::vector<MetricSample>& part : parts) {
    for (const MetricSample& sample : part) {
      MetricSample& into = merged[sample.name];
      into.name = sample.name;
      into.application += sample.application;
      into.collector += sample.collector;
    }
  }
  std::vector<MetricSample> out;
  out.reserve(merged.size());
  for (auto& [name, sample] : merged) out.push_back(std::move(sample));
  return out;
}

}  // namespace odbgc
