#ifndef ODBGC_UTIL_ACCESS_CHECK_H_
#define ODBGC_UTIL_ACCESS_CHECK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace odbgc {

/// A debug-build guard for single-owner components: detects two threads
/// inside a guarded scope *at the same time* and fails loudly, while
/// allowing the two access patterns the codebase legitimately uses —
/// same-thread re-entry, and handing a quiescent component from one thread
/// to another (the concurrent simulator and the heap service both migrate
/// a heap's batches across workers, one batch at a time, with a
/// happens-before edge between them).
///
/// This is an assertion, not a lock: a failed TryEnter means the program
/// already has a data race, so the guarded component (e.g. BufferPool,
/// whose open-addressed frame table corrupts silently under concurrent
/// mutation) aborts instead of limping on. All operations are lock-free;
/// the release/acquire pair on `owner_` mirrors the synchronization any
/// correct handoff must already perform, so the check itself introduces no
/// ordering the program could accidentally rely on.
class ExclusiveAccessCheck {
 public:
  /// Claims the scope for the calling thread. Returns false — concurrent
  /// misuse — iff another thread currently holds it. Re-entry by the
  /// holder nests (returns true, tracked by depth).
  bool TryEnter() {
    const uint64_t self = SelfId();
    uint64_t expected = 0;
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_acquire)) {
      depth_ = 1;
      return true;
    }
    if (expected == self) {
      ++depth_;
      return true;
    }
    return false;
  }

  /// Releases one level of nesting; the outermost Exit opens the scope to
  /// any thread again. Only the holder may call it.
  void Exit() {
    if (--depth_ == 0) owner_.store(0, std::memory_order_release);
  }

  /// Nonzero id of the calling thread (stable for the thread's lifetime).
  static uint64_t SelfId() {
    const uint64_t id = static_cast<uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    return id | 1;  // Never 0, which means "unowned".
  }

 private:
  std::atomic<uint64_t> owner_{0};
  // Only the owning thread reads/writes the depth while it holds owner_.
  uint32_t depth_ = 0;
};

/// RAII scope for ExclusiveAccessCheck that aborts (with the guarded
/// component's name) on concurrent entry. Use via ODBGC_DCHECK_EXCLUSIVE
/// so release builds pay nothing.
class ExclusiveAccessScope {
 public:
  ExclusiveAccessScope(ExclusiveAccessCheck* check, const char* what)
      : check_(check) {
    if (!check_->TryEnter()) {
      std::fprintf(stderr,
                   "odbgc: concurrent access to single-owner component %s "
                   "(two threads inside at once)\n",
                   what);
      std::abort();
    }
  }
  ~ExclusiveAccessScope() { check_->Exit(); }

  ExclusiveAccessScope(const ExclusiveAccessScope&) = delete;
  ExclusiveAccessScope& operator=(const ExclusiveAccessScope&) = delete;

 private:
  ExclusiveAccessCheck* const check_;
};

// Asserts, for the enclosing scope, that the calling thread has exclusive
// use of the component guarded by `check` (an ExclusiveAccessCheck
// member). Compiled out with NDEBUG, like assert(); the RelAssert CI
// configuration keeps it live against optimized code.
#ifndef NDEBUG
#define ODBGC_ACCESS_CONCAT_INNER(a, b) a##b
#define ODBGC_ACCESS_CONCAT(a, b) ODBGC_ACCESS_CONCAT_INNER(a, b)
#define ODBGC_DCHECK_EXCLUSIVE(check, what)                      \
  ::odbgc::ExclusiveAccessScope ODBGC_ACCESS_CONCAT(             \
      odbgc_access_scope_, __LINE__)((check), (what))
#else
#define ODBGC_DCHECK_EXCLUSIVE(check, what) ((void)0)
#endif

}  // namespace odbgc

#endif  // ODBGC_UTIL_ACCESS_CHECK_H_
