#ifndef ODBGC_UTIL_SERDE_H_
#define ODBGC_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/status.h"

namespace odbgc {

/// Little-endian primitives shared by every binary format in the library
/// (store images, traces, WAL records, checkpoints). All readers fail with
/// Corruption on truncation — never with a partial value.

inline void PutVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

inline Result<uint64_t> GetVarint(std::istream& in) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("truncated inside varint");
    v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("varint too long");
  }
  return v;
}

inline void PutU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

inline Result<uint8_t> GetU8(std::istream& in) {
  const int c = in.get();
  if (c == EOF) return Status::Corruption("truncated reading byte");
  return static_cast<uint8_t>(c);
}

inline void PutU16(std::ostream& out, uint16_t v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>((v >> 8) & 0xff));
}

inline Result<uint16_t> GetU16(std::istream& in) {
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("truncated reading u16");
    v = static_cast<uint16_t>(v | (static_cast<uint16_t>(c) << (8 * i)));
  }
  return v;
}

inline void PutU32(std::ostream& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline Result<uint32_t> GetU32(std::istream& in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("truncated reading u32");
    v |= static_cast<uint32_t>(c) << (8 * i);
  }
  return v;
}

inline void PutU64(std::ostream& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline Result<uint64_t> GetU64(std::istream& in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("truncated reading u64");
    v |= static_cast<uint64_t>(c) << (8 * i);
  }
  return v;
}

/// Doubles travel as their IEEE-754 bit pattern: checkpointed measurements
/// must restore bit-identically, so no decimal round-trip.
inline void PutDouble(std::ostream& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline Result<double> GetDouble(std::istream& in) {
  auto bits = GetU64(in);
  ODBGC_RETURN_IF_ERROR(bits.status());
  double v = 0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

inline void PutBool(std::ostream& out, bool v) { PutU8(out, v ? 1 : 0); }

inline Result<bool> GetBool(std::istream& in) {
  auto b = GetU8(in);
  ODBGC_RETURN_IF_ERROR(b.status());
  return *b != 0;
}

}  // namespace odbgc

#endif  // ODBGC_UTIL_SERDE_H_
