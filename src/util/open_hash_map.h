#ifndef ODBGC_UTIL_OPEN_HASH_MAP_H_
#define ODBGC_UTIL_OPEN_HASH_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace odbgc {

/// Open-addressed, linear-probe map from a 64-bit key to a small index
/// (uint32_t). Built for the buffer pool's page → frame table: a bounded
/// population of near-sequential keys where every lookup is on the hot
/// path. One flat array of 12-byte slots, Fibonacci-mixed home buckets,
/// and backward-shift deletion (no tombstones), so a lookup is a handful
/// of contiguous probes with no pointer chasing.
///
/// The mapped value doubles as the occupancy mark: kEmptyValue (2^32-1)
/// means "slot free", so values must stay below it — frame indices always
/// do. Keys may be any uint64_t.
class OpenIndexMap {
 public:
  static constexpr uint32_t kEmptyValue = UINT32_MAX;

  /// Sizes the table for `expected_entries` at a load factor < 2/3. The
  /// table also grows itself if the population outruns the hint.
  explicit OpenIndexMap(size_t expected_entries = 0) {
    Rebuild(CapacityFor(expected_entries));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns the value mapped to `key`, or kEmptyValue if absent.
  uint32_t Find(uint64_t key) const {
    size_t i = Home(key);
    while (slots_[i].value != kEmptyValue) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    return kEmptyValue;
  }

  bool Contains(uint64_t key) const { return Find(key) != kEmptyValue; }

  /// Maps `key` to `value` (< kEmptyValue). The key must not be present.
  void Insert(uint64_t key, uint32_t value) {
    assert(value != kEmptyValue);
    if ((size_ + 1) * 3 > capacity_ * 2) Rebuild(capacity_ * 2);
    size_t i = Home(key);
    while (slots_[i].value != kEmptyValue) {
      assert(slots_[i].key != key);
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, value};
    ++size_;
  }

  /// Rebinds an existing `key` to `value`. The key must be present.
  void Assign(uint64_t key, uint32_t value) {
    assert(value != kEmptyValue);
    size_t i = Home(key);
    while (slots_[i].key != key || slots_[i].value == kEmptyValue) {
      assert(slots_[i].value != kEmptyValue);
      i = (i + 1) & mask_;
    }
    slots_[i].value = value;
  }

  /// Removes `key` (must be present), backward-shifting the tail of its
  /// probe cluster so no tombstone is left behind.
  void Erase(uint64_t key) {
    size_t i = Home(key);
    while (slots_[i].key != key || slots_[i].value == kEmptyValue) {
      assert(slots_[i].value != kEmptyValue);
      i = (i + 1) & mask_;
    }
    --size_;
    size_t j = i;
    for (;;) {
      slots_[i].value = kEmptyValue;
      // Find the next entry in the cluster that is allowed to move into
      // the hole at i: one whose home bucket does not lie cyclically in
      // (i, j] (otherwise moving it would break its own probe chain).
      for (;;) {
        j = (j + 1) & mask_;
        if (slots_[j].value == kEmptyValue) return;
        const size_t home = Home(slots_[j].key);
        if (((j - home) & mask_) >= ((j - i) & mask_)) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  void Clear() {
    for (Slot& slot : slots_) slot.value = kEmptyValue;
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t value = kEmptyValue;
  };

  static size_t CapacityFor(size_t entries) {
    size_t capacity = 16;
    while (entries * 3 > capacity * 2) capacity *= 2;
    return capacity;
  }

  size_t Home(uint64_t key) const {
    return static_cast<size_t>(FibonacciHash64(key)) & mask_;
  }

  void Rebuild(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    capacity_ = capacity;
    mask_ = capacity - 1;
    slots_.assign(capacity, Slot{});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.value != kEmptyValue) Insert(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_OPEN_HASH_MAP_H_
