#ifndef ODBGC_UTIL_INLINE_VECTOR_H_
#define ODBGC_UTIL_INLINE_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace odbgc {

/// A vector with a small-size-optimized inline buffer: the first `kInline`
/// elements live inside the object itself, so the common case allocates
/// nothing. Built for the inter-partition index, where the out-pointer and
/// remembered-set entry lists of a single object are almost always one or
/// two entries long — a full std::vector per object means a heap block and
/// a cache miss per lookup for a 16-byte payload.
///
/// Restricted to trivially destructible, trivially copy-constructible
/// element types (ids, slots, pairs thereof): no destructor calls are ever
/// needed, and growth/relocation is plain element copying.
template <typename T, uint32_t kInline>
class InlineVector {
  static_assert(std::is_trivially_destructible_v<T> &&
                    std::is_trivially_copy_constructible_v<T>,
                "InlineVector requires trivially destructible, trivially "
                "copy-constructible types");
  static_assert(kInline > 0, "inline capacity must be non-zero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVector() = default;

  InlineVector(const InlineVector& other) { CopyFrom(other); }

  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  InlineVector(InlineVector&& other) noexcept { MoveFrom(&other); }

  InlineVector& operator=(InlineVector&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  ~InlineVector() { Release(); }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t capacity() const { return capacity_; }

  T* data() { return is_heap() ? heap_ : InlineData(); }
  const T* data() const { return is_heap() ? heap_ : InlineData(); }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](uint32_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](uint32_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& back() {
    assert(size_ > 0);
    return data()[size_ - 1];
  }
  const T& back() const {
    assert(size_ > 0);
    return data()[size_ - 1];
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    ::new (static_cast<void*>(data() + size_)) T(value);
    ++size_;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  /// Erases the element at `pos`, preserving the order of the remainder
  /// (the index relies on entry lists keeping insertion order).
  iterator erase(iterator pos) {
    assert(pos >= begin() && pos < end());
    std::copy(pos + 1, end(), pos);
    --size_;
    return pos;
  }

  void clear() { size_ = 0; }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }
  bool is_heap() const { return capacity_ > kInline; }

  void Grow() {
    const uint32_t new_capacity = capacity_ * 2;
    T* block = new T[new_capacity];
    std::copy(data(), data() + size_, block);
    if (is_heap()) delete[] heap_;
    heap_ = block;
    capacity_ = new_capacity;
  }

  void Release() {
    if (is_heap()) delete[] heap_;
    capacity_ = kInline;
    size_ = 0;
  }

  void CopyFrom(const InlineVector& other) {
    if (other.is_heap()) {
      heap_ = new T[other.capacity_];
      capacity_ = other.capacity_;
      std::copy(other.heap_, other.heap_ + other.size_, heap_);
    } else {
      std::uninitialized_copy(other.InlineData(),
                              other.InlineData() + other.size_, InlineData());
    }
    size_ = other.size_;
  }

  void MoveFrom(InlineVector* other) {
    if (other->is_heap()) {
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->heap_ = nullptr;
      other->capacity_ = kInline;
      other->size_ = 0;
    } else {
      std::uninitialized_copy(other->InlineData(),
                              other->InlineData() + other->size_,
                              InlineData());
      size_ = other->size_;
      other->size_ = 0;
    }
  }

  union {
    alignas(T) unsigned char inline_storage_[kInline * sizeof(T)];
    T* heap_;
  };
  uint32_t size_ = 0;
  uint32_t capacity_ = kInline;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_INLINE_VECTOR_H_
