#ifndef ODBGC_UTIL_EPOCH_H_
#define ODBGC_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace odbgc {

/// Epoch-based reclamation: the grace-period machinery behind the
/// concurrent mutator/collector mode (DESIGN.md §14).
///
/// The manager keeps one global epoch counter and a fixed array of
/// per-thread slots. A thread that wants to access epoch-protected state
/// *pins* its slot (publishing the global epoch it entered under), works,
/// and *unpins*. Resources retired under epoch E may be reclaimed once
/// every pinned thread has observed an epoch strictly greater than E —
/// equivalently once `SafeEpoch() >= E` — because from then on no thread
/// can still hold a reference obtained in E or earlier.
///
/// The design follows the per-partition garbage-list scheme the ROADMAP
/// grounds this PR in (an `EpochManager` handing out thread slots, with
/// garbage lists gated on quiescence): threads are registered explicitly,
/// slots are cache-line padded so pin/unpin never false-shares, and
/// quiescence detection is a single scan over the slot array.
///
/// Thread-safety: all operations are safe to call concurrently. A slot
/// must be pinned/unpinned only by the thread that registered it (the
/// usual external-synchronization contract for per-thread handles).
class EpochManager {
 public:
  /// Maximum concurrently registered threads.
  static constexpr size_t kMaxThreads = 64;

  /// Local-epoch value meaning "not inside a critical section".
  static constexpr uint64_t kQuiescent = 0;

  /// One registered thread's published epoch. Obtained from
  /// RegisterThread; released with UnregisterThread.
  class ThreadSlot {
   public:
    ThreadSlot() = default;
    ThreadSlot(const ThreadSlot&) = delete;
    ThreadSlot& operator=(const ThreadSlot&) = delete;

   private:
    friend class EpochManager;
    std::atomic<uint64_t> local_epoch_{kQuiescent};
    std::atomic<bool> registered_{false};
    // Pad to a cache line: pin/unpin on one thread must not invalidate a
    // neighbouring thread's slot.
    char padding_[64 - 2 * sizeof(std::atomic<uint64_t>)];
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Claims a slot for the calling thread. Returns nullptr if kMaxThreads
  /// slots are already registered.
  ThreadSlot* RegisterThread();

  /// Releases a slot (must be unpinned). The slot may be handed to a
  /// later RegisterThread caller.
  void UnregisterThread(ThreadSlot* slot);

  /// Enters a critical section: publishes the current global epoch in the
  /// slot. While pinned, nothing retired under an epoch >= the published
  /// one will be reclaimed.
  void Pin(ThreadSlot* slot) {
    // seq_cst on the store orders the publication against the subsequent
    // reads of protected state; a reclaimer's SafeEpoch scan then either
    // sees the pin or the pin sees the newer epoch.
    slot->local_epoch_.store(epoch_.load(std::memory_order_seq_cst),
                             std::memory_order_seq_cst);
  }

  /// Leaves the critical section.
  void Unpin(ThreadSlot* slot) {
    slot->local_epoch_.store(kQuiescent, std::memory_order_release);
  }

  bool IsPinned(const ThreadSlot* slot) const {
    return slot->local_epoch_.load(std::memory_order_acquire) != kQuiescent;
  }

  /// The current global epoch (starts at 1; kQuiescent is never a valid
  /// epoch).
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Advances the global epoch and returns the new value. Cheap: one
  /// fetch_add; callers advance at their own cadence (the concurrent
  /// simulator ticks once per event batch).
  uint64_t BumpEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// The newest epoch whose retirees are safe to reclaim: one less than
  /// the minimum epoch any pinned thread entered under, or the current
  /// epoch when no thread is pinned. Monotonic under the pin/unpin
  /// contract in the sense that a resource safe at one call stays safe.
  uint64_t SafeEpoch() const;

  /// True when every registered thread is quiescent (no pins). The
  /// stop-the-world condition: everything retired so far is reclaimable.
  bool AllQuiescent() const { return SafeEpoch() == current_epoch(); }

  /// Registered thread count (diagnostics/tests).
  size_t registered_threads() const;

 private:
  std::atomic<uint64_t> epoch_{1};
  ThreadSlot slots_[kMaxThreads];
};

/// RAII pin over one slot.
class EpochGuard {
 public:
  EpochGuard(EpochManager* manager, EpochManager::ThreadSlot* slot)
      : manager_(manager), slot_(slot) {
    manager_->Pin(slot_);
  }
  ~EpochGuard() { manager_->Unpin(slot_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* const manager_;
  EpochManager::ThreadSlot* const slot_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_EPOCH_H_
