#include "util/time_series.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace odbgc {

double TimeSeries::MaxY() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.y);
  return best;
}

double TimeSeries::LastY() const {
  return points_.empty() ? 0.0 : points_.back().y;
}

TimeSeries TimeSeries::Downsample(size_t max_points) const {
  TimeSeries out(name_);
  if (points_.size() <= max_points || max_points < 2) {
    out.points_ = points_;
    return out;
  }
  const double step = static_cast<double>(points_.size() - 1) /
                      static_cast<double>(max_points - 1);
  size_t last_idx = points_.size();  // sentinel
  for (size_t i = 0; i < max_points; ++i) {
    size_t idx = static_cast<size_t>(std::llround(i * step));
    idx = std::min(idx, points_.size() - 1);
    if (idx == last_idx) continue;
    out.points_.push_back(points_[idx]);
    last_idx = idx;
  }
  return out;
}

void WriteGnuplot(const std::vector<TimeSeries>& series, std::ostream& os) {
  bool first = true;
  for (const auto& s : series) {
    if (!first) os << "\n\n";
    first = false;
    os << "# " << s.name() << '\n';
    for (const auto& p : s.points()) os << p.x << ' ' << p.y << '\n';
  }
}

void WriteCsv(const std::vector<TimeSeries>& series, std::ostream& os) {
  os << "x";
  for (const auto& s : series) os << ',' << s.name();
  os << '\n';

  // Merge by x: map x -> per-series y.
  std::map<double, std::vector<std::pair<size_t, double>>> rows;
  for (size_t i = 0; i < series.size(); ++i) {
    for (const auto& p : series[i].points()) {
      rows[p.x].push_back({i, p.y});
    }
  }
  for (const auto& [x, ys] : rows) {
    os << x;
    size_t k = 0;
    for (size_t i = 0; i < series.size(); ++i) {
      os << ',';
      if (k < ys.size() && ys[k].first == i) {
        os << ys[k].second;
        ++k;
      }
    }
    os << '\n';
  }
}

void RenderAscii(const std::vector<TimeSeries>& series, std::ostream& os,
                 size_t width, size_t height) {
  double xmax = 0.0, ymax = 0.0;
  for (const auto& s : series) {
    for (const auto& p : s.points()) {
      xmax = std::max(xmax, p.x);
      ymax = std::max(ymax, p.y);
    }
  }
  if (xmax <= 0.0 || ymax <= 0.0) {
    os << "(empty chart)\n";
    return;
  }
  std::vector<std::string> grid(height, std::string(width, ' '));
  const char* marks = "*+ox#@%&";
  for (size_t i = 0; i < series.size(); ++i) {
    const char mark = marks[i % 8];
    for (const auto& p : series[i].points()) {
      size_t cx = static_cast<size_t>(p.x / xmax * (width - 1));
      size_t cy = static_cast<size_t>(p.y / ymax * (height - 1));
      grid[height - 1 - cy][cx] = mark;
    }
  }
  os << "y max = " << ymax << '\n';
  for (const auto& row : grid) os << '|' << row << '\n';
  os << '+' << std::string(width, '-') << "> x max = " << xmax << '\n';
  for (size_t i = 0; i < series.size(); ++i) {
    os << "  " << marks[i % 8] << " = " << series[i].name() << '\n';
  }
}

}  // namespace odbgc
