#ifndef ODBGC_UTIL_CRC32_H_
#define ODBGC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace odbgc {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Used to frame
/// WAL records and to seal checkpoint files so that torn writes and bit
/// rot are detected as Corruption instead of being replayed.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace odbgc

#endif  // ODBGC_UTIL_CRC32_H_
