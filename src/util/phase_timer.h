#ifndef ODBGC_UTIL_PHASE_TIMER_H_
#define ODBGC_UTIL_PHASE_TIMER_H_

#include <chrono>

#include "util/metrics_registry.h"

namespace odbgc {

/// Wall-clock phase instrumentation for the simulator's own hot paths.
///
/// These timers measure *real* elapsed time — how long the simulator takes
/// to run, not how long the simulated disk would have taken. They must
/// therefore never feed the heap's main MetricsRegistry: that registry is
/// part of SimulationResult and of the checkpoint format, both of which
/// are bit-identical across runs, machines and thread counts. Wall-clock
/// counters live in a *separate* registry (CollectedHeap::wall_metrics())
/// that is excluded from results and checkpoints and consumed only by the
/// profiling harness (bench/hotpath.cc) and by humans.
///
/// Counter convention: names prefixed "wall." with a "_ns" suffix,
/// accumulated in nanoseconds under MetricPhase::kApplication (the
/// two-phase split carries no meaning for wall time).
///
/// Cost: one steady_clock read on entry and one on exit (~20-40 ns each).
/// The always-on scopes wrap rare, milliseconds-long phases (census,
/// collection); per-event scopes (trace apply, index maintenance) are
/// created with a null counter unless profiling was requested, which
/// compiles down to two untaken branches.
class ScopedWallTimer {
 public:
  /// Starts timing into `counter`. A null counter disables the scope
  /// entirely — no clock is read.
  explicit ScopedWallTimer(MetricCounter* counter)
      : counter_(counter),
        start_(counter != nullptr ? Clock::now() : Clock::time_point{}) {}

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

  ~ScopedWallTimer() {
    if (counter_ == nullptr) return;
    const auto elapsed = Clock::now() - start_;
    counter_->Add(
        MetricPhase::kApplication,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

 private:
  using Clock = std::chrono::steady_clock;
  MetricCounter* const counter_;
  const Clock::time_point start_;
};

/// The heap's wall-clock phase counters, registered once at construction
/// so hot-path scopes cost a pointer load, not a map lookup.
struct WallPhaseTimers {
  explicit WallPhaseTimers(MetricsRegistry* registry)
      : census(registry->Register("wall.census_ns")),
        collection(registry->Register("wall.collection_ns")),
        full_collection(registry->Register("wall.full_collection_ns")),
        index_maintenance(registry->Register("wall.index_maintenance_ns")),
        trace_apply(registry->Register("wall.trace_apply_ns")) {}

  MetricCounter* census;
  MetricCounter* collection;
  MetricCounter* full_collection;
  MetricCounter* index_maintenance;
  MetricCounter* trace_apply;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_PHASE_TIMER_H_
