#include "util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace odbgc {

const char* const TablePrinter::kSeparatorTag = "\x01sep";

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TablePrinter::SetAlign(size_t col, Align align) {
  if (col < aligns_.size()) aligns_[col] = align;
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.push_back({kSeparatorTag}); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) continue;
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      const size_t pad = widths[c] - cell.size();
      if (c != 0) os << "  ";
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cell;
      if (aligns_[c] == Align::kLeft && c + 1 != headers_.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  auto print_rule = [&] {
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c != 0 ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  };

  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) os << ',';
      if (c < cells.size()) os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) continue;
    print_row(row);
  }
}

std::string FormatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

std::string FormatCount(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", std::round(x));
  return buf;
}

}  // namespace odbgc
