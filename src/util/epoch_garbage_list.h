#ifndef ODBGC_UTIL_EPOCH_GARBAGE_LIST_H_
#define ODBGC_UTIL_EPOCH_GARBAGE_LIST_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "util/epoch.h"

namespace odbgc {

/// An epoch-gated garbage list: resources retired under an epoch stay
/// parked until the epoch manager proves no thread can still reference
/// them (`EpochManager::SafeEpoch() >= retire epoch`), then flow to a
/// caller-supplied reclaimer. The ObjectStore keeps one per partition for
/// deferred table-slot reclamation (DESIGN.md §14); the shape mirrors the
/// per-partition `GarbageList(EpochManager*)` design the ROADMAP grounds
/// this PR in.
///
/// Retire order is preserved within the list (FIFO), and retire epochs are
/// non-decreasing under the intended use (retire under the current epoch),
/// so reclamation pops a prefix.
///
/// Thread-safety: Retire and Reclaim* may race with each other (a mutator
/// retiring while a collector reclaims); the list serializes them with a
/// mutex. The *grace-period guarantee* — an item passed to the reclaimer
/// is unreachable by every thread — comes from the epoch discipline, not
/// from the lock: callers must only pass `safe_epoch` values obtained from
/// EpochManager::SafeEpoch().
template <typename T>
class EpochGarbageList {
 public:
  EpochGarbageList() = default;
  EpochGarbageList(const EpochGarbageList&) = delete;
  EpochGarbageList& operator=(const EpochGarbageList&) = delete;
  EpochGarbageList(EpochGarbageList&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mutex_);
    entries_ = std::move(other.entries_);
  }

  /// Parks `item`, reclaimable once SafeEpoch() reaches `epoch`.
  void Retire(T item, uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(Entry{epoch, std::move(item)});
  }

  /// Hands every entry with retire epoch <= `safe_epoch` to `reclaim`, in
  /// retire order, and removes it. Returns the number reclaimed. The
  /// reclaimer runs under the list lock — keep it cheap (the store's
  /// reclaimer just pushes a slot index onto a free list).
  template <typename Fn>
  size_t ReclaimUpTo(uint64_t safe_epoch, Fn&& reclaim) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    while (!entries_.empty() && entries_.front().epoch <= safe_epoch) {
      reclaim(std::move(entries_.front().item));
      entries_.pop_front();
      ++count;
    }
    return count;
  }

  /// Reclaims everything regardless of epoch — for shutdown/join points
  /// where the caller has proven global quiescence (all mutator threads
  /// joined).
  template <typename Fn>
  size_t DrainAll(Fn&& reclaim) {
    return ReclaimUpTo(UINT64_MAX, std::forward<Fn>(reclaim));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    uint64_t epoch;
    T item;
  };

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_EPOCH_GARBAGE_LIST_H_
