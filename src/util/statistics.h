#ifndef ODBGC_UTIL_STATISTICS_H_
#define ODBGC_UTIL_STATISTICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odbgc {

/// Accumulates a stream of samples and reports mean, sample standard
/// deviation, min and max. Uses Welford's online algorithm for numerical
/// stability; no sample storage.
class RunningStat {
 public:
  RunningStat() = default;

  /// Adds one sample.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStat& other);

  /// Number of samples added.
  size_t count() const { return count_; }

  /// Mean of the samples; 0 if empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Sample standard deviation (divides by n-1); 0 if fewer than 2 samples.
  double stddev() const;

  /// Population variance helper: sample variance (n-1 denominator).
  double variance() const;

  /// Smallest sample; 0 if empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }

  /// Largest sample; 0 if empty.
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: mean of a vector; 0 if empty.
double Mean(const std::vector<double>& xs);

/// Convenience: sample standard deviation of a vector; 0 if size < 2.
double StdDev(const std::vector<double>& xs);

}  // namespace odbgc

#endif  // ODBGC_UTIL_STATISTICS_H_
