#include "util/epoch.h"

namespace odbgc {

EpochManager::ThreadSlot* EpochManager::RegisterThread() {
  for (size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i].registered_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slots_[i].local_epoch_.store(kQuiescent, std::memory_order_release);
      return &slots_[i];
    }
  }
  return nullptr;
}

void EpochManager::UnregisterThread(ThreadSlot* slot) {
  slot->local_epoch_.store(kQuiescent, std::memory_order_release);
  slot->registered_.store(false, std::memory_order_release);
}

uint64_t EpochManager::SafeEpoch() const {
  // Read the global epoch BEFORE scanning the slots: a thread pinning
  // concurrently publishes an epoch at least as new as this read, so a
  // pin the scan misses cannot protect anything older than `limit` — the
  // returned bound stays conservative.
  uint64_t safe = epoch_.load(std::memory_order_seq_cst);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].registered_.load(std::memory_order_acquire)) continue;
    const uint64_t local =
        slots_[i].local_epoch_.load(std::memory_order_seq_cst);
    if (local == kQuiescent) continue;
    if (local - 1 < safe) safe = local - 1;
  }
  return safe;
}

size_t EpochManager::registered_threads() const {
  size_t count = 0;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    if (slots_[i].registered_.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

}  // namespace odbgc
