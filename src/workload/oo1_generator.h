#ifndef ODBGC_WORKLOAD_OO1_GENERATOR_H_
#define ODBGC_WORKLOAD_OO1_GENERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/event.h"
#include "util/random.h"
#include "util/status.h"

namespace odbgc {

/// Parameters for the OO1-style workload (below).
struct OO1Config {
  /// Initial database: parts are created until this many live bytes exist.
  uint64_t target_live_bytes = 5ull << 20;
  /// The trace ends once this much has been allocated in total.
  uint64_t total_alloc_bytes = 11ull << 20;

  /// Part object footprint in bytes (OO1 parts are ~100 bytes).
  uint32_t part_size = 100;
  /// Outgoing connections per part (OO1 fixes 3).
  uint32_t connections_per_part = 3;
  /// Connection locality: with this probability a connection targets a
  /// part created within +/- locality_window positions (OO1's "90% of
  /// connections are to the closest parts"); otherwise uniform.
  double locality_prob = 0.9;
  uint32_t locality_window = 100;

  /// Parts fetched by one Lookup operation (OO1: 1000; scaled down so a
  /// full run stays in the paper's event-count ballpark).
  uint32_t lookup_count = 100;
  /// Traversal depth (OO1: 7 levels; 6 keeps one run near the paper's
  /// 3-4M events).
  uint32_t traversal_depth = 6;
  /// Parts inserted / deleted per transaction round. OO1 has inserts but
  /// no deletes; deletes are what make the workload exercise garbage
  /// collection, so this generator pairs them.
  uint32_t inserts_per_round = 25;
  uint32_t deletes_per_round = 25;
  /// If true (default), deleting a part also clears the connections
  /// pointing at it (via the back-references an OO1 schema maintains);
  /// those clears are exactly the overwritten-pointer hints the paper's
  /// policies feed on. If false, deleted parts stay reachable from their
  /// referents and almost nothing ever becomes garbage.
  bool clear_incoming_on_delete = true;

  /// Safety cap on transaction rounds.
  uint64_t max_rounds = 1'000'000;

  Status Validate() const;
};

/// An OO1-flavoured workload: a database of fixed-size *parts*, each with
/// three outgoing *connections* biased to recently created parts, indexed
/// by a rooted linked structure of index nodes, exercised by the OO1
/// operation mix (Lookup, 7-level Traversal, Insert) plus Deletes.
///
/// Compared to the paper's augmented binary trees, this is a flat,
/// moderately cyclic object graph whose garbage arrives as individual
/// parts scattered across partitions — a deliberately harsher regime for
/// partition selection, and a robustness check that the paper's
/// conclusions are not an artifact of tree-shaped databases.
///
/// Deterministic per (config, seed), independent of the replaying heap.
class OO1Generator {
 public:
  OO1Generator(const OO1Config& config, uint64_t seed);

  /// Builds the database and runs transactions until done.
  Status Generate(TraceSink* sink);

  Status BuildInitialDatabase(TraceSink* sink);

  /// One transaction round: a Lookup, a Traversal, deletes, inserts.
  Status RunTransaction(TraceSink* sink);

  bool Done() const;

  uint64_t total_allocated_bytes() const { return allocated_bytes_; }
  size_t live_part_count() const { return live_parts_; }
  uint64_t rounds_run() const { return rounds_; }

 private:
  struct Part {
    std::vector<uint64_t> out;        // Connection targets (by slot).
    std::vector<uint64_t> in;         // Parts holding a connection to us.
    uint64_t index_node = 0;          // Index node referencing this part.
    uint32_t index_slot = 0;
    bool alive = false;
  };

  static constexpr uint32_t kIndexFanout = 16;

  // Creates one part (alloc + index registration + connections).
  Status CreatePart(TraceSink* sink);

  // Deletes one randomly chosen live part; false if none.
  Result<bool> DeleteRandomPart(TraceSink* sink);

  Status Lookup(TraceSink* sink);
  Status Traversal(TraceSink* sink);

  // Picks a connection target for the part at creation ordinal
  // `ordinal`; 0 if none available.
  uint64_t PickConnectionTarget(size_t ordinal);

  // Returns a (node, slot) with a free index slot, creating a new index
  // node if necessary.
  Result<std::pair<uint64_t, uint32_t>> AcquireIndexSlot(TraceSink* sink);

  // Picks a random live part id; 0 if none.
  uint64_t PickLivePart();

  const OO1Config config_;
  Rng rng_;

  std::unordered_map<uint64_t, Part> parts_;
  std::vector<uint64_t> creation_order_;  // Part ids, tombstones stay.
  size_t live_parts_ = 0;

  // Index: id of the rooted head node, plus free (node, slot) pairs.
  uint64_t index_head_ = 0;
  uint64_t index_tail_ = 0;
  std::vector<std::pair<uint64_t, uint32_t>> free_index_slots_;
  std::unordered_map<uint64_t, uint32_t> index_fill_;  // node -> used slots.

  uint64_t next_id_ = 1;
  uint64_t allocated_bytes_ = 0;
  uint64_t rounds_ = 0;
  bool built_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_WORKLOAD_OO1_GENERATOR_H_
