#ifndef ODBGC_WORKLOAD_WORKLOAD_CONFIG_H_
#define ODBGC_WORKLOAD_WORKLOAD_CONFIG_H_

#include <cstdint>

#include "util/status.h"

namespace odbgc {

/// Parameters of the synthetic test database and application (paper,
/// Section 5). Defaults reproduce the paper's base configuration: a forest
/// of augmented binary trees totalling ~5 MB of live data, ~11 MB
/// allocated over the run, 50-150 byte objects plus 64 KB large leaves at
/// ~20% of space, connectivity ~1.08, edge read/write ratio ~15-20.
struct WorkloadConfig {
  // ---- Database size ------------------------------------------------------
  /// Live-data target the mutation phase steers toward (bytes).
  uint64_t target_live_bytes = 5ull << 20;
  /// Total allocation volume at which the trace ends (bytes). The gap
  /// between this and the live target is the garbage the run generates.
  uint64_t total_alloc_bytes = 11ull << 20;

  // ---- Object population --------------------------------------------------
  /// Regular objects: total footprint uniform in [min, max] bytes.
  uint32_t min_object_size = 50;
  uint32_t max_object_size = 150;
  /// Pointer slots per regular object: 2 tree children + 1 dense slot.
  uint32_t slots_per_object = 3;
  /// OO7-style large leaf documents.
  uint32_t large_object_size = 64u << 10;
  /// Fraction of all allocated space in large objects (~0.2). Converted
  /// internally to a per-allocation probability.
  double large_space_fraction = 0.20;

  // ---- Connectivity -------------------------------------------------------
  /// Probability a new node also receives a dense edge to a random node of
  /// its tree. Database connectivity is ~1 + this value (each non-root
  /// node has one tree in-edge). The paper varies 1.005 .. 1.167.
  double dense_edge_prob = 0.083;
  /// Dense-edge target locality: with this probability the target is drawn
  /// from the `dense_window` most recently created nodes of the tree
  /// (clustered connectivity, as in real object bases); otherwise uniform
  /// over the whole tree. Pure-uniform (0.0) makes detached subtrees far
  /// more likely to stay partially reachable through old dense edges,
  /// inflating live retention and cross-partition nepotism well beyond
  /// what the paper reports.
  double dense_local_fraction = 0.9;
  uint32_t dense_window = 32;

  // ---- Tree shape ---------------------------------------------------------
  /// Nodes per initially created tree, uniform in [min, max].
  uint32_t tree_nodes_min = 500;
  uint32_t tree_nodes_max = 2000;
  /// Nodes per regrowth subtree, uniform in [min, max].
  uint32_t grow_nodes_min = 8;
  uint32_t grow_nodes_max = 24;

  // ---- Application behaviour ---------------------------------------------
  /// Traversal style odds per round (sum <= 1; remainder = no traversal).
  double p_depth_first = 0.20;
  double p_breadth_first = 0.50;
  /// Per-edge probability a traversal skips the subtree below it.
  double edge_skip_prob = 0.05;
  /// Per-visit probability of a data modification.
  double visit_modify_prob = 0.01;
  /// Mean tree-edge deletions per round (garbage creation rate).
  double deletions_per_round = 1.5;

  /// Hard cap on rounds (safety against mis-tuned configs).
  uint64_t max_rounds = 2'000'000;

  // ---- Derived helpers ----------------------------------------------------
  /// Probability that an allocation is a large leaf, derived from
  /// large_space_fraction and the mean small size.
  double LargeObjectProbability() const;

  /// Mean regular-object size.
  double MeanSmallObjectSize() const {
    return (min_object_size + max_object_size) / 2.0;
  }

  /// Approximate number of objects the whole run allocates: total volume
  /// over the mean allocation size (small/large mix). An estimate for
  /// pre-sizing id tables, not a bound.
  uint64_t ExpectedObjectCount() const {
    const double p_large = LargeObjectProbability();
    const double mean_size = p_large * large_object_size +
                             (1.0 - p_large) * MeanSmallObjectSize();
    if (mean_size <= 0.0) return 0;
    return static_cast<uint64_t>(
        static_cast<double>(total_alloc_bytes) / mean_size);
  }

  /// Returns a copy tuned to database connectivity `c` (pointers per
  /// object), as in the paper's Table 5 sweep.
  WorkloadConfig WithConnectivity(double c) const;

  /// Returns a copy scaled so the run allocates `total_bytes` in all
  /// (live target scales proportionally), as in the Figure 6 sweep.
  WorkloadConfig WithTotalAllocation(uint64_t total_bytes) const;

  /// Validates ranges; InvalidArgument on nonsense (min > max, zero
  /// sizes, probabilities outside [0,1]).
  Status Validate() const;
};

}  // namespace odbgc

#endif  // ODBGC_WORKLOAD_WORKLOAD_CONFIG_H_
