#include "workload/oo1_generator.h"

#include <cassert>

#include "odb/object_layout.h"

namespace odbgc {

namespace {
// Index nodes: slot 0 chains to the next node, slots 1..kIndexFanout hold
// parts.
constexpr uint32_t kIndexSlots = 17;
constexpr uint32_t kIndexNodeSize = 160;  // >= MinObjectSize(17) = 156.
}  // namespace

Status OO1Config::Validate() const {
  if (target_live_bytes == 0 || total_alloc_bytes < target_live_bytes) {
    return Status::InvalidArgument(
        "total_alloc_bytes must be >= target_live_bytes > 0");
  }
  if (part_size < MinObjectSize(connections_per_part)) {
    return Status::InvalidArgument("part_size too small for connections");
  }
  if (connections_per_part == 0 || connections_per_part > 8) {
    return Status::InvalidArgument("connections_per_part outside [1,8]");
  }
  if (locality_prob < 0.0 || locality_prob > 1.0) {
    return Status::InvalidArgument("locality_prob outside [0,1]");
  }
  if (locality_window == 0) {
    return Status::InvalidArgument("locality_window must be positive");
  }
  if (traversal_depth == 0 || traversal_depth > 10) {
    return Status::InvalidArgument("traversal_depth outside [1,10]");
  }
  return Status::Ok();
}

OO1Generator::OO1Generator(const OO1Config& config, uint64_t seed)
    : config_(config), rng_(seed) {}

Status OO1Generator::Generate(TraceSink* sink) {
  ODBGC_RETURN_IF_ERROR(config_.Validate());
  ODBGC_RETURN_IF_ERROR(BuildInitialDatabase(sink));
  while (!Done()) {
    ODBGC_RETURN_IF_ERROR(RunTransaction(sink));
  }
  return Status::Ok();
}

bool OO1Generator::Done() const {
  return built_ && (allocated_bytes_ >= config_.total_alloc_bytes ||
                    rounds_ >= config_.max_rounds);
}

Status OO1Generator::BuildInitialDatabase(TraceSink* sink) {
  if (built_) return Status::Ok();
  // Rooted index head.
  index_head_ = next_id_++;
  ODBGC_RETURN_IF_ERROR(
      sink->Append(TraceEvent::Alloc(index_head_, kIndexNodeSize,
                                     kIndexSlots, 0, 0)));
  ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::AddRoot(index_head_)));
  allocated_bytes_ += kIndexNodeSize;
  index_tail_ = index_head_;
  index_fill_.emplace(index_head_, 0);

  uint64_t live_bytes = kIndexNodeSize;
  while (live_bytes < config_.target_live_bytes) {
    ODBGC_RETURN_IF_ERROR(CreatePart(sink));
    live_bytes += config_.part_size;
  }
  built_ = true;
  return Status::Ok();
}

Result<std::pair<uint64_t, uint32_t>> OO1Generator::AcquireIndexSlot(
    TraceSink* sink) {
  if (!free_index_slots_.empty()) {
    auto slot = free_index_slots_.back();
    free_index_slots_.pop_back();
    return slot;
  }
  uint32_t& fill = index_fill_[index_tail_];
  if (fill < kIndexSlots - 1) {
    ++fill;
    return std::pair<uint64_t, uint32_t>{index_tail_, fill};
  }
  // Grow the index by one node, chained from the tail's slot 0.
  const uint64_t node = next_id_++;
  ODBGC_RETURN_IF_ERROR(sink->Append(
      TraceEvent::Alloc(node, kIndexNodeSize, kIndexSlots, index_tail_, 0)));
  ODBGC_RETURN_IF_ERROR(
      sink->Append(TraceEvent::WriteSlot(index_tail_, 0, node)));
  allocated_bytes_ += kIndexNodeSize;
  index_tail_ = node;
  index_fill_[node] = 1;
  return std::pair<uint64_t, uint32_t>{node, 1u};
}

uint64_t OO1Generator::PickConnectionTarget(size_t ordinal) {
  if (ordinal == 0) return 0;
  for (int attempt = 0; attempt < 16; ++attempt) {
    size_t pick;
    if (rng_.Bernoulli(config_.locality_prob)) {
      const size_t lo =
          ordinal > config_.locality_window ? ordinal - config_.locality_window
                                            : 0;
      pick = lo + rng_.UniformInt(ordinal - lo);
    } else {
      pick = rng_.UniformInt(ordinal);
    }
    const uint64_t id = creation_order_[pick];
    if (parts_.count(id) > 0) return id;
  }
  return 0;
}

Status OO1Generator::CreatePart(TraceSink* sink) {
  const uint64_t id = next_id_++;
  const uint64_t hint =
      creation_order_.empty() ? index_head_ : creation_order_.back();
  ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::Alloc(
      id, config_.part_size, config_.connections_per_part, hint, 0)));
  allocated_bytes_ += config_.part_size;

  Part part;
  part.alive = true;
  part.out.assign(config_.connections_per_part, 0);

  auto index_slot = AcquireIndexSlot(sink);
  ODBGC_RETURN_IF_ERROR(index_slot.status());
  part.index_node = index_slot->first;
  part.index_slot = index_slot->second;
  ODBGC_RETURN_IF_ERROR(sink->Append(
      TraceEvent::WriteSlot(index_slot->first, index_slot->second, id)));

  const size_t ordinal = creation_order_.size();
  creation_order_.push_back(id);
  parts_.emplace(id, std::move(part));
  ++live_parts_;

  for (uint32_t c = 0; c < config_.connections_per_part; ++c) {
    const uint64_t target = PickConnectionTarget(ordinal);
    if (target == 0) continue;
    ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::WriteSlot(id, c, target)));
    parts_.at(id).out[c] = target;
    parts_.at(target).in.push_back(id);
  }
  return Status::Ok();
}

uint64_t OO1Generator::PickLivePart() {
  if (live_parts_ == 0) return 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t id =
        creation_order_[rng_.UniformInt(creation_order_.size())];
    if (parts_.count(id) > 0) return id;
  }
  return 0;
}

Result<bool> OO1Generator::DeleteRandomPart(TraceSink* sink) {
  const uint64_t id = PickLivePart();
  if (id == 0) return false;
  Part& part = parts_.at(id);

  // Unhook from the index (the only rooted path to the part).
  ODBGC_RETURN_IF_ERROR(sink->Append(
      TraceEvent::WriteSlot(part.index_node, part.index_slot, 0)));
  free_index_slots_.push_back({part.index_node, part.index_slot});

  // Clear the connections into the part (back-reference maintenance).
  if (config_.clear_incoming_on_delete) {
    for (uint64_t source : part.in) {
      auto sit = parts_.find(source);
      if (sit == parts_.end()) continue;
      for (uint32_t s = 0; s < sit->second.out.size(); ++s) {
        if (sit->second.out[s] == id) {
          ODBGC_RETURN_IF_ERROR(
              sink->Append(TraceEvent::WriteSlot(source, s, 0)));
          sit->second.out[s] = 0;
        }
      }
    }
  }
  // Drop our entries in the targets' in-lists.
  for (uint64_t target : part.out) {
    if (target == 0) continue;
    auto tit = parts_.find(target);
    if (tit == parts_.end()) continue;
    auto& in = tit->second.in;
    for (size_t i = 0; i < in.size(); ++i) {
      if (in[i] == id) {
        in[i] = in.back();
        in.pop_back();
        break;
      }
    }
  }

  parts_.erase(id);
  --live_parts_;
  return true;
}

Status OO1Generator::Lookup(TraceSink* sink) {
  for (uint32_t i = 0; i < config_.lookup_count; ++i) {
    const uint64_t id = PickLivePart();
    if (id == 0) break;
    const Part& part = parts_.at(id);
    // The index probe reads the slot referencing the part, then the part.
    ODBGC_RETURN_IF_ERROR(sink->Append(
        TraceEvent::ReadSlot(part.index_node, part.index_slot)));
    ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::Visit(id)));
  }
  return Status::Ok();
}

Status OO1Generator::Traversal(TraceSink* sink) {
  const uint64_t start = PickLivePart();
  if (start == 0) return Status::Ok();
  // Depth-bounded DFS over connections, with OO1's revisits.
  std::vector<std::pair<uint64_t, uint32_t>> stack{{start, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::Visit(id)));
    if (depth >= config_.traversal_depth) continue;
    auto it = parts_.find(id);
    if (it == parts_.end()) continue;
    for (uint32_t s = 0; s < it->second.out.size(); ++s) {
      const uint64_t target = it->second.out[s];
      if (target == 0) continue;
      ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::ReadSlot(id, s)));
      // Logically deleted but still-referenced parts are not descended.
      if (parts_.count(target) > 0) stack.push_back({target, depth + 1});
    }
  }
  return Status::Ok();
}

Status OO1Generator::RunTransaction(TraceSink* sink) {
  if (!built_) ODBGC_RETURN_IF_ERROR(BuildInitialDatabase(sink));
  ODBGC_RETURN_IF_ERROR(Lookup(sink));
  ODBGC_RETURN_IF_ERROR(Traversal(sink));
  for (uint32_t i = 0; i < config_.deletes_per_round; ++i) {
    auto deleted = DeleteRandomPart(sink);
    ODBGC_RETURN_IF_ERROR(deleted.status());
    if (!*deleted) break;
  }
  for (uint32_t i = 0; i < config_.inserts_per_round &&
                       allocated_bytes_ < config_.total_alloc_bytes;
       ++i) {
    ODBGC_RETURN_IF_ERROR(CreatePart(sink));
  }
  ++rounds_;
  return Status::Ok();
}

}  // namespace odbgc
