#include "workload/workload_config.h"

namespace odbgc {

double WorkloadConfig::LargeObjectProbability() const {
  if (large_space_fraction <= 0.0) return 0.0;
  const double s = large_space_fraction;
  const double a = MeanSmallObjectSize();
  const double l = static_cast<double>(large_object_size);
  // Solve f*l / (f*l + (1-f)*a) = s for the object-count fraction f.
  return s * a / (l * (1.0 - s) + s * a);
}

WorkloadConfig WorkloadConfig::WithConnectivity(double c) const {
  WorkloadConfig copy = *this;
  copy.dense_edge_prob = c <= 1.0 ? 0.0 : c - 1.0;
  return copy;
}

WorkloadConfig WorkloadConfig::WithTotalAllocation(
    uint64_t total_bytes) const {
  WorkloadConfig copy = *this;
  const double scale = static_cast<double>(total_bytes) /
                       static_cast<double>(total_alloc_bytes);
  copy.total_alloc_bytes = total_bytes;
  copy.target_live_bytes =
      static_cast<uint64_t>(static_cast<double>(target_live_bytes) * scale);
  return copy;
}

Status WorkloadConfig::Validate() const {
  if (target_live_bytes == 0 || total_alloc_bytes < target_live_bytes) {
    return Status::InvalidArgument(
        "total_alloc_bytes must be >= target_live_bytes > 0");
  }
  if (min_object_size > max_object_size) {
    return Status::InvalidArgument("min_object_size > max_object_size");
  }
  if (min_object_size < 20 + 8ull * slots_per_object) {
    return Status::InvalidArgument(
        "min_object_size too small for header + slots");
  }
  if (slots_per_object < 2) {
    return Status::InvalidArgument("need at least 2 slots for tree children");
  }
  if (large_space_fraction < 0.0 || large_space_fraction >= 1.0) {
    return Status::InvalidArgument("large_space_fraction outside [0,1)");
  }
  if (dense_edge_prob < 0.0 || dense_edge_prob > 1.0) {
    return Status::InvalidArgument("dense_edge_prob outside [0,1]");
  }
  if (dense_local_fraction < 0.0 || dense_local_fraction > 1.0) {
    return Status::InvalidArgument("dense_local_fraction outside [0,1]");
  }
  if (dense_window == 0) {
    return Status::InvalidArgument("dense_window must be positive");
  }
  if (tree_nodes_min == 0 || tree_nodes_min > tree_nodes_max) {
    return Status::InvalidArgument("bad tree node range");
  }
  if (grow_nodes_min == 0 || grow_nodes_min > grow_nodes_max) {
    return Status::InvalidArgument("bad grow node range");
  }
  if (p_depth_first < 0.0 || p_breadth_first < 0.0 ||
      p_depth_first + p_breadth_first > 1.0) {
    return Status::InvalidArgument("bad traversal probabilities");
  }
  if (edge_skip_prob < 0.0 || edge_skip_prob > 1.0 ||
      visit_modify_prob < 0.0 || visit_modify_prob > 1.0) {
    return Status::InvalidArgument("bad per-edge/visit probabilities");
  }
  if (deletions_per_round < 0.0) {
    return Status::InvalidArgument("deletions_per_round negative");
  }
  return Status::Ok();
}

}  // namespace odbgc
