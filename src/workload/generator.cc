#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/serde.h"

namespace odbgc {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config,
                                     uint64_t seed)
    : config_(config), rng_(seed) {}

Status WorkloadGenerator::Generate(TraceSink* sink) {
  ODBGC_RETURN_IF_ERROR(config_.Validate());
  ODBGC_RETURN_IF_ERROR(BuildInitialDatabase(sink));
  while (!Done()) {
    ODBGC_RETURN_IF_ERROR(RunRound(sink));
  }
  return Status::Ok();
}

Status WorkloadGenerator::BuildInitialDatabase(TraceSink* sink) {
  if (built_) return Status::Ok();
  while (live_bytes_ < config_.target_live_bytes) {
    const uint32_t n = static_cast<uint32_t>(
        rng_.UniformRange(config_.tree_nodes_min, config_.tree_nodes_max));
    ODBGC_RETURN_IF_ERROR(BuildTree(sink, n));
  }
  built_ = true;
  return Status::Ok();
}

bool WorkloadGenerator::Done() const {
  return built_ && (allocated_bytes_ >= config_.total_alloc_bytes ||
                    rounds_ >= config_.max_rounds);
}

Status WorkloadGenerator::RunRound(TraceSink* sink) {
  if (!built_) ODBGC_RETURN_IF_ERROR(BuildInitialDatabase(sink));

  ODBGC_RETURN_IF_ERROR(Traverse(sink));

  // Garbage creation: a (fractional) number of edge deletions per round,
  // smoothed deterministically via an accumulator.
  deletion_deficit_ += config_.deletions_per_round;
  while (deletion_deficit_ >= 1.0) {
    deletion_deficit_ -= 1.0;
    auto deleted = DeleteRandomEdge(sink);
    ODBGC_RETURN_IF_ERROR(deleted.status());
    if (!*deleted) break;  // Forest has no deletable edges.
  }

  // Regrowth: hold live size near the target (and spend the allocation
  // budget that defines the end of the run).
  uint32_t grown = 0;
  while (live_bytes_ < config_.target_live_bytes &&
         allocated_bytes_ < config_.total_alloc_bytes && grown < 512) {
    const uint32_t k = static_cast<uint32_t>(
        rng_.UniformRange(config_.grow_nodes_min, config_.grow_nodes_max));
    const size_t t = PickTree();
    if (t == kNoTree) break;
    ODBGC_RETURN_IF_ERROR(GrowSubtree(sink, &trees_[t], k));
    grown += k;
  }

  ++rounds_;
  return Status::Ok();
}

Result<uint64_t> WorkloadGenerator::CreateNode(TraceSink* sink, GenTree* tree,
                                               uint64_t parent,
                                               bool allow_large) {
  const bool large =
      allow_large && rng_.Bernoulli(config_.LargeObjectProbability());
  const uint32_t size =
      large ? config_.large_object_size
            : static_cast<uint32_t>(rng_.UniformRange(
                  config_.min_object_size, config_.max_object_size));
  const uint32_t num_slots = large ? 0 : config_.slots_per_object;
  const uint64_t id = next_id_++;

  ODBGC_RETURN_IF_ERROR(sink->Append(
      TraceEvent::Alloc(id, size, num_slots, parent, large ? 1 : 0)));
  allocated_bytes_ += size;
  live_bytes_ += size;

  GenNode node;
  node.parent = parent;
  node.size = size;
  node.large = large;
  nodes_.emplace(id, node);
  AddToTree(tree, id);

  // Dense edge: slot 2 points at a pre-existing node of this tree —
  // usually a recently created one (clustered connectivity), sometimes a
  // uniformly random one. Index range excludes self (just appended).
  if (!large && config_.slots_per_object >= 3 && tree->nodes.size() >= 2 &&
      rng_.Bernoulli(config_.dense_edge_prob)) {
    const size_t n = tree->nodes.size() - 1;
    size_t lo = 0;
    if (n > config_.dense_window &&
        rng_.Bernoulli(config_.dense_local_fraction)) {
      lo = n - config_.dense_window;
    }
    const uint64_t target =
        tree->nodes[lo + rng_.UniformInt(n - lo)];
    ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::WriteSlot(id, 2, target)));
  }
  return id;
}

Status WorkloadGenerator::BuildTree(TraceSink* sink, uint32_t node_count) {
  trees_.push_back(GenTree{});
  const size_t tree_index = trees_.size() - 1;

  auto root = CreateNode(sink, &trees_[tree_index], 0, /*allow_large=*/false);
  ODBGC_RETURN_IF_ERROR(root.status());
  trees_[tree_index].root = *root;
  ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::AddRoot(*root)));

  uint32_t created = 1;
  std::deque<uint64_t> frontier{*root};
  while (created < node_count && !frontier.empty()) {
    const uint64_t parent = frontier.front();
    frontier.pop_front();
    for (uint32_t slot = 0; slot < 2 && created < node_count; ++slot) {
      auto child =
          CreateNode(sink, &trees_[tree_index], parent, /*allow_large=*/true);
      ODBGC_RETURN_IF_ERROR(child.status());
      nodes_[parent].children[slot] = *child;
      ODBGC_RETURN_IF_ERROR(
          sink->Append(TraceEvent::WriteSlot(parent, slot, *child)));
      ++created;
      if (!nodes_[*child].large) frontier.push_back(*child);
    }
  }
  return Status::Ok();
}

Status WorkloadGenerator::GrowSubtree(TraceSink* sink, GenTree* tree,
                                      uint32_t node_count) {
  if (tree->nodes.empty()) return Status::Ok();

  // Find an attachment point: a non-large node with a free child slot.
  // Leaves are plentiful, so rejection sampling converges fast.
  uint64_t attach = 0;
  for (int attempt = 0; attempt < 64 && attach == 0; ++attempt) {
    const uint64_t candidate =
        tree->nodes[rng_.UniformInt(tree->nodes.size())];
    const GenNode& node = nodes_.at(candidate);
    if (!node.large && (node.children[0] == 0 || node.children[1] == 0)) {
      attach = candidate;
    }
  }
  if (attach == 0) return Status::Ok();  // Saturated tree; skip.

  uint32_t created = 0;
  std::deque<uint64_t> frontier{attach};
  while (created < node_count && !frontier.empty()) {
    const uint64_t parent = frontier.front();
    frontier.pop_front();
    for (uint32_t slot = 0; slot < 2 && created < node_count; ++slot) {
      if (nodes_.at(parent).children[slot] != 0) continue;
      auto child = CreateNode(sink, tree, parent, /*allow_large=*/true);
      ODBGC_RETURN_IF_ERROR(child.status());
      nodes_[parent].children[slot] = *child;
      ODBGC_RETURN_IF_ERROR(
          sink->Append(TraceEvent::WriteSlot(parent, slot, *child)));
      ++created;
      if (!nodes_[*child].large) frontier.push_back(*child);
    }
  }
  return Status::Ok();
}

Result<bool> WorkloadGenerator::DeleteRandomEdge(TraceSink* sink) {
  if (nodes_.empty()) return false;

  // Uniform over tree edges = uniform over non-root nodes: pick a tree
  // weighted by node count, then a node within it, rejecting roots.
  for (int attempt = 0; attempt < 32; ++attempt) {
    uint64_t pick = rng_.UniformInt(nodes_.size());
    size_t tree_index = kNoTree;
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (pick < trees_[t].nodes.size()) {
        tree_index = t;
        break;
      }
      pick -= trees_[t].nodes.size();
    }
    if (tree_index == kNoTree) continue;
    GenTree& tree = trees_[tree_index];
    const uint64_t victim = tree.nodes[pick];
    const GenNode& node = nodes_.at(victim);
    if (node.parent == 0) continue;  // Tree root: no in-edge to delete.

    const GenNode& parent = nodes_.at(node.parent);
    const uint32_t slot = parent.children[0] == victim ? 0 : 1;
    assert(parent.children[slot] == victim);
    ODBGC_RETURN_IF_ERROR(
        sink->Append(TraceEvent::WriteSlot(node.parent, slot, 0)));
    nodes_[node.parent].children[slot] = 0;
    DetachSubtree(&tree, victim);
    return true;
  }
  return false;
}

void WorkloadGenerator::DetachSubtree(GenTree* tree, uint64_t node) {
  std::deque<uint64_t> queue{node};
  std::vector<uint64_t> doomed;
  while (!queue.empty()) {
    const uint64_t id = queue.front();
    queue.pop_front();
    doomed.push_back(id);
    const GenNode& n = nodes_.at(id);
    for (uint64_t child : n.children) {
      if (child != 0) queue.push_back(child);
    }
  }
  for (uint64_t id : doomed) {
    live_bytes_ -= nodes_.at(id).size;
    RemoveFromTree(tree, id);
    tree_of_node_.erase(id);
    nodes_.erase(id);
  }
}

Status WorkloadGenerator::Traverse(TraceSink* sink) {
  const double r = rng_.UniformDouble();
  bool breadth_first;
  if (r < config_.p_breadth_first) {
    breadth_first = true;
  } else if (r < config_.p_breadth_first + config_.p_depth_first) {
    breadth_first = false;
  } else {
    return Status::Ok();  // No traversal this round.
  }

  const size_t t = PickTree();
  if (t == kNoTree) return Status::Ok();
  const GenTree& tree = trees_[t];
  if (tree.root == 0 || nodes_.count(tree.root) == 0) return Status::Ok();

  std::deque<uint64_t> work{tree.root};
  while (!work.empty()) {
    uint64_t id;
    if (breadth_first) {
      id = work.front();
      work.pop_front();
    } else {
      id = work.back();
      work.pop_back();
    }
    ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::Visit(id)));
    if (rng_.Bernoulli(config_.visit_modify_prob)) {
      ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::WriteData(id)));
    }
    const GenNode& node = nodes_.at(id);
    if (node.large) continue;
    for (uint32_t slot = 0; slot < 2; ++slot) {
      const uint64_t child = node.children[slot];
      if (child == 0) continue;
      // Reading the edge is an I/O-bearing event even if we then skip it.
      ODBGC_RETURN_IF_ERROR(sink->Append(TraceEvent::ReadSlot(id, slot)));
      if (!rng_.Bernoulli(config_.edge_skip_prob)) work.push_back(child);
    }
  }
  return Status::Ok();
}

void WorkloadGenerator::AddToTree(GenTree* tree, uint64_t id) {
  tree->index.emplace(id, tree->nodes.size());
  tree->nodes.push_back(id);
  tree_of_node_.emplace(id, static_cast<size_t>(tree - trees_.data()));
}

void WorkloadGenerator::RemoveFromTree(GenTree* tree, uint64_t id) {
  auto it = tree->index.find(id);
  if (it == tree->index.end()) return;
  const size_t pos = it->second;
  const uint64_t last = tree->nodes.back();
  tree->nodes[pos] = last;
  tree->index[last] = pos;
  tree->nodes.pop_back();
  tree->index.erase(it);
}

WorkloadGenerator::GenTree* WorkloadGenerator::TreeOf(uint64_t node) {
  auto it = tree_of_node_.find(node);
  return it == tree_of_node_.end() ? nullptr : &trees_[it->second];
}

size_t WorkloadGenerator::PickTree() {
  if (trees_.empty()) return kNoTree;
  return rng_.UniformInt(trees_.size());
}

void WorkloadGenerator::SaveState(std::ostream& out) const {
  for (uint64_t word : rng_.GetState()) PutU64(out, word);
  PutVarint(out, next_id_);
  PutVarint(out, allocated_bytes_);
  PutVarint(out, live_bytes_);
  PutVarint(out, rounds_);
  PutDouble(out, deletion_deficit_);
  PutBool(out, built_);

  std::vector<uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  PutVarint(out, ids.size());
  for (uint64_t id : ids) {
    const GenNode& node = nodes_.at(id);
    PutVarint(out, id);
    PutVarint(out, node.parent);
    PutVarint(out, node.size);
    PutVarint(out, node.children[0]);
    PutVarint(out, node.children[1]);
    PutBool(out, node.large);
  }

  PutVarint(out, trees_.size());
  for (const GenTree& tree : trees_) {
    PutVarint(out, tree.root);
    // Pick-list order matters: random picks index into this vector.
    PutVarint(out, tree.nodes.size());
    for (uint64_t id : tree.nodes) PutVarint(out, id);
  }
}

Status WorkloadGenerator::LoadState(std::istream& in) {
  std::array<uint64_t, 4> rng_state;
  for (auto& word : rng_state) {
    auto w = GetU64(in);
    ODBGC_RETURN_IF_ERROR(w.status());
    word = *w;
  }
  auto get = [&in](uint64_t* out_value) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };
  uint64_t next_id = 0;
  uint64_t allocated = 0;
  uint64_t live = 0;
  uint64_t rounds = 0;
  ODBGC_RETURN_IF_ERROR(get(&next_id));
  ODBGC_RETURN_IF_ERROR(get(&allocated));
  ODBGC_RETURN_IF_ERROR(get(&live));
  ODBGC_RETURN_IF_ERROR(get(&rounds));
  auto deficit = GetDouble(in);
  ODBGC_RETURN_IF_ERROR(deficit.status());
  auto built = GetBool(in);
  ODBGC_RETURN_IF_ERROR(built.status());

  auto node_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(node_count.status());
  std::unordered_map<uint64_t, GenNode> nodes;
  nodes.reserve(*node_count);
  for (uint64_t i = 0; i < *node_count; ++i) {
    uint64_t id = 0;
    GenNode node;
    uint64_t size = 0;
    ODBGC_RETURN_IF_ERROR(get(&id));
    ODBGC_RETURN_IF_ERROR(get(&node.parent));
    ODBGC_RETURN_IF_ERROR(get(&size));
    node.size = static_cast<uint32_t>(size);
    ODBGC_RETURN_IF_ERROR(get(&node.children[0]));
    ODBGC_RETURN_IF_ERROR(get(&node.children[1]));
    auto large = GetBool(in);
    ODBGC_RETURN_IF_ERROR(large.status());
    node.large = *large;
    if (!nodes.emplace(id, node).second) {
      return Status::Corruption("generator state duplicate node");
    }
  }

  auto tree_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(tree_count.status());
  std::vector<GenTree> trees;
  trees.reserve(*tree_count);
  std::unordered_map<uint64_t, size_t> tree_of_node;
  for (uint64_t t = 0; t < *tree_count; ++t) {
    GenTree tree;
    ODBGC_RETURN_IF_ERROR(get(&tree.root));
    uint64_t pick_count = 0;
    ODBGC_RETURN_IF_ERROR(get(&pick_count));
    if (pick_count > *node_count) {
      return Status::Corruption("generator state pick list too long");
    }
    tree.nodes.reserve(pick_count);
    for (uint64_t i = 0; i < pick_count; ++i) {
      uint64_t id = 0;
      ODBGC_RETURN_IF_ERROR(get(&id));
      if (nodes.find(id) == nodes.end()) {
        return Status::Corruption("generator state pick list dangling node");
      }
      tree.index.emplace(id, tree.nodes.size());
      tree.nodes.push_back(id);
      if (!tree_of_node.emplace(id, static_cast<size_t>(t)).second) {
        return Status::Corruption("generator state node in two trees");
      }
    }
    trees.push_back(std::move(tree));
  }

  rng_.SetState(rng_state);
  next_id_ = next_id;
  allocated_bytes_ = allocated;
  live_bytes_ = live;
  rounds_ = rounds;
  deletion_deficit_ = *deficit;
  built_ = *built;
  nodes_ = std::move(nodes);
  trees_ = std::move(trees);
  tree_of_node_ = std::move(tree_of_node);
  return Status::Ok();
}

}  // namespace odbgc
