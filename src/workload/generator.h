#ifndef ODBGC_WORKLOAD_GENERATOR_H_
#define ODBGC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "trace/event.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/workload_config.h"

namespace odbgc {

/// The paper's synthetic test application (Section 5): probabilistically
/// creates, visits, and modifies a forest of augmented binary trees,
/// emitting the interaction as a stream of trace events.
///
/// Structure: each tree is a binary tree of 50-150 byte nodes built
/// breadth-first (placement near the parent), augmented with *dense* edges
/// connecting random nodes of the same tree (controlling connectivity),
/// with occasional 64 KB large-leaf documents (~20% of space, as in OO7).
/// Tree roots are database roots.
///
/// Behaviour: after building the initial forest to the live-size target,
/// the application runs rounds of
///  - a partial traversal of a random tree (50% breadth-first, 20%
///    depth-first, 30% none; 5% chance per edge of skipping the subtree;
///    1% of visits modify data),
///  - randomly deleting tree edges (the garbage generator — thanks to the
///    dense edges, all, part, or none of the detached subtree actually
///    dies), and
///  - regrowing subtrees at random nodes to hold live size near the
///    target,
/// until the configured total allocation volume has been reached.
///
/// The generator never looks at the heap: the same (config, seed) produces
/// the identical event stream no matter which policy replays it — the
/// foundation of the paper's trace-driven comparison.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config, uint64_t seed);

  /// Runs the whole workload into `sink` (build + rounds until done).
  Status Generate(TraceSink* sink);

  /// Builds the initial forest up to the live-data target.
  Status BuildInitialDatabase(TraceSink* sink);

  /// Runs one application round (traversal, deletions, regrowth).
  Status RunRound(TraceSink* sink);

  /// True once the allocation budget (or round cap) is exhausted.
  bool Done() const;

  // -- Progress introspection ----------------------------------------------
  uint64_t total_allocated_bytes() const { return allocated_bytes_; }
  /// Live bytes by the generator's own (tree-edge) accounting; dense edges
  /// may keep detached objects actually live in the database.
  uint64_t logical_live_bytes() const { return live_bytes_; }
  uint64_t rounds_run() const { return rounds_; }
  size_t tree_count() const { return trees_.size(); }
  size_t logical_node_count() const { return nodes_.size(); }

  /// Serializes the complete generator state — Rng stream, logical forest
  /// (node table plus each tree's pick list *in order*, since picks index
  /// into it), and progress counters — so a restored generator continues
  /// the exact event stream the original would have produced.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState on a generator constructed with
  /// the same config. Corruption on a malformed stream.
  Status LoadState(std::istream& in);

 private:
  struct GenNode {
    uint64_t parent = 0;  // 0 for tree roots.
    uint32_t size = 0;
    uint64_t children[2] = {0, 0};
    bool large = false;
  };
  struct GenTree {
    uint64_t root = 0;
    std::vector<uint64_t> nodes;                 // Pick list (live nodes).
    std::unordered_map<uint64_t, size_t> index;  // Node -> pick-list slot.
  };

  // Creates one node (emitting Alloc) in `tree`, possibly large (only when
  // allowed), registers it, maybe adds a dense edge. Returns its id.
  Result<uint64_t> CreateNode(TraceSink* sink, GenTree* tree, uint64_t parent,
                              bool allow_large);

  // Builds a tree of ~node_count nodes breadth-first; the root becomes a
  // database root.
  Status BuildTree(TraceSink* sink, uint32_t node_count);

  // Grows ~node_count new nodes under random attachment points of `tree`.
  Status GrowSubtree(TraceSink* sink, GenTree* tree, uint32_t node_count);

  // Deletes one random tree edge (uniform over edges), detaching the
  // subtree from the generator's logical state. False if no edge exists.
  Result<bool> DeleteRandomEdge(TraceSink* sink);

  // Partial traversal of a random tree.
  Status Traverse(TraceSink* sink);

  // Removes `node` and its logical subtree from tracking.
  void DetachSubtree(GenTree* tree, uint64_t node);

  void AddToTree(GenTree* tree, uint64_t id);
  void RemoveFromTree(GenTree* tree, uint64_t id);
  GenTree* TreeOf(uint64_t root_or_any);  // By containing tree lookup.

  // Picks a tree index; kInvalid if none.
  static constexpr size_t kNoTree = static_cast<size_t>(-1);
  size_t PickTree();

  const WorkloadConfig config_;
  Rng rng_;
  std::unordered_map<uint64_t, GenNode> nodes_;
  std::unordered_map<uint64_t, size_t> tree_of_node_;
  std::vector<GenTree> trees_;
  uint64_t next_id_ = 1;
  uint64_t allocated_bytes_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t rounds_ = 0;
  double deletion_deficit_ = 0.0;
  bool built_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_WORKLOAD_GENERATOR_H_
