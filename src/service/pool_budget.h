#ifndef ODBGC_SERVICE_POOL_BUDGET_H_
#define ODBGC_SERVICE_POOL_BUDGET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odbgc {

/// Frame accounting for a shared buffer budget across N single-owner
/// tenant pools (service/heap_service.h). Tenant heaps keep their own
/// BufferPool — frames are never literally shared, which is what preserves
/// per-tenant determinism — but the *budget* is global: the service
/// refreshes each tenant's residency here at its round barriers, and the
/// admission controller and cross-tenant scheduler read occupancy,
/// per-tenant headroom and pressure from this one ledger.
///
/// Pure deterministic accounting: no locking, no clocks. All mutation
/// happens at the service's barriers (single-threaded by construction), so
/// every number is a pure function of the simulated run.
class SharedPoolBudget {
 public:
  SharedPoolBudget() = default;

  /// Sizes the ledger. `total_frames` is the shared budget;
  /// `watermark_fraction` in (0, 1] arms admission control at
  /// floor(fraction x total) frames, <= 0 disables it (watermark 0).
  void Configure(uint64_t total_frames, double watermark_fraction,
                 size_t tenant_count);

  /// Refreshes one tenant's slice (resident frames and its pool cap).
  void Update(size_t tenant, uint64_t resident_frames, uint64_t frame_cap);

  /// Records the current occupancy (global and per tenant) into the peaks
  /// if higher. Called at consistent barrier points so the peaks are
  /// comparable across runs.
  void NotePeak();

  uint64_t total_frames() const { return total_frames_; }
  uint64_t watermark_frames() const { return watermark_frames_; }
  /// True when a watermark is armed (admission control + scheduler on).
  bool enabled() const { return watermark_frames_ > 0; }

  /// Resident frames across all tenants right now.
  uint64_t occupancy() const { return occupancy_; }
  /// Highest occupancy NotePeak has seen.
  uint64_t peak_occupancy() const { return peak_occupancy_; }
  /// True while occupancy is at or above the armed watermark.
  bool OverWatermark() const {
    return enabled() && occupancy_ >= watermark_frames_;
  }

  uint64_t resident(size_t tenant) const { return resident_[tenant]; }
  /// Highest residency NotePeak has seen for this tenant (the per-tenant
  /// column of the occupancy story — odbgc-report's tenants table).
  uint64_t peak_resident(size_t tenant) const { return peak_resident_[tenant]; }
  uint64_t cap(size_t tenant) const { return cap_[tenant]; }
  /// Frames tenant's pool could still grow by in one round (cap -
  /// resident) — the admission controller's projection unit.
  uint64_t Allowance(size_t tenant) const {
    return cap_[tenant] > resident_[tenant] ? cap_[tenant] - resident_[tenant]
                                            : 0;
  }
  /// resident/cap in [0, 1] (0 for an unsized pool).
  double TenantPressure(size_t tenant) const;

  size_t tenant_count() const { return resident_.size(); }

 private:
  uint64_t total_frames_ = 0;
  uint64_t watermark_frames_ = 0;
  uint64_t occupancy_ = 0;
  uint64_t peak_occupancy_ = 0;
  std::vector<uint64_t> resident_;
  std::vector<uint64_t> peak_resident_;
  std::vector<uint64_t> cap_;
};

}  // namespace odbgc

#endif  // ODBGC_SERVICE_POOL_BUDGET_H_
