#include "service/pool_budget.h"

namespace odbgc {

void SharedPoolBudget::Configure(uint64_t total_frames,
                                 double watermark_fraction,
                                 size_t tenant_count) {
  total_frames_ = total_frames;
  watermark_frames_ =
      watermark_fraction > 0.0
          ? static_cast<uint64_t>(watermark_fraction *
                                  static_cast<double>(total_frames))
          : 0;
  occupancy_ = 0;
  peak_occupancy_ = 0;
  resident_.assign(tenant_count, 0);
  peak_resident_.assign(tenant_count, 0);
  cap_.assign(tenant_count, 0);
}

void SharedPoolBudget::Update(size_t tenant, uint64_t resident_frames,
                              uint64_t frame_cap) {
  occupancy_ -= resident_[tenant];
  resident_[tenant] = resident_frames;
  cap_[tenant] = frame_cap;
  occupancy_ += resident_frames;
}

void SharedPoolBudget::NotePeak() {
  if (occupancy_ > peak_occupancy_) peak_occupancy_ = occupancy_;
  for (size_t t = 0; t < resident_.size(); ++t) {
    if (resident_[t] > peak_resident_[t]) peak_resident_[t] = resident_[t];
  }
}

double SharedPoolBudget::TenantPressure(size_t tenant) const {
  if (cap_[tenant] == 0) return 0.0;
  return static_cast<double>(resident_[tenant]) /
         static_cast<double>(cap_[tenant]);
}

}  // namespace odbgc
