#ifndef ODBGC_SERVICE_HEAP_SERVICE_H_
#define ODBGC_SERVICE_HEAP_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/selection_policy.h"
#include "service/pool_budget.h"
#include "sim/metrics.h"
#include "sim/spec.h"
#include "util/status.h"

namespace odbgc {

class IoScheduler;
class SharedFrameArena;

/// Everything a service run measures: the per-tenant SimulationResults
/// (the same records a standalone Simulator produces — tenant i of an
/// unpressured run is bitwise equal to a solo run of its spec), their
/// order-independent aggregate, and the service-level counters the
/// admission controller and cross-tenant scheduler produce.
struct ServiceResult {
  /// Per-tenant results in tenant order, with the names they ran under.
  std::vector<SimulationResult> tenants;
  std::vector<std::string> tenant_names;
  /// Sum over tenants (ConcurrentSimulator::AggregateResults). When the
  /// tenants ran different policies the aggregate's policy identity is
  /// "Mixed" — per-policy numbers live in `tenants`.
  SimulationResult aggregate;

  /// Round barriers the service ran (one batch wave per round).
  uint64_t rounds = 0;
  /// Collections the cross-tenant scheduler forced at barriers (these are
  /// in addition to each tenant's own trigger-driven collections, and are
  /// included in the per-tenant collection counts).
  uint64_t forced_collections = 0;
  /// Tenant-rounds denied admission by the watermark.
  uint64_t admission_stalls = 0;
  /// Rounds where no tenant fit under the watermark and one was admitted
  /// anyway (the progress guarantee). Zero means the occupancy bound
  /// `peak <= watermark + max tenant allowance` held unconditionally.
  uint64_t forced_admissions = 0;

  /// Shared-pool accounting (frames): the budget, the armed watermark (0
  /// when admission control was off), and the highest post-round
  /// occupancy any barrier observed.
  uint64_t shared_frame_budget = 0;
  uint64_t watermark_frames = 0;
  uint64_t peak_occupancy_frames = 0;

  /// Whether the fleet ran over one physically shared frame arena
  /// (ServiceSpec::shared_pool) rather than per-tenant pools.
  bool shared_pool = false;
  /// Under-quota evictions tenants performed because the shared arena was
  /// physically exhausted (0 in private mode, and 0 whenever the budget
  /// covers the admission bound — the invariance-gated regime).
  uint64_t squeezed_evictions = 0;
  /// Tenants retired mid-run by their departure_round.
  uint64_t departures = 0;
  /// Per-tenant occupancy story, indexed like `tenants`: the highest
  /// barrier residency each tenant reached, and how many rounds each was
  /// individually stalled by the watermark. These also land in the
  /// optional `service` section of each tenant manifest.
  std::vector<uint64_t> tenant_peak_resident_frames;
  std::vector<uint64_t> tenant_admission_stalls;
};

/// A multi-tenant heap service: N TenantSpecs — each an independent
/// CollectedHeap + Simulator replaying its own deterministic workload
/// stream — hosted over one shared frame budget, one shared IoScheduler
/// (for "file" backends), one worker pool, and (by default) one
/// physically shared BufferPool arena: a single frame array plus a
/// lock-striped residency table that every tenant pool draws from, with
/// each tenant's buffer_pages as its logical quota (DESIGN.md §17).
/// Tenants may arrive (TenantSpec::arrival_round) and depart
/// (departure_round) while the service runs, so a fleet can be grown to
/// thousands of tenants without hosting them all simultaneously.
///
/// Execution is round-based. Each round, every *admitted* tenant applies
/// up to `steps_per_round` batches of `events_per_batch` events of its
/// stream (in parallel across the worker pool; a tenant's own stream
/// always applies in order). At the barrier after each round the service,
/// single-threaded:
///
///   1. refreshes the SharedPoolBudget from every tenant pool's residency
///      and records the occupancy peak;
///   2. refreshes each tenant's GlobalView (the pressure snapshot
///      registry policies may consult via PolicyContext::global);
///   3. while occupancy sits at/above the watermark, forces collections
///      chosen by the cross-tenant scheduler: over all (tenant,
///      partition) candidates it ranks
///          rank(t, p) = NormalizedScore_t(p) * TenantPressure(t)
///      where NormalizedScore is the tenant policy's Score(p) divided by
///      the tenant's best score (1 when all scores are 0, as for Random),
///      and TenantPressure is resident/cap — the paper's per-heap victim
///      ordering, scaled by who is actually holding the shared budget.
///      Ties break to the lowest (tenant, partition). Collection sheds
///      residency through the collector's DiscardExtent of the victim;
///   4. computes next-round admissions: tenants are admitted in id order
///      while projected occupancy (current + each admitted tenant's
///      allowance, i.e. cap - resident) stays below the watermark. If
///      nobody fits, the first unfinished tenant is admitted anyway so
///      the service always finishes (counted as a forced admission).
///
/// Determinism: tenants are the determinism units — each result is a pure
/// function of its (config, seed) plus the admission/collection schedule,
/// and the schedule itself is computed at barriers from deterministic
/// state only. Hence results are thread-count invariant, and a
/// single-thread run is byte-stable end to end (including observer event
/// order). With the watermark unset (admission control off) no forced
/// collections or stalls occur and every tenant's result is bitwise
/// identical to a standalone Simulator run of its config — the service
/// equivalence contract (tests/service/service_equivalence_test.cc).
///
/// Threading: tenant heaps stay in plain serial mode; one worker applies
/// one tenant's round per round, and the pool's submit/wait edges order
/// each heap's cross-round (and barrier) accesses. The BufferPool
/// single-owner check holds: ownership hands off only through those
/// edges. The shared arena's striped table and allocator are the only
/// structures several tenants touch at once; they carry their own locks
/// (and stripe-scoped single-owner assertions). Rounds with at most one
/// runnable tenant run inline on the service thread — a small fleet never
/// pays TaskPool wake/park churn for work one thread does anyway.
class HeapService {
 public:
  explicit HeapService(ServiceSpec spec);
  ~HeapService();

  HeapService(const HeapService&) = delete;
  HeapService& operator=(const HeapService&) = delete;

  /// Runs every tenant to completion. InvalidArgument for a mis-specified
  /// service (see Validate in the .cc); otherwise the first tenant error
  /// in tenant order, or Ok. Call once.
  Status Run();

  /// Collects the results. Call once, after a successful Run().
  ServiceResult Finish();

  // -- Introspection (valid after Run) --------------------------------------
  const SharedPoolBudget& budget() const { return budget_; }
  size_t tenant_count() const { return spec_.tenants.size(); }
  uint64_t rounds() const { return rounds_; }
  uint64_t forced_collections() const { return forced_collections_; }

 private:
  struct TenantRun;

  Status Validate() const;
  /// Serial per-tenant setup: resolved name, rewritten device spec,
  /// observer wrapper, GlobalView binding, shared-arena binding.
  Status PrepareTenants();
  /// True once the service's round clock has reached the tenant's
  /// arrival_round (always true for arrival_round 0).
  bool Arrived(size_t tenant) const;
  /// Applies one batch of tenant `run`'s stream (refilling its buffer
  /// from the generator as needed); finalizes the tenant when the stream
  /// is exhausted. Runs on a worker (or inline when threads == 1).
  void StepTenant(TenantRun* run);
  /// One round's worth of work for a tenant: steps_per_round batches.
  void RunTenantRound(TenantRun* run);
  /// Barrier step 0: retires tenants whose departure_round has come
  /// (finalize, count, release shared frames).
  void RetireDepartures();
  /// Barrier step 1-2: budget refresh from pool residency + GlobalViews.
  void RefreshSharedState();
  /// Barrier step 3: the cross-tenant forced-collection loop.
  void CollectUnderPressure();
  /// Barrier step 4: next-round admission flags.
  void ComputeAdmissions(std::vector<char>* admitted);
  /// Writes one manifest per tenant into spec_.manifest_dir.
  Status WriteManifests() const;

  ServiceSpec spec_;
  // One worker pool for every "file" tenant's device (null when no tenant
  // runs on a file backend). Declared before runs_: the tenant devices
  // hold non-owning pointers into it, so it must outlive them.
  std::unique_ptr<IoScheduler> shared_io_;
  // The physically shared frame arena (null when spec_.shared_pool is
  // off). Same lifetime rule as shared_io_: tenant pools point into it.
  std::unique_ptr<SharedFrameArena> arena_;
  // Serializes tenant observer wrappers into spec_.observer (or a
  // tenant's own sink) across workers.
  std::mutex observer_mutex_;
  std::vector<std::unique_ptr<TenantRun>> runs_;
  std::vector<GlobalView> views_;
  SharedPoolBudget budget_;
  uint64_t rounds_ = 0;
  uint64_t forced_collections_ = 0;
  uint64_t admission_stalls_ = 0;
  uint64_t forced_admissions_ = 0;
  uint64_t departures_ = 0;
  std::vector<uint64_t> tenant_stalls_;
  bool ran_ = false;
};

/// Convenience: constructs, runs, and finishes a service in one call.
Result<ServiceResult> RunService(ServiceSpec spec);

}  // namespace odbgc

#endif  // ODBGC_SERVICE_HEAP_SERVICE_H_
