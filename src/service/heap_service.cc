#include "service/heap_service.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "buffer/frame_arena.h"
#include "observe/manifest.h"
#include "observe/observer.h"
#include "sim/concurrent_simulator.h"
#include "sim/simulator.h"
#include "storage/device_registry.h"
#include "storage/io_scheduler.h"
#include "trace/event.h"
#include "util/task_pool.h"
#include "workload/generator.h"

namespace odbgc {

namespace {

// Buffers generated events for the service's batch loop (the concurrent
// simulator's refill idiom).
class VectorSink : public TraceSink {
 public:
  explicit VectorSink(std::vector<TraceEvent>* out) : out_(out) {}
  Status Append(const TraceEvent& event) override {
    out_->push_back(event);
    return Status::Ok();
  }

 private:
  std::vector<TraceEvent>* const out_;
};

// Forced collections per barrier before the scheduler yields back to the
// admission controller: enough to shed a full round's growth, bounded so
// a pathological heap (nothing left to shed) cannot spin the barrier.
constexpr int kMaxForcedPerBarrier = 64;

}  // namespace

// Per-tenant execution state: a plain serial Simulator plus its generator
// stream, buffered one build phase / generator round at a time and applied
// in events_per_batch slices. Exactly one worker touches a TenantRun per
// round, and the barriers in between run on the service thread — the
// pool's submit/wait edges sequence the handoffs.
struct HeapService::TenantRun {
  SimulationConfig config;
  std::string name;
  std::unique_ptr<SynchronizedObserver> tagged;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<WorkloadGenerator> generator;
  std::vector<TraceEvent> buffer;
  size_t next_event = 0;
  bool built = false;
  bool pending_reset = false;  // Warm start: reset once build applies.
  bool done = false;
  Status status = Status::Ok();
  SimulationResult result;
};

HeapService::HeapService(ServiceSpec spec) : spec_(std::move(spec)) {}

HeapService::~HeapService() = default;

Status HeapService::Validate() const {
  if (spec_.tenants.empty()) {
    return Status::InvalidArgument("a service needs at least one tenant");
  }
  if (spec_.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (spec_.events_per_batch == 0) {
    return Status::InvalidArgument("events_per_batch must be >= 1");
  }
  if (spec_.steps_per_round == 0) {
    return Status::InvalidArgument("steps_per_round must be >= 1");
  }
  if (spec_.shared_pool &&
      spec_.tenants.size() > SharedFrameArena::kMaxTenants) {
    return Status::InvalidArgument(
        "too many tenants for the shared arena's composite key space");
  }
  if (spec_.admission_watermark < 0.0 || spec_.admission_watermark > 1.0) {
    return Status::InvalidArgument("admission_watermark must be in [0, 1]");
  }
  std::unordered_set<std::string> names;
  for (size_t i = 0; i < spec_.tenants.size(); ++i) {
    const TenantSpec& tenant = spec_.tenants[i];
    const std::string label =
        tenant.name.empty() ? "tenant" + std::to_string(i) : tenant.name;
    if (!names.insert(label).second) {
      return Status::InvalidArgument("duplicate tenant name: " + label);
    }
    const SimulationConfig& config = tenant.config;
    if (config.mutator_threads > 1 || config.trace_shards != 0) {
      return Status::InvalidArgument(
          label + ": service tenants run serially (the service is the "
                  "concurrency layer); drop mutator_threads/trace_shards");
    }
    if (!config.wal_dir.empty() || config.checkpoint_every_rounds != 0) {
      return Status::InvalidArgument(
          label + ": the service does not support durability (wal_dir / "
                  "checkpoint_every_rounds)");
    }
    if (config.heap.buffer_pages == 0) {
      return Status::InvalidArgument(label + ": buffer_pages must be >= 1");
    }
    if (tenant.departure_round != 0 &&
        tenant.departure_round <= tenant.arrival_round) {
      return Status::InvalidArgument(
          label + ": departure_round must be after arrival_round");
    }
    if (!config.heap.policy_name.empty() &&
        !IsPolicyRegistered(config.heap.policy_name)) {
      return Status::InvalidArgument(label + ": unknown policy \"" +
                                     config.heap.policy_name + "\"");
    }
    if (!config.heap.device_spec.empty() &&
        !IsDeviceRegistered(config.heap.device_spec)) {
      return Status::InvalidArgument(label + ": unknown device spec \"" +
                                     config.heap.device_spec + "\"");
    }
    ODBGC_RETURN_IF_ERROR(config.workload.Validate());
  }
  return Status::Ok();
}

Status HeapService::PrepareTenants() {
  const size_t n = spec_.tenants.size();
  runs_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto run = std::make_unique<TenantRun>();
    run->config = spec_.tenants[i].config;
    run->name = spec_.tenants[i].name.empty()
                    ? "tenant" + std::to_string(i)
                    : spec_.tenants[i].name;
    run->config.mutator_threads = 1;
    run->config.trace_shards = 0;
    run->config.heap.global_view = &views_[i];
    if (arena_ != nullptr) {
      // Physically shared frames: the tenant's pool becomes a logical
      // quota over the arena, under its tenant id in the composite key.
      run->config.heap.shared_arena = arena_.get();
      run->config.heap.arena_tenant = static_cast<uint32_t>(i);
    }
    // The service observer (or the tenant's own sink) watches every
    // tenant through a serializing wrapper tagged tenant index + 1, so 0
    // stays "standalone serial run".
    SimObserver* inner = spec_.observer != nullptr
                             ? spec_.observer
                             : run->config.heap.observer;
    if (inner != nullptr) {
      run->tagged = std::make_unique<SynchronizedObserver>(
          inner, &observer_mutex_, static_cast<uint32_t>(i) + 1);
      run->config.heap.observer = run->tagged.get();
    }
    if (DeviceSpecName(run->config.heap.device_spec) == "file") {
      // All file tenants share one scheduler pool (the experiment
      // runner's grid idiom) instead of spawning one per tenant; tenant
      // names are unique, so the per-run suffix keeps paths disjoint.
      if (shared_io_ == nullptr) {
        IoSchedulerOptions io;
        io.threads = run->config.heap.file_device.io_threads;
        io.backend = run->config.heap.file_device.backend;
        shared_io_ = std::make_unique<IoScheduler>(io);
      }
      run->config.heap.file_device.shared_scheduler = shared_io_.get();
      run->config.heap.device_spec = PerRunDeviceSpec(
          run->config.heap.device_spec, run->name, run->config.seed);
    }
    runs_.push_back(std::move(run));
  }
  return Status::Ok();
}

bool HeapService::Arrived(size_t tenant) const {
  return spec_.tenants[tenant].arrival_round <= rounds_;
}

void HeapService::RunTenantRound(TenantRun* run) {
  // K-step batching: one worker wake (or one inline visit) services K
  // batches before the next barrier, so GlobalView refresh and TaskPool
  // wake/park churn are amortized K-fold.
  for (uint64_t k = 0; k < spec_.steps_per_round && !run->done; ++k) {
    StepTenant(run);
  }
  if (run->done && run->sim != nullptr) {
    // A finished tenant's borrowed frames return to the arena right away
    // (no counter moves — its result is already finalized), so parked
    // residency never pins the shared budget. No-op for private pools.
    run->sim->heap().mutable_buffer().ReleaseArenaFrames();
  }
}

void HeapService::RetireDepartures() {
  for (size_t i = 0; i < runs_.size(); ++i) {
    const uint64_t departure = spec_.tenants[i].departure_round;
    if (departure == 0 || rounds_ < departure) continue;
    TenantRun& run = *runs_[i];
    if (run.done) continue;
    // A tenant retired before it ever started still leaves a well-formed
    // (empty) result behind: construct and immediately finalize it.
    if (run.sim == nullptr) {
      run.sim = std::make_unique<Simulator>(run.config);
    }
    run.result = run.sim->Finish();
    run.done = true;
    ++departures_;
    run.sim->heap().mutable_buffer().ReleaseArenaFrames();
  }
}

void HeapService::StepTenant(TenantRun* run) {
  if (run->done) return;
  // First batch: materialize the tenant on a worker, so construction
  // parallelizes across tenants too.
  if (run->sim == nullptr) {
    run->sim = std::make_unique<Simulator>(run->config);
    run->generator = std::make_unique<WorkloadGenerator>(
        run->config.workload, run->config.seed);
  }
  Simulator& sim = *run->sim;

  // Refill the buffer when drained: the build phase first, then one
  // generator round per refill, then tenant finalization.
  if (run->next_event >= run->buffer.size()) {
    run->buffer.clear();
    run->next_event = 0;
    VectorSink sink(&run->buffer);
    Status refill;
    if (!run->built) {
      refill = run->generator->BuildInitialDatabase(&sink);
      run->built = true;
      if (run->config.warm_start) run->pending_reset = true;
    } else if (!run->generator->Done()) {
      refill = run->generator->RunRound(&sink);
    } else {
      run->result = sim.Finish();
      run->done = true;
      return;
    }
    if (!refill.ok()) {
      run->status = refill;
      run->done = true;
      return;
    }
  }

  uint64_t in_batch = 0;
  while (in_batch < spec_.events_per_batch &&
         run->next_event < run->buffer.size()) {
    const Status applied = sim.Append(run->buffer[run->next_event]);
    ++run->next_event;
    ++in_batch;
    if (!applied.ok()) {
      run->status = applied;
      run->done = true;
      return;
    }
  }
  // Warm start: measurements reset the moment the build stream has fully
  // applied, before any round event (Simulator::Run's behaviour).
  if (run->pending_reset && run->next_event >= run->buffer.size()) {
    sim.ResetMeasurementForWarmStart();
    run->pending_reset = false;
  }
}

void HeapService::RefreshSharedState() {
  uint64_t total_footprint = 0;
  for (size_t t = 0; t < runs_.size(); ++t) {
    TenantRun& run = *runs_[t];
    // A finished tenant's pool is released back to the shared budget (its
    // heap idles; a real service would shut it down) — otherwise parked
    // residency would pin the watermark high against the still-running
    // tenants with nothing left to shed.
    const bool active = run.sim != nullptr && !run.done;
    // A dormant (not yet arrived) tenant holds no slice of the budget —
    // its cap enters the ledger only once it can actually fault pages in.
    budget_.Update(t, active ? run.sim->heap().buffer().resident_pages() : 0,
                   Arrived(t) ? run.config.heap.buffer_pages : 0);
    // Footprint (partitions x partition bytes) as the live-size signal: it
    // is the DBA-visible database size, cheap, and monotone in pressure.
    views_[t].tenant_live_bytes =
        active ? run.sim->heap().store().total_bytes() : 0;
    total_footprint += views_[t].tenant_live_bytes;
  }
  for (size_t t = 0; t < runs_.size(); ++t) {
    views_[t].shared_pool_frames = budget_.total_frames();
    views_[t].shared_resident_frames = budget_.occupancy();
    views_[t].tenant_resident_frames = budget_.resident(t);
    views_[t].tenant_frame_cap = budget_.cap(t);
    views_[t].total_live_bytes = total_footprint;
    // The shared scheduler drains every batch synchronously, so at a
    // barrier its queue really is empty.
    views_[t].device_queue_depth = 0;
  }
}

void HeapService::CollectUnderPressure() {
  int forced = 0;
  while (budget_.OverWatermark() && forced < kMaxForcedPerBarrier) {
    // Rank every (tenant, partition): the tenant policy's within-heap
    // victim ordering (normalized so heaps are comparable) scaled by how
    // much of the shared budget the tenant is actually holding. Strict >
    // keeps ties on the lowest (tenant, partition) — deterministic.
    size_t best_tenant = runs_.size();
    PartitionId best_victim = kInvalidPartition;
    double best_rank = -1.0;
    for (size_t t = 0; t < runs_.size(); ++t) {
      TenantRun& run = *runs_[t];
      if (run.sim == nullptr || run.done) continue;
      CollectedHeap& heap = run.sim->heap();
      if (heap.policy().kind() == PolicyKind::kNoCollection) continue;
      const std::vector<PartitionId> candidates = heap.CollectionCandidates();
      if (candidates.empty()) continue;
      double max_score = 0.0;
      for (PartitionId p : candidates) {
        max_score = std::max(max_score, heap.policy().Score(p));
      }
      const double pressure = budget_.TenantPressure(t);
      for (PartitionId p : candidates) {
        const double norm =
            max_score > 0.0 ? heap.policy().Score(p) / max_score : 1.0;
        const double rank = norm * pressure;
        if (rank > best_rank) {
          best_rank = rank;
          best_tenant = t;
          best_victim = p;
        }
      }
    }
    if (best_tenant == runs_.size()) break;  // Nothing collectable.

    const uint64_t before = budget_.occupancy();
    TenantRun& run = *runs_[best_tenant];
    const auto collected = run.sim->heap().CollectPartition(best_victim);
    if (!collected.status().ok()) {
      run.status = collected.status();
      run.done = true;
      break;
    }
    ++forced_collections_;
    ++forced;
    RefreshSharedState();
    // The victim's pages were discarded; if occupancy did not retreat
    // (copy-target faults ate the savings), more forcing won't help.
    if (budget_.occupancy() >= before) break;
  }
}

void HeapService::ComputeAdmissions(std::vector<char>* admitted) {
  const size_t n = runs_.size();
  // Admit in tenant id order while the projection — current occupancy
  // plus every admitted tenant's allowance (the most its pool can grow in
  // one round) — stays under the watermark. The bound this yields:
  // post-round occupancy <= watermark + one tenant's allowance. Dormant
  // tenants (arrival_round in the future) are neither admitted nor
  // counted as stalled — they are not in the fleet yet.
  uint64_t projected = budget_.occupancy();
  bool any = false;
  size_t first_pending = n;
  for (size_t i = 0; i < n; ++i) {
    (*admitted)[i] = 0;
    if (runs_[i]->done || !Arrived(i)) continue;
    if (first_pending == n) first_pending = i;
    if (!budget_.enabled()) {
      (*admitted)[i] = 1;
      any = true;
      continue;
    }
    if (projected < budget_.watermark_frames()) {
      (*admitted)[i] = 1;
      projected += budget_.Allowance(i);
      any = true;
    }
  }
  // Progress guarantee: when nobody fits (occupancy stuck at/above the
  // watermark with nothing left to shed), one tenant runs anyway so the
  // service always terminates.
  if (budget_.enabled() && !any && first_pending < n) {
    (*admitted)[first_pending] = 1;
    ++forced_admissions_;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!runs_[i]->done && Arrived(i) && (*admitted)[i] == 0) {
      ++admission_stalls_;
      ++tenant_stalls_[i];
    }
  }
}

Status HeapService::WriteManifests() const {
  if (spec_.manifest_dir.empty()) return Status::Ok();
  for (size_t i = 0; i < runs_.size(); ++i) {
    const TenantRun& run = *runs_[i];
    // Per-tenant service telemetry rides along in the optional `service`
    // section (digest-excluded, like `measured`): the standalone result
    // surface stays byte-identical, and odbgc-report's tenants table gets
    // its occupancy/stall columns.
    ManifestServiceInfo service;
    service.peak_resident_frames = budget_.peak_resident(i);
    service.admission_stalls = tenant_stalls_[i];
    service.shared_pool = arena_ != nullptr;
    const Json manifest = BuildManifest(run.config, run.result, &service);
    const std::string path =
        spec_.manifest_dir + "/" + run.name + "-" +
        ManifestFileName(run.result.policy_name, run.result.seed);
    ODBGC_RETURN_IF_ERROR(WriteManifestFile(path, manifest));
  }
  return Status::Ok();
}

Status HeapService::Run() {
  ODBGC_RETURN_IF_ERROR(Validate());
  const size_t n = spec_.tenants.size();
  views_.assign(n, GlobalView{});
  tenant_stalls_.assign(n, 0);

  uint64_t total_cap = 0;
  for (const TenantSpec& tenant : spec_.tenants) {
    total_cap += tenant.config.heap.buffer_pages;
  }
  const uint64_t budget_frames =
      spec_.shared_frame_budget != 0 ? spec_.shared_frame_budget : total_cap;
  // The arena is sized to the budget: physical capacity and the ledger's
  // denominator are the same number, so "over budget" means "the frames
  // physically ran out", not just an accounting overdraft.
  if (spec_.shared_pool) {
    arena_ = std::make_unique<SharedFrameArena>(budget_frames);
  }
  ODBGC_RETURN_IF_ERROR(PrepareTenants());
  budget_.Configure(budget_frames, spec_.admission_watermark, n);
  RefreshSharedState();  // Caps registered; occupancy 0; views zeroed.

  std::unique_ptr<TaskPool> pool;
  if (spec_.threads > 1) pool = std::make_unique<TaskPool>(spec_.threads);

  const auto all_done = [this] {
    for (const auto& run : runs_) {
      if (!run->done) return false;
    }
    return true;
  };

  // The first round goes through admission control like every other one —
  // otherwise an overcommitted fleet would all fault in at once and the
  // occupancy bound would not hold from round 1.
  std::vector<char> admitted(n, 1);
  ComputeAdmissions(&admitted);
  while (!all_done()) {
    size_t runnable = 0;
    for (size_t i = 0; i < n; ++i) {
      if (admitted[i] != 0 && !runs_[i]->done) ++runnable;
    }
    if (pool != nullptr && runnable > 1) {
      TaskPool::TaskGroup group;
      for (size_t i = 0; i < n; ++i) {
        if (admitted[i] == 0 || runs_[i]->done) continue;
        TenantRun* run = runs_[i].get();
        pool->Submit(&group,
                     [this, run](TaskPool::Context&) { RunTenantRound(run); });
      }
      pool->Wait(&group);
    } else {
      // Inline, in tenant order — byte-stable end to end at one thread,
      // and a round with at most one runnable tenant skips the worker
      // pool entirely rather than paying wake/park churn for no overlap.
      for (size_t i = 0; i < n; ++i) {
        if (admitted[i] != 0 && !runs_[i]->done) {
          RunTenantRound(runs_[i].get());
        }
      }
    }
    ++rounds_;

    // Barrier: departures, accounting, pressure view, forced collections,
    // admission.
    RetireDepartures();
    RefreshSharedState();
    budget_.NotePeak();
    if (budget_.enabled()) CollectUnderPressure();
    ComputeAdmissions(&admitted);
  }

  ran_ = true;
  // First tenant error in tenant order — deterministic regardless of
  // which worker hit it first.
  for (const auto& run : runs_) {
    ODBGC_RETURN_IF_ERROR(run->status);
  }
  return WriteManifests();
}

ServiceResult HeapService::Finish() {
  assert(ran_ && "Finish called before a successful Run");
  ServiceResult out;
  out.tenants.reserve(runs_.size());
  for (const auto& run : runs_) {
    out.tenants.push_back(run->result);
    out.tenant_names.push_back(run->name);
  }
  out.aggregate = ConcurrentSimulator::AggregateResults(out.tenants);
  for (const SimulationResult& result : out.tenants) {
    if (result.policy_name != out.tenants.front().policy_name) {
      out.aggregate.policy_name = "Mixed";
      break;
    }
  }
  out.rounds = rounds_;
  out.forced_collections = forced_collections_;
  out.admission_stalls = admission_stalls_;
  out.forced_admissions = forced_admissions_;
  out.shared_frame_budget = budget_.total_frames();
  out.watermark_frames = budget_.watermark_frames();
  out.peak_occupancy_frames = budget_.peak_occupancy();
  out.shared_pool = arena_ != nullptr;
  out.squeezed_evictions =
      arena_ != nullptr ? arena_->squeezed_evictions() : 0;
  out.departures = departures_;
  out.tenant_admission_stalls = tenant_stalls_;
  out.tenant_peak_resident_frames.reserve(runs_.size());
  for (size_t t = 0; t < runs_.size(); ++t) {
    out.tenant_peak_resident_frames.push_back(budget_.peak_resident(t));
  }
  return out;
}

Result<ServiceResult> RunService(ServiceSpec spec) {
  HeapService service(std::move(spec));
  ODBGC_RETURN_IF_ERROR(service.Run());
  return service.Finish();
}

}  // namespace odbgc
