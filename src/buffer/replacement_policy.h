#ifndef ODBGC_BUFFER_REPLACEMENT_POLICY_H_
#define ODBGC_BUFFER_REPLACEMENT_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace odbgc {

/// Which eviction decision the buffer pool runs. Strict LRU is the
/// paper's cost model (Section 4.2) and the default; the alternatives
/// exist because cache behavior interacts with the collector's access
/// pattern (a collection scans a whole partition, which pollutes an LRU
/// buffer but not a scan-resistant one).
enum class ReplacementPolicyKind : uint8_t {
  kLru = 0,    ///< Strict least-recently-used (the paper).
  kClock = 1,  ///< Second-chance clock (one ref bit, sweeping hand).
  kTwoQ = 2,   ///< 2Q: FIFO probation + ghost list + protected LRU.
};

const char* ReplacementPolicyName(ReplacementPolicyKind kind);

/// The eviction decision of a BufferPool, extracted so backends can be
/// swapped without touching the pool's fetch/write-back machinery. The
/// pool owns frames, dirty bits and I/O; the policy only tracks which
/// resident frame to victimize next.
///
/// Policies are addressed by *frame index* (the pool's fixed frame
/// array), not by page id: recency/ring/queue membership lives in
/// intrusive index-linked lists over a flat per-frame node array, so a
/// hit or insert is a couple of indexed stores with no hashing or node
/// allocation. The page id is recorded per frame at OnInsert purely so
/// Order() and Save() can speak the page-level language the checkpoint
/// format and the tests use.
///
/// The pool guarantees: OnInsert for every frame becoming resident,
/// OnHit for every access to a resident frame, exactly one of
/// OnEvict/OnErase when a frame's page leaves, and ChooseVictim only
/// when at least one frame is resident. Implementations must be
/// deterministic — runs are replayed for crash recovery and compared
/// across thread counts.
class ReplacementPolicy {
 public:
  using FrameIndex = uint32_t;
  /// "No such frame" — matches OpenIndexMap::kEmptyValue so the pool's
  /// page table doubles as the Load-time resolver.
  static constexpr FrameIndex kNoFrame = UINT32_MAX;

  /// Maps a page id from a serialized state back to the frame the pool
  /// re-faulted it into (kNoFrame if the page is not resident).
  using FrameResolver = std::function<FrameIndex(PageId)>;

  virtual ~ReplacementPolicy() = default;

  virtual ReplacementPolicyKind kind() const = 0;

  /// `page` became resident in `frame` (miss fill).
  virtual void OnInsert(FrameIndex frame, PageId page) = 0;

  /// Resident `frame` was accessed again.
  virtual void OnHit(FrameIndex frame) = 0;

  /// Picks the frame to evict. May mutate scan state (the clock hand)
  /// but must leave the chosen frame tracked until OnEvict/OnErase
  /// removes it.
  virtual FrameIndex ChooseVictim() = 0;

  /// `frame`'s page was evicted by replacement (2Q remembers it in the
  /// ghost list). Default: same as OnErase.
  virtual void OnEvict(FrameIndex frame) { OnErase(frame); }

  /// `frame`'s page was removed without eviction semantics
  /// (DiscardExtent, restore rebuilds).
  virtual void OnErase(FrameIndex frame) = 0;

  /// Resident pages, most-recently-valuable first. For LRU this is exact
  /// MRU→LRU order; other policies document their own order. The last
  /// entry is always the current victim candidate's region.
  virtual std::vector<PageId> Order() const = 0;

  size_t tracked() const { return Order().size(); }

  /// Drops all state (residency went away wholesale).
  virtual void Clear() = 0;

  /// Serializes the full replacement state (exactly enough for Load to
  /// reproduce future decisions bit-for-bit). The format is page-keyed
  /// and unchanged from the node-based implementation, so old
  /// checkpoints restore into the dense layout.
  virtual void Save(std::ostream& out) const = 0;

  /// Restores state written by Save onto an empty policy. `frame_of`
  /// resolves each serialized page id to the frame the pool re-faulted
  /// it into; a page the pool does not hold is Corruption.
  virtual Status Load(std::istream& in, const FrameResolver& frame_of) = 0;
};

/// Constructs the given policy for a pool of `frame_count` frames.
std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(
    ReplacementPolicyKind kind, size_t frame_count);

}  // namespace odbgc

#endif  // ODBGC_BUFFER_REPLACEMENT_POLICY_H_
