#ifndef ODBGC_BUFFER_REPLACEMENT_POLICY_H_
#define ODBGC_BUFFER_REPLACEMENT_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace odbgc {

/// Which eviction decision the buffer pool runs. Strict LRU is the
/// paper's cost model (Section 4.2) and the default; the alternatives
/// exist because cache behavior interacts with the collector's access
/// pattern (a collection scans a whole partition, which pollutes an LRU
/// buffer but not a scan-resistant one).
enum class ReplacementPolicyKind : uint8_t {
  kLru = 0,    ///< Strict least-recently-used (the paper).
  kClock = 1,  ///< Second-chance clock (one ref bit, sweeping hand).
  kTwoQ = 2,   ///< 2Q: FIFO probation + ghost list + protected LRU.
};

const char* ReplacementPolicyName(ReplacementPolicyKind kind);

/// The eviction decision of a BufferPool, extracted so backends can be
/// swapped without touching the pool's fetch/write-back machinery. The
/// pool owns frames, dirty bits and I/O; the policy only tracks which
/// resident page to victimize next.
///
/// The pool guarantees: OnInsert for every page becoming resident, OnHit
/// for every access to a resident page, exactly one of OnEvict/OnErase
/// when a page leaves, and ChooseVictim only when at least one page is
/// resident. Implementations must be deterministic — runs are replayed
/// for crash recovery and compared across thread counts.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual ReplacementPolicyKind kind() const = 0;

  /// `page` became resident (miss fill).
  virtual void OnInsert(PageId page) = 0;

  /// Resident `page` was accessed again.
  virtual void OnHit(PageId page) = 0;

  /// Picks the page to evict. May mutate scan state (the clock hand) but
  /// must leave the chosen page tracked until OnEvict/OnErase removes it.
  virtual PageId ChooseVictim() = 0;

  /// `page` was evicted by replacement (2Q remembers it in the ghost
  /// list). Default: same as OnErase.
  virtual void OnEvict(PageId page) { OnErase(page); }

  /// `page` was removed without eviction semantics (DiscardExtent,
  /// restore rebuilds).
  virtual void OnErase(PageId page) = 0;

  /// Resident pages, most-recently-valuable first. For LRU this is exact
  /// MRU→LRU order; other policies document their own order. The last
  /// entry is always the current victim candidate's region.
  virtual std::vector<PageId> Order() const = 0;

  size_t tracked() const { return Order().size(); }

  /// Drops all state (residency went away wholesale).
  virtual void Clear() = 0;

  /// Serializes the full replacement state (exactly enough for Load to
  /// reproduce future decisions bit-for-bit).
  virtual void Save(std::ostream& out) const = 0;

  /// Restores state written by Save onto an empty policy.
  virtual Status Load(std::istream& in) = 0;
};

/// Constructs the given policy for a pool of `frame_count` frames.
std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(
    ReplacementPolicyKind kind, size_t frame_count);

}  // namespace odbgc

#endif  // ODBGC_BUFFER_REPLACEMENT_POLICY_H_
