#ifndef ODBGC_BUFFER_BUFFER_POOL_H_
#define ODBGC_BUFFER_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "buffer/replacement_policy.h"
#include "storage/extent.h"
#include "storage/page.h"
#include "storage/page_device.h"
#include "util/access_check.h"
#include "util/metrics_registry.h"
#include "util/open_hash_map.h"
#include "util/status.h"

namespace odbgc {

class SharedFrameArena;

/// Who is driving I/O right now. The paper reports "Application I/Os" and
/// "Collector I/Os" separately (Table 2); the pool attributes each device
/// transfer to the phase that was active when it happened.
enum class IoPhase { kApplication, kCollector };

/// Access intent for a page fetch.
enum class AccessMode { kRead, kWrite };

/// Snapshot of the pool's counters, split by phase. Derived from the
/// metrics registry on each call to `stats()`; kept as a struct so report
/// code and tests read plain fields.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Device page reads (fills on miss), per phase.
  uint64_t reads_app = 0;
  uint64_t reads_gc = 0;
  /// Device page writes (write-back of dirty pages), per phase.
  uint64_t writes_app = 0;
  uint64_t writes_gc = 0;

  uint64_t app_io() const { return reads_app + writes_app; }
  uint64_t gc_io() const { return reads_gc + writes_gc; }
  uint64_t total_io() const { return app_io() + gc_io(); }
};

/// A fixed-capacity database I/O buffer with pluggable replacement and
/// write-back (dirty pages reach the device only on eviction or flush).
/// Strict LRU is the default and matches the paper's cost model
/// (Section 4.2) exactly.
///
/// The pool owns frame memory; `GetPage` returns a span into the frame,
/// valid only until the next call that may evict (any GetPage). This is the
/// single point through which the object store and collector touch pages,
/// so its counters are the experiment's I/O measurement. Counters live in
/// the device's MetricsRegistry ("buffer.*" names); `stats()` snapshots
/// them.
///
/// Threading: single-owner. The pool has no internal locking; exactly one
/// thread may be inside its methods at a time. Handing an idle pool from
/// one thread to another (with a happens-before edge, as the batch
/// schedulers do for whole heaps) is fine. Debug builds enforce this with
/// an ExclusiveAccessCheck — two threads caught inside mutating methods at
/// once abort rather than corrupt the frame table silently.
///
/// Shared-arena mode (DESIGN.md §17): constructed with a SharedFrameArena,
/// the pool stops owning physical frames. `frame_count` becomes the
/// tenant's *logical quota*: replacement state, residency accounting and
/// every counter run over logical slots [0, frame_count) exactly as in
/// private mode — which is what makes per-tenant results byte-identical to
/// a private pool — while each resident slot borrows one physical frame
/// from the arena and the page→slot residency map lives in the arena's
/// lock-striped table under the (tenant, page) composite key. The pool
/// itself stays single-owner; only the arena's striped structures are
/// touched by several tenants at once.
class BufferPool {
 public:
  /// `device` must outlive the pool. `frame_count` > 0 frames of
  /// device->page_size() bytes each. With `arena` non-null (which must
  /// then outlive the pool) the pool runs in shared-arena mode under
  /// tenant id `arena_tenant`; frame payloads then come from the arena and
  /// `frame_count` is the logical quota.
  BufferPool(PageDevice* device, size_t frame_count,
             ReplacementPolicyKind policy = ReplacementPolicyKind::kLru,
             SharedFrameArena* arena = nullptr, uint32_t arena_tenant = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches `page` into the pool (reading from the device on a miss,
  /// evicting the policy's victim if full), notifies the replacement
  /// policy, marks it dirty if `mode` is kWrite, and returns its bytes.
  ///
  /// Returns OutOfRange if the page does not exist on the device.
  Result<std::span<std::byte>> GetPage(PageId page, AccessMode mode);

  /// Writes all dirty frames back to the device (counted in the current
  /// phase) as one WritePages batch — a real-I/O backend runs the batch
  /// through its scheduler and fsyncs once at the end; counters are
  /// identical to per-frame write-back. Frames stay resident and become
  /// clean.
  Status FlushAll();

  /// Hints the device that `extent` is about to be scanned (the collector
  /// announces its victim before the copy traversal). Pages already
  /// resident are filtered out — those reads hit the pool, not the device.
  /// Advisory and free of simulated I/O: backends without read-ahead
  /// ignore it.
  void PrefetchExtent(const PageExtent& extent);

  /// Drops any resident frames covering `extent` *without* write-back.
  /// Used when a partition's contents have been discarded wholesale (its
  /// garbage does not deserve the write I/O). Dirty data is lost by design.
  void DiscardExtent(const PageExtent& extent);

  /// Sets the accounting phase for subsequent transfers. The phase lives in
  /// the metrics registry, so device-level counters attribute to the same
  /// phase.
  void set_phase(IoPhase phase);
  IoPhase phase() const;

  BufferStats stats() const;
  void ResetStats();

  ReplacementPolicyKind replacement() const { return policy_->kind(); }
  MetricsRegistry* metrics() const { return registry_; }

  size_t frame_count() const { return frame_count_; }
  size_t resident_pages() const { return resident_count_; }

  /// True when the pool borrows frames from a shared arena.
  bool shared_arena() const { return arena_ != nullptr; }
  /// Evictions this pool performed *under* quota because the shared arena
  /// had no free frame (always 0 in private mode; see SharedFrameArena).
  uint64_t squeezed_evictions() const { return squeezed_evictions_; }

  /// Shared-arena mode only: drops every resident page without write-back
  /// or counter traffic and returns the borrowed frames to the arena. The
  /// service calls this when a tenant finishes or departs, so parked
  /// residency never pins physical frames against live tenants. No-op in
  /// private mode.
  void ReleaseArenaFrames();

  /// True if `page` is currently resident (test/inspection helper; does not
  /// touch replacement order or counters).
  bool IsResident(PageId page) const;

  /// True if `page` is resident and dirty (test/inspection helper).
  bool IsDirty(PageId page) const;

  /// Resident pages in the policy's replacement order (for strict LRU,
  /// most recent first — see ReplacementPolicy::Order).
  std::vector<PageId> LruOrder() const;

  /// Serializes the residency set and the replacement policy's state
  /// without touching frames or counters. Counters are NOT included — they
  /// live in the metrics registry, which the heap checkpoints separately.
  /// Frame bytes are not included either: page contents are rematerialized
  /// from the store image, and no component reads object data back out of
  /// page bytes.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState: current dirty frames are written
  /// to the device (in page order), the pool is emptied, the recorded
  /// residency set is re-faulted in page order, and the replacement state
  /// is loaded. The transfers this issues perturb device-model state and
  /// counters; the caller (heap) restores the device state and the metrics
  /// registry *after* this, in that order. Corruption on a malformed
  /// stream, a mismatched frame count, or a mismatched policy kind.
  Status LoadState(std::istream& in);

 private:
  /// One fixed slot of the pool. `page` is kInvalidPageId while the frame
  /// is free; `data` is sized lazily on first use and then reused across
  /// occupants. In shared-arena mode `data` stays empty and the payload is
  /// the arena frame `arena_frame` (UINT32_MAX while none is borrowed).
  struct Frame {
    std::vector<std::byte> data;
    PageId page = kInvalidPageId;
    uint32_t arena_frame = UINT32_MAX;
    bool dirty = false;
  };

  // The payload bytes of `frame`: its own buffer, or the borrowed arena
  // frame's.
  std::vector<std::byte>& FrameBytes(Frame& frame);

  // Writes back `frame` if dirty (charging the current phase).
  Status WriteBack(Frame& frame);

  // Picks the frame for a new resident page: a recycled free slot if one
  // exists, else the next never-used one. The caller evicts first when
  // the pool is full.
  uint32_t AllocFrame();

  // Shared-arena miss path (GetPage's tail once the local lookup missed).
  Result<std::span<std::byte>> FillShared(PageId page, AccessMode mode);

  // Evicts the slot the policy chose (write-back, policy + arena-table
  // drop) and returns it for reuse; the borrowed frame stays attached.
  Status EvictSlotShared(uint32_t* slot);

  PageDevice* const device_;
  MetricsRegistry* const registry_;
  const size_t frame_count_;
  std::unique_ptr<ReplacementPolicy> policy_;

  /// The frame array plus an open-addressed page→frame index — the dense
  /// replacement for the old unordered_map<PageId, Frame>: residency
  /// lookup is a couple of linear probes into a flat slot array, and the
  /// frame payloads never move once allocated.
  std::vector<Frame> frames_;
  OpenIndexMap page_to_frame_;
  std::vector<uint32_t> free_frames_;
  uint32_t used_frames_ = 0;  // High-water mark of ever-touched frames.
  size_t resident_count_ = 0;

  /// Shared-arena mode (null in private mode): the physical frames and
  /// the striped (tenant, page) → slot residency table.
  SharedFrameArena* const arena_;
  const uint32_t arena_tenant_;
  uint64_t squeezed_evictions_ = 0;

  MetricCounter* const hits_;
  MetricCounter* const misses_;
  MetricCounter* const reads_;
  MetricCounter* const writes_;

  // Debug-build single-owner enforcement (see class comment). Mutable so
  // logically-const inspectors can participate in the check.
  mutable ExclusiveAccessCheck access_check_;
};

/// RAII helper that switches the pool's accounting phase and restores the
/// previous phase on destruction. The collector wraps its work in
/// `PhaseScope scope(pool, IoPhase::kCollector);`.
class PhaseScope {
 public:
  PhaseScope(BufferPool* pool, IoPhase phase)
      : pool_(pool), saved_(pool->phase()) {
    pool_->set_phase(phase);
  }
  ~PhaseScope() { pool_->set_phase(saved_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  BufferPool* const pool_;
  const IoPhase saved_;
};

}  // namespace odbgc

#endif  // ODBGC_BUFFER_BUFFER_POOL_H_
