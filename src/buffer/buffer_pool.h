#ifndef ODBGC_BUFFER_BUFFER_POOL_H_
#define ODBGC_BUFFER_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/disk.h"
#include "storage/extent.h"
#include "storage/page.h"
#include "util/status.h"

namespace odbgc {

/// Who is driving I/O right now. The paper reports "Application I/Os" and
/// "Collector I/Os" separately (Table 2); the pool attributes each disk
/// transfer to the phase that was active when it happened.
enum class IoPhase { kApplication, kCollector };

/// Access intent for a page fetch.
enum class AccessMode { kRead, kWrite };

/// Cumulative buffer pool counters, split by phase.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Disk page reads (fills on miss), per phase.
  uint64_t reads_app = 0;
  uint64_t reads_gc = 0;
  /// Disk page writes (write-back of dirty pages), per phase.
  uint64_t writes_app = 0;
  uint64_t writes_gc = 0;

  uint64_t app_io() const { return reads_app + writes_app; }
  uint64_t gc_io() const { return reads_gc + writes_gc; }
  uint64_t total_io() const { return app_io() + gc_io(); }
};

/// A fixed-capacity database I/O buffer with strict LRU replacement and
/// write-back (dirty pages are written to disk only on eviction or flush),
/// as specified in the paper's cost model (Section 4.2).
///
/// The pool owns frame memory; `GetPage` returns a span into the frame,
/// valid only until the next call that may evict (any GetPage). This is the
/// single point through which the object store and collector touch pages,
/// so BufferStats is the experiment's I/O measurement.
class BufferPool {
 public:
  /// `disk` must outlive the pool. `frame_count` > 0 frames of
  /// disk->page_size() bytes each.
  BufferPool(SimulatedDisk* disk, size_t frame_count);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches `page` into the pool (reading from disk on a miss, evicting
  /// the LRU frame if full), marks it most-recently-used, marks it dirty if
  /// `mode` is kWrite, and returns its bytes.
  ///
  /// Returns OutOfRange if the page does not exist on disk.
  Result<std::span<std::byte>> GetPage(PageId page, AccessMode mode);

  /// Writes all dirty frames back to disk (counted in the current phase).
  /// Frames stay resident and become clean.
  Status FlushAll();

  /// Drops any resident frames covering `extent` *without* write-back.
  /// Used when a partition's contents have been discarded wholesale (its
  /// garbage does not deserve the write I/O). Dirty data is lost by design.
  void DiscardExtent(const PageExtent& extent);

  /// Sets the accounting phase for subsequent transfers.
  void set_phase(IoPhase phase) { phase_ = phase; }
  IoPhase phase() const { return phase_; }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  size_t frame_count() const { return frame_count_; }
  size_t resident_pages() const { return frames_.size(); }

  /// True if `page` is currently resident (test/inspection helper; does not
  /// touch LRU order or counters).
  bool IsResident(PageId page) const { return frames_.count(page) > 0; }

  /// True if `page` is resident and dirty (test/inspection helper).
  bool IsDirty(PageId page) const;

  /// Pages in LRU order, most recent first (test/inspection helper).
  std::vector<PageId> LruOrder() const;

  /// Serializes the replacement state — (page, dirty) pairs in LRU order
  /// plus the counters — without touching frames or counters. Frame bytes
  /// are not included: page contents are rematerialized from the store
  /// image, and no component reads object data back out of page bytes.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState: current dirty frames are written
  /// to disk (in page order, uncounted — the caller restores disk counters
  /// afterwards), the pool is emptied, and the recorded residency set is
  /// re-faulted least-recent-first so LRU order, dirty flags and counters
  /// all match the checkpointed pool. Corruption on a malformed stream or a
  /// mismatched frame count.
  Status LoadState(std::istream& in);

 private:
  struct Frame {
    std::vector<std::byte> data;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  // Writes back `frame` if dirty (charging the current phase).
  Status WriteBack(PageId page, Frame& frame);

  SimulatedDisk* const disk_;
  const size_t frame_count_;
  IoPhase phase_ = IoPhase::kApplication;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // Front = most recently used.
  BufferStats stats_;
};

/// RAII helper that switches the pool's accounting phase and restores the
/// previous phase on destruction. The collector wraps its work in
/// `PhaseScope scope(pool, IoPhase::kCollector);`.
class PhaseScope {
 public:
  PhaseScope(BufferPool* pool, IoPhase phase)
      : pool_(pool), saved_(pool->phase()) {
    pool_->set_phase(phase);
  }
  ~PhaseScope() { pool_->set_phase(saved_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  BufferPool* const pool_;
  const IoPhase saved_;
};

}  // namespace odbgc

#endif  // ODBGC_BUFFER_BUFFER_POOL_H_
