#include "buffer/replacement_policy.h"

#include <cassert>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/serde.h"

namespace odbgc {

const char* ReplacementPolicyName(ReplacementPolicyKind kind) {
  switch (kind) {
    case ReplacementPolicyKind::kLru:
      return "lru";
    case ReplacementPolicyKind::kClock:
      return "clock";
    case ReplacementPolicyKind::kTwoQ:
      return "2q";
  }
  return "unknown";
}

namespace {

/// Strict LRU: a recency list spliced on every access — bit-identical to
/// the pool's original hard-wired behavior (verified by the buffer pool
/// property tests).
class LruPolicy : public ReplacementPolicy {
 public:
  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kLru;
  }

  void OnInsert(PageId page) override {
    order_.push_front(page);
    pos_[page] = order_.begin();
  }

  void OnHit(PageId page) override {
    order_.splice(order_.begin(), order_, pos_.at(page));
  }

  PageId ChooseVictim() override {
    assert(!order_.empty());
    return order_.back();
  }

  void OnErase(PageId page) override {
    auto it = pos_.find(page);
    if (it == pos_.end()) return;
    order_.erase(it->second);
    pos_.erase(it);
  }

  std::vector<PageId> Order() const override {
    return std::vector<PageId>(order_.begin(), order_.end());
  }

  void Clear() override {
    order_.clear();
    pos_.clear();
  }

  void Save(std::ostream& out) const override {
    PutVarint(out, order_.size());
    for (PageId page : order_) PutVarint(out, page);  // MRU first.
  }

  Status Load(std::istream& in) override {
    Clear();
    auto count = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(count.status());
    for (uint64_t i = 0; i < *count; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      order_.push_back(*page);
      if (!pos_.emplace(*page, std::prev(order_.end())).second) {
        return Status::Corruption("lru state duplicate page");
      }
    }
    return Status::Ok();
  }

 private:
  std::list<PageId> order_;  // Front = most recently used.
  std::unordered_map<PageId, std::list<PageId>::iterator> pos_;
};

/// Second-chance clock: pages sit on a ring; a hit sets the ref bit; the
/// hand sweeps, clearing ref bits, and evicts the first unreferenced
/// page. New pages enter just behind the hand with their ref bit set.
class ClockPolicy : public ReplacementPolicy {
 public:
  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kClock;
  }

  void OnInsert(PageId page) override {
    if (ring_.empty()) {
      ring_.push_back(page);
      hand_ = ring_.begin();
      entries_[page] = {ring_.begin(), true};
      return;
    }
    // Inserting before the hand makes the new page the last one the next
    // sweep examines.
    auto it = ring_.insert(hand_, page);
    entries_[page] = {it, true};
  }

  void OnHit(PageId page) override { entries_.at(page).referenced = true; }

  PageId ChooseVictim() override {
    assert(!ring_.empty());
    for (;;) {
      if (hand_ == ring_.end()) hand_ = ring_.begin();
      Entry& entry = entries_.at(*hand_);
      if (entry.referenced) {
        entry.referenced = false;
        ++hand_;
      } else {
        return *hand_;
      }
    }
  }

  void OnErase(PageId page) override {
    auto it = entries_.find(page);
    if (it == entries_.end()) return;
    if (hand_ == it->second.pos) ++hand_;
    ring_.erase(it->second.pos);
    entries_.erase(it);
  }

  /// Ring order starting at the hand (the next sweep's examination
  /// order).
  std::vector<PageId> Order() const override {
    std::vector<PageId> order;
    order.reserve(ring_.size());
    for (auto it = hand_; it != ring_.end(); ++it) order.push_back(*it);
    for (auto it = ring_.begin(); it != hand_; ++it) order.push_back(*it);
    return order;
  }

  void Clear() override {
    ring_.clear();
    entries_.clear();
    hand_ = ring_.end();
  }

  void Save(std::ostream& out) const override {
    // Hand-first ring order; Load re-anchors the hand at the front.
    const std::vector<PageId> order = Order();
    PutVarint(out, order.size());
    for (PageId page : order) {
      PutVarint(out, page);
      PutBool(out, entries_.at(page).referenced);
    }
  }

  Status Load(std::istream& in) override {
    Clear();
    auto count = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(count.status());
    for (uint64_t i = 0; i < *count; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      auto referenced = GetBool(in);
      ODBGC_RETURN_IF_ERROR(referenced.status());
      ring_.push_back(*page);
      if (!entries_.emplace(*page, Entry{std::prev(ring_.end()), *referenced})
               .second) {
        return Status::Corruption("clock state duplicate page");
      }
    }
    hand_ = ring_.begin();
    return Status::Ok();
  }

 private:
  struct Entry {
    std::list<PageId>::iterator pos;
    bool referenced = false;
  };
  std::list<PageId> ring_;
  std::list<PageId>::iterator hand_ = ring_.end();
  std::unordered_map<PageId, Entry> entries_;
};

/// 2Q (Johnson & Shasha): first-touch pages enter a small FIFO probation
/// queue (A1in); pages evicted from probation are remembered in a ghost
/// list (A1out, ids only); a page re-fetched while on the ghost list is
/// promoted to the protected LRU main queue (Am). One collection's
/// partition scan therefore churns probation without displacing the
/// application's hot set.
class TwoQPolicy : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(size_t frame_count)
      : kin_(frame_count / 4 > 0 ? frame_count / 4 : 1),
        kout_(frame_count / 2 > 0 ? frame_count / 2 : 1) {}

  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kTwoQ;
  }

  void OnInsert(PageId page) override {
    auto ghost = ghost_pos_.find(page);
    if (ghost != ghost_pos_.end()) {
      ghost_.erase(ghost->second);
      ghost_pos_.erase(ghost);
      am_.push_front(page);
      entries_[page] = {Queue::kAm, am_.begin()};
      return;
    }
    a1in_.push_front(page);
    entries_[page] = {Queue::kA1in, a1in_.begin()};
  }

  void OnHit(PageId page) override {
    Entry& entry = entries_.at(page);
    // Classic 2Q: hits inside probation do not promote (that would make
    // A1in an LRU and defeat scan resistance); hits in Am refresh
    // recency.
    if (entry.queue == Queue::kAm) {
      am_.splice(am_.begin(), am_, entry.pos);
      entry.pos = am_.begin();
    }
  }

  PageId ChooseVictim() override {
    assert(!a1in_.empty() || !am_.empty());
    if (a1in_.size() > kin_ || am_.empty()) return a1in_.back();
    return am_.back();
  }

  void OnEvict(PageId page) override {
    auto it = entries_.find(page);
    if (it == entries_.end()) return;
    const bool was_probation = it->second.queue == Queue::kA1in;
    Remove(it);
    if (was_probation) {
      // Remember the evictee: a quick second fetch proves it deserves the
      // protected queue.
      ghost_.push_front(page);
      ghost_pos_[page] = ghost_.begin();
      if (ghost_.size() > kout_) {
        ghost_pos_.erase(ghost_.back());
        ghost_.pop_back();
      }
    }
  }

  void OnErase(PageId page) override {
    auto it = entries_.find(page);
    if (it == entries_.end()) return;
    Remove(it);
  }

  /// Protected pages (MRU first), then probation (newest first).
  std::vector<PageId> Order() const override {
    std::vector<PageId> order;
    order.reserve(am_.size() + a1in_.size());
    order.insert(order.end(), am_.begin(), am_.end());
    order.insert(order.end(), a1in_.begin(), a1in_.end());
    return order;
  }

  void Clear() override {
    a1in_.clear();
    am_.clear();
    ghost_.clear();
    entries_.clear();
    ghost_pos_.clear();
  }

  void Save(std::ostream& out) const override {
    auto save_list = [&out](const std::list<PageId>& list) {
      PutVarint(out, list.size());
      for (PageId page : list) PutVarint(out, page);
    };
    save_list(a1in_);
    save_list(am_);
    save_list(ghost_);
  }

  Status Load(std::istream& in) override {
    Clear();
    auto load_list = [&in](std::list<PageId>& list) -> Status {
      auto count = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(count.status());
      for (uint64_t i = 0; i < *count; ++i) {
        auto page = GetVarint(in);
        ODBGC_RETURN_IF_ERROR(page.status());
        list.push_back(*page);
      }
      return Status::Ok();
    };
    ODBGC_RETURN_IF_ERROR(load_list(a1in_));
    ODBGC_RETURN_IF_ERROR(load_list(am_));
    ODBGC_RETURN_IF_ERROR(load_list(ghost_));
    for (auto it = a1in_.begin(); it != a1in_.end(); ++it) {
      if (!entries_.emplace(*it, Entry{Queue::kA1in, it}).second) {
        return Status::Corruption("2q state duplicate page");
      }
    }
    for (auto it = am_.begin(); it != am_.end(); ++it) {
      if (!entries_.emplace(*it, Entry{Queue::kAm, it}).second) {
        return Status::Corruption("2q state duplicate page");
      }
    }
    for (auto it = ghost_.begin(); it != ghost_.end(); ++it) {
      if (!ghost_pos_.emplace(*it, it).second) {
        return Status::Corruption("2q state duplicate ghost page");
      }
    }
    return Status::Ok();
  }

 private:
  enum class Queue : uint8_t { kA1in, kAm };
  struct Entry {
    Queue queue;
    std::list<PageId>::iterator pos;
  };

  void Remove(std::unordered_map<PageId, Entry>::iterator it) {
    if (it->second.queue == Queue::kA1in) {
      a1in_.erase(it->second.pos);
    } else {
      am_.erase(it->second.pos);
    }
    entries_.erase(it);
  }

  const size_t kin_;
  const size_t kout_;
  std::list<PageId> a1in_;   // Probation FIFO, front = newest.
  std::list<PageId> am_;     // Protected LRU, front = MRU.
  std::list<PageId> ghost_;  // Evicted-from-probation ids, front = newest.
  std::unordered_map<PageId, Entry> entries_;
  std::unordered_map<PageId, std::list<PageId>::iterator> ghost_pos_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(
    ReplacementPolicyKind kind, size_t frame_count) {
  switch (kind) {
    case ReplacementPolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case ReplacementPolicyKind::kClock:
      return std::make_unique<ClockPolicy>();
    case ReplacementPolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>(frame_count);
  }
  return std::make_unique<LruPolicy>();
}

}  // namespace odbgc
