#include "buffer/replacement_policy.h"

#include <cassert>

#include "util/open_hash_map.h"
#include "util/serde.h"

namespace odbgc {

const char* ReplacementPolicyName(ReplacementPolicyKind kind) {
  switch (kind) {
    case ReplacementPolicyKind::kLru:
      return "lru";
    case ReplacementPolicyKind::kClock:
      return "clock";
    case ReplacementPolicyKind::kTwoQ:
      return "2q";
  }
  return "unknown";
}

namespace {

using FrameIndex = ReplacementPolicy::FrameIndex;

/// Link storage for intrusive index lists: `next`/`prev` arrays covering
/// every frame plus one node per list sentinel. A list is a cycle through
/// its sentinel (empty list: the sentinel links to itself), so insert and
/// unlink are branch-free index stores — the dense replacement for the
/// old std::list nodes. kUnlinked in `next` marks a node on no list,
/// which doubles as the membership test the old unordered_map provided.
struct LinkArray {
  static constexpr uint32_t kUnlinked = UINT32_MAX;

  std::vector<uint32_t> next;
  std::vector<uint32_t> prev;

  explicit LinkArray(size_t nodes)
      : next(nodes, kUnlinked), prev(nodes, kUnlinked) {}

  void ResetList(uint32_t sentinel) {
    next[sentinel] = sentinel;
    prev[sentinel] = sentinel;
  }

  void UnlinkAll() {
    next.assign(next.size(), kUnlinked);
    prev.assign(prev.size(), kUnlinked);
  }

  void InsertBefore(uint32_t pos, uint32_t node) {
    const uint32_t before = prev[pos];
    next[before] = node;
    prev[node] = before;
    next[node] = pos;
    prev[pos] = node;
  }

  void Unlink(uint32_t node) {
    next[prev[node]] = next[node];
    prev[next[node]] = prev[node];
    next[node] = kUnlinked;
    prev[node] = kUnlinked;
  }

  bool Linked(uint32_t node) const { return next[node] != kUnlinked; }
};

/// Strict LRU: a recency list spliced on every access — bit-identical to
/// the pool's original hard-wired behavior (verified by the buffer pool
/// property tests). The list threads through the frame array by index;
/// front (next of the sentinel) is most recently used.
class LruPolicy : public ReplacementPolicy {
 public:
  explicit LruPolicy(size_t frame_count)
      : sentinel_(static_cast<FrameIndex>(frame_count)),
        links_(frame_count + 1),
        page_(frame_count, kInvalidPageId) {
    links_.ResetList(sentinel_);
  }

  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kLru;
  }

  void OnInsert(FrameIndex frame, PageId page) override {
    page_[frame] = page;
    links_.InsertBefore(links_.next[sentinel_], frame);  // Push front.
    ++size_;
  }

  void OnHit(FrameIndex frame) override {
    links_.Unlink(frame);
    links_.InsertBefore(links_.next[sentinel_], frame);
  }

  FrameIndex ChooseVictim() override {
    assert(links_.prev[sentinel_] != sentinel_);
    return links_.prev[sentinel_];
  }

  void OnErase(FrameIndex frame) override {
    if (!links_.Linked(frame)) return;
    links_.Unlink(frame);
    page_[frame] = kInvalidPageId;
    --size_;
  }

  std::vector<PageId> Order() const override {
    std::vector<PageId> order;
    order.reserve(size_);
    for (uint32_t i = links_.next[sentinel_]; i != sentinel_;
         i = links_.next[i]) {
      order.push_back(page_[i]);
    }
    return order;
  }

  void Clear() override {
    links_.UnlinkAll();
    links_.ResetList(sentinel_);
    page_.assign(page_.size(), kInvalidPageId);
    size_ = 0;
  }

  void Save(std::ostream& out) const override {
    PutVarint(out, size_);
    for (uint32_t i = links_.next[sentinel_]; i != sentinel_;
         i = links_.next[i]) {
      PutVarint(out, page_[i]);  // MRU first.
    }
  }

  Status Load(std::istream& in, const FrameResolver& frame_of) override {
    Clear();
    auto count = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(count.status());
    for (uint64_t i = 0; i < *count; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      const FrameIndex frame = frame_of(*page);
      if (frame == kNoFrame) {
        return Status::Corruption("lru state page not resident");
      }
      if (links_.Linked(frame)) {
        return Status::Corruption("lru state duplicate page");
      }
      page_[frame] = *page;
      links_.InsertBefore(sentinel_, frame);  // Push back: stream is MRU first.
      ++size_;
    }
    return Status::Ok();
  }

 private:
  const FrameIndex sentinel_;
  LinkArray links_;
  std::vector<PageId> page_;
  size_t size_ = 0;
};

/// Second-chance clock: frames sit on a ring; a hit sets the ref bit; the
/// hand sweeps, clearing ref bits, and evicts the first unreferenced
/// frame. New frames enter just behind the hand with their ref bit set.
/// The sentinel plays the old iterator's end(): a hand parked there wraps
/// to the front on the next sweep, and inserting before it appends.
class ClockPolicy : public ReplacementPolicy {
 public:
  explicit ClockPolicy(size_t frame_count)
      : sentinel_(static_cast<FrameIndex>(frame_count)),
        links_(frame_count + 1),
        page_(frame_count, kInvalidPageId),
        referenced_(frame_count, false),
        hand_(sentinel_) {
    links_.ResetList(sentinel_);
  }

  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kClock;
  }

  void OnInsert(FrameIndex frame, PageId page) override {
    page_[frame] = page;
    referenced_[frame] = true;
    ++size_;
    if (links_.next[sentinel_] == sentinel_) {
      links_.InsertBefore(sentinel_, frame);
      hand_ = frame;
      return;
    }
    // Inserting before the hand makes the new frame the last one the next
    // sweep examines.
    links_.InsertBefore(hand_, frame);
  }

  void OnHit(FrameIndex frame) override { referenced_[frame] = true; }

  FrameIndex ChooseVictim() override {
    assert(links_.next[sentinel_] != sentinel_);
    for (;;) {
      if (hand_ == sentinel_) hand_ = links_.next[sentinel_];
      if (referenced_[hand_]) {
        referenced_[hand_] = false;
        hand_ = links_.next[hand_];
      } else {
        return hand_;
      }
    }
  }

  void OnErase(FrameIndex frame) override {
    if (!links_.Linked(frame)) return;
    if (hand_ == frame) hand_ = links_.next[frame];
    links_.Unlink(frame);
    page_[frame] = kInvalidPageId;
    --size_;
  }

  /// Ring order starting at the hand (the next sweep's examination
  /// order).
  std::vector<PageId> Order() const override {
    std::vector<PageId> order;
    order.reserve(size_);
    ForEachInHandOrder([&order](PageId page, bool /*referenced*/) {
      order.push_back(page);
    });
    return order;
  }

  void Clear() override {
    links_.UnlinkAll();
    links_.ResetList(sentinel_);
    page_.assign(page_.size(), kInvalidPageId);
    referenced_.assign(referenced_.size(), false);
    hand_ = sentinel_;
    size_ = 0;
  }

  void Save(std::ostream& out) const override {
    // Hand-first ring order; Load re-anchors the hand at the front.
    PutVarint(out, size_);
    ForEachInHandOrder([&out](PageId page, bool referenced) {
      PutVarint(out, page);
      PutBool(out, referenced);
    });
  }

  Status Load(std::istream& in, const FrameResolver& frame_of) override {
    Clear();
    auto count = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(count.status());
    for (uint64_t i = 0; i < *count; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      auto referenced = GetBool(in);
      ODBGC_RETURN_IF_ERROR(referenced.status());
      const FrameIndex frame = frame_of(*page);
      if (frame == kNoFrame) {
        return Status::Corruption("clock state page not resident");
      }
      if (links_.Linked(frame)) {
        return Status::Corruption("clock state duplicate page");
      }
      page_[frame] = *page;
      referenced_[frame] = *referenced;
      links_.InsertBefore(sentinel_, frame);  // Push back.
      ++size_;
    }
    hand_ = links_.next[sentinel_];  // Front; the sentinel when empty.
    return Status::Ok();
  }

 private:
  template <typename Fn>
  void ForEachInHandOrder(Fn fn) const {
    for (uint32_t i = hand_; i != sentinel_; i = links_.next[i]) {
      fn(page_[i], static_cast<bool>(referenced_[i]));
    }
    for (uint32_t i = links_.next[sentinel_]; i != hand_;
         i = links_.next[i]) {
      fn(page_[i], static_cast<bool>(referenced_[i]));
    }
  }

  const FrameIndex sentinel_;
  LinkArray links_;
  std::vector<PageId> page_;
  std::vector<uint8_t> referenced_;
  FrameIndex hand_;
  size_t size_ = 0;
};

/// 2Q (Johnson & Shasha): first-touch pages enter a small FIFO probation
/// queue (A1in); pages evicted from probation are remembered in a ghost
/// list (A1out, ids only); a page re-fetched while on the ghost list is
/// promoted to the protected LRU main queue (Am). One collection's
/// partition scan therefore churns probation without displacing the
/// application's hot set.
///
/// Both resident queues thread one shared link array over the frames (a
/// frame is on at most one of them); the ghost list — whose pages have
/// no frame — lives in its own kout_-slot arena with an OpenIndexMap for
/// the ghost-hit probe.
class TwoQPolicy : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(size_t frame_count)
      : kin_(frame_count / 4 > 0 ? frame_count / 4 : 1),
        kout_(frame_count / 2 > 0 ? frame_count / 2 : 1),
        in_sentinel_(static_cast<FrameIndex>(frame_count)),
        am_sentinel_(static_cast<FrameIndex>(frame_count + 1)),
        links_(frame_count + 2),
        page_(frame_count, kInvalidPageId),
        in_probation_(frame_count, false),
        ghost_sentinel_(static_cast<uint32_t>(kout_)),
        ghost_links_(kout_ + 1),
        ghost_page_(kout_, kInvalidPageId),
        ghost_pos_(kout_) {
    links_.ResetList(in_sentinel_);
    links_.ResetList(am_sentinel_);
    ghost_links_.ResetList(ghost_sentinel_);
    RefillGhostSlots();
  }

  ReplacementPolicyKind kind() const override {
    return ReplacementPolicyKind::kTwoQ;
  }

  void OnInsert(FrameIndex frame, PageId page) override {
    if (ghost_pos_.Contains(page)) {
      RemoveGhost(page);
      page_[frame] = page;
      in_probation_[frame] = false;
      links_.InsertBefore(links_.next[am_sentinel_], frame);
      ++am_count_;
      return;
    }
    page_[frame] = page;
    in_probation_[frame] = true;
    links_.InsertBefore(links_.next[in_sentinel_], frame);
    ++in_count_;
  }

  void OnHit(FrameIndex frame) override {
    // Classic 2Q: hits inside probation do not promote (that would make
    // A1in an LRU and defeat scan resistance); hits in Am refresh
    // recency.
    if (!in_probation_[frame]) {
      links_.Unlink(frame);
      links_.InsertBefore(links_.next[am_sentinel_], frame);
    }
  }

  FrameIndex ChooseVictim() override {
    assert(in_count_ + am_count_ > 0);
    if (in_count_ > kin_ || am_count_ == 0) return links_.prev[in_sentinel_];
    return links_.prev[am_sentinel_];
  }

  void OnEvict(FrameIndex frame) override {
    if (!links_.Linked(frame)) return;
    const bool was_probation = in_probation_[frame];
    const PageId page = page_[frame];
    RemoveResident(frame);
    if (was_probation) {
      // Remember the evictee: a quick second fetch proves it deserves the
      // protected queue. A full ghost list drops its oldest entry.
      uint32_t slot;
      if (ghost_free_.empty()) {
        slot = ghost_links_.prev[ghost_sentinel_];
        ghost_pos_.Erase(ghost_page_[slot]);
        ghost_links_.Unlink(slot);
      } else {
        slot = ghost_free_.back();
        ghost_free_.pop_back();
      }
      ghost_page_[slot] = page;
      ghost_links_.InsertBefore(ghost_links_.next[ghost_sentinel_], slot);
      ghost_pos_.Insert(page, slot);
    }
  }

  void OnErase(FrameIndex frame) override {
    if (!links_.Linked(frame)) return;
    RemoveResident(frame);
  }

  /// Protected pages (MRU first), then probation (newest first).
  std::vector<PageId> Order() const override {
    std::vector<PageId> order;
    order.reserve(am_count_ + in_count_);
    AppendList(am_sentinel_, &order);
    AppendList(in_sentinel_, &order);
    return order;
  }

  void Clear() override {
    links_.UnlinkAll();
    links_.ResetList(in_sentinel_);
    links_.ResetList(am_sentinel_);
    page_.assign(page_.size(), kInvalidPageId);
    in_probation_.assign(in_probation_.size(), false);
    in_count_ = 0;
    am_count_ = 0;
    ghost_links_.UnlinkAll();
    ghost_links_.ResetList(ghost_sentinel_);
    ghost_page_.assign(ghost_page_.size(), kInvalidPageId);
    ghost_pos_.Clear();
    RefillGhostSlots();
  }

  void Save(std::ostream& out) const override {
    SaveList(out, links_, in_sentinel_, in_count_, page_);
    SaveList(out, links_, am_sentinel_, am_count_, page_);
    SaveList(out, ghost_links_, ghost_sentinel_,
             kout_ - ghost_free_.size(), ghost_page_);
  }

  Status Load(std::istream& in, const FrameResolver& frame_of) override {
    Clear();
    ODBGC_RETURN_IF_ERROR(LoadResidentList(in, frame_of, in_sentinel_,
                                           /*probation=*/true, &in_count_));
    ODBGC_RETURN_IF_ERROR(LoadResidentList(in, frame_of, am_sentinel_,
                                           /*probation=*/false, &am_count_));
    auto ghosts = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(ghosts.status());
    // The eviction path caps the ghost list at kout_; a longer one can
    // only come from a damaged stream.
    if (*ghosts > kout_) {
      return Status::Corruption("2q state ghost list exceeds capacity");
    }
    for (uint64_t i = 0; i < *ghosts; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      if (ghost_pos_.Contains(*page)) {
        return Status::Corruption("2q state duplicate ghost page");
      }
      const uint32_t slot = ghost_free_.back();
      ghost_free_.pop_back();
      ghost_page_[slot] = *page;
      ghost_links_.InsertBefore(ghost_sentinel_, slot);  // Push back.
      ghost_pos_.Insert(*page, slot);
    }
    return Status::Ok();
  }

 private:
  void RemoveResident(FrameIndex frame) {
    links_.Unlink(frame);
    if (in_probation_[frame]) {
      --in_count_;
    } else {
      --am_count_;
    }
    page_[frame] = kInvalidPageId;
  }

  void RemoveGhost(PageId page) {
    const uint32_t slot = ghost_pos_.Find(page);
    ghost_pos_.Erase(page);
    ghost_links_.Unlink(slot);
    ghost_page_[slot] = kInvalidPageId;
    ghost_free_.push_back(slot);
  }

  void RefillGhostSlots() {
    ghost_free_.clear();
    // Popped from the back: fresh ghosts take slots 0, 1, ... in order.
    for (size_t slot = kout_; slot > 0; --slot) {
      ghost_free_.push_back(static_cast<uint32_t>(slot - 1));
    }
  }

  void AppendList(uint32_t sentinel, std::vector<PageId>* order) const {
    for (uint32_t i = links_.next[sentinel]; i != sentinel;
         i = links_.next[i]) {
      order->push_back(page_[i]);
    }
  }

  static void SaveList(std::ostream& out, const LinkArray& links,
                       uint32_t sentinel, size_t count,
                       const std::vector<PageId>& pages) {
    PutVarint(out, count);
    for (uint32_t i = links.next[sentinel]; i != sentinel;
         i = links.next[i]) {
      PutVarint(out, pages[i]);
    }
  }

  Status LoadResidentList(std::istream& in, const FrameResolver& frame_of,
                          uint32_t sentinel, bool probation, size_t* count) {
    auto entries = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(entries.status());
    for (uint64_t i = 0; i < *entries; ++i) {
      auto page = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(page.status());
      const FrameIndex frame = frame_of(*page);
      if (frame == kNoFrame) {
        return Status::Corruption("2q state page not resident");
      }
      if (links_.Linked(frame)) {
        return Status::Corruption("2q state duplicate page");
      }
      page_[frame] = *page;
      in_probation_[frame] = probation;
      links_.InsertBefore(sentinel, frame);  // Push back.
      ++*count;
    }
    return Status::Ok();
  }

  const size_t kin_;
  const size_t kout_;
  const FrameIndex in_sentinel_;
  const FrameIndex am_sentinel_;
  LinkArray links_;                   // A1in + Am share the frame nodes.
  std::vector<PageId> page_;
  std::vector<uint8_t> in_probation_;  // Which queue a linked frame is on.
  size_t in_count_ = 0;
  size_t am_count_ = 0;
  const uint32_t ghost_sentinel_;
  LinkArray ghost_links_;             // A1out arena, front = newest ghost.
  std::vector<PageId> ghost_page_;
  std::vector<uint32_t> ghost_free_;
  OpenIndexMap ghost_pos_;            // Ghost page id -> arena slot.
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(
    ReplacementPolicyKind kind, size_t frame_count) {
  switch (kind) {
    case ReplacementPolicyKind::kLru:
      return std::make_unique<LruPolicy>(frame_count);
    case ReplacementPolicyKind::kClock:
      return std::make_unique<ClockPolicy>(frame_count);
    case ReplacementPolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>(frame_count);
  }
  return std::make_unique<LruPolicy>(frame_count);
}

}  // namespace odbgc
