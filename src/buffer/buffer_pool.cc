#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "buffer/frame_arena.h"
#include "util/serde.h"

namespace odbgc {

namespace {

MetricPhase ToMetricPhase(IoPhase phase) {
  return phase == IoPhase::kApplication ? MetricPhase::kApplication
                                        : MetricPhase::kCollector;
}

IoPhase FromMetricPhase(MetricPhase phase) {
  return phase == MetricPhase::kApplication ? IoPhase::kApplication
                                            : IoPhase::kCollector;
}

}  // namespace

BufferPool::BufferPool(PageDevice* device, size_t frame_count,
                       ReplacementPolicyKind policy, SharedFrameArena* arena,
                       uint32_t arena_tenant)
    : device_(device),
      registry_(device ? device->metrics() : nullptr),
      frame_count_(frame_count),
      policy_(MakeReplacementPolicy(policy, frame_count)),
      frames_(frame_count),
      page_to_frame_(arena != nullptr ? 0 : frame_count),
      arena_(arena),
      arena_tenant_(arena_tenant),
      hits_(registry_->Register("buffer.hits")),
      misses_(registry_->Register("buffer.misses")),
      reads_(registry_->Register("buffer.disk_reads")),
      writes_(registry_->Register("buffer.disk_writes")) {
  assert(device_ != nullptr);
  assert(frame_count_ > 0);
}

void BufferPool::set_phase(IoPhase phase) {
  registry_->set_phase(ToMetricPhase(phase));
}

IoPhase BufferPool::phase() const {
  return FromMetricPhase(registry_->phase());
}

uint32_t BufferPool::AllocFrame() {
  if (!free_frames_.empty()) {
    const uint32_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  assert(used_frames_ < frame_count_);
  return used_frames_++;
}

Result<std::span<std::byte>> BufferPool::GetPage(PageId page,
                                                 AccessMode mode) {
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::GetPage");
  // Shared-arena residency lives in the arena's striped table under the
  // (tenant, page) composite key; everything else — counters, policy
  // calls, quota math — is identical in both modes, which is the
  // byte-identity contract (DESIGN.md §17).
  const uint32_t resident = arena_ != nullptr
                                ? arena_->FindSlot(arena_tenant_, page)
                                : page_to_frame_.Find(page);
  if (resident != OpenIndexMap::kEmptyValue) {
    registry_->Count(hits_);
    policy_->OnHit(resident);
    Frame& frame = frames_[resident];
    if (mode == AccessMode::kWrite) frame.dirty = true;
    return std::span<std::byte>(FrameBytes(frame));
  }

  registry_->Count(misses_);
  if (arena_ != nullptr) return FillShared(page, mode);

  // Evict the policy's victim if the pool is full; its frame is reused
  // for the incoming page.
  uint32_t slot;
  if (resident_count_ >= frame_count_) {
    const uint32_t victim = policy_->ChooseVictim();
    Frame& evicted = frames_[victim];
    ODBGC_RETURN_IF_ERROR(WriteBack(evicted));
    policy_->OnEvict(victim);
    page_to_frame_.Erase(evicted.page);
    evicted.page = kInvalidPageId;
    --resident_count_;
    slot = victim;
  } else {
    slot = AllocFrame();
  }

  Frame& frame = frames_[slot];
  if (frame.data.empty()) frame.data.resize(device_->page_size());
  const Status read =
      device_->ReadPage(page, std::span<std::byte>(frame.data));
  if (!read.ok()) {
    // The page never became resident; return the frame to the free pool.
    free_frames_.push_back(slot);
    return read;
  }
  registry_->Count(reads_);
  frame.page = page;
  frame.dirty = (mode == AccessMode::kWrite);
  policy_->OnInsert(slot, page);
  page_to_frame_.Insert(page, slot);
  ++resident_count_;
  return std::span<std::byte>(frame.data);
}

Status BufferPool::EvictSlotShared(uint32_t* slot) {
  const uint32_t victim = policy_->ChooseVictim();
  Frame& evicted = frames_[victim];
  ODBGC_RETURN_IF_ERROR(WriteBack(evicted));
  policy_->OnEvict(victim);
  arena_->EraseSlot(arena_tenant_, evicted.page);
  evicted.page = kInvalidPageId;
  --resident_count_;
  *slot = victim;  // The borrowed frame stays attached for the newcomer.
  return Status::Ok();
}

Result<std::span<std::byte>> BufferPool::FillShared(PageId page,
                                                    AccessMode mode) {
  uint32_t slot;
  if (resident_count_ >= frame_count_) {
    // Quota full: evict this tenant's own victim — the same decision, in
    // the same order, a private pool of frame_count_ frames would make.
    ODBGC_RETURN_IF_ERROR(EvictSlotShared(&slot));
  } else {
    slot = AllocFrame();
    if (frames_[slot].arena_frame == UINT32_MAX) {
      const uint32_t physical = arena_->TryAllocFrame();
      if (physical != SharedFrameArena::kNoFrame) {
        frames_[slot].arena_frame = physical;
      } else {
        // Squeeze: the arena is exhausted while this tenant is under its
        // quota (the fleet is overcommitted past the admission bound).
        // Self-evict our own victim rather than stealing another tenant's
        // frame — cross-tenant theft would wreck their determinism, not
        // just ours. Counted: invariance gates require zero squeezes.
        free_frames_.push_back(slot);
        if (resident_count_ == 0) {
          return Status::ResourceExhausted(
              "shared frame arena exhausted and tenant holds no frame to "
              "squeeze; raise the budget or arm the admission watermark");
        }
        ODBGC_RETURN_IF_ERROR(EvictSlotShared(&slot));
        ++squeezed_evictions_;
        arena_->NoteSqueezedEviction();
      }
    }
  }

  Frame& frame = frames_[slot];
  std::vector<std::byte>& bytes = arena_->FrameData(frame.arena_frame);
  // Frames migrate between tenants whose devices may differ in page size.
  if (bytes.size() != device_->page_size()) bytes.resize(device_->page_size());
  const Status read = device_->ReadPage(page, std::span<std::byte>(bytes));
  if (!read.ok()) {
    // The page never became resident; the slot returns to the free pool
    // and the borrowed frame goes back to the arena.
    arena_->ReleaseFrame(frame.arena_frame);
    frame.arena_frame = UINT32_MAX;
    free_frames_.push_back(slot);
    return read;
  }
  registry_->Count(reads_);
  frame.page = page;
  frame.dirty = (mode == AccessMode::kWrite);
  policy_->OnInsert(slot, page);
  arena_->InsertSlot(arena_tenant_, page, slot);
  ++resident_count_;
  return std::span<std::byte>(bytes);
}

std::vector<std::byte>& BufferPool::FrameBytes(Frame& frame) {
  return arena_ != nullptr ? arena_->FrameData(frame.arena_frame)
                           : frame.data;
}

Status BufferPool::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::Ok();
  ODBGC_RETURN_IF_ERROR(device_->WritePage(
      frame.page, std::span<const std::byte>(FrameBytes(frame))));
  registry_->Count(writes_);
  frame.dirty = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::FlushAll");
  // Dirty frames in slot order — the same order the per-frame loop used,
  // so the device's request-order accounting (sequential/random
  // classification, fault schedule) is unchanged by batching.
  std::vector<PageWriteRequest> batch;
  std::vector<uint32_t> slots;
  for (uint32_t slot = 0; slot < used_frames_; ++slot) {
    Frame& frame = frames_[slot];
    if (frame.page == kInvalidPageId || !frame.dirty) continue;
    batch.push_back(
        {frame.page, std::span<const std::byte>(FrameBytes(frame))});
    slots.push_back(slot);
  }
  if (batch.empty()) return Status::Ok();
  size_t written = 0;
  const Status status =
      device_->WritePages(batch.data(), batch.size(), &written);
  // The device accepted the first `written` requests (all of them on Ok);
  // those frames are clean now, the rest keep their dirty bit.
  for (size_t i = 0; i < written; ++i) {
    registry_->Count(writes_);
    frames_[slots[i]].dirty = false;
  }
  return status;
}

void BufferPool::PrefetchExtent(const PageExtent& extent) {
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::PrefetchExtent");
  if (!extent.valid()) return;
  std::vector<PageId> pages;
  pages.reserve(extent.page_count);
  for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
    if (!IsResident(p)) pages.push_back(p);
  }
  if (!pages.empty()) {
    device_->Prefetch(std::span<const PageId>(pages));
  }
}

void BufferPool::DiscardExtent(const PageExtent& extent) {
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::DiscardExtent");
  if (arena_ != nullptr) {
    // Discarded slots hand their borrowed frames straight back (one
    // allocator lock for the whole extent) — a collected partition's
    // residency becomes other tenants' headroom immediately.
    std::vector<uint32_t> released;
    for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
      const uint32_t slot = arena_->FindSlot(arena_tenant_, p);
      if (slot == SharedFrameArena::kNoFrame) continue;
      policy_->OnErase(slot);
      arena_->EraseSlot(arena_tenant_, p);
      Frame& frame = frames_[slot];
      released.push_back(frame.arena_frame);
      frame.arena_frame = UINT32_MAX;
      frame.page = kInvalidPageId;
      frame.dirty = false;
      free_frames_.push_back(slot);
      --resident_count_;
    }
    arena_->ReleaseFrames(released);
    return;
  }
  for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
    const uint32_t slot = page_to_frame_.Find(p);
    if (slot == OpenIndexMap::kEmptyValue) continue;
    policy_->OnErase(slot);
    page_to_frame_.Erase(p);
    frames_[slot].page = kInvalidPageId;
    frames_[slot].dirty = false;
    free_frames_.push_back(slot);
    --resident_count_;
  }
}

void BufferPool::ReleaseArenaFrames() {
  if (arena_ == nullptr) return;
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::ReleaseArenaFrames");
  std::vector<uint32_t> released;
  released.reserve(resident_count_);
  for (uint32_t slot = 0; slot < used_frames_; ++slot) {
    Frame& frame = frames_[slot];
    if (frame.page != kInvalidPageId) {
      arena_->EraseSlot(arena_tenant_, frame.page);
      frame.page = kInvalidPageId;
    }
    if (frame.arena_frame != UINT32_MAX) {
      released.push_back(frame.arena_frame);
      frame.arena_frame = UINT32_MAX;
    }
    frame.dirty = false;
  }
  arena_->ReleaseFrames(released);
  policy_->Clear();
  free_frames_.clear();
  used_frames_ = 0;
  resident_count_ = 0;
}

BufferStats BufferPool::stats() const {
  BufferStats stats;
  stats.hits = hits_->total();
  stats.misses = misses_->total();
  stats.reads_app = reads_->value(MetricPhase::kApplication);
  stats.reads_gc = reads_->value(MetricPhase::kCollector);
  stats.writes_app = writes_->value(MetricPhase::kApplication);
  stats.writes_gc = writes_->value(MetricPhase::kCollector);
  return stats;
}

void BufferPool::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  reads_->Reset();
  writes_->Reset();
}

bool BufferPool::IsResident(PageId page) const {
  return arena_ != nullptr ? arena_->FindSlot(arena_tenant_, page) !=
                                 SharedFrameArena::kNoFrame
                           : page_to_frame_.Contains(page);
}

bool BufferPool::IsDirty(PageId page) const {
  const uint32_t slot = arena_ != nullptr
                            ? arena_->FindSlot(arena_tenant_, page)
                            : page_to_frame_.Find(page);
  return slot != OpenIndexMap::kEmptyValue && frames_[slot].dirty;
}

std::vector<PageId> BufferPool::LruOrder() const { return policy_->Order(); }

void BufferPool::SaveState(std::ostream& out) const {
  // Checkpointing a shared-arena pool is unsupported (the service forbids
  // durability for its tenants); only private pools reach here.
  assert(arena_ == nullptr && "SaveState unsupported in shared-arena mode");
  PutVarint(out, frame_count_);
  PutU8(out, static_cast<uint8_t>(policy_->kind()));
  std::vector<uint32_t> resident;
  resident.reserve(resident_count_);
  for (uint32_t slot = 0; slot < used_frames_; ++slot) {
    if (frames_[slot].page != kInvalidPageId) resident.push_back(slot);
  }
  std::sort(resident.begin(), resident.end(),
            [this](uint32_t a, uint32_t b) {
              return frames_[a].page < frames_[b].page;
            });
  PutVarint(out, resident.size());
  for (uint32_t slot : resident) {
    PutVarint(out, frames_[slot].page);
    PutBool(out, frames_[slot].dirty);
  }
  policy_->Save(out);
}

Status BufferPool::LoadState(std::istream& in) {
  ODBGC_DCHECK_EXCLUSIVE(&access_check_, "BufferPool::LoadState");
  if (arena_ != nullptr) {
    return Status::InvalidArgument(
        "buffer state restore is unsupported in shared-arena mode");
  }
  auto frame_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(frame_count.status());
  if (*frame_count != frame_count_) {
    return Status::Corruption("buffer state frame count mismatch");
  }
  auto kind = GetU8(in);
  ODBGC_RETURN_IF_ERROR(kind.status());
  if (*kind != static_cast<uint8_t>(policy_->kind())) {
    return Status::Corruption("buffer state replacement policy mismatch");
  }
  auto resident = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(resident.status());
  if (*resident > frame_count_) {
    return Status::Corruption("buffer state resident count exceeds capacity");
  }
  std::vector<std::pair<PageId, bool>> entries;
  entries.reserve(*resident);
  for (uint64_t i = 0; i < *resident; ++i) {
    auto page = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(page.status());
    auto dirty = GetBool(in);
    ODBGC_RETURN_IF_ERROR(dirty.status());
    entries.emplace_back(*page, *dirty);
  }

  // Persist current dirty frames so the device holds their rematerialized
  // bytes before residency changes. Sorted order keeps restoration
  // deterministic; the transfers perturb device-model state and counters,
  // which the heap restores after this call.
  std::vector<uint32_t> dirty_slots;
  for (uint32_t slot = 0; slot < used_frames_; ++slot) {
    if (frames_[slot].page != kInvalidPageId && frames_[slot].dirty) {
      dirty_slots.push_back(slot);
    }
  }
  std::sort(dirty_slots.begin(), dirty_slots.end(),
            [this](uint32_t a, uint32_t b) {
              return frames_[a].page < frames_[b].page;
            });
  for (uint32_t slot : dirty_slots) {
    ODBGC_RETURN_IF_ERROR(device_->WritePage(
        frames_[slot].page, std::span<const std::byte>(frames_[slot].data)));
  }
  for (uint32_t slot = 0; slot < used_frames_; ++slot) {
    frames_[slot].page = kInvalidPageId;
    frames_[slot].dirty = false;
  }
  page_to_frame_.Clear();
  free_frames_.clear();
  used_frames_ = 0;
  resident_count_ = 0;
  policy_->Clear();

  // Re-fault the checkpointed residency set in page order. The policy does
  // not see these inserts — its exact state is loaded below.
  for (const auto& [page, dirty] : entries) {
    if (page_to_frame_.Contains(page)) {
      return Status::Corruption("buffer state duplicate resident page");
    }
    const uint32_t slot = AllocFrame();
    Frame& frame = frames_[slot];
    if (frame.data.empty()) frame.data.resize(device_->page_size());
    ODBGC_RETURN_IF_ERROR(
        device_->ReadPage(page, std::span<std::byte>(frame.data)));
    frame.page = page;
    frame.dirty = dirty;
    page_to_frame_.Insert(page, slot);
    ++resident_count_;
  }
  ODBGC_RETURN_IF_ERROR(policy_->Load(
      in, [this](PageId page) { return page_to_frame_.Find(page); }));

  // The loaded replacement state must track exactly the resident set (the
  // resolver already rejects non-resident pages; this catches a state
  // that tracks too few).
  if (policy_->tracked() != resident_count_) {
    return Status::Corruption("buffer state policy/residency size mismatch");
  }
  return Status::Ok();
}

}  // namespace odbgc
