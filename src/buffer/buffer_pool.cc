#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/serde.h"

namespace odbgc {

BufferPool::BufferPool(SimulatedDisk* disk, size_t frame_count)
    : disk_(disk), frame_count_(frame_count) {
  assert(disk_ != nullptr);
  assert(frame_count_ > 0);
}

Result<std::span<std::byte>> BufferPool::GetPage(PageId page,
                                                 AccessMode mode) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (mode == AccessMode::kWrite) it->second.dirty = true;
    return std::span<std::byte>(it->second.data);
  }

  ++stats_.misses;

  // Evict LRU frame if the pool is full.
  if (frames_.size() >= frame_count_) {
    const PageId victim = lru_.back();
    auto victim_it = frames_.find(victim);
    assert(victim_it != frames_.end());
    ODBGC_RETURN_IF_ERROR(WriteBack(victim, victim_it->second));
    lru_.pop_back();
    frames_.erase(victim_it);
  }

  Frame frame;
  frame.data.resize(disk_->page_size());
  ODBGC_RETURN_IF_ERROR(disk_->ReadPage(page, std::span<std::byte>(frame.data)));
  if (phase_ == IoPhase::kApplication) {
    ++stats_.reads_app;
  } else {
    ++stats_.reads_gc;
  }
  frame.dirty = (mode == AccessMode::kWrite);
  lru_.push_front(page);
  frame.lru_pos = lru_.begin();
  auto [ins, ok] = frames_.emplace(page, std::move(frame));
  assert(ok);
  (void)ok;
  return std::span<std::byte>(ins->second.data);
}

Status BufferPool::WriteBack(PageId page, Frame& frame) {
  if (!frame.dirty) return Status::Ok();
  ODBGC_RETURN_IF_ERROR(
      disk_->WritePage(page, std::span<const std::byte>(frame.data)));
  if (phase_ == IoPhase::kApplication) {
    ++stats_.writes_app;
  } else {
    ++stats_.writes_gc;
  }
  frame.dirty = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    ODBGC_RETURN_IF_ERROR(WriteBack(page, frame));
  }
  return Status::Ok();
}

void BufferPool::DiscardExtent(const PageExtent& extent) {
  for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
    auto it = frames_.find(p);
    if (it == frames_.end()) continue;
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
}

bool BufferPool::IsDirty(PageId page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.dirty;
}

std::vector<PageId> BufferPool::LruOrder() const {
  return std::vector<PageId>(lru_.begin(), lru_.end());
}

void BufferPool::SaveState(std::ostream& out) const {
  PutVarint(out, frame_count_);
  PutVarint(out, frames_.size());
  for (PageId page : lru_) {  // Most recent first.
    PutVarint(out, page);
    PutBool(out, frames_.at(page).dirty);
  }
  PutVarint(out, stats_.hits);
  PutVarint(out, stats_.misses);
  PutVarint(out, stats_.reads_app);
  PutVarint(out, stats_.reads_gc);
  PutVarint(out, stats_.writes_app);
  PutVarint(out, stats_.writes_gc);
}

Status BufferPool::LoadState(std::istream& in) {
  auto frame_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(frame_count.status());
  if (*frame_count != frame_count_) {
    return Status::Corruption("buffer state frame count mismatch");
  }
  auto resident = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(resident.status());
  if (*resident > frame_count_) {
    return Status::Corruption("buffer state resident count exceeds capacity");
  }
  std::vector<std::pair<PageId, bool>> entries;
  entries.reserve(*resident);
  for (uint64_t i = 0; i < *resident; ++i) {
    auto page = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(page.status());
    auto dirty = GetBool(in);
    ODBGC_RETURN_IF_ERROR(dirty.status());
    entries.emplace_back(*page, *dirty);
  }
  BufferStats stats;
  auto get = [&in](uint64_t* out_value) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };
  ODBGC_RETURN_IF_ERROR(get(&stats.hits));
  ODBGC_RETURN_IF_ERROR(get(&stats.misses));
  ODBGC_RETURN_IF_ERROR(get(&stats.reads_app));
  ODBGC_RETURN_IF_ERROR(get(&stats.reads_gc));
  ODBGC_RETURN_IF_ERROR(get(&stats.writes_app));
  ODBGC_RETURN_IF_ERROR(get(&stats.writes_gc));

  // Persist current dirty frames so the disk holds their rematerialized
  // bytes before residency changes. Sorted order keeps restoration
  // deterministic; transfers are issued raw because the caller restores
  // the disk's counters after this.
  std::vector<PageId> dirty_pages;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty) dirty_pages.push_back(page);
  }
  std::sort(dirty_pages.begin(), dirty_pages.end());
  for (PageId page : dirty_pages) {
    ODBGC_RETURN_IF_ERROR(disk_->WritePage(
        page, std::span<const std::byte>(frames_.at(page).data)));
  }
  frames_.clear();
  lru_.clear();

  // Re-fault the checkpointed residency set, least recent first, so the
  // LRU list front ends up at the checkpoint's most recent page.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Frame frame;
    frame.data.resize(disk_->page_size());
    ODBGC_RETURN_IF_ERROR(
        disk_->ReadPage(it->first, std::span<std::byte>(frame.data)));
    frame.dirty = it->second;
    lru_.push_front(it->first);
    frame.lru_pos = lru_.begin();
    if (!frames_.emplace(it->first, std::move(frame)).second) {
      return Status::Corruption("buffer state duplicate resident page");
    }
  }
  stats_ = stats;
  return Status::Ok();
}

}  // namespace odbgc
