#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/serde.h"

namespace odbgc {

namespace {

MetricPhase ToMetricPhase(IoPhase phase) {
  return phase == IoPhase::kApplication ? MetricPhase::kApplication
                                        : MetricPhase::kCollector;
}

IoPhase FromMetricPhase(MetricPhase phase) {
  return phase == MetricPhase::kApplication ? IoPhase::kApplication
                                            : IoPhase::kCollector;
}

}  // namespace

BufferPool::BufferPool(PageDevice* device, size_t frame_count,
                       ReplacementPolicyKind policy)
    : device_(device),
      registry_(device ? device->metrics() : nullptr),
      frame_count_(frame_count),
      policy_(MakeReplacementPolicy(policy, frame_count)),
      hits_(registry_->Register("buffer.hits")),
      misses_(registry_->Register("buffer.misses")),
      reads_(registry_->Register("buffer.disk_reads")),
      writes_(registry_->Register("buffer.disk_writes")) {
  assert(device_ != nullptr);
  assert(frame_count_ > 0);
}

void BufferPool::set_phase(IoPhase phase) {
  registry_->set_phase(ToMetricPhase(phase));
}

IoPhase BufferPool::phase() const {
  return FromMetricPhase(registry_->phase());
}

Result<std::span<std::byte>> BufferPool::GetPage(PageId page,
                                                 AccessMode mode) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    registry_->Count(hits_);
    policy_->OnHit(page);
    if (mode == AccessMode::kWrite) it->second.dirty = true;
    return std::span<std::byte>(it->second.data);
  }

  registry_->Count(misses_);

  // Evict the policy's victim if the pool is full.
  if (frames_.size() >= frame_count_) {
    const PageId victim = policy_->ChooseVictim();
    auto victim_it = frames_.find(victim);
    assert(victim_it != frames_.end());
    ODBGC_RETURN_IF_ERROR(WriteBack(victim, victim_it->second));
    policy_->OnEvict(victim);
    frames_.erase(victim_it);
  }

  Frame frame;
  frame.data.resize(device_->page_size());
  ODBGC_RETURN_IF_ERROR(
      device_->ReadPage(page, std::span<std::byte>(frame.data)));
  registry_->Count(reads_);
  frame.dirty = (mode == AccessMode::kWrite);
  policy_->OnInsert(page);
  auto [ins, ok] = frames_.emplace(page, std::move(frame));
  assert(ok);
  (void)ok;
  return std::span<std::byte>(ins->second.data);
}

Status BufferPool::WriteBack(PageId page, Frame& frame) {
  if (!frame.dirty) return Status::Ok();
  ODBGC_RETURN_IF_ERROR(
      device_->WritePage(page, std::span<const std::byte>(frame.data)));
  registry_->Count(writes_);
  frame.dirty = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    ODBGC_RETURN_IF_ERROR(WriteBack(page, frame));
  }
  return Status::Ok();
}

void BufferPool::DiscardExtent(const PageExtent& extent) {
  for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
    auto it = frames_.find(p);
    if (it == frames_.end()) continue;
    policy_->OnErase(p);
    frames_.erase(it);
  }
}

BufferStats BufferPool::stats() const {
  BufferStats stats;
  stats.hits = hits_->total();
  stats.misses = misses_->total();
  stats.reads_app = reads_->value(MetricPhase::kApplication);
  stats.reads_gc = reads_->value(MetricPhase::kCollector);
  stats.writes_app = writes_->value(MetricPhase::kApplication);
  stats.writes_gc = writes_->value(MetricPhase::kCollector);
  return stats;
}

void BufferPool::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  reads_->Reset();
  writes_->Reset();
}

bool BufferPool::IsDirty(PageId page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.dirty;
}

std::vector<PageId> BufferPool::LruOrder() const { return policy_->Order(); }

void BufferPool::SaveState(std::ostream& out) const {
  PutVarint(out, frame_count_);
  PutU8(out, static_cast<uint8_t>(policy_->kind()));
  std::vector<PageId> resident;
  resident.reserve(frames_.size());
  for (const auto& [page, frame] : frames_) resident.push_back(page);
  std::sort(resident.begin(), resident.end());
  PutVarint(out, resident.size());
  for (PageId page : resident) {
    PutVarint(out, page);
    PutBool(out, frames_.at(page).dirty);
  }
  policy_->Save(out);
}

Status BufferPool::LoadState(std::istream& in) {
  auto frame_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(frame_count.status());
  if (*frame_count != frame_count_) {
    return Status::Corruption("buffer state frame count mismatch");
  }
  auto kind = GetU8(in);
  ODBGC_RETURN_IF_ERROR(kind.status());
  if (*kind != static_cast<uint8_t>(policy_->kind())) {
    return Status::Corruption("buffer state replacement policy mismatch");
  }
  auto resident = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(resident.status());
  if (*resident > frame_count_) {
    return Status::Corruption("buffer state resident count exceeds capacity");
  }
  std::vector<std::pair<PageId, bool>> entries;
  entries.reserve(*resident);
  for (uint64_t i = 0; i < *resident; ++i) {
    auto page = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(page.status());
    auto dirty = GetBool(in);
    ODBGC_RETURN_IF_ERROR(dirty.status());
    entries.emplace_back(*page, *dirty);
  }

  // Persist current dirty frames so the device holds their rematerialized
  // bytes before residency changes. Sorted order keeps restoration
  // deterministic; the transfers perturb device-model state and counters,
  // which the heap restores after this call.
  std::vector<PageId> dirty_pages;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty) dirty_pages.push_back(page);
  }
  std::sort(dirty_pages.begin(), dirty_pages.end());
  for (PageId page : dirty_pages) {
    ODBGC_RETURN_IF_ERROR(device_->WritePage(
        page, std::span<const std::byte>(frames_.at(page).data)));
  }
  frames_.clear();
  policy_->Clear();

  // Re-fault the checkpointed residency set in page order. The policy does
  // not see these inserts — its exact state is loaded below.
  for (const auto& [page, dirty] : entries) {
    Frame frame;
    frame.data.resize(device_->page_size());
    ODBGC_RETURN_IF_ERROR(
        device_->ReadPage(page, std::span<std::byte>(frame.data)));
    frame.dirty = dirty;
    if (!frames_.emplace(page, std::move(frame)).second) {
      return Status::Corruption("buffer state duplicate resident page");
    }
  }
  ODBGC_RETURN_IF_ERROR(policy_->Load(in));

  // The loaded replacement state must track exactly the resident set.
  const std::vector<PageId> tracked = policy_->Order();
  if (tracked.size() != frames_.size()) {
    return Status::Corruption("buffer state policy/residency size mismatch");
  }
  for (PageId page : tracked) {
    if (frames_.count(page) == 0) {
      return Status::Corruption("buffer state policy tracks non-resident page");
    }
  }
  return Status::Ok();
}

}  // namespace odbgc
