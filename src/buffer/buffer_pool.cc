#include "buffer/buffer_pool.h"

#include <cassert>

namespace odbgc {

BufferPool::BufferPool(SimulatedDisk* disk, size_t frame_count)
    : disk_(disk), frame_count_(frame_count) {
  assert(disk_ != nullptr);
  assert(frame_count_ > 0);
}

Result<std::span<std::byte>> BufferPool::GetPage(PageId page,
                                                 AccessMode mode) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (mode == AccessMode::kWrite) it->second.dirty = true;
    return std::span<std::byte>(it->second.data);
  }

  ++stats_.misses;

  // Evict LRU frame if the pool is full.
  if (frames_.size() >= frame_count_) {
    const PageId victim = lru_.back();
    auto victim_it = frames_.find(victim);
    assert(victim_it != frames_.end());
    ODBGC_RETURN_IF_ERROR(WriteBack(victim, victim_it->second));
    lru_.pop_back();
    frames_.erase(victim_it);
  }

  Frame frame;
  frame.data.resize(disk_->page_size());
  ODBGC_RETURN_IF_ERROR(disk_->ReadPage(page, std::span<std::byte>(frame.data)));
  if (phase_ == IoPhase::kApplication) {
    ++stats_.reads_app;
  } else {
    ++stats_.reads_gc;
  }
  frame.dirty = (mode == AccessMode::kWrite);
  lru_.push_front(page);
  frame.lru_pos = lru_.begin();
  auto [ins, ok] = frames_.emplace(page, std::move(frame));
  assert(ok);
  (void)ok;
  return std::span<std::byte>(ins->second.data);
}

Status BufferPool::WriteBack(PageId page, Frame& frame) {
  if (!frame.dirty) return Status::Ok();
  ODBGC_RETURN_IF_ERROR(
      disk_->WritePage(page, std::span<const std::byte>(frame.data)));
  if (phase_ == IoPhase::kApplication) {
    ++stats_.writes_app;
  } else {
    ++stats_.writes_gc;
  }
  frame.dirty = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    ODBGC_RETURN_IF_ERROR(WriteBack(page, frame));
  }
  return Status::Ok();
}

void BufferPool::DiscardExtent(const PageExtent& extent) {
  for (PageId p = extent.first_page; p < extent.end_page(); ++p) {
    auto it = frames_.find(p);
    if (it == frames_.end()) continue;
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
}

bool BufferPool::IsDirty(PageId page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.dirty;
}

std::vector<PageId> BufferPool::LruOrder() const {
  return std::vector<PageId>(lru_.begin(), lru_.end());
}

}  // namespace odbgc
