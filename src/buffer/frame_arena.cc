#include "buffer/frame_arena.h"

namespace odbgc {

namespace {

size_t DefaultStripeCount(size_t frame_count) {
  // One stripe per ~64 frames, clamped to [8, 64]: small arenas still
  // spread hot keys over several locks, huge ones don't pay for hundreds
  // of mostly-idle shards.
  size_t stripes = 8;
  while (stripes < 64 && stripes * 64 < frame_count) stripes *= 2;
  return stripes;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

SharedFrameArena::SharedFrameArena(size_t frame_count, size_t stripe_count) {
  assert(frame_count > 0);
  stripe_count_ = stripe_count == 0 ? DefaultStripeCount(frame_count)
                                    : RoundUpPow2(stripe_count);
  stripe_mask_ = stripe_count_ - 1;
  stripes_ = std::make_unique<Stripe[]>(stripe_count_);
  frames_.resize(frame_count);
  free_frames_.reserve(frame_count);
}

uint32_t SharedFrameArena::FindSlot(uint32_t tenant, PageId page) const {
  const uint64_t key = Key(tenant, page);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  ODBGC_DCHECK_EXCLUSIVE(&stripe.check, "SharedFrameArena::Stripe");
  return stripe.table.Find(key);
}

void SharedFrameArena::InsertSlot(uint32_t tenant, PageId page,
                                  uint32_t slot) {
  const uint64_t key = Key(tenant, page);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  ODBGC_DCHECK_EXCLUSIVE(&stripe.check, "SharedFrameArena::Stripe");
  stripe.table.Insert(key, slot);
}

void SharedFrameArena::EraseSlot(uint32_t tenant, PageId page) {
  const uint64_t key = Key(tenant, page);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  ODBGC_DCHECK_EXCLUSIVE(&stripe.check, "SharedFrameArena::Stripe");
  stripe.table.Erase(key);
}

size_t SharedFrameArena::ResidentEntries() const {
  size_t total = 0;
  for (size_t i = 0; i < stripe_count_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mutex);
    total += stripes_[i].table.size();
  }
  return total;
}

uint32_t SharedFrameArena::TryAllocFrame() {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  if (!free_frames_.empty()) {
    const uint32_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (used_frames_ < frames_.size()) return used_frames_++;
  return kNoFrame;
}

void SharedFrameArena::ReleaseFrame(uint32_t frame) {
  assert(frame < frames_.size());
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  free_frames_.push_back(frame);
}

void SharedFrameArena::ReleaseFrames(std::span<const uint32_t> frames) {
  if (frames.empty()) return;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  for (uint32_t frame : frames) {
    assert(frame < frames_.size());
    free_frames_.push_back(frame);
  }
}

uint64_t SharedFrameArena::FramesInUse() const {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  return used_frames_ - free_frames_.size();
}

}  // namespace odbgc
