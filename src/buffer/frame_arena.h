#ifndef ODBGC_BUFFER_FRAME_ARENA_H_
#define ODBGC_BUFFER_FRAME_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "storage/page.h"
#include "util/access_check.h"
#include "util/hash.h"
#include "util/open_hash_map.h"

namespace odbgc {

/// One physically shared frame arena backing every tenant BufferPool of a
/// multi-tenant heap service (DESIGN.md §17). The arena owns exactly two
/// shared structures:
///
///   1. The frame array — `frame_count` page payloads, handed out through
///      a mutex-protected free list. A frame belongs to exactly one tenant
///      pool at a time; its bytes are touched only by that owner, so the
///      payloads themselves need no locking.
///   2. A lock-striped residency table mapping (tenant, page) → the owning
///      pool's *logical slot*. Stripes are hash shards of one
///      `OpenIndexMap` keyed by `tenant << 40 | page`; each stripe has its
///      own mutex, so lookups and evictions by different tenants contend
///      only when their keys hash to the same shard — never on a global
///      lock.
///
/// Replacement state is deliberately NOT per stripe: the service's
/// determinism contract requires each tenant's eviction decisions (and
/// hence its hit/miss/eviction counters) to be byte-identical to a private
/// pool of `buffer_pages` frames, which forces the policy instance to be
/// per tenant, over the tenant's logical quota. Each tenant's policy is
/// owned and driven exclusively by its pool's single owner thread, so
/// eviction takes only the victim's stripe lock (to drop the mapping) and
/// — when a frame changes hands — the allocator lock. See BufferPool for
/// the per-tenant half of the protocol.
///
/// Threading: every table operation locks its stripe; alloc/release lock
/// the allocator. A per-stripe ExclusiveAccessCheck is asserted *inside*
/// each critical section — the single-owner assertions the private pools
/// carry become stripe-scoped here, so a code path that ever touched a
/// stripe without its mutex trips the same loud debug abort.
class SharedFrameArena {
 public:
  /// "No frame / not resident" sentinel for TryAllocFrame and FindSlot.
  static constexpr uint32_t kNoFrame = UINT32_MAX;
  /// PageIds must fit below this bit position in the composite table key;
  /// the dense data plane (DESIGN.md §12) bounds page ids well under it.
  static constexpr int kPageBits = 40;
  static constexpr uint32_t kMaxTenants = 1u << (64 - kPageBits);

  /// `frame_count` > 0 physical frames. `stripe_count` 0 picks a
  /// power-of-two stripe count scaled to the arena (at least 8); tests pin
  /// it explicitly to force cross-stripe and same-stripe contention.
  explicit SharedFrameArena(size_t frame_count, size_t stripe_count = 0);

  SharedFrameArena(const SharedFrameArena&) = delete;
  SharedFrameArena& operator=(const SharedFrameArena&) = delete;

  size_t frame_count() const { return frames_.size(); }
  size_t stripe_count() const { return stripe_count_; }

  // -- Striped residency table ----------------------------------------------

  /// The owner's logical slot holding (tenant, page), or kNoFrame.
  uint32_t FindSlot(uint32_t tenant, PageId page) const;
  /// Maps (tenant, page) → `slot`. The key must not be present.
  void InsertSlot(uint32_t tenant, PageId page, uint32_t slot);
  /// Drops (tenant, page). The key must be present.
  void EraseSlot(uint32_t tenant, PageId page);
  /// Resident entries across all stripes (sums under the stripe locks; a
  /// barrier/test-time figure, not a hot-path one).
  size_t ResidentEntries() const;

  // -- Frame allocator ------------------------------------------------------

  /// Hands out a free frame, or kNoFrame when the arena is exhausted (the
  /// caller then squeezes its own quota — see BufferPool::GetPage).
  uint32_t TryAllocFrame();
  /// Returns one frame / a batch of frames to the free list.
  void ReleaseFrame(uint32_t frame);
  void ReleaseFrames(std::span<const uint32_t> frames);
  /// Frames currently attached to some pool.
  uint64_t FramesInUse() const;

  /// Payload bytes of `frame`. Only the owning pool may touch them (the
  /// ownership handoff through the allocator lock publishes the bytes).
  std::vector<std::byte>& FrameData(uint32_t frame) {
    return frames_[frame].data;
  }

  // -- Telemetry ------------------------------------------------------------

  /// A pool evicted under quota because the arena was exhausted. Squeezes
  /// are deterministic at one service thread but timing-dependent across
  /// threads, so the aggregate-invariance gate only covers runs where this
  /// stays 0 (budget >= watermark + the largest tenant cap guarantees it).
  void NoteSqueezedEviction() {
    squeezed_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t squeezed_evictions() const {
    return squeezed_.load(std::memory_order_relaxed);
  }

  /// Composite table key; asserts the page fits its 40-bit field.
  static uint64_t Key(uint32_t tenant, PageId page) {
    assert(page < (uint64_t{1} << kPageBits));
    return (static_cast<uint64_t>(tenant) << kPageBits) | page;
  }

 private:
  struct Frame {
    std::vector<std::byte> data;  // Sized lazily by the first owner.
  };

  /// One table shard: a mutex, its slice of the residency map, and the
  /// stripe-scoped single-owner assertion (armed inside the lock).
  /// Cache-line aligned so neighbouring stripes don't false-share.
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    OpenIndexMap table;
    mutable ExclusiveAccessCheck check;
  };

  Stripe& StripeFor(uint64_t key) const {
    // The map mixes the low hash bits into its buckets; the stripe takes
    // the top bits so shard choice and in-shard placement stay independent.
    return stripes_[(FibonacciHash64(key) >> 48) & stripe_mask_];
  }

  size_t stripe_count_ = 0;
  size_t stripe_mask_ = 0;
  std::unique_ptr<Stripe[]> stripes_;

  std::vector<Frame> frames_;
  mutable std::mutex alloc_mutex_;
  std::vector<uint32_t> free_frames_;
  uint32_t used_frames_ = 0;  // High-water mark of ever-handed-out frames.

  std::atomic<uint64_t> squeezed_{0};
};

}  // namespace odbgc

#endif  // ODBGC_BUFFER_FRAME_ARENA_H_
