#include "odb/store_image.h"

#include "util/serde.h"

namespace odbgc {

Status WriteStoreImage(const StoreImage& image, std::ostream* out) {
  PutU32(*out, kStoreImageMagic);
  PutU32(*out, kStoreImageVersion);  // 16 bits used; u32 keeps it simple.

  PutVarint(*out, image.page_size);
  PutVarint(*out, image.pages_per_partition);
  PutBool(*out, image.reserve_empty_partition);

  PutVarint(*out, image.partitions.size());
  for (const auto& partition : image.partitions) {
    PutVarint(*out, partition.alloc_offset);
  }
  PutVarint(*out, image.empty_partition == kInvalidPartition
                      ? 0
                      : static_cast<uint64_t>(image.empty_partition) + 1);
  PutVarint(*out, image.next_id);

  PutVarint(*out, image.objects.size());
  for (const auto& object : image.objects) {
    PutVarint(*out, object.id.value);
    PutVarint(*out, object.partition);
    PutVarint(*out, object.offset);
    PutVarint(*out, object.size);
    PutVarint(*out, object.num_slots);
    PutU8(*out, object.flags);
    for (ObjectId slot : object.slots) PutVarint(*out, slot.value);
  }

  PutVarint(*out, image.roots.size());
  for (ObjectId root : image.roots) PutVarint(*out, root.value);

  out->flush();
  return out->good() ? Status::Ok()
                     : Status::IoError("store image write failed");
}

Result<StoreImage> ReadStoreImage(std::istream* in) {
  auto magic = GetU32(*in);
  ODBGC_RETURN_IF_ERROR(magic.status());
  if (*magic != kStoreImageMagic) {
    return Status::Corruption("bad store image magic");
  }
  auto version = GetU32(*in);
  ODBGC_RETURN_IF_ERROR(version.status());
  if (*version != kStoreImageVersion) {
    return Status::Corruption("unsupported store image version");
  }

  StoreImage image;
  auto get = [in](uint64_t* out_value) -> Status {
    auto v = GetVarint(*in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };

  uint64_t tmp = 0;
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.page_size = static_cast<size_t>(tmp);
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.pages_per_partition = static_cast<size_t>(tmp);
  {
    auto reserve = GetBool(*in);
    ODBGC_RETURN_IF_ERROR(reserve.status());
    image.reserve_empty_partition = *reserve;
  }

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > 1u << 20) return Status::Corruption("image: partition count");
  image.partitions.resize(tmp);
  for (auto& partition : image.partitions) {
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    partition.alloc_offset = static_cast<uint32_t>(tmp);
  }
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.empty_partition =
      tmp == 0 ? kInvalidPartition : static_cast<PartitionId>(tmp - 1);
  ODBGC_RETURN_IF_ERROR(get(&image.next_id));

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > 1ull << 32) return Status::Corruption("image: object count");
  image.objects.resize(tmp);
  for (auto& object : image.objects) {
    ODBGC_RETURN_IF_ERROR(get(&object.id.value));
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.partition = static_cast<PartitionId>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.offset = static_cast<uint32_t>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.size = static_cast<uint32_t>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.num_slots = static_cast<uint32_t>(tmp);
    if (object.num_slots > 1u << 16) {
      return Status::Corruption("image: slot count");
    }
    auto flags = GetU8(*in);
    ODBGC_RETURN_IF_ERROR(flags.status());
    object.flags = *flags;
    object.slots.resize(object.num_slots);
    for (auto& slot : object.slots) {
      ODBGC_RETURN_IF_ERROR(get(&slot.value));
    }
  }

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > image.objects.size()) {
    return Status::Corruption("image: root count exceeds object count");
  }
  image.roots.resize(tmp);
  for (auto& root : image.roots) {
    ODBGC_RETURN_IF_ERROR(get(&root.value));
  }
  return image;
}

Status SaveStore(const ObjectStore& store, std::ostream* out) {
  return WriteStoreImage(store.ExtractImage(), out);
}

}  // namespace odbgc
