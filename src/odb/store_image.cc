#include "odb/store_image.h"

namespace odbgc {

namespace {

void PutVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

Result<uint64_t> GetVarint(std::istream& in) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("image truncated inside varint");
    v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("image varint too long");
  }
  return v;
}

void PutU32(std::ostream& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

Result<uint32_t> GetU32(std::istream& in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const int c = in.get();
    if (c == EOF) return Status::Corruption("image truncated");
    v |= static_cast<uint32_t>(c) << (8 * i);
  }
  return v;
}

}  // namespace

Status WriteStoreImage(const StoreImage& image, std::ostream* out) {
  PutU32(*out, kStoreImageMagic);
  PutU32(*out, kStoreImageVersion);  // 16 bits used; u32 keeps it simple.

  PutVarint(*out, image.page_size);
  PutVarint(*out, image.pages_per_partition);
  out->put(image.reserve_empty_partition ? 1 : 0);

  PutVarint(*out, image.partitions.size());
  for (const auto& partition : image.partitions) {
    PutVarint(*out, partition.alloc_offset);
  }
  PutVarint(*out, image.empty_partition == kInvalidPartition
                      ? 0
                      : static_cast<uint64_t>(image.empty_partition) + 1);
  PutVarint(*out, image.next_id);

  PutVarint(*out, image.objects.size());
  for (const auto& object : image.objects) {
    PutVarint(*out, object.id.value);
    PutVarint(*out, object.partition);
    PutVarint(*out, object.offset);
    PutVarint(*out, object.size);
    PutVarint(*out, object.num_slots);
    out->put(static_cast<char>(object.flags));
    for (ObjectId slot : object.slots) PutVarint(*out, slot.value);
  }

  PutVarint(*out, image.roots.size());
  for (ObjectId root : image.roots) PutVarint(*out, root.value);

  out->flush();
  return out->good() ? Status::Ok()
                     : Status::IoError("store image write failed");
}

Result<StoreImage> ReadStoreImage(std::istream* in) {
  auto magic = GetU32(*in);
  ODBGC_RETURN_IF_ERROR(magic.status());
  if (*magic != kStoreImageMagic) {
    return Status::Corruption("bad store image magic");
  }
  auto version = GetU32(*in);
  ODBGC_RETURN_IF_ERROR(version.status());
  if (*version != kStoreImageVersion) {
    return Status::Corruption("unsupported store image version");
  }

  StoreImage image;
  auto get = [in](uint64_t* out_value) -> Status {
    auto v = GetVarint(*in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };

  uint64_t tmp = 0;
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.page_size = static_cast<size_t>(tmp);
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.pages_per_partition = static_cast<size_t>(tmp);
  {
    const int c = in->get();
    if (c == EOF) return Status::Corruption("image truncated");
    image.reserve_empty_partition = (c != 0);
  }

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > 1u << 20) return Status::Corruption("image: partition count");
  image.partitions.resize(tmp);
  for (auto& partition : image.partitions) {
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    partition.alloc_offset = static_cast<uint32_t>(tmp);
  }
  ODBGC_RETURN_IF_ERROR(get(&tmp));
  image.empty_partition =
      tmp == 0 ? kInvalidPartition : static_cast<PartitionId>(tmp - 1);
  ODBGC_RETURN_IF_ERROR(get(&image.next_id));

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > 1ull << 32) return Status::Corruption("image: object count");
  image.objects.resize(tmp);
  for (auto& object : image.objects) {
    ODBGC_RETURN_IF_ERROR(get(&object.id.value));
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.partition = static_cast<PartitionId>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.offset = static_cast<uint32_t>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.size = static_cast<uint32_t>(tmp);
    ODBGC_RETURN_IF_ERROR(get(&tmp));
    object.num_slots = static_cast<uint32_t>(tmp);
    if (object.num_slots > 1u << 16) {
      return Status::Corruption("image: slot count");
    }
    const int flags = in->get();
    if (flags == EOF) return Status::Corruption("image truncated");
    object.flags = static_cast<uint8_t>(flags);
    object.slots.resize(object.num_slots);
    for (auto& slot : object.slots) {
      ODBGC_RETURN_IF_ERROR(get(&slot.value));
    }
  }

  ODBGC_RETURN_IF_ERROR(get(&tmp));
  if (tmp > image.objects.size()) {
    return Status::Corruption("image: root count exceeds object count");
  }
  image.roots.resize(tmp);
  for (auto& root : image.roots) {
    ODBGC_RETURN_IF_ERROR(get(&root.value));
  }
  return image;
}

Status SaveStore(const ObjectStore& store, std::ostream* out) {
  return WriteStoreImage(store.ExtractImage(), out);
}

}  // namespace odbgc
