#include "odb/object_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace odbgc {

ObjectStore::ObjectStore(const StoreOptions& options, PageDevice* disk,
                         BufferPool* buffer)
    : options_(options), disk_(disk), buffer_(buffer) {
  assert(disk_ != nullptr && buffer_ != nullptr);
  assert(options_.pages_per_partition > 0);
  AddPartition();  // Partition 0: first allocatable partition.
  if (options_.reserve_empty_partition) {
    empty_partition_ = AddPartition();
  }
}

ObjectStore::ObjectStore(const StoreOptions& options, PageDevice* disk,
                         BufferPool* buffer, RestoreTag)
    : options_(options), disk_(disk), buffer_(buffer) {
  assert(disk_ != nullptr && buffer_ != nullptr);
}

StoreImage ObjectStore::ExtractImage() const {
  StoreImage image;
  image.page_size = options_.page_size;
  image.pages_per_partition = options_.pages_per_partition;
  image.reserve_empty_partition = options_.reserve_empty_partition;
  image.empty_partition = empty_partition_;
  image.next_id = next_id_;
  for (const Partition& partition : partitions_) {
    image.partitions.push_back({partition.allocated_bytes()});
  }
  for (const Partition& partition : partitions_) {
    for (const auto& [offset, id] : partition.objects_by_offset()) {
      const ObjectInfo& info = *Lookup(id);
      StoreImage::ObjectImage object;
      object.id = id;
      object.partition = info.partition;
      object.offset = info.offset;
      object.size = info.size;
      object.num_slots = info.num_slots;
      object.flags = info.flags;
      object.slots = info.slots;
      image.objects.push_back(std::move(object));
    }
  }
  image.roots = roots_;
  return image;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Restore(
    const StoreImage& image, PageDevice* disk, BufferPool* buffer,
    PlacementPolicy placement) {
  StoreOptions options;
  options.page_size = image.page_size;
  options.pages_per_partition = image.pages_per_partition;
  options.reserve_empty_partition = image.reserve_empty_partition;
  options.placement = placement;
  if (options.page_size == 0 || options.pages_per_partition == 0) {
    return Status::Corruption("image: bad geometry");
  }
  if (disk->num_pages() != 0) {
    return Status::InvalidArgument("Restore requires an empty disk");
  }

  auto store = std::unique_ptr<ObjectStore>(
      new ObjectStore(options, disk, buffer, RestoreTag{}));

  for (const auto& partition_image : image.partitions) {
    const PartitionId id = store->AddPartition();
    if (partition_image.alloc_offset >
        store->partitions_[id].capacity_bytes()) {
      return Status::Corruption("image: partition alloc beyond capacity");
    }
    store->partitions_[id].RestoreAllocOffset(partition_image.alloc_offset);
  }
  if (image.empty_partition != kInvalidPartition &&
      image.empty_partition >= store->partitions_.size()) {
    return Status::Corruption("image: bad empty partition");
  }
  store->empty_partition_ = image.empty_partition;
  if (image.next_id == 0 || image.next_id > (1ull << 40)) {
    // The slot directory is indexed by id, so an absurd next_id from a
    // damaged image must fail cleanly instead of exhausting memory.
    return Status::Corruption("image: implausible next_id");
  }
  store->next_id_ = image.next_id;
  store->published_next_id_.store(image.next_id, std::memory_order_release);
  store->id_to_slot_.assign(image.next_id, kNoSlot);

  // First pass: register every object (bounds + uniqueness checks).
  for (const auto& object : image.objects) {
    if (object.id.is_null() || object.id.value >= image.next_id) {
      return Status::Corruption("image: object id out of range");
    }
    if (object.partition >= store->partitions_.size()) {
      return Status::Corruption("image: object in unknown partition");
    }
    Partition& partition = store->partitions_[object.partition];
    if (object.size < MinObjectSize(object.num_slots) ||
        static_cast<uint64_t>(object.offset) + object.size >
            partition.allocated_bytes()) {
      return Status::Corruption("image: object bounds invalid");
    }
    if (object.slots.size() != object.num_slots) {
      return Status::Corruption("image: slot count mismatch");
    }
    if (store->id_to_slot_[object.id.value] != kNoSlot) {
      return Status::Corruption("image: duplicate object id");
    }
    const uint32_t slot = store->ClaimSlot();
    store->id_to_slot_[object.id.value] = slot;
    ObjectInfo& info = store->slots_[slot];
    info.partition = object.partition;
    info.offset = object.offset;
    info.size = object.size;
    info.num_slots = object.num_slots;
    info.flags = object.flags;
    info.slots = object.slots;
    partition.AddObject(object.offset, object.id);
    store->live_bytes_ += object.size;
    ++store->live_count_;
  }

  // Overlap check per partition (roster is offset-ordered; two objects
  // registered at the same offset surface as an overlap here, since
  // every object is at least a header long).
  for (const Partition& partition : store->partitions_) {
    uint32_t prev_end = 0;
    for (const auto& [offset, id] : partition.objects_by_offset()) {
      if (offset < prev_end) {
        return Status::Corruption("image: overlapping objects");
      }
      prev_end = offset + store->Lookup(id)->size;
    }
  }

  // Slot referents and roots must exist.
  for (const auto& object : image.objects) {
    for (ObjectId target : object.slots) {
      if (!target.is_null() && !store->Exists(target)) {
        return Status::Corruption("image: dangling slot reference");
      }
    }
  }
  for (ObjectId root : image.roots) {
    if (!store->Exists(root)) {
      return Status::Corruption("image: dangling root");
    }
    ODBGC_RETURN_IF_ERROR(store->AddRoot(root));
  }

  // Second pass: re-materialize headers and slots into pages.
  for (const auto& object : image.objects) {
    std::vector<std::byte> bytes(MinObjectSize(object.num_slots));
    ObjectHeader header;
    header.id = object.id;
    header.size = object.size;
    header.num_slots = object.num_slots;
    header.flags = object.flags;
    EncodeObjectHeader(header, bytes);
    for (uint32_t s = 0; s < object.num_slots; ++s) {
      EncodeSlot(object.slots[s], std::span<std::byte>(bytes).subspan(
                                      SlotOffset(s), kSlotSize));
    }
    ODBGC_RETURN_IF_ERROR(
        store->WriteBytes(object.partition, object.offset, bytes));
  }
  return store;
}

Status ObjectStore::RestoreAllocCursors(PartitionId current,
                                        PartitionId round_robin) {
  if (current >= partitions_.size() || round_robin >= partitions_.size()) {
    return Status::Corruption("allocation cursor names unknown partition");
  }
  current_alloc_partition_ = current;
  round_robin_cursor_ = round_robin;
  return Status::Ok();
}

PartitionId ObjectStore::AddPartition() {
  const PartitionId id = static_cast<PartitionId>(partitions_.size());
  PageExtent extent = disk_->AllocatePages(options_.pages_per_partition);
  partitions_.emplace_back(id, extent, options_.page_size);
  return id;
}

uint32_t ObjectStore::ClaimSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

bool ObjectStore::TryPlace(PartitionId partition, uint32_t size,
                           uint32_t* offset) {
  if (partition == empty_partition_) return false;
  return partitions_[partition].TryAllocate(size, offset);
}

PartitionId ObjectStore::ChoosePartition(uint32_t size, ObjectId parent_hint) {
  // Round-robin: rotate over partitions with room (control policy that
  // deliberately destroys clustering).
  if (options_.placement == PlacementPolicy::kRoundRobin) {
    const size_t n = partitions_.size();
    for (size_t step = 1; step <= n; ++step) {
      const PartitionId p =
          static_cast<PartitionId>((round_robin_cursor_ + step) % n);
      if (p == empty_partition_) continue;
      if (partitions_[p].free_bytes() >= size) {
        round_robin_cursor_ = p;
        return p;
      }
    }
    return AddPartition();
  }

  // 1. Near the parent (the paper's placement policy).
  if (options_.placement == PlacementPolicy::kNearParent) {
    if (const ObjectInfo* parent = Lookup(parent_hint)) {
      if (partitions_[parent->partition].free_bytes() >= size &&
          parent->partition != empty_partition_) {
        return parent->partition;
      }
    }
  }
  // 2. The current allocation partition, so parentless allocations (new
  //    tree roots) stream into one partition in creation order.
  if (current_alloc_partition_ < partitions_.size() &&
      current_alloc_partition_ != empty_partition_ &&
      partitions_[current_alloc_partition_].free_bytes() >= size) {
    return current_alloc_partition_;
  }
  // 3. First fit over existing partitions.
  for (const Partition& p : partitions_) {
    if (p.id() != empty_partition_ && p.free_bytes() >= size) return p.id();
  }
  // 4. Grow the database by one partition ("when free space is exhausted").
  return AddPartition();
}

Result<ObjectId> ObjectStore::Allocate(uint32_t size, uint32_t num_slots,
                                       ObjectId parent_hint, uint8_t flags) {
  if (size < MinObjectSize(num_slots)) {
    return Status::InvalidArgument("object size below header+slots minimum");
  }
  if (size > partition_bytes()) {
    return Status::InvalidArgument("object larger than a partition");
  }

  const PartitionId pid = ChoosePartition(size, parent_hint);
  uint32_t offset = 0;
  if (!TryPlace(pid, size, &offset)) {
    return Status::ResourceExhausted("partition chosen for allocation full");
  }
  current_alloc_partition_ = pid;

  const ObjectId id{next_id_++};
  const uint32_t slot = ClaimSlot();
  id_to_slot_.push_back(slot);  // id.value == previous id_to_slot_.size().
  ObjectInfo& info = slots_[slot];
  info.partition = pid;
  info.offset = offset;
  info.size = size;
  info.num_slots = num_slots;
  info.flags = flags;
  info.root_pos = ObjectInfo::kNotRoot;
  info.slots.assign(num_slots, kNullObjectId);
  partitions_[pid].AddObject(offset, id);
  live_bytes_ += size;
  ++live_count_;
  // Release-publish the new id only after its table entry is complete: a
  // concurrent reader that acquire-loads the watermark sees a fully
  // initialized ObjectInfo.
  published_next_id_.store(next_id_, std::memory_order_release);

  // Serialize header + null slots; charge writes covering the whole new
  // object (a freshly created object is written in its entirety).
  std::vector<std::byte> image(MinObjectSize(num_slots));
  ObjectHeader header;
  header.id = id;
  header.size = size;
  header.num_slots = num_slots;
  header.weight = 16;
  header.flags = flags;
  EncodeObjectHeader(header, image);
  for (uint32_t s = 0; s < num_slots; ++s) {
    EncodeSlot(kNullObjectId,
               std::span<std::byte>(image).subspan(SlotOffset(s), kSlotSize));
  }
  ODBGC_RETURN_IF_ERROR(WriteBytes(pid, offset, image));
  // The payload area beyond header+slots is charged but not transferred.
  if (size > image.size()) {
    ODBGC_RETURN_IF_ERROR(TouchRange(pid, offset + image.size(),
                                     size - static_cast<uint32_t>(image.size()),
                                     AccessMode::kWrite));
  }
  return id;
}

Status ObjectStore::WriteSlot(ObjectId source, uint32_t slot,
                              ObjectId target) {
  ObjectInfo* info = MutableLookup(source);
  if (info == nullptr) {
    return Status::NotFound("WriteSlot: source object not found");
  }
  if (slot >= info->num_slots) {
    return Status::OutOfRange("WriteSlot: slot index out of range");
  }
  if (!target.is_null() && !Exists(target)) {
    return Status::NotFound("WriteSlot: target object not found");
  }

  const ObjectId old_target = info->slots[slot];

  SlotWriteEvent event;
  event.source = source;
  event.source_partition = info->partition;
  event.slot = slot;
  event.old_target = old_target;
  if (const ObjectInfo* t = Lookup(old_target)) {
    event.old_target_partition = t->partition;
  }
  event.new_target = target;
  if (const ObjectInfo* t = Lookup(target)) {
    event.new_target_partition = t->partition;
  }

  // Update shadow and serialized state. One write access to the slot's
  // page; the old value lives on the same page, so reading it first (as
  // UpdatedPointer requires) costs no extra I/O — exactly the paper's
  // argument for that policy's cheapness.
  info->slots[slot] = target;
  std::byte image[kSlotSize];
  EncodeSlot(target, image);
  ODBGC_RETURN_IF_ERROR(WriteBytes(
      info->partition, info->offset + static_cast<uint32_t>(SlotOffset(slot)),
      std::span<const std::byte>(image, kSlotSize)));

  if (observer_ != nullptr) observer_->OnSlotWrite(event);
  return Status::Ok();
}

Result<ObjectId> ObjectStore::ReadSlot(ObjectId source, uint32_t slot) {
  const ObjectInfo* info = Lookup(source);
  if (info == nullptr) {
    return Status::NotFound("ReadSlot: source object not found");
  }
  if (slot >= info->num_slots) {
    return Status::OutOfRange("ReadSlot: slot index out of range");
  }
  ODBGC_RETURN_IF_ERROR(TouchRange(
      info->partition, info->offset + static_cast<uint32_t>(SlotOffset(slot)),
      kSlotSize, AccessMode::kRead));
  return info->slots[slot];
}

Status ObjectStore::VisitObject(ObjectId object) {
  const ObjectInfo* info = Lookup(object);
  if (info == nullptr) {
    return Status::NotFound("VisitObject: object not found");
  }
  return TouchRange(info->partition, info->offset,
                    static_cast<uint32_t>(MinObjectSize(info->num_slots)),
                    AccessMode::kRead);
}

Status ObjectStore::WriteData(ObjectId object) {
  const ObjectInfo* info = Lookup(object);
  if (info == nullptr) {
    return Status::NotFound("WriteData: object not found");
  }
  const uint32_t payload_start =
      static_cast<uint32_t>(MinObjectSize(info->num_slots));
  const uint32_t at =
      info->size > payload_start ? info->offset + payload_start : info->offset;
  return TouchRange(info->partition, at, 1, AccessMode::kWrite);
}

Status ObjectStore::AddRoot(ObjectId object) {
  ObjectInfo* info = MutableLookup(object);
  if (info == nullptr) return Status::NotFound("AddRoot: object not found");
  if (info->root_pos != ObjectInfo::kNotRoot) return Status::Ok();
  info->root_pos = static_cast<uint32_t>(roots_.size());
  roots_.push_back(object);
  return Status::Ok();
}

Status ObjectStore::RemoveRoot(ObjectId object) {
  ObjectInfo* info = MutableLookup(object);
  if (info == nullptr || info->root_pos == ObjectInfo::kNotRoot) {
    return Status::NotFound("RemoveRoot: not a root");
  }
  // Swap-with-last keeps removal O(1) while the vector stays deterministic.
  const uint32_t pos = info->root_pos;
  const ObjectId last = roots_.back();
  roots_[pos] = last;
  MutableLookup(last)->root_pos = pos;
  roots_.pop_back();
  info->root_pos = ObjectInfo::kNotRoot;
  return Status::Ok();
}

Status ObjectStore::RelocateObject(ObjectId object, PartitionId target) {
  ObjectInfo* info = MutableLookup(object);
  if (info == nullptr) {
    return Status::NotFound("RelocateObject: object not found");
  }
  if (target >= partitions_.size()) {
    return Status::OutOfRange("RelocateObject: bad target partition");
  }
  uint32_t new_offset = 0;
  if (!partitions_[target].TryAllocate(info->size, &new_offset)) {
    return Status::ResourceExhausted(
        "RelocateObject: target partition cannot hold object");
  }

  // Physical copy, page by page: read at source, write at destination.
  const PartitionId src_partition = info->partition;
  const uint32_t src_offset = info->offset;
  uint32_t copied = 0;
  std::vector<std::byte> chunk;
  while (copied < info->size) {
    const uint32_t page_size = static_cast<uint32_t>(options_.page_size);
    const uint32_t src_at = src_offset + copied;
    const uint32_t dst_at = new_offset + copied;
    // Largest run that stays within one source page and one dest page.
    const uint32_t src_room = page_size - src_at % page_size;
    const uint32_t dst_room = page_size - dst_at % page_size;
    const uint32_t len =
        std::min({info->size - copied, src_room, dst_room});
    chunk.resize(len);
    ODBGC_RETURN_IF_ERROR(
        ReadBytes(src_partition, src_at, chunk, AccessMode::kRead));
    ODBGC_RETURN_IF_ERROR(WriteBytes(target, dst_at, chunk));
    copied += len;
  }

  partitions_[src_partition].RemoveObject(src_offset);
  partitions_[target].AddObject(new_offset, object);
  info->partition = target;
  info->offset = new_offset;
  return Status::Ok();
}

Status ObjectStore::DropObject(ObjectId object) {
  ObjectInfo* info = MutableLookup(object);
  if (info == nullptr) {
    return Status::NotFound("DropObject: object not found");
  }
  if (info->root_pos != ObjectInfo::kNotRoot) {
    return Status::FailedPrecondition("DropObject: object is a root");
  }
  partitions_[info->partition].RemoveObject(info->offset);
  live_bytes_ -= info->size;
  // Recycle the table slot; clear() keeps the slot vector's capacity for
  // the next object that lands here. In concurrent mode the slot is
  // parked on the dying object's partition's epoch-gated list instead,
  // and only reaches the freelist once every thread has passed the
  // current epoch (ReclaimDeferredSlots).
  const PartitionId home = info->partition;
  info->partition = kInvalidPartition;
  info->slots.clear();
  const uint32_t slot = id_to_slot_[object.value];
  id_to_slot_[object.value] = kNoSlot;
  if (epochs_ == nullptr) {
    free_slots_.push_back(slot);
  } else {
    if (slot_garbage_.size() <= home) slot_garbage_.resize(home + 1);
    slot_garbage_[home].Retire(slot, epochs_->current_epoch());
  }
  --live_count_;
  return Status::Ok();
}

void ObjectStore::EnableDeferredReclamation(EpochManager* epochs) {
  epochs_ = epochs;
  slot_garbage_.resize(partitions_.size());
}

size_t ObjectStore::ReclaimDeferredSlots() {
  if (epochs_ == nullptr) return 0;
  const uint64_t safe = epochs_->SafeEpoch();
  size_t total = 0;
  for (EpochGarbageList<uint32_t>& list : slot_garbage_) {
    total += list.ReclaimUpTo(
        safe, [this](uint32_t slot) { free_slots_.push_back(slot); });
  }
  return total;
}

size_t ObjectStore::DrainDeferredSlots() {
  size_t total = 0;
  for (EpochGarbageList<uint32_t>& list : slot_garbage_) {
    total += list.DrainAll(
        [this](uint32_t slot) { free_slots_.push_back(slot); });
  }
  return total;
}

size_t ObjectStore::deferred_slot_count() const {
  size_t total = 0;
  for (const EpochGarbageList<uint32_t>& list : slot_garbage_) {
    total += list.size();
  }
  return total;
}

Status ObjectStore::SwapEmptyPartition(PartitionId id) {
  if (id >= partitions_.size()) {
    return Status::OutOfRange("SwapEmptyPartition: bad partition");
  }
  if (!partitions_[id].empty()) {
    return Status::FailedPrecondition(
        "SwapEmptyPartition: partition still holds objects");
  }
  partitions_[id].Reset();
  // Its page contents are garbage; drop them from the buffer without
  // spending write-back I/O on them.
  buffer_->DiscardExtent(partitions_[id].extent());
  empty_partition_ = id;
  return Status::Ok();
}

Status ObjectStore::TouchHeader(ObjectId object, AccessMode mode) {
  const ObjectInfo* info = Lookup(object);
  if (info == nullptr) {
    return Status::NotFound("TouchHeader: object not found");
  }
  return TouchRange(info->partition, info->offset,
                    static_cast<uint32_t>(kObjectHeaderSize), mode);
}

Status ObjectStore::ReadBytes(PartitionId partition, uint32_t offset,
                              std::span<std::byte> out, AccessMode mode) {
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("ReadBytes: bad partition");
  }
  const Partition& p = partitions_[partition];
  if (static_cast<uint64_t>(offset) + out.size() > p.capacity_bytes()) {
    return Status::OutOfRange("ReadBytes: range beyond partition");
  }
  const uint32_t page_size = static_cast<uint32_t>(options_.page_size);
  size_t done = 0;
  while (done < out.size()) {
    const uint32_t at = offset + static_cast<uint32_t>(done);
    const PageId page = p.extent().first_page + at / page_size;
    const uint32_t in_page = at % page_size;
    const size_t len =
        std::min(out.size() - done, static_cast<size_t>(page_size - in_page));
    auto frame = buffer_->GetPage(page, mode);
    ODBGC_RETURN_IF_ERROR(frame.status());
    std::memcpy(out.data() + done, frame->data() + in_page, len);
    done += len;
  }
  return Status::Ok();
}

Status ObjectStore::WriteBytes(PartitionId partition, uint32_t offset,
                               std::span<const std::byte> data) {
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("WriteBytes: bad partition");
  }
  const Partition& p = partitions_[partition];
  if (static_cast<uint64_t>(offset) + data.size() > p.capacity_bytes()) {
    return Status::OutOfRange("WriteBytes: range beyond partition");
  }
  const uint32_t page_size = static_cast<uint32_t>(options_.page_size);
  size_t done = 0;
  while (done < data.size()) {
    const uint32_t at = offset + static_cast<uint32_t>(done);
    const PageId page = p.extent().first_page + at / page_size;
    const uint32_t in_page = at % page_size;
    const size_t len =
        std::min(data.size() - done, static_cast<size_t>(page_size - in_page));
    auto frame = buffer_->GetPage(page, AccessMode::kWrite);
    ODBGC_RETURN_IF_ERROR(frame.status());
    std::memcpy(frame->data() + in_page, data.data() + done, len);
    done += len;
  }
  return Status::Ok();
}

Status ObjectStore::TouchRange(PartitionId partition, uint32_t offset,
                               uint32_t length, AccessMode mode) {
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("TouchRange: bad partition");
  }
  const Partition& p = partitions_[partition];
  if (static_cast<uint64_t>(offset) + length > p.capacity_bytes()) {
    return Status::OutOfRange("TouchRange: range beyond partition");
  }
  const uint32_t page_size = static_cast<uint32_t>(options_.page_size);
  const PageId first = p.extent().first_page + offset / page_size;
  const PageId last = p.extent().first_page + (offset + length - 1) / page_size;
  for (PageId page = first; page <= last; ++page) {
    auto frame = buffer_->GetPage(page, mode);
    ODBGC_RETURN_IF_ERROR(frame.status());
  }
  return Status::Ok();
}

Result<ObjectHeader> ObjectStore::ReadHeaderFromPages(ObjectId object) {
  const ObjectInfo* info = Lookup(object);
  if (info == nullptr) {
    return Status::NotFound("ReadHeaderFromPages: object not found");
  }
  std::byte image[kObjectHeaderSize];
  ODBGC_RETURN_IF_ERROR(ReadBytes(info->partition, info->offset,
                                  std::span<std::byte>(image)));
  return DecodeObjectHeader(std::span<const std::byte>(image));
}

Result<ObjectId> ObjectStore::ReadSlotFromPages(ObjectId object,
                                                uint32_t slot) {
  const ObjectInfo* info = Lookup(object);
  if (info == nullptr) {
    return Status::NotFound("ReadSlotFromPages: object not found");
  }
  if (slot >= info->num_slots) {
    return Status::OutOfRange("ReadSlotFromPages: slot out of range");
  }
  std::byte image[kSlotSize];
  ODBGC_RETURN_IF_ERROR(ReadBytes(
      info->partition, info->offset + static_cast<uint32_t>(SlotOffset(slot)),
      std::span<std::byte>(image)));
  return DecodeSlot(std::span<const std::byte>(image));
}

}  // namespace odbgc
