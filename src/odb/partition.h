#ifndef ODBGC_ODB_PARTITION_H_
#define ODBGC_ODB_PARTITION_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "odb/object_id.h"
#include "storage/extent.h"
#include "storage/page.h"

namespace odbgc {

/// One entry of a partition's roster: the object resident at `offset`.
/// Named fields (not std::pair) so roster scans read as
/// `for (const auto& [offset, id] : partition.objects_by_offset())`.
struct PartitionResident {
  uint32_t offset = 0;
  ObjectId id = kNullObjectId;
};

/// Metadata for one physically contiguous partition of the database.
///
/// A partition is the unit of independent collection (the paper's GC
/// partition equals the database partition). Space within a partition is
/// bump-allocated; internal space is reclaimed only by copying collection,
/// which compacts the partition's live objects into the empty partition.
class Partition {
 public:
  using Roster = std::vector<PartitionResident>;

  Partition(PartitionId id, PageExtent extent, size_t page_size)
      : id_(id),
        extent_(extent),
        capacity_bytes_(static_cast<uint32_t>(extent.page_count * page_size)) {}

  PartitionId id() const { return id_; }
  const PageExtent& extent() const { return extent_; }
  uint32_t capacity_bytes() const { return capacity_bytes_; }

  /// Current bump pointer: bytes allocated since the partition was last
  /// (re)set. Includes garbage; only copying collection lowers it.
  uint32_t allocated_bytes() const { return alloc_offset_; }
  uint32_t free_bytes() const { return capacity_bytes_ - alloc_offset_; }
  bool empty() const { return objects_by_offset_.empty(); }
  size_t object_count() const { return objects_by_offset_.size(); }

  /// Tries to bump-allocate `size` bytes; returns the byte offset within
  /// the partition, or false if it does not fit.
  bool TryAllocate(uint32_t size, uint32_t* offset) {
    if (size > free_bytes()) return false;
    *offset = alloc_offset_;
    alloc_offset_ += size;
    return true;
  }

  /// Registers an object residing at `offset` (allocation or relocation).
  /// Bump allocation makes appending past the current tail the common
  /// case; out-of-order registration (checkpoint restore) falls back to a
  /// binary-search insert.
  void AddObject(uint32_t offset, ObjectId id) {
    if (objects_by_offset_.empty() || offset > objects_by_offset_.back().offset) {
      objects_by_offset_.push_back({offset, id});
      return;
    }
    objects_by_offset_.insert(LowerBound(offset), {offset, id});
  }

  /// Unregisters the object at `offset` (death or relocation away).
  void RemoveObject(uint32_t offset) {
    auto it = LowerBound(offset);
    assert(it != objects_by_offset_.end() && it->offset == offset);
    objects_by_offset_.erase(it);
  }

  /// The object registered at exactly `offset`, or null if none.
  ObjectId ObjectAt(uint32_t offset) const {
    auto it = LowerBound(offset);
    if (it == objects_by_offset_.end() || it->offset != offset) {
      return kNullObjectId;
    }
    return it->id;
  }

  /// First roster entry with offset > `offset` (end() if none) — the
  /// card-scan entry point.
  Roster::const_iterator UpperBound(uint32_t offset) const {
    return std::upper_bound(
        objects_by_offset_.begin(), objects_by_offset_.end(), offset,
        [](uint32_t o, const PartitionResident& r) { return o < r.offset; });
  }

  /// Resets the partition to empty (after all its live objects were copied
  /// out). The bookkeeping roster must already be empty.
  void Reset() { alloc_offset_ = 0; }

  /// Restores the bump pointer when loading a checkpoint image. Must not
  /// shrink below the highest registered object end.
  void RestoreAllocOffset(uint32_t offset) { alloc_offset_ = offset; }

  /// Objects resident in this partition, sorted by byte offset — the
  /// physical scan order, which keeps collection deterministic.
  const Roster& objects_by_offset() const { return objects_by_offset_; }

 private:
  Roster::const_iterator LowerBound(uint32_t offset) const {
    return std::lower_bound(
        objects_by_offset_.begin(), objects_by_offset_.end(), offset,
        [](const PartitionResident& r, uint32_t o) { return r.offset < o; });
  }
  Roster::iterator LowerBound(uint32_t offset) {
    return std::lower_bound(
        objects_by_offset_.begin(), objects_by_offset_.end(), offset,
        [](const PartitionResident& r, uint32_t o) { return r.offset < o; });
  }

  PartitionId id_;
  PageExtent extent_;
  uint32_t capacity_bytes_;
  uint32_t alloc_offset_ = 0;
  Roster objects_by_offset_;
};

}  // namespace odbgc

#endif  // ODBGC_ODB_PARTITION_H_
