#ifndef ODBGC_ODB_OBJECT_ID_H_
#define ODBGC_ODB_OBJECT_ID_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "util/hash.h"

namespace odbgc {

/// Stable logical identity of a database object. Object slots store
/// ObjectIds (not physical addresses), and the object table maps an id to
/// its current physical location — the classic ODBMS indirection that lets
/// a copying collector relocate objects without rewriting every pointer to
/// them. Identity never changes over an object's lifetime; ids are never
/// reused.
struct ObjectId {
  uint64_t value = 0;  // 0 is the null reference.

  constexpr bool is_null() const { return value == 0; }
  constexpr explicit operator bool() const { return value != 0; }

  friend constexpr bool operator==(ObjectId a, ObjectId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator<(ObjectId a, ObjectId b) {
    return a.value < b.value;
  }
};

/// The null reference.
inline constexpr ObjectId kNullObjectId{0};

/// Index of a partition in the store's partition directory.
using PartitionId = uint32_t;

/// Sentinel for "no partition".
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

}  // namespace odbgc

template <>
struct std::hash<odbgc::ObjectId> {
  size_t operator()(odbgc::ObjectId id) const noexcept {
    // Fibonacci hashing; ids are sequential so identity hashing clusters.
    return static_cast<size_t>(odbgc::FibonacciHash64(id.value));
  }
};

#endif  // ODBGC_ODB_OBJECT_ID_H_
