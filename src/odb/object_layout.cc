#include "odb/object_layout.h"

#include <cassert>
#include <cstring>

namespace odbgc {

namespace {

void PutU16(std::span<std::byte> out, size_t at, uint16_t v) {
  out[at] = static_cast<std::byte>(v & 0xff);
  out[at + 1] = static_cast<std::byte>((v >> 8) & 0xff);
}

void PutU32(std::span<std::byte> out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void PutU64(std::span<std::byte> out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

uint16_t GetU16(std::span<const std::byte> in, size_t at) {
  return static_cast<uint16_t>(std::to_integer<uint16_t>(in[at]) |
                               (std::to_integer<uint16_t>(in[at + 1]) << 8));
}

uint32_t GetU32(std::span<const std::byte> in, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<uint32_t>(in[at + i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::span<const std::byte> in, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::to_integer<uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeObjectHeader(const ObjectHeader& header, std::span<std::byte> out) {
  assert(out.size() >= kObjectHeaderSize);
  PutU16(out, 0, kObjectMagic);
  out[2] = static_cast<std::byte>(header.weight);
  out[3] = static_cast<std::byte>(header.flags);
  PutU64(out, 4, header.id.value);
  PutU32(out, 12, header.size);
  PutU32(out, 16, header.num_slots);
}

Result<ObjectHeader> DecodeObjectHeader(std::span<const std::byte> in) {
  if (in.size() < kObjectHeaderSize) {
    return Status::Corruption("object header truncated");
  }
  if (GetU16(in, 0) != kObjectMagic) {
    return Status::Corruption("bad object magic");
  }
  ObjectHeader h;
  h.weight = std::to_integer<uint8_t>(in[2]);
  h.flags = std::to_integer<uint8_t>(in[3]);
  h.id = ObjectId{GetU64(in, 4)};
  h.size = GetU32(in, 12);
  h.num_slots = GetU32(in, 16);
  if (h.size < MinObjectSize(h.num_slots)) {
    return Status::Corruption("object size below minimum for slot count");
  }
  return h;
}

void EncodeSlot(ObjectId target, std::span<std::byte> out) {
  assert(out.size() >= kSlotSize);
  PutU64(out, 0, target.value);
}

ObjectId DecodeSlot(std::span<const std::byte> in) {
  assert(in.size() >= kSlotSize);
  return ObjectId{GetU64(in, 0)};
}

}  // namespace odbgc
