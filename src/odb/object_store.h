#ifndef ODBGC_ODB_OBJECT_STORE_H_
#define ODBGC_ODB_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "odb/object_id.h"
#include "odb/object_layout.h"
#include "odb/partition.h"
#include "storage/page_device.h"
#include "util/epoch.h"
#include "util/epoch_garbage_list.h"
#include "util/status.h"

namespace odbgc {

/// Everything the write barrier needs to know about one pointer store.
/// Delivered to the SlotWriteObserver *before* policies and remembered sets
/// are updated, with both the old and the new slot value resolved to the
/// partitions the referents currently occupy.
struct SlotWriteEvent {
  ObjectId source;
  PartitionId source_partition = kInvalidPartition;
  uint32_t slot = 0;
  ObjectId old_target;  // Null if the slot was empty.
  PartitionId old_target_partition = kInvalidPartition;
  ObjectId new_target;  // Null if the slot is being cleared.
  PartitionId new_target_partition = kInvalidPartition;

  /// True when a non-null pointer is being replaced — the paper's "pointer
  /// overwrite", the currency of the UpdatedPointer/WeightedPointer
  /// policies and of the collection trigger.
  bool is_overwrite() const { return !old_target.is_null(); }
};

/// Write-barrier hook. The GC heap installs one observer to maintain
/// remembered sets, weights, policy counters and the collection trigger.
class SlotWriteObserver {
 public:
  virtual ~SlotWriteObserver() = default;
  virtual void OnSlotWrite(const SlotWriteEvent& event) = 0;
};

/// Where a new object is physically placed. The paper's test database
/// places objects near their parent ("the database attempts to place a
/// new object near its parent"); the alternatives let the ablation
/// benches measure what that clustering is worth.
enum class PlacementPolicy {
  /// Parent's partition if it has room, else the current allocation
  /// partition, else first fit (the paper's policy).
  kNearParent,
  /// Ignore the parent hint: stream every allocation into the current
  /// allocation partition (pure creation-order clustering).
  kSequential,
  /// Rotate allocations across all partitions with room (deliberately
  /// destroys clustering; a worst-case control).
  kRoundRobin,
};

/// A serializable snapshot of an ObjectStore's complete logical state:
/// configuration, partition directory, object table (with shadow slots)
/// and root set. Page bytes are not stored — headers and slots are
/// re-materialized on restore, and payloads carry no information in the
/// simulator. See odb/store_image.h for the file format.
struct StoreImage {
  struct PartitionImage {
    uint32_t alloc_offset = 0;
  };
  struct ObjectImage {
    ObjectId id;
    PartitionId partition = kInvalidPartition;
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t num_slots = 0;
    uint8_t flags = 0;
    std::vector<ObjectId> slots;
  };

  // Options fields that shape the store (page size, partition size,
  // reservation, placement).
  size_t page_size = kDefaultPageSize;
  size_t pages_per_partition = 48;
  bool reserve_empty_partition = true;
  std::vector<PartitionImage> partitions;
  PartitionId empty_partition = kInvalidPartition;
  std::vector<ObjectImage> objects;  // Ascending (partition, offset).
  std::vector<ObjectId> roots;
  uint64_t next_id = 1;
};

/// Configuration for ObjectStore.
struct StoreOptions {
  /// Page size in bytes. The paper uses 8 KB pages throughout.
  size_t page_size = kDefaultPageSize;
  /// Pages per partition (24-100 in the paper, depending on database size).
  size_t pages_per_partition = 48;
  /// If true, one partition is always kept empty as the copying target.
  /// Every algorithm in the paper maintains one empty partition at all
  /// times; turn off only for stores that will never be collected.
  bool reserve_empty_partition = true;
  /// Physical placement of new objects.
  PlacementPolicy placement = PlacementPolicy::kNearParent;
};

/// A partitioned object database.
///
/// Responsibilities:
///  - object identity (ObjectTable: id -> physical location + cached
///    metadata + shadow slot values),
///  - physical placement: bump allocation within contiguous partitions,
///    new objects placed near their parent (the paper's placement policy),
///  - database growth: a new partition is appended when an allocation fits
///    nowhere (the paper's "grow when free space is exhausted" policy),
///  - all reads/writes of object bytes, each charged as page I/O through
///    the BufferPool,
///  - the root set,
///  - relocation primitives used by the copying collector.
///
/// The store deliberately knows nothing about garbage collection policy;
/// the `core` library builds the collector on top of these primitives.
///
/// I/O charging model (documented per operation): the object table, root
/// set and partition directory are assumed resident in primary memory and
/// are never charged, matching the paper's treatment of its auxiliary
/// structures. Object *contents* (headers, slots, payloads) live in pages
/// and every access to them goes through the buffer pool.
class ObjectStore {
 public:
  /// `disk` and `buffer` must outlive the store and `buffer` must wrap
  /// `disk`. Creates one allocatable partition, plus the reserved empty
  /// partition if configured.
  ObjectStore(const StoreOptions& options, PageDevice* disk,
              BufferPool* buffer);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Installs the write-barrier observer (may be null to remove).
  void set_slot_write_observer(SlotWriteObserver* observer) {
    observer_ = observer;
  }

  // -- Application-facing operations ---------------------------------------

  /// Allocates an object of `size` bytes with `num_slots` pointer slots
  /// (all initialized to null). Placement: the partition of `parent_hint`
  /// if it has room, else the partition that most recently accepted an
  /// allocation, else the first partition with room, else a brand-new
  /// partition. Charges page writes covering the whole new object.
  ///
  /// `size` must be at least MinObjectSize(num_slots) and at most the
  /// partition capacity. Returns InvalidArgument otherwise.
  Result<ObjectId> Allocate(uint32_t size, uint32_t num_slots,
                            ObjectId parent_hint = kNullObjectId,
                            uint8_t flags = 0);

  /// Stores `target` (possibly null) into `slot` of `source`. Charges one
  /// page write (the slot's page). Fires the write-barrier observer.
  Status WriteSlot(ObjectId source, uint32_t slot, ObjectId target);

  /// Reads `slot` of `source`, charging one page read.
  Result<ObjectId> ReadSlot(ObjectId source, uint32_t slot);

  /// An application visit to `object`: charges page reads covering the
  /// header and slots (not the data payload — matches the paper's note
  /// that large-object payloads influence database size, not traversal
  /// I/O).
  Status VisitObject(ObjectId object);

  /// A pure data mutation (no pointer change): charges one page write to
  /// the object's first payload page (or header page if no payload).
  /// Data mutations cannot create garbage, which is exactly what
  /// distinguishes UpdatedPointer from the original MutatedPartition.
  Status WriteData(ObjectId object);

  /// Adds `object` to the database root set (idempotent).
  Status AddRoot(ObjectId object);

  /// Removes `object` from the root set; NotFound if absent.
  Status RemoveRoot(ObjectId object);

  /// Root objects in insertion order (deterministic iteration).
  const std::vector<ObjectId>& roots() const { return roots_; }

  bool IsRoot(ObjectId object) const {
    const ObjectInfo* info = Lookup(object);
    return info != nullptr && info->root_pos != ObjectInfo::kNotRoot;
  }

  // -- Object table ---------------------------------------------------------

  /// Cached metadata and shadow state for a live object.
  struct ObjectInfo {
    /// root_pos value meaning "not in the root set".
    static constexpr uint32_t kNotRoot = UINT32_MAX;

    PartitionId partition = kInvalidPartition;
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t num_slots = 0;
    uint8_t flags = 0;
    /// Position of this object in the root vector, or kNotRoot. Dense
    /// replacement for a side root-index map: the root set is answered by
    /// the same cache line the lookup already touched.
    uint32_t root_pos = kNotRoot;
    /// Shadow copy of the slot values. Kept exactly in sync with the
    /// serialized page bytes; exists so that the oracle (MostGarbage,
    /// garbage census) and internal bookkeeping can walk the object graph
    /// without perturbing the measured I/O.
    std::vector<ObjectId> slots;
  };

  /// Looks up a live object; nullptr if the id is null or dead. Two array
  /// indexes: the id resolves through the slot directory to the object's
  /// current table slot (slots are recycled; ids never are).
  const ObjectInfo* Lookup(ObjectId object) const {
    if (object.value >= id_to_slot_.size()) return nullptr;
    const uint32_t slot = id_to_slot_[object.value];
    return slot == kNoSlot ? nullptr : &slots_[slot];
  }

  bool Exists(ObjectId object) const { return Lookup(object) != nullptr; }

  /// Number of live objects in the table.
  size_t object_count() const { return live_count_; }

  /// Exclusive upper bound on every ObjectId this store has ever issued.
  /// Ids are sequential and never reused, so `id.value < id_limit()` holds
  /// for all objects, live or dead — the contract that lets the
  /// epoch-stamped mark vectors in core/reachability.h use the id as a
  /// dense index.
  uint64_t id_limit() const { return next_id_; }

  /// Sum of the sizes of all live table entries, in bytes.
  uint64_t live_bytes() const { return live_bytes_; }

  // -- Partition directory --------------------------------------------------

  size_t partition_count() const { return partitions_.size(); }
  const Partition& partition(PartitionId id) const { return partitions_[id]; }
  size_t partition_bytes() const {
    return options_.page_size * options_.pages_per_partition;
  }

  /// The reserved empty copy-target partition (kInvalidPartition if the
  /// store was configured without one).
  PartitionId empty_partition() const { return empty_partition_; }

  /// Total footprint of the database: all partitions, including garbage
  /// and fragmentation — the paper's "storage required" metric.
  uint64_t total_bytes() const {
    return static_cast<uint64_t>(partitions_.size()) * partition_bytes();
  }

  /// Appends a new partition and returns its id (also used internally by
  /// Allocate when space is exhausted).
  PartitionId AddPartition();

  // -- Collector support ----------------------------------------------------
  // These primitives are the contract between the store and core/ — they
  // move bytes and bookkeeping but make no policy decisions.

  /// Physically copies `object` into partition `target` (bump-allocated
  /// there), updates the object table and both partitions' rosters, and
  /// charges page reads at the source plus page writes at the destination.
  /// Fails with ResourceExhausted if the object does not fit.
  Status RelocateObject(ObjectId object, PartitionId target);

  /// Drops a dead object from the table and its partition roster. No I/O:
  /// garbage is reclaimed wholesale when its partition is reset.
  Status DropObject(ObjectId object);

  /// Declares `id` empty after collection: requires no resident objects,
  /// resets its bump pointer, discards its buffered pages without
  /// write-back (their contents are garbage), and makes it the reserved
  /// empty partition. The previously reserved partition becomes available
  /// for allocation.
  Status SwapEmptyPartition(PartitionId id);

  /// Charges a read or write of the page(s) covering the object's header.
  /// Used by the weight machinery, whose updates rewrite the header byte.
  Status TouchHeader(ObjectId object, AccessMode mode);

  // -- Concurrent mode (DESIGN.md §14) --------------------------------------

  /// Switches the table to epoch-deferred slot reclamation: DropObject
  /// parks the freed table slot on the dying object's partition's
  /// epoch-gated garbage list instead of recycling it immediately, and
  /// slots flow back to the freelist via ReclaimDeferredSlots once the
  /// manager's SafeEpoch covers their retire epoch — so a concurrent
  /// reader that resolved an id to a slot inside an epoch-pinned section
  /// never sees that slot's ObjectInfo repurposed under it. Result-
  /// neutral: ids are never reused and slot indices are unobservable, so
  /// simulated results stay bit-identical to immediate recycling.
  void EnableDeferredReclamation(EpochManager* epochs);

  /// Returns grace-period-expired deferred slots to the freelist. Called
  /// at epoch boundaries; returns the number reclaimed.
  size_t ReclaimDeferredSlots();

  /// Reclaims every deferred slot regardless of epoch — end-of-run/join
  /// point, after all mutator threads have unregistered.
  size_t DrainDeferredSlots();

  /// Table slots currently parked awaiting their grace period.
  size_t deferred_slot_count() const;

  /// Atomic publication watermark: the number of object ids fully
  /// initialized and visible to other threads. Allocate release-publishes
  /// after the table entry is complete (the dynarray-publication pattern
  /// from the concurrency design notes), so a cross-thread reader that
  /// acquire-loads this bound may safely Lookup any id below it.
  uint64_t published_object_count() const {
    return published_next_id_.load(std::memory_order_acquire) - 1;
  }

  // -- Raw byte access (tests, integrity checks) ---------------------------

  /// Reads `out.size()` bytes starting at (partition, offset) through the
  /// buffer pool (charges I/O like any other access).
  Status ReadBytes(PartitionId partition, uint32_t offset,
                   std::span<std::byte> out, AccessMode mode = AccessMode::kRead);

  /// Decodes the serialized header of `object` from its pages (charges
  /// read I/O). Tests use this to confirm shadow state matches disk state.
  Result<ObjectHeader> ReadHeaderFromPages(ObjectId object);

  /// Decodes serialized slot `slot` of `object` from its pages (charges
  /// read I/O).
  Result<ObjectId> ReadSlotFromPages(ObjectId object, uint32_t slot);

  // -- Checkpointing ---------------------------------------------------------

  /// Captures the store's complete logical state.
  StoreImage ExtractImage() const;

  /// Reconstructs a store from an image onto a fresh disk/buffer pair
  /// (both must be empty and outlive the store). Object headers and slots
  /// are re-materialized into pages (charging buffer I/O; callers
  /// typically reset statistics afterwards). `placement` is behavioral
  /// configuration, not database state, so it comes from the caller's
  /// options rather than the image. Fails with Corruption on an
  /// inconsistent image (out-of-bounds or overlapping objects, dangling
  /// slots or roots, duplicate ids).
  static Result<std::unique_ptr<ObjectStore>> Restore(
      const StoreImage& image, PageDevice* disk, BufferPool* buffer,
      PlacementPolicy placement = PlacementPolicy::kNearParent);

  /// Placement cursors — behavioral state that the image does not carry
  /// (it is not derivable from the object layout): which partition most
  /// recently accepted an allocation, and the round-robin rotation point.
  /// Checkpointing saves them so a restored store places the next
  /// allocation exactly where the original would have.
  PartitionId current_alloc_partition() const {
    return current_alloc_partition_;
  }
  PartitionId round_robin_cursor() const { return round_robin_cursor_; }

  /// Restores the placement cursors captured by the accessors above.
  /// Both must name existing partitions.
  Status RestoreAllocCursors(PartitionId current, PartitionId round_robin);

 private:
  // Restore path: constructs an empty store without the initial
  // partitions.
  struct RestoreTag {};
  ObjectStore(const StoreOptions& options, PageDevice* disk,
              BufferPool* buffer, RestoreTag);

  // Bump-allocates in `partition`; returns true and sets *offset on success.
  bool TryPlace(PartitionId partition, uint32_t size, uint32_t* offset);

  // Chooses a partition for a new object of `size` bytes, growing the
  // database if necessary. Never returns the reserved empty partition.
  PartitionId ChoosePartition(uint32_t size, ObjectId parent_hint);

  // Writes `data` at (partition, offset), page by page through the buffer.
  Status WriteBytes(PartitionId partition, uint32_t offset,
                    std::span<const std::byte> data);

  // Charges accesses for the byte range without transferring data.
  Status TouchRange(PartitionId partition, uint32_t offset, uint32_t length,
                    AccessMode mode);

  ObjectInfo* MutableLookup(ObjectId object) {
    if (object.value >= id_to_slot_.size()) return nullptr;
    const uint32_t slot = id_to_slot_[object.value];
    return slot == kNoSlot ? nullptr : &slots_[slot];
  }

  // Claims a table slot for a new object, recycling freed slots (and
  // their ObjectInfo's slot-vector capacity) before growing the array.
  uint32_t ClaimSlot();

  const StoreOptions options_;
  PageDevice* const disk_;
  BufferPool* const buffer_;
  SlotWriteObserver* observer_ = nullptr;

  std::vector<Partition> partitions_;
  PartitionId empty_partition_ = kInvalidPartition;
  // Partition that most recently accepted an allocation; tried first for
  // parentless objects so that fresh trees are laid out contiguously.
  PartitionId current_alloc_partition_ = 0;
  // Rotation cursor for PlacementPolicy::kRoundRobin.
  PartitionId round_robin_cursor_ = 0;

  /// id_to_slot_ sentinel: id never issued, or object dead.
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // Slot-addressed object table. Ids are sequential and never reused, so
  // the id → slot directory is a flat array indexed by id value (entry 0
  // is the null id and stays kNoSlot); the ObjectInfo records live in a
  // parallel slot array whose entries are recycled through a freelist as
  // objects die. Invariant: id_to_slot_.size() == next_id_.
  std::vector<uint32_t> id_to_slot_ = {kNoSlot};
  std::vector<ObjectInfo> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_count_ = 0;
  uint64_t next_id_ = 1;
  uint64_t live_bytes_ = 0;

  // Concurrent mode (EnableDeferredReclamation): shared epoch manager,
  // per-partition epoch-gated lists of retired table slots, and the
  // release-published id watermark. Null epochs_ = serial mode, immediate
  // slot recycling.
  EpochManager* epochs_ = nullptr;
  std::vector<EpochGarbageList<uint32_t>> slot_garbage_;
  std::atomic<uint64_t> published_next_id_{1};

  std::vector<ObjectId> roots_;
};

}  // namespace odbgc

#endif  // ODBGC_ODB_OBJECT_STORE_H_
