#ifndef ODBGC_ODB_STORE_IMAGE_H_
#define ODBGC_ODB_STORE_IMAGE_H_

#include <istream>
#include <ostream>

#include "odb/object_store.h"
#include "util/status.h"

namespace odbgc {

/// Binary checkpoint format for StoreImage: header (magic "ODBS" u32,
/// version u16, reserved u16), geometry, partition directory, object
/// table (varint-encoded), root set. Readers fail with Corruption on bad
/// magic/version, truncation, or any inconsistency ObjectStore::Restore
/// would reject.
inline constexpr uint32_t kStoreImageMagic = 0x5342444fu;  // "ODBS" LE.
inline constexpr uint16_t kStoreImageVersion = 1;

/// Serializes `image` to `out`. IoError if the stream fails.
Status WriteStoreImage(const StoreImage& image, std::ostream* out);

/// Parses an image from `in`.
Result<StoreImage> ReadStoreImage(std::istream* in);

/// Convenience: checkpoint a live store to a stream.
Status SaveStore(const ObjectStore& store, std::ostream* out);

}  // namespace odbgc

#endif  // ODBGC_ODB_STORE_IMAGE_H_
