#ifndef ODBGC_ODB_OBJECT_LAYOUT_H_
#define ODBGC_ODB_OBJECT_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "odb/object_id.h"
#include "util/status.h"

namespace odbgc {

/// On-page object header. Objects are stored contiguously in a partition's
/// byte space as: header, then `num_slots` 8-byte ObjectId slots, then an
/// opaque data payload filling the remaining `size` bytes.
///
/// Serialized little-endian as:
///   magic      u16   (kObjectMagic)
///   weight     u8    root-distance weight, 1..16 (the paper stores 4 bits
///                    per object; a byte is the addressable equivalent)
///   flags      u8    kFlagLarge for OO7-style large leaf objects
///   id         u64
///   size       u32   total object footprint in bytes (header included)
///   num_slots  u32
struct ObjectHeader {
  ObjectId id;
  uint32_t size = 0;
  uint32_t num_slots = 0;
  uint8_t weight = 16;
  uint8_t flags = 0;
};

inline constexpr uint16_t kObjectMagic = 0xDB0B;
inline constexpr uint8_t kFlagLarge = 0x01;

/// Serialized header footprint.
inline constexpr size_t kObjectHeaderSize = 2 + 1 + 1 + 8 + 4 + 4;

/// Bytes of one pointer slot.
inline constexpr size_t kSlotSize = 8;

/// Minimum legal object size for `num_slots` slots.
constexpr size_t MinObjectSize(uint32_t num_slots) {
  return kObjectHeaderSize + num_slots * kSlotSize;
}

/// Byte offset of slot `slot` from the start of the object.
constexpr size_t SlotOffset(uint32_t slot) {
  return kObjectHeaderSize + slot * kSlotSize;
}

/// Serializes `header` into `out` (at least kObjectHeaderSize bytes).
void EncodeObjectHeader(const ObjectHeader& header, std::span<std::byte> out);

/// Parses a header from `in` (at least kObjectHeaderSize bytes). Returns
/// Corruption if the magic does not match or the fields are inconsistent
/// (size below minimum for the slot count).
Result<ObjectHeader> DecodeObjectHeader(std::span<const std::byte> in);

/// Serializes a slot value (little-endian u64).
void EncodeSlot(ObjectId target, std::span<std::byte> out);

/// Parses a slot value.
ObjectId DecodeSlot(std::span<const std::byte> in);

}  // namespace odbgc

#endif  // ODBGC_ODB_OBJECT_LAYOUT_H_
