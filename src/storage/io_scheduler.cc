#include "storage/io_scheduler.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <unistd.h>

#if __has_include(<liburing.h>)
#define ODBGC_HAVE_LIBURING 1
#include <liburing.h>
#endif

namespace odbgc {

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kThreadPool:
      return "thread_pool";
    case IoBackend::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

IoBackend DetectIoBackend() {
#if defined(ODBGC_HAVE_LIBURING)
  struct io_uring probe;
  if (io_uring_queue_init(4, &probe, 0) == 0) {
    io_uring_queue_exit(&probe);
    return IoBackend::kIoUring;
  }
#endif
  return IoBackend::kThreadPool;
}

namespace {

Status ErrnoError(const char* op, int err) {
  return Status::IoError(std::string(op) + " failed: " + std::strerror(err));
}

// Full-coverage pwrite: loops over partial writes.
Status WriteFully(int fd, uint64_t offset, std::span<const std::byte> data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::pwrite(fd, data.data() + done, data.size() - done,
                 static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite", errno);
    }
    if (n == 0) return Status::IoError("pwrite wrote nothing");
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Full-coverage pread: loops over partial reads and zero-fills past EOF
// (an unwritten page reads as zeros, like a freshly allocated simulated
// page).
Status ReadFully(int fd, uint64_t offset, std::span<std::byte> out) {
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread", errno);
    }
    if (n == 0) {
      std::memset(out.data() + done, 0, out.size() - done);
      return Status::Ok();
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

IoScheduler::IoScheduler(const IoSchedulerOptions& options) {
  backend_ = options.backend;
#if defined(ODBGC_HAVE_LIBURING)
  if (backend_ == IoBackend::kIoUring) {
    auto* ring = new struct io_uring;
    if (io_uring_queue_init(256, ring, 0) == 0) {
      ring_ = ring;
    } else {
      delete ring;
      backend_ = IoBackend::kThreadPool;
    }
  }
#else
  if (backend_ == IoBackend::kIoUring) backend_ = IoBackend::kThreadPool;
#endif
  if (backend_ == IoBackend::kThreadPool) {
    int threads = options.threads;
    if (threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

IoScheduler::~IoScheduler() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
#if defined(ODBGC_HAVE_LIBURING)
  if (ring_ != nullptr) {
    auto* ring = static_cast<struct io_uring*>(ring_);
    io_uring_queue_exit(ring);
    delete ring;
  }
#endif
}

void IoScheduler::SubmitWrite(int fd, uint64_t offset,
                              std::span<const std::byte> data) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job job;
  job.fd = fd;
  job.offset = offset;
  job.is_write = true;
  job.write_data = data;
  jobs_.push_back(job);
  if (backend_ == IoBackend::kThreadPool) {
    lock.unlock();
    work_available_.notify_one();
  }
}

void IoScheduler::SubmitRead(int fd, uint64_t offset,
                             std::span<std::byte> out) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job job;
  job.fd = fd;
  job.offset = offset;
  job.is_write = false;
  job.read_data = out;
  jobs_.push_back(job);
  if (backend_ == IoBackend::kThreadPool) {
    lock.unlock();
    work_available_.notify_one();
  }
}

Status IoScheduler::Execute(Job& job) {
  if (job.is_write) return WriteFully(job.fd, job.offset, job.write_data);
  return ReadFully(job.fd, job.offset, job.read_data);
}

void IoScheduler::WorkerLoop() {
  for (;;) {
    size_t index = 0;
    Job claimed;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutdown_ || next_job_ < jobs_.size(); });
      if (shutdown_) return;
      index = next_job_++;
      // Copy the descriptor: the producer may push_back (and reallocate
      // jobs_) while this job executes. The spans still point at caller
      // buffers, which stay valid until Drain returns.
      claimed = jobs_[index];
    }
    // Execute outside the lock: jobs cover disjoint file ranges, so
    // workers never contend on data.
    Status status = Execute(claimed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      jobs_[index].status = std::move(status);
      jobs_[index].done = true;
      ++jobs_done_;
      if (draining_ && jobs_done_ == jobs_.size()) {
        lock.unlock();
        batch_done_.notify_all();
      }
    }
  }
}

#if defined(ODBGC_HAVE_LIBURING)
Status IoScheduler::DrainUring() {
  auto* ring = static_cast<struct io_uring*>(ring_);
  size_t submitted = 0;
  size_t completed = 0;
  while (completed < jobs_.size()) {
    // Keep the submission queue topped up.
    while (submitted < jobs_.size()) {
      struct io_uring_sqe* sqe = io_uring_get_sqe(ring);
      if (sqe == nullptr) break;
      Job& job = jobs_[submitted];
      if (job.is_write) {
        io_uring_prep_write(sqe, job.fd, job.write_data.data(),
                            job.write_data.size(),
                            static_cast<off_t>(job.offset));
      } else {
        io_uring_prep_read(sqe, job.fd, job.read_data.data(),
                           job.read_data.size(),
                           static_cast<off_t>(job.offset));
      }
      io_uring_sqe_set_data64(sqe, submitted);
      ++submitted;
    }
    const int rc = io_uring_submit_and_wait(ring, 1);
    if (rc < 0 && rc != -EINTR) return ErrnoError("io_uring_submit", -rc);
    struct io_uring_cqe* cqe = nullptr;
    while (io_uring_peek_cqe(ring, &cqe) == 0) {
      Job& job = jobs_[io_uring_cqe_get_data64(cqe)];
      const int res = cqe->res;
      io_uring_cqe_seen(ring, cqe);
      ++completed;
      if (res < 0) {
        job.status = ErrnoError(job.is_write ? "uring write" : "uring read",
                                -res);
      } else {
        // Finish short transfers (and zero-fill read tails) with the
        // portable path; simplicity over resubmission plumbing.
        const size_t n = static_cast<size_t>(res);
        if (job.is_write && n < job.write_data.size()) {
          job.status = WriteFully(job.fd, job.offset + n,
                                  job.write_data.subspan(n));
        } else if (!job.is_write && n < job.read_data.size()) {
          job.status =
              ReadFully(job.fd, job.offset + n, job.read_data.subspan(n));
        }
      }
      job.done = true;
    }
  }
  return Status::Ok();
}
#endif

Status IoScheduler::Drain() {
#if defined(ODBGC_HAVE_LIBURING)
  if (backend_ == IoBackend::kIoUring) {
    if (!jobs_.empty()) {
      const Status ring_status = DrainUring();
      if (!ring_status.ok()) {
        jobs_completed_ += jobs_.size();
        jobs_.clear();
        return ring_status;
      }
    }
    Status first_error = Status::Ok();
    for (const Job& job : jobs_) {
      if (!job.status.ok()) {
        first_error = job.status;
        break;
      }
    }
    jobs_completed_ += jobs_.size();
    jobs_.clear();
    return first_error;
  }
#endif
  Status first_error = Status::Ok();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    batch_done_.wait(lock, [this] { return jobs_done_ == jobs_.size(); });
    // Completion order is arbitrary; report the first failure in
    // submission order so the surfaced error is deterministic.
    for (const Job& job : jobs_) {
      if (!job.status.ok()) {
        first_error = job.status;
        break;
      }
    }
    jobs_completed_ += jobs_.size();
    jobs_.clear();
    next_job_ = 0;
    jobs_done_ = 0;
    draining_ = false;
  }
  return first_error;
}

}  // namespace odbgc
