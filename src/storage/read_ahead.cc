#include "storage/read_ahead.h"

#include <cassert>
#include <cstring>

namespace odbgc {

ReadAhead::ReadAhead(size_t page_size, size_t capacity_pages)
    : page_size_(page_size), capacity_(capacity_pages) {}

bool ReadAhead::Lookup(PageId page, std::span<std::byte> out) {
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  assert(out.size() == page_size_);
  std::memcpy(out.data(), it->second.data.data(), page_size_);
  entries_.erase(it);
  ++hits_;
  return true;
}

void ReadAhead::Install(PageId page, std::span<const std::byte> data) {
  if (capacity_ == 0) return;
  assert(data.size() == page_size_);
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) EvictOldest();
    Entry entry;
    entry.data.assign(data.begin(), data.end());
    entry.stamp = next_stamp_++;
    entries_.emplace(page, std::move(entry));
  } else {
    std::memcpy(it->second.data.data(), data.data(), page_size_);
    it->second.stamp = next_stamp_++;
  }
  ++installed_;
}

void ReadAhead::Invalidate(PageId page) { entries_.erase(page); }

void ReadAhead::Clear() { entries_.clear(); }

void ReadAhead::EvictOldest() {
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.stamp < victim->second.stamp) victim = it;
  }
  entries_.erase(victim);
}

}  // namespace odbgc
