#ifndef ODBGC_STORAGE_DEVICE_REGISTRY_H_
#define ODBGC_STORAGE_DEVICE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "storage/file_device.h"
#include "storage/page_device.h"
#include "storage/ssd_device.h"
#include "util/status.h"

namespace odbgc {

// ---------------------------------------------------------------------------
// Named device registry: the storage twin of the policy registry. Backends
// are selected by *spec string* — `"name"` or `"name:arg"` — everywhere a
// built-in fits (HeapOptions::device_spec, SimulationConfig, manifests,
// the --device flag). Built-ins: "disk" (the paper's magnetic-disk model),
// "ssd", and "file" whose arg is the partition-file path ("file:/tmp/x.odb").

/// What a registry factory may bind when constructing a device.
struct DeviceContext {
  size_t page_size = kDefaultPageSize;
  /// Stack-wide metrics registry; nullptr lets the device own a private
  /// one (standalone/test use).
  MetricsRegistry* registry = nullptr;
  /// Timing model for "disk" (and for "file"'s estimated-time surface
  /// unless DeviceContext::file overrides it).
  DiskCostParams disk_cost;
  /// Geometry/timing model for "ssd".
  SsdCostParams ssd_cost;
  /// Template options for "file"; a spec argument overrides `file.path`.
  FileDeviceOptions file;
};

using DeviceFactory = std::function<Result<std::unique_ptr<PageDevice>>(
    const DeviceContext& context, const std::string& arg)>;

/// Registers `factory` under `name` (the part of a spec before ':').
/// AlreadyExists if taken (including the built-ins). Thread-safe.
Status RegisterDevice(const std::string& name, DeviceFactory factory);

/// True if the *name portion* of `spec` is registered.
bool IsDeviceRegistered(const std::string& spec);

/// Every registered name, sorted.
std::vector<std::string> RegisteredDeviceNames();

/// The name portion of a spec ("file:/tmp/x" -> "file").
std::string DeviceSpecName(const std::string& spec);

/// The argument portion of a spec ("file:/tmp/x" -> "/tmp/x"; "" if none).
std::string DeviceSpecArg(const std::string& spec);

/// Constructs the backend `spec` names. InvalidArgument (listing the
/// registered names) for an unknown name; a factory may fail for its own
/// reasons (e.g. "file" cannot open its path). Thread-safe.
Result<std::unique_ptr<PageDevice>> MakeDeviceFromSpec(
    const std::string& spec, const DeviceContext& context);

/// Rewrites `spec` so concurrent runs of one experiment do not collide on
/// shared backing state: a "file" spec's path gains a "-<policy>-s<seed>"
/// suffix; stateless specs pass through unchanged. The experiment runner
/// applies this per (policy, seed) task.
std::string PerRunDeviceSpec(const std::string& spec,
                             const std::string& policy_name, uint64_t seed);

}  // namespace odbgc

#endif  // ODBGC_STORAGE_DEVICE_REGISTRY_H_
