#include "storage/file_device.h"

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "observe/observer.h"
#include "util/crc32.h"
#include "util/serde.h"

namespace odbgc {

namespace {

/// Identifies a frame that has been written at least once. A frame of all
/// zeros (ftruncate extension) has magic 0 and reads as an all-zero page.
constexpr uint32_t kFrameMagic = 0x0DB9CF17u;

/// Header sector layout (fits well inside one 512-byte sector):
///   [0..4)   magic
///   [4..8)   CRC-32 of the payload (page_size bytes)
///   [8..16)  page id
constexpr size_t kHeaderSize = 512;

/// Frames are padded to this multiple so one layout serves both buffered
/// and O_DIRECT files (direct I/O wants block-aligned offsets, sizes and
/// buffers).
constexpr size_t kFrameAlign = 4096;

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) / align * align;
}

std::byte* AllocAligned(size_t size) {
  void* ptr = nullptr;
  if (posix_memalign(&ptr, kFrameAlign, size) != 0) return nullptr;
  return static_cast<std::byte*>(ptr);
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

FileDevice::FileDevice(size_t page_size, MetricsRegistry* registry,
                       const FileDeviceOptions& options)
    : PageDevice(page_size, registry),
      options_(options),
      readahead_(page_size, options.readahead_pages) {
  assert(page_size > 0);
  frame_size_ = AlignUp(kHeaderSize + page_size, kFrameAlign);
  if (options_.path.empty()) {
    status_ = Status::InvalidArgument("FileDevice: empty path");
    return;
  }
  int flags = O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC;
#if defined(O_DIRECT)
  if (options_.direct_io) flags |= O_DIRECT;
  fd_ = ::open(options_.path.c_str(), flags, 0644);
  if (fd_ < 0 && options_.direct_io &&
      (errno == EINVAL || errno == ENOTSUP)) {
    // The filesystem refuses O_DIRECT (tmpfs does); fall back to buffered.
    flags &= ~O_DIRECT;
    fd_ = ::open(options_.path.c_str(), flags, 0644);
  } else if (fd_ >= 0 && options_.direct_io) {
    direct_io_effective_ = true;
  }
#else
  fd_ = ::open(options_.path.c_str(), flags, 0644);
#endif
  if (fd_ < 0) {
    status_ = Status::IoError("FileDevice: open(" + options_.path +
                              ") failed: " + std::strerror(errno));
    return;
  }
  scratch_ = AllocAligned(frame_size_);
  if (scratch_ == nullptr) {
    status_ = Status::IoError("FileDevice: frame buffer allocation failed");
    return;
  }
  if (options_.shared_scheduler != nullptr) {
    scheduler_ptr_ = options_.shared_scheduler;
  } else {
    IoSchedulerOptions sched;
    sched.threads = options_.io_threads;
    sched.backend = options_.backend;
    scheduler_ = std::make_unique<IoScheduler>(sched);
    scheduler_ptr_ = scheduler_.get();
  }
}

FileDevice::~FileDevice() {
  // Workers are idle here (every transfer drains before returning), so
  // tearing the scheduler down after the fd closes would also be safe —
  // but close last anyway.
  scheduler_.reset();
  std::free(scratch_);
  if (fd_ >= 0) ::close(fd_);
}

PageExtent FileDevice::AllocatePages(size_t count) {
  PageExtent extent{static_cast<PageId>(num_pages_), count};
  num_pages_ += count;
  if (status_.ok()) {
    // Extend with zeros: zero frames have zero magic and read as all-zero
    // pages, exactly like SimulatedDisk's zero-filled allocations.
    if (::ftruncate(fd_, static_cast<off_t>(num_pages_ * frame_size_)) != 0) {
      status_ = Status::IoError(std::string("FileDevice: ftruncate failed: ") +
                                std::strerror(errno));
    }
  }
  return extent;
}

void FileDevice::EncodeFrame(PageId page, std::span<const std::byte> payload,
                             std::byte* frame) const {
  std::memset(frame, 0, frame_size_);
  const uint32_t magic = kFrameMagic;
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const uint64_t id = page;
  std::memcpy(frame, &magic, sizeof(magic));
  std::memcpy(frame + 4, &crc, sizeof(crc));
  std::memcpy(frame + 8, &id, sizeof(id));
  std::memcpy(frame + kHeaderSize, payload.data(), payload.size());
}

Status FileDevice::DecodeFrame(PageId page, const std::byte* frame,
                               std::span<std::byte> out) const {
  uint32_t magic = 0;
  std::memcpy(&magic, frame, sizeof(magic));
  if (magic == 0) {
    // Never written: reads as a zero page.
    std::memset(out.data(), 0, out.size());
    return Status::Ok();
  }
  if (magic != kFrameMagic) {
    return Status::Corruption("FileDevice: bad frame magic for page " +
                              std::to_string(page));
  }
  uint32_t crc = 0;
  uint64_t id = 0;
  std::memcpy(&crc, frame + 4, sizeof(crc));
  std::memcpy(&id, frame + 8, sizeof(id));
  if (id != page) {
    return Status::Corruption("FileDevice: frame claims page " +
                              std::to_string(id) + ", expected " +
                              std::to_string(page));
  }
  if (Crc32(frame + kHeaderSize, page_size()) != crc) {
    return Status::Corruption("FileDevice: checksum mismatch on page " +
                              std::to_string(page) +
                              " (torn or short write)");
  }
  std::memcpy(out.data(), frame + kHeaderSize, page_size());
  return Status::Ok();
}

Status FileDevice::ValidateTransfer(const char* op, PageId page,
                                    size_t buffer_size, bool is_write) {
  (void)is_write;
  if (!status_.ok()) return status_;
  if (page >= num_pages_) {
    return Status::OutOfRange(std::string(op) + ": page " +
                              std::to_string(page) + " beyond device end " +
                              std::to_string(num_pages_));
  }
  if (buffer_size != page_size()) {
    return Status::InvalidArgument(std::string(op) +
                                   ": buffer size mismatch");
  }
  return Status::Ok();
}

Status FileDevice::PhysicalRead(PageId page, std::span<std::byte> out) {
  const auto start = std::chrono::steady_clock::now();
  auto lock = BatchLock();
  scheduler_ptr_->SubmitRead(fd_, FrameOffset(page), {scratch_, frame_size_});
  const Status status = scheduler_ptr_->Drain();
  lock = {};
  measured_wall_ns_ += static_cast<double>(ElapsedNs(start));
  ++measured_reads_;
  ODBGC_RETURN_IF_ERROR(status);
  return DecodeFrame(page, scratch_, out);
}

Status FileDevice::ReadPage(PageId page, std::span<std::byte> out) {
  ODBGC_RETURN_IF_ERROR(
      ValidateTransfer("ReadPage", page, out.size(), /*is_write=*/false));
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/false));
  if (readahead_.capacity() > 0 && readahead_.Lookup(page, out)) {
    // Staged by a prefetch: no physical transfer, but it is still one
    // simulated page read — the cost model must not depend on whether a
    // real cache intercepted the request.
    CountRead(page);
    return Status::Ok();
  }
  ODBGC_RETURN_IF_ERROR(PhysicalRead(page, out));
  CountRead(page);
  return Status::Ok();
}

void FileDevice::ApplyWriteFaultDamage(PageId page,
                                       std::span<const std::byte> in) {
  const FaultPlan* plan = armed_faults();
  if (plan == nullptr || plan->write_fault_style == WriteFaultStyle::kClean ||
      !status_.ok()) {
    return;
  }
  // Reconstruct what an interrupted physical write leaves behind, then
  // persist that damaged frame in one aligned write (O_DIRECT-safe: a raw
  // partial pwrite would need unaligned sizes and buffers). Fault-path I/O
  // is not tracked in measured stats.
  std::byte* old_frame = AllocAligned(frame_size_);
  if (old_frame == nullptr) return;
  struct FrameGuard {
    std::byte* p;
    ~FrameGuard() { std::free(p); }
  } guard{old_frame};
  auto lock = BatchLock();
  scheduler_ptr_->SubmitRead(fd_, FrameOffset(page), {old_frame, frame_size_});
  if (!scheduler_ptr_->Drain().ok()) return;
  EncodeFrame(page, in, scratch_);
  if (plan->write_fault_style == WriteFaultStyle::kShortWrite) {
    // Only a prefix made it out: the new header plus half the payload, old
    // bytes beyond — the cut must land inside the payload (not the frame's
    // alignment padding) or nothing is actually lost. The header checksum
    // no longer covers the bytes on disk.
    const size_t cut = kHeaderSize + page_size() / 2;
    std::memcpy(scratch_ + cut, old_frame + cut, frame_size_ - cut);
  } else {
    // Torn page: the header sector (claiming the new contents) landed,
    // but half the payload sectors carry garbage.
    const size_t payload_half = page_size() / 2;
    std::memset(scratch_ + kHeaderSize + payload_half, 0xDB,
                page_size() - payload_half);
  }
  scheduler_ptr_->SubmitWrite(fd_, FrameOffset(page), {scratch_, frame_size_});
  (void)scheduler_ptr_->Drain();
  readahead_.Invalidate(page);
}

Status FileDevice::WritePage(PageId page, std::span<const std::byte> in) {
  ODBGC_RETURN_IF_ERROR(
      ValidateTransfer("WritePage", page, in.size(), /*is_write=*/true));
  const Status fault = CheckFault(/*is_write=*/true);
  if (!fault.ok()) {
    ApplyWriteFaultDamage(page, in);
    return fault;
  }
  EncodeFrame(page, in, scratch_);
  const auto start = std::chrono::steady_clock::now();
  auto lock = BatchLock();
  scheduler_ptr_->SubmitWrite(fd_, FrameOffset(page), {scratch_, frame_size_});
  const Status status = scheduler_ptr_->Drain();
  lock = {};
  measured_wall_ns_ += static_cast<double>(ElapsedNs(start));
  ++measured_writes_;
  ODBGC_RETURN_IF_ERROR(status);
  readahead_.Invalidate(page);
  CountWrite(page);
  return Status::Ok();
}

Status FileDevice::WritePages(const PageWriteRequest* requests, size_t count,
                              size_t* written) {
  if (count == 0) {
    if (written != nullptr) *written = 0;
    return Status::Ok();
  }
  if (count == 1) {
    // No batch to amortize; take the synchronous path (and skip the
    // barrier fsync, matching eviction-style single writes).
    const Status status = WritePage(requests[0].page, requests[0].data);
    if (written != nullptr) *written = status.ok() ? 1 : 0;
    return status;
  }
  // Frame staging area for the whole batch — spans must stay valid until
  // the drain below.
  std::byte* frames = AllocAligned(frame_size_ * count);
  if (frames == nullptr) {
    if (written != nullptr) *written = 0;
    return Status::IoError("FileDevice: batch buffer allocation failed");
  }
  struct FrameGuard {
    std::byte* p;
    ~FrameGuard() { std::free(p); }
  } guard{frames};

  PublishBatch(/*is_write=*/true, count, /*completed=*/false, 0);
  const auto start = std::chrono::steady_clock::now();
  std::unordered_set<PageId> in_flight;
  size_t accepted = 0;
  bool fault_fired = false;
  Status failure = Status::Ok();
  Status drain_status = Status::Ok();
  {
    // Scope ends before any fault-damage write below, which takes its own
    // batch lock.
    auto lock = BatchLock();
    for (size_t i = 0; i < count; ++i) {
      const PageId page = requests[i].page;
      failure = ValidateTransfer("WritePages", page, requests[i].data.size(),
                                 /*is_write=*/true);
      if (failure.ok()) {
        failure = CheckFault(/*is_write=*/true);
        fault_fired = !failure.ok();
      }
      if (!failure.ok()) break;
      if (!in_flight.insert(page).second) {
        // Same page twice in one batch: drain so concurrent jobs never
        // cover overlapping file ranges (the determinism precondition).
        failure = scheduler_ptr_->Drain();
        if (!failure.ok()) break;
        in_flight.clear();
        in_flight.insert(page);
      }
      std::byte* frame = frames + i * frame_size_;
      EncodeFrame(page, requests[i].data, frame);
      scheduler_ptr_->SubmitWrite(fd_, FrameOffset(page), {frame, frame_size_});
      // Simulated accounting happens here — on the calling thread, in
      // request order — identical to the default WritePage loop.
      readahead_.Invalidate(page);
      CountWrite(page);
      ++measured_writes_;
      ++accepted;
    }
    drain_status = scheduler_ptr_->Drain();
  }
  const uint64_t wall = ElapsedNs(start);
  measured_wall_ns_ += static_cast<double>(wall);
  ++measured_batches_;
  PublishBatch(/*is_write=*/true, accepted, /*completed=*/true, wall);
  if (!failure.ok()) {
    // An injected fault stopped the batch after `accepted` pages: the
    // damage write must land after the batch's own writes.
    if (fault_fired && drain_status.ok()) {
      ApplyWriteFaultDamage(requests[accepted].page, requests[accepted].data);
    }
    if (written != nullptr) *written = accepted;
    return failure;
  }
  if (!drain_status.ok()) {
    if (written != nullptr) *written = 0;
    return drain_status;
  }
  if (written != nullptr) *written = count;
  if (options_.sync_on_barrier) return Sync();
  return Status::Ok();
}

void FileDevice::Prefetch(std::span<const PageId> pages) {
  if (!status_.ok() || readahead_.capacity() == 0 || pages.empty()) return;
  // Residency filtering against the buffer pool happened above us; here we
  // drop out-of-range pages and ones already staged.
  std::vector<PageId> wanted;
  wanted.reserve(pages.size());
  for (const PageId page : pages) {
    if (page < num_pages_ && !readahead_.Contains(page)) {
      wanted.push_back(page);
    }
    if (wanted.size() == readahead_.capacity()) break;
  }
  if (wanted.empty()) return;

  std::byte* frames = AllocAligned(frame_size_ * wanted.size());
  if (frames == nullptr) return;
  struct FrameGuard {
    std::byte* p;
    ~FrameGuard() { std::free(p); }
  } guard{frames};

  PublishBatch(/*is_write=*/false, wanted.size(), /*completed=*/false, 0);
  const auto start = std::chrono::steady_clock::now();
  auto lock = BatchLock();
  for (size_t i = 0; i < wanted.size(); ++i) {
    scheduler_ptr_->SubmitRead(fd_, FrameOffset(wanted[i]),
                               {frames + i * frame_size_, frame_size_});
  }
  const Status drain_status = scheduler_ptr_->Drain();
  lock = {};
  const uint64_t wall = ElapsedNs(start);
  measured_wall_ns_ += static_cast<double>(wall);
  measured_reads_ += wanted.size();
  ++measured_batches_;
  PublishBatch(/*is_write=*/false, wanted.size(), /*completed=*/true, wall);

  uint64_t installed = 0;
  if (drain_status.ok()) {
    std::vector<std::byte> payload(page_size());
    for (size_t i = 0; i < wanted.size(); ++i) {
      // A frame that fails to decode is simply not staged — prefetch is
      // advisory, and the eventual ReadPage surfaces the corruption.
      if (DecodeFrame(wanted[i], frames + i * frame_size_,
                      {payload.data(), payload.size()})
              .ok()) {
        readahead_.Install(wanted[i], {payload.data(), payload.size()});
        ++installed;
      }
    }
  }
  prefetched_pages_ += installed;
  if (observer() != nullptr) {
    ReadAheadEvent event;
    event.requested_pages = wanted.size();
    event.installed_pages = installed;
    event.total_hits = readahead_.hits();
    event.total_misses = readahead_.misses();
    observer()->OnReadAhead(event);
  }
}

Status FileDevice::Sync() {
  if (!status_.ok()) return status_;
  const auto start = std::chrono::steady_clock::now();
  const int rc = ::fsync(fd_);
  const uint64_t wall = ElapsedNs(start);
  measured_wall_ns_ += static_cast<double>(wall);
  ++measured_fsyncs_;
  PublishSync(wall);
  if (rc != 0) {
    return Status::IoError(std::string("FileDevice: fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

void FileDevice::SaveState(std::ostream& out) const {
  PutU8(out, static_cast<uint8_t>(kind()));
  PutVarint(out, page_size());
  PutVarint(out, num_pages_);
  PutU64(out, last_accessed());
}

Status FileDevice::LoadState(std::istream& in) {
  auto stored_kind = GetU8(in);
  ODBGC_RETURN_IF_ERROR(stored_kind.status());
  if (*stored_kind != static_cast<uint8_t>(kind())) {
    return Status::Corruption("device state kind mismatch");
  }
  auto stored_page_size = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_page_size.status());
  auto stored_num_pages = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_num_pages.status());
  if (*stored_page_size != page_size() || *stored_num_pages != num_pages_) {
    return Status::Corruption("file device state geometry mismatch");
  }
  auto last = GetU64(in);
  ODBGC_RETURN_IF_ERROR(last.status());
  set_last_accessed(*last);
  // Anything staged before the checkpoint refers to pre-restore contents.
  readahead_.Clear();
  return Status::Ok();
}

MeasuredIoStats FileDevice::MeasuredStats() const {
  MeasuredIoStats stats;
  stats.measured = true;
  stats.reads = measured_reads_;
  stats.writes = measured_writes_;
  stats.fsyncs = measured_fsyncs_;
  stats.batches = measured_batches_;
  stats.readahead_hits = readahead_.hits();
  stats.readahead_misses = readahead_.misses();
  stats.prefetched_pages = prefetched_pages_;
  stats.wall_ms = measured_wall_ns_ / 1e6;
  return stats;
}

void FileDevice::PublishBatch(bool is_write, uint64_t pages, bool completed,
                              uint64_t wall_ns) {
  if (observer() == nullptr) return;
  DeviceBatchEvent event;
  event.is_write = is_write;
  event.completed = completed;
  event.pages = pages;
  event.ordinal = measured_batches_ + (completed ? 0 : 1);
  event.wall_ns = wall_ns;
  observer()->OnDeviceBatch(event);
}

void FileDevice::PublishSync(uint64_t wall_ns) {
  if (observer() == nullptr) return;
  DeviceSyncEvent event;
  event.ordinal = measured_fsyncs_;
  event.wall_ns = wall_ns;
  observer()->OnDeviceSync(event);
}

}  // namespace odbgc
