#include "storage/page_device.h"

#include <string>

#include "observe/observer.h"
#include "storage/disk.h"
#include "storage/ssd_device.h"

namespace odbgc {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kSimulatedDisk:
      return "disk";
    case DeviceKind::kSsd:
      return "ssd";
    case DeviceKind::kFile:
      return "file";
  }
  return "unknown";
}

namespace {

MetricsRegistry* ResolveRegistry(MetricsRegistry* registry,
                                 std::unique_ptr<MetricsRegistry>* owned) {
  if (registry != nullptr) return registry;
  *owned = std::make_unique<MetricsRegistry>();
  return owned->get();
}

}  // namespace

PageDevice::PageDevice(size_t page_size, MetricsRegistry* registry)
    : page_size_(page_size),
      registry_(ResolveRegistry(registry, &owned_registry_)),
      reads_(registry_->Register("device.page_reads")),
      writes_(registry_->Register("device.page_writes")),
      sequential_(registry_->Register("device.sequential_transfers")),
      random_(registry_->Register("device.random_transfers")) {
  device_counters_ = {reads_, writes_, sequential_, random_};
}

PageDevice::~PageDevice() = default;

Status PageDevice::WritePages(const PageWriteRequest* requests, size_t count,
                              size_t* written) {
  for (size_t i = 0; i < count; ++i) {
    const Status status = WritePage(requests[i].page, requests[i].data);
    if (!status.ok()) {
      if (written != nullptr) *written = i;
      return status;
    }
  }
  if (written != nullptr) *written = count;
  return Status::Ok();
}

DiskStats PageDevice::stats() const {
  DiskStats stats;
  stats.page_reads = reads_->total();
  stats.page_writes = writes_->total();
  stats.sequential_transfers = sequential_->total();
  stats.random_transfers = random_->total();
  return stats;
}

void PageDevice::ResetStats() {
  for (MetricCounter* counter : device_counters_) counter->Reset();
}

MetricCounter* PageDevice::RegisterDeviceCounter(const std::string& name) {
  MetricCounter* counter = registry_->Register(name);
  device_counters_.push_back(counter);
  return counter;
}

void PageDevice::CountRead(PageId page) {
  registry_->Count(reads_);
  NoteAccess(page);
}

void PageDevice::CountWrite(PageId page) {
  registry_->Count(writes_);
  NoteAccess(page);
}

void PageDevice::NoteAccess(PageId page) {
  if (last_accessed_ != kInvalidPageId && page == last_accessed_ + 1) {
    registry_->Count(sequential_);
  } else {
    registry_->Count(random_);
  }
  last_accessed_ = page;
}

void PageDevice::InjectFaults(const FaultPlan& plan) {
  faults_ = plan;
  fault_rng_.emplace(plan.seed);
  fault_writes_seen_ = 0;
  fault_reads_seen_ = 0;
}

void PageDevice::ClearFaults() {
  faults_.reset();
  fault_rng_.reset();
}

void PageDevice::PublishFault(bool is_write) {
  if (observer_ == nullptr) return;
  FaultEvent event;
  event.is_write = is_write;
  event.ordinal = faults_fired_;
  observer_->OnFault(event);
}

Status PageDevice::CheckFault(bool is_write) {
  if (!faults_) return Status::Ok();
  uint64_t& seen = is_write ? fault_writes_seen_ : fault_reads_seen_;
  const uint64_t trigger =
      is_write ? faults_->fail_after_writes : faults_->fail_after_reads;
  ++seen;
  if (trigger != 0 && seen == trigger) {
    ++faults_fired_;
    PublishFault(is_write);
    return Status::IoError(std::string("injected fault on ") +
                           (is_write ? "write #" : "read #") +
                           std::to_string(seen));
  }
  if (faults_->error_prob > 0.0 &&
      fault_rng_->Bernoulli(faults_->error_prob)) {
    ++faults_fired_;
    PublishFault(is_write);
    return Status::IoError("injected probabilistic fault");
  }
  return Status::Ok();
}

std::unique_ptr<PageDevice> MakePageDevice(DeviceKind kind, size_t page_size,
                                           MetricsRegistry* registry,
                                           const DiskCostParams& disk_cost,
                                           const SsdCostParams& ssd_cost) {
  switch (kind) {
    case DeviceKind::kSimulatedDisk:
      return std::make_unique<SimulatedDisk>(page_size, registry, disk_cost);
    case DeviceKind::kSsd:
      return std::make_unique<SsdDevice>(page_size, registry, ssd_cost);
    case DeviceKind::kFile:
      // A file backend needs FileDeviceOptions (at least a path), which
      // this kind-keyed factory cannot carry; build it through the device
      // registry ("file:<path>") instead. Fall back to the paper's disk.
      break;
  }
  return std::make_unique<SimulatedDisk>(page_size, registry, disk_cost);
}

}  // namespace odbgc
