#ifndef ODBGC_STORAGE_EXTENT_H_
#define ODBGC_STORAGE_EXTENT_H_

#include <cstddef>

#include "storage/page.h"

namespace odbgc {

/// A contiguous run of pages. Partitions are physically contiguous (the
/// paper segments the address space into contiguous partitions), so a
/// partition's on-disk footprint is exactly one extent.
struct PageExtent {
  PageId first_page = kInvalidPageId;
  size_t page_count = 0;

  /// True if the extent covers at least one page.
  bool valid() const { return first_page != kInvalidPageId && page_count > 0; }

  /// One past the last page.
  PageId end_page() const { return first_page + page_count; }

  /// True if `page` lies inside the extent.
  bool Contains(PageId page) const {
    return valid() && page >= first_page && page < end_page();
  }

  friend bool operator==(const PageExtent& a, const PageExtent& b) {
    return a.first_page == b.first_page && a.page_count == b.page_count;
  }
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_EXTENT_H_
