#include "storage/ssd_device.h"

#include <cassert>
#include <cstring>

#include "util/serde.h"

namespace odbgc {

namespace {

// +1 encoding so kUnmapped (UINT64_MAX) serializes as a single 0 byte.
void PutMapping(std::ostream& out, uint64_t value) {
  PutVarint(out, value == UINT64_MAX ? 0 : value + 1);
}

Result<uint64_t> GetMapping(std::istream& in) {
  auto v = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(v.status());
  return *v == 0 ? UINT64_MAX : *v - 1;
}

SsdCostParams Sanitize(SsdCostParams cost) {
  if (cost.pages_per_block == 0) cost.pages_per_block = 64;
  if (cost.spare_blocks < 2) cost.spare_blocks = 2;
  return cost;
}

}  // namespace

SsdDevice::SsdDevice(size_t page_size, MetricsRegistry* registry,
                     const SsdCostParams& cost)
    : PageDevice(page_size, registry),
      cost_(Sanitize(cost)),
      erases_(RegisterDeviceCounter("ssd.erases")),
      gc_copies_(RegisterDeviceCounter("ssd.gc_page_copies")) {
  assert(page_size > 0);
}

PageExtent SsdDevice::AllocatePages(size_t count) {
  PageExtent extent{static_cast<PageId>(pages_.size()), count};
  for (size_t i = 0; i < count; ++i) {
    auto page = std::make_unique<std::byte[]>(page_size());
    std::memset(page.get(), 0, page_size());
    pages_.push_back(std::move(page));
    map_.push_back(kUnmapped);
  }
  GrowFlash();
  return extent;
}

void SsdDevice::GrowFlash() {
  const size_t ppb = cost_.pages_per_block;
  const size_t needed_blocks =
      (pages_.size() + ppb - 1) / ppb + cost_.spare_blocks;
  while (block_state_.size() < needed_blocks) {
    const uint32_t block = static_cast<uint32_t>(block_state_.size());
    block_state_.push_back(kErased);
    block_valid_.push_back(0);
    owner_.resize(owner_.size() + ppb, kUnmapped);
    erased_fifo_.push_back(block);
  }
}

uint64_t SsdDevice::WritableSlots() const {
  uint64_t slots = erased_fifo_.size() * cost_.pages_per_block;
  if (open_block_ != kNoBlock) {
    slots += cost_.pages_per_block - open_offset_;
  }
  return slots;
}

void SsdDevice::Invalidate(PageId logical) {
  const uint64_t flash = map_[logical];
  if (flash == kUnmapped) return;
  map_[logical] = kUnmapped;
  owner_[flash] = kUnmapped;
  --block_valid_[flash / cost_.pages_per_block];
}

void SsdDevice::Program(PageId logical) {
  const size_t ppb = cost_.pages_per_block;
  if (open_block_ == kNoBlock || open_offset_ == ppb) {
    if (open_block_ != kNoBlock) block_state_[open_block_] = kClosed;
    assert(!erased_fifo_.empty());
    open_block_ = erased_fifo_.front();
    erased_fifo_.pop_front();
    block_state_[open_block_] = kOpen;
    open_offset_ = 0;
  }
  const uint64_t flash =
      static_cast<uint64_t>(open_block_) * ppb + open_offset_++;
  owner_[flash] = logical;
  map_[logical] = flash;
  ++block_valid_[open_block_];
}

bool SsdDevice::CollectOneBlock() {
  const size_t ppb = cost_.pages_per_block;
  uint32_t victim = kNoBlock;
  uint32_t victim_valid = 0;
  for (uint32_t b = 0; b < block_state_.size(); ++b) {
    if (block_state_[b] != kClosed) continue;
    if (victim == kNoBlock || block_valid_[b] < victim_valid) {
      victim = b;
      victim_valid = block_valid_[b];
    }
  }
  // No closed block, or a fully valid victim: collecting frees nothing.
  if (victim == kNoBlock || victim_valid == ppb) return false;

  for (uint64_t f = static_cast<uint64_t>(victim) * ppb;
       f < static_cast<uint64_t>(victim + 1) * ppb; ++f) {
    const uint64_t logical = owner_[f];
    if (logical == kUnmapped) continue;
    Invalidate(static_cast<PageId>(logical));
    Program(static_cast<PageId>(logical));
    metrics()->Count(gc_copies_);
  }
  block_state_[victim] = kErased;
  erased_fifo_.push_back(victim);
  metrics()->Count(erases_);
  return true;
}

void SsdDevice::EnsureSpace() {
  // Keep a block's worth of headroom so a GC cycle's copies always fit:
  // when this triggers, WritableSlots() >= pages_per_block (the previous
  // EnsureSpace left >= pages_per_block + 1 and one host program ran), and
  // a victim has at most pages_per_block valid pages to relocate.
  while (WritableSlots() < cost_.pages_per_block + 1) {
    if (!CollectOneBlock()) break;
  }
}

Status SsdDevice::ReadPage(PageId page, std::span<std::byte> out) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page) +
                              " beyond ssd end " +
                              std::to_string(pages_.size()));
  }
  if (out.size() != page_size()) {
    return Status::InvalidArgument("ReadPage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/false));
  std::memcpy(out.data(), pages_[page].get(), page_size());
  CountRead(page);
  return Status::Ok();
}

Status SsdDevice::WritePage(PageId page, std::span<const std::byte> in) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page) +
                              " beyond ssd end " +
                              std::to_string(pages_.size()));
  }
  if (in.size() != page_size()) {
    return Status::InvalidArgument("WritePage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/true));
  std::memcpy(pages_[page].get(), in.data(), page_size());
  EnsureSpace();
  Invalidate(page);
  Program(page);
  CountWrite(page);
  return Status::Ok();
}

double SsdDevice::EstimateTimeMs() const {
  const DiskStats transfer = stats();
  return static_cast<double>(transfer.page_reads) * cost_.read_ms_per_page +
         static_cast<double>(transfer.page_writes + gc_copies_->total()) *
             cost_.program_ms_per_page +
         static_cast<double>(erases_->total()) * cost_.erase_ms_per_block;
}

double SsdDevice::WriteAmplification() const {
  const uint64_t host = stats().page_writes;
  if (host == 0) return 0.0;
  return static_cast<double>(host + gc_copies_->total()) /
         static_cast<double>(host);
}

void SsdDevice::SaveState(std::ostream& out) const {
  PutU8(out, static_cast<uint8_t>(kind()));
  PutVarint(out, page_size());
  PutVarint(out, pages_.size());
  PutVarint(out, block_state_.size());
  for (uint64_t m : map_) PutMapping(out, m);
  for (uint64_t o : owner_) PutMapping(out, o);
  for (uint8_t s : block_state_) PutU8(out, s);
  for (uint32_t v : block_valid_) PutVarint(out, v);
  PutVarint(out, erased_fifo_.size());
  for (uint32_t b : erased_fifo_) PutVarint(out, b);
  PutVarint(out, open_block_ == kNoBlock ? 0 : open_block_ + 1);
  PutVarint(out, open_offset_);
  PutU64(out, last_accessed());
}

Status SsdDevice::LoadState(std::istream& in) {
  auto stored_kind = GetU8(in);
  ODBGC_RETURN_IF_ERROR(stored_kind.status());
  if (*stored_kind != static_cast<uint8_t>(kind())) {
    return Status::Corruption("device state kind mismatch");
  }
  auto stored_page_size = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_page_size.status());
  auto stored_num_pages = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_num_pages.status());
  auto stored_blocks = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_blocks.status());
  if (*stored_page_size != page_size() ||
      *stored_num_pages != pages_.size() ||
      *stored_blocks != block_state_.size()) {
    return Status::Corruption("ssd state geometry mismatch");
  }

  std::vector<uint64_t> map(map_.size());
  for (uint64_t& m : map) {
    auto v = GetMapping(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    m = *v;
  }
  std::vector<uint64_t> owner(owner_.size());
  for (uint64_t& o : owner) {
    auto v = GetMapping(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    o = *v;
  }
  std::vector<uint8_t> state(block_state_.size());
  for (uint8_t& s : state) {
    auto v = GetU8(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    if (*v > kClosed) return Status::Corruption("ssd block state invalid");
    s = *v;
  }
  std::vector<uint32_t> valid(block_valid_.size());
  for (uint32_t& c : valid) {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    if (*v > cost_.pages_per_block) {
      return Status::Corruption("ssd block valid count out of range");
    }
    c = static_cast<uint32_t>(*v);
  }
  auto fifo_size = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(fifo_size.status());
  if (*fifo_size > block_state_.size()) {
    return Status::Corruption("ssd erased fifo too long");
  }
  std::deque<uint32_t> fifo;
  for (uint64_t i = 0; i < *fifo_size; ++i) {
    auto b = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(b.status());
    if (*b >= block_state_.size()) {
      return Status::Corruption("ssd erased fifo block out of range");
    }
    fifo.push_back(static_cast<uint32_t>(*b));
  }
  auto open = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(open.status());
  if (*open > block_state_.size()) {
    return Status::Corruption("ssd open block out of range");
  }
  auto offset = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(offset.status());
  if (*offset > cost_.pages_per_block) {
    return Status::Corruption("ssd open offset out of range");
  }
  auto last = GetU64(in);
  ODBGC_RETURN_IF_ERROR(last.status());

  map_ = std::move(map);
  owner_ = std::move(owner);
  block_state_ = std::move(state);
  block_valid_ = std::move(valid);
  erased_fifo_ = std::move(fifo);
  open_block_ = *open == 0 ? kNoBlock : static_cast<uint32_t>(*open - 1);
  open_offset_ = static_cast<uint32_t>(*offset);
  set_last_accessed(*last);
  return Status::Ok();
}

}  // namespace odbgc
