#ifndef ODBGC_STORAGE_PAGE_DEVICE_H_
#define ODBGC_STORAGE_PAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/extent.h"
#include "storage/page.h"
#include "util/metrics_registry.h"
#include "util/random.h"
#include "util/status.h"

namespace odbgc {

class SimObserver;

/// The simulated storage backends. The paper fixes one device model (a
/// seek/rotation/transfer magnetic disk, Section 4.2); device economics
/// invert policy rankings on other media, so the backend is a first-class
/// experiment axis.
enum class DeviceKind : uint8_t {
  kSimulatedDisk = 0,  ///< Seek + rotation + transfer (the paper's model).
  kSsd = 1,            ///< Flash with erase-block GC amplification.
  kFile = 2,           ///< A real partition file (pread/pwrite + fsync).
};

const char* DeviceKindName(DeviceKind kind);

/// Cumulative device transfer counters (snapshot built from the metrics
/// registry — see PageDevice::stats).
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  /// Transfers whose page immediately follows the previously accessed
  /// page (no head movement); the rest pay the device's random-access
  /// cost under its timing model.
  uint64_t sequential_transfers = 0;
  uint64_t random_transfers = 0;

  uint64_t total() const { return page_reads + page_writes; }
};

/// What a scripted *write* fault physically leaves on the medium. The
/// simulated devices always fail cleanly (the page keeps its old bytes);
/// FileDevice can additionally damage the real file the way a power cut
/// does, so recovery is tested against media that actually lies.
enum class WriteFaultStyle : uint8_t {
  /// Fail before touching the medium (every backend supports this).
  kClean = 0,
  /// Persist only a prefix of the page frame, then fail (interrupted
  /// pwrite). The frame checksum no longer covers the bytes on disk.
  kShortWrite = 1,
  /// Persist a frame whose header claims the new contents but whose
  /// payload is half old/garbage, then fail (torn sector write).
  kTornPage = 2,
};

/// Fault-injection schedule for crash-recovery testing. Scripted triggers
/// fire exactly once on the Nth transfer after InjectFaults; the
/// probabilistic trigger draws from its own Rng stream, so arming it never
/// perturbs simulation randomness.
struct FaultPlan {
  /// Fail the Nth write after injection (1-based). 0 disables.
  uint64_t fail_after_writes = 0;
  /// Fail the Nth read after injection (1-based). 0 disables.
  uint64_t fail_after_reads = 0;
  /// Independently fail each transfer with this probability.
  double error_prob = 0.0;
  /// Seed for the probabilistic stream.
  uint64_t seed = 0;
  /// Physical damage left behind by the scripted write fault. Backends
  /// without real media treat everything as kClean.
  WriteFaultStyle write_fault_style = WriteFaultStyle::kClean;
};

/// Real (wall-clock) I/O activity of a backend, for devices that perform
/// actual system calls. Deliberately separate from the simulated transfer
/// counters in the MetricsRegistry: simulated counters are bit-identical
/// across runs and machines and flow into checkpoints; measured numbers
/// never are, so they flow only into the manifest's `measured` section and
/// SimObserver events. All-zero (`measured == false`) for in-memory
/// backends.
struct MeasuredIoStats {
  /// True if this device performs real I/O (i.e. the numbers below mean
  /// something).
  bool measured = false;
  /// Physical page-frame transfers actually issued (a read served from the
  /// read-ahead cache does not count here, though it still counts as a
  /// simulated page read).
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t fsyncs = 0;
  /// Write batches submitted through the I/O scheduler.
  uint64_t batches = 0;
  /// Read-ahead cache outcomes across all ReadPage calls.
  uint64_t readahead_hits = 0;
  uint64_t readahead_misses = 0;
  /// Pages staged by PrefetchExtent/Prefetch calls.
  uint64_t prefetched_pages = 0;
  /// Wall-clock time spent inside pread/pwrite/fsync, in milliseconds.
  double wall_ms = 0.0;
};

/// One page write of a batch (see PageDevice::WritePages). The data span
/// must stay valid until the call returns.
struct PageWriteRequest {
  PageId page = kInvalidPageId;
  std::span<const std::byte> data;
};

/// A simulated secondary-memory device holding fixed-size pages: the seam
/// between the buffer pool and whatever medium the experiment models.
///
/// Devices store real bytes (the object store serializes objects into
/// pages, and the collector physically copies them), and count every page
/// transfer in the shared MetricsRegistry — under the phase that was
/// active when the transfer happened. The trace-driven cost model of the
/// paper is "number of page I/O operations"; EstimateTimeMs maps those
/// operations onto the device's own timing model. Transfers are issued by
/// the BufferPool — client code never reads a device directly.
///
/// The base class owns what every backend shares: transfer counters,
/// sequential/random classification, and the fault-injection surface.
class PageDevice {
 public:
  /// `registry` is the stack-wide metrics registry; pass nullptr to let
  /// the device own a private one (standalone/test use).
  PageDevice(size_t page_size, MetricsRegistry* registry);
  virtual ~PageDevice();

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  virtual DeviceKind kind() const = 0;

  /// Appends `count` zero-filled pages; returns the extent covering them.
  /// This is how the database grows by one partition at a time.
  virtual PageExtent AllocatePages(size_t count) = 0;

  /// Copies page `page` into `out` (size must equal page_size()).
  /// Counts one page read.
  virtual Status ReadPage(PageId page, std::span<std::byte> out) = 0;

  /// Overwrites page `page` from `in` (size must equal page_size()).
  /// Counts one page write.
  virtual Status WritePage(PageId page, std::span<const std::byte> in) = 0;

  /// Writes `count` pages as one barrier-delimited batch, stopping at the
  /// first error; `*written` (may be null) receives the number of pages
  /// accepted (== `count` iff the status is Ok). The default loops over
  /// WritePage — identical counters and fault schedule to `count` single
  /// writes; FileDevice overrides it to run the physical writes
  /// concurrently through its I/O scheduler and fsync once at the end.
  /// Transfer counting always happens on the calling thread, in request
  /// order, so simulated results do not depend on the backend or its
  /// thread count.
  virtual Status WritePages(const PageWriteRequest* requests, size_t count,
                            size_t* written);

  /// Hints that `pages` will be read soon (the collector announces a
  /// victim partition's extent before its copy traversal). Advisory:
  /// backends without a read-ahead path ignore it, and it never touches
  /// the simulated transfer counters.
  virtual void Prefetch(std::span<const PageId> pages) { (void)pages; }

  /// Durability barrier: everything written so far reaches stable storage
  /// before the call returns (fsync for file-backed devices; a no-op for
  /// in-memory simulation).
  virtual Status Sync() { return Status::Ok(); }

  /// Real-I/O activity (see MeasuredIoStats). Default: not measured.
  virtual MeasuredIoStats MeasuredStats() const { return {}; }

  virtual size_t num_pages() const = 0;

  /// Estimated device time for all transfers recorded so far, under this
  /// device's own cost model (the "more detailed cost model" the paper's
  /// Section 4.2 invites).
  virtual double EstimateTimeMs() const = 0;

  /// Serializes the device-model state that is NOT derivable from page
  /// contents (access-classification cursor, FTL state, ...). Counters are
  /// not included — the registry serializes those once for the whole
  /// stack. Page contents are not included either: the store image
  /// rematerializes them.
  virtual void SaveState(std::ostream& out) const = 0;

  /// Restores state written by SaveState. Corruption if the stream is
  /// malformed or describes a different device/geometry.
  virtual Status LoadState(std::istream& in) = 0;

  size_t page_size() const { return page_size_; }

  /// The registry this device (and the pool above it) charge into.
  MetricsRegistry* metrics() const { return registry_; }

  /// Transfer counters as the classic snapshot struct.
  DiskStats stats() const;

  /// Zeroes this device's transfer counters (e.g., after a warm-up
  /// phase). The access-classification cursor is left untouched.
  void ResetStats();

  /// Arms fault injection. Replaces any previously armed plan and restarts
  /// the transfer counters the scripted triggers count against.
  void InjectFaults(const FaultPlan& plan);

  /// Disarms fault injection.
  void ClearFaults();

  /// Number of transfers failed by the armed plan(s) so far.
  uint64_t faults_fired() const { return faults_fired_; }

  /// Attaches a run-telemetry sink notified on every injected fault
  /// (non-owning; null — the default — detaches).
  void set_observer(SimObserver* observer) { observer_ = observer; }

 protected:
  // Counts one read/write plus its sequential/random classification,
  // charged to the registry's current phase.
  void CountRead(PageId page);
  void CountWrite(PageId page);

  // Returns the injected fault for this transfer, if the plan fires.
  Status CheckFault(bool is_write);

  // The armed plan, if any (FileDevice consults write_fault_style to decide
  // what physical damage a fired write fault leaves behind).
  const FaultPlan* armed_faults() const {
    return faults_ ? &*faults_ : nullptr;
  }

  // The attached telemetry sink (may be null).
  SimObserver* observer() const { return observer_; }

  // Registers an extra backend-specific counter that ResetStats should
  // also zero (e.g. the SSD's erase count).
  MetricCounter* RegisterDeviceCounter(const std::string& name);

  PageId last_accessed() const { return last_accessed_; }
  void set_last_accessed(PageId page) { last_accessed_ = page; }

 private:
  void NoteAccess(PageId page);
  void PublishFault(bool is_write);

  const size_t page_size_;
  // Set when the device was constructed without a shared registry.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* const registry_;

  MetricCounter* const reads_;
  MetricCounter* const writes_;
  MetricCounter* const sequential_;
  MetricCounter* const random_;
  std::vector<MetricCounter*> device_counters_;

  PageId last_accessed_ = kInvalidPageId;

  SimObserver* observer_ = nullptr;

  std::optional<FaultPlan> faults_;
  std::optional<Rng> fault_rng_;
  uint64_t fault_writes_seen_ = 0;
  uint64_t fault_reads_seen_ = 0;
  uint64_t faults_fired_ = 0;
};

struct DiskCostParams;
struct SsdCostParams;

/// Constructs the configured backend. `registry` may be nullptr (the
/// device then owns a private registry).
std::unique_ptr<PageDevice> MakePageDevice(DeviceKind kind, size_t page_size,
                                           MetricsRegistry* registry,
                                           const DiskCostParams& disk_cost,
                                           const SsdCostParams& ssd_cost);

}  // namespace odbgc

#endif  // ODBGC_STORAGE_PAGE_DEVICE_H_
