#ifndef ODBGC_STORAGE_SSD_DEVICE_H_
#define ODBGC_STORAGE_SSD_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

#include "storage/page_device.h"
#include "util/status.h"

namespace odbgc {

/// Flash timing/geometry model. Defaults approximate a SATA-era MLC SSD:
/// ~60 us page read, ~600 us page program, ~2.5 ms block erase. The
/// asymmetry is the point — on flash, writes (and the erase-block GC they
/// force) dominate, so policies that trade writes for reads rank
/// differently than on the paper's seek-dominated disk.
struct SsdCostParams {
  size_t pages_per_block = 64;
  /// Physical blocks beyond the logical capacity (overprovisioning).
  /// Clamped to >= 2: one open block plus one erased block keeps the
  /// FTL's garbage collection always able to make progress.
  size_t spare_blocks = 2;
  double read_ms_per_page = 0.06;
  double program_ms_per_page = 0.6;
  double erase_ms_per_block = 2.5;
};

/// An SSD-style PageDevice: logical page contents plus a simplified
/// flash-translation layer that accounts for erase-block garbage
/// collection.
///
/// Flash cannot overwrite in place: every logical write programs a fresh
/// flash page (appending into the open block) and leaves the previous
/// version stale. When writable flash runs low, the FTL collects the
/// closed block with the fewest valid pages — copying its valid pages to
/// the open block (write amplification, counted as `ssd.gc_page_copies`)
/// and erasing it (`ssd.erases`). EstimateTimeMs charges reads, host
/// programs, GC copies and erases under SsdCostParams, so the same
/// transfer trace costs very differently here than on SimulatedDisk.
///
/// The FTL is deterministic (greedy min-valid victim, lowest index wins
/// ties; FIFO reuse of erased blocks), so runs are reproducible and the
/// state checkpoints exactly.
class SsdDevice : public PageDevice {
 public:
  explicit SsdDevice(size_t page_size = kDefaultPageSize,
                     MetricsRegistry* registry = nullptr,
                     const SsdCostParams& cost = SsdCostParams{});

  DeviceKind kind() const override { return DeviceKind::kSsd; }

  PageExtent AllocatePages(size_t count) override;
  Status ReadPage(PageId page, std::span<std::byte> out) override;
  Status WritePage(PageId page, std::span<const std::byte> in) override;
  size_t num_pages() const override { return pages_.size(); }

  double EstimateTimeMs() const override;
  const SsdCostParams& cost_params() const { return cost_; }

  // FTL introspection (tests and benches).
  size_t flash_blocks() const { return block_state_.size(); }
  uint64_t erases() const { return erases_->total(); }
  uint64_t gc_page_copies() const { return gc_copies_->total(); }
  /// Total flash programs (host writes + GC copies) per host write; the
  /// classic write-amplification factor. 0 before any write.
  double WriteAmplification() const;

  /// Serializes the FTL state (mapping, block states, open block, erased
  /// FIFO) plus the access-classification cursor. Counters live in the
  /// metrics registry; logical page contents are rematerialized by the
  /// store image.
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;
  static constexpr uint32_t kNoBlock = UINT32_MAX;
  enum BlockState : uint8_t { kErased = 0, kOpen = 1, kClosed = 2 };

  // Grows flash so every logical page plus the spare blocks fit.
  void GrowFlash();

  // Writable flash pages: erased blocks plus the open block's remainder.
  uint64_t WritableSlots() const;

  // Unmaps `logical`'s current flash page, if any.
  void Invalidate(PageId logical);

  // Appends `logical` into the open block (rolling to the next erased
  // block when full). Requires WritableSlots() > 0.
  void Program(PageId logical);

  // GC until a block's worth of headroom is writable (or no collectable
  // block remains).
  void EnsureSpace();

  // Collects the closed block with the fewest valid pages. False if no
  // closed block exists or collection cannot free anything.
  bool CollectOneBlock();

  const SsdCostParams cost_;
  MetricCounter* const erases_;
  MetricCounter* const gc_copies_;

  // Logical page contents (what ReadPage returns).
  std::vector<std::unique_ptr<std::byte[]>> pages_;

  // FTL state. Flash page f lives in block f / pages_per_block.
  std::vector<uint64_t> map_;         // logical -> flash page (kUnmapped).
  std::vector<uint64_t> owner_;       // flash page -> logical (kUnmapped).
  std::vector<uint8_t> block_state_;  // BlockState per flash block.
  std::vector<uint32_t> block_valid_; // Valid pages per flash block.
  std::deque<uint32_t> erased_fifo_;  // Erased blocks, reuse order.
  uint32_t open_block_ = kNoBlock;
  uint32_t open_offset_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_SSD_DEVICE_H_
