#ifndef ODBGC_STORAGE_PAGE_H_
#define ODBGC_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace odbgc {

/// Index of a page in the simulated database's global page space.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// The paper's page size: 8 kilobytes.
inline constexpr size_t kDefaultPageSize = 8192;

}  // namespace odbgc

#endif  // ODBGC_STORAGE_PAGE_H_
