#ifndef ODBGC_STORAGE_READ_AHEAD_H_
#define ODBGC_STORAGE_READ_AHEAD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/page.h"

namespace odbgc {

/// A bounded staging cache for prefetched pages, consulted by FileDevice
/// on every ReadPage before touching the file. Pages enter via Install
/// (the scheduler's prefetch batch lands here) and leave via Lookup
/// (consume-on-hit — the page is about to be pinned in the buffer pool,
/// which IS the long-term cache; keeping a second copy here would only
/// risk staleness) or Invalidate (any write to the page makes the staged
/// copy stale).
///
/// Capacity is a page count; Install evicts the oldest staged page when
/// full (prefetch traffic is forward-sequential, so oldest-first is the
/// natural victim). Not thread safe — FileDevice calls it only from the
/// device's calling thread.
class ReadAhead {
 public:
  ReadAhead(size_t page_size, size_t capacity_pages);

  /// True if `page` is currently staged.
  bool Contains(PageId page) const { return entries_.count(page) != 0; }

  /// If `page` is staged, copies it into `out`, drops the staged entry,
  /// counts a hit, and returns true. Otherwise counts a miss and returns
  /// false.
  bool Lookup(PageId page, std::span<std::byte> out);

  /// Stages the contents of `page`, evicting the oldest entry when at
  /// capacity. A page already staged is overwritten in place.
  void Install(PageId page, std::span<const std::byte> data);

  /// Drops `page` if staged (called on every write to the page).
  void Invalidate(PageId page);

  /// Drops everything staged (hit/miss counters survive).
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Total pages ever staged via Install.
  uint64_t installed() const { return installed_; }

 private:
  struct Entry {
    std::vector<std::byte> data;
    /// Monotonic install stamp; the smallest stamp is the eviction victim.
    uint64_t stamp = 0;
  };

  void EvictOldest();

  const size_t page_size_;
  const size_t capacity_;
  std::unordered_map<PageId, Entry> entries_;
  uint64_t next_stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t installed_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_READ_AHEAD_H_
