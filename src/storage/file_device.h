#ifndef ODBGC_STORAGE_FILE_DEVICE_H_
#define ODBGC_STORAGE_FILE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "storage/disk.h"
#include "storage/io_scheduler.h"
#include "storage/page_device.h"
#include "storage/read_ahead.h"

namespace odbgc {

struct FileDeviceOptions {
  /// Path of the partition file. Opened with create+truncate: the file is
  /// working storage (durability is the WAL/checkpoint layer's job), and
  /// ObjectStore::Restore requires an empty device to rematerialize into.
  std::string path;
  /// Request O_DIRECT. Falls back to buffered when the filesystem refuses
  /// (tmpfs does); `direct_io_effective()` reports what actually happened.
  bool direct_io = false;
  /// fsync at the end of every WritePages batch (and on Sync()).
  bool sync_on_barrier = true;
  /// Read-ahead cache capacity in pages. 0 disables prefetching.
  size_t readahead_pages = 64;
  /// Worker threads for the I/O scheduler (0 = hardware concurrency).
  int io_threads = 0;
  /// Preferred scheduler backend (degrades to the thread pool when
  /// io_uring is unavailable).
  IoBackend backend = IoBackend::kThreadPool;
  /// Timing model used for EstimateTimeMs, so estimated device time is
  /// comparable with a SimulatedDisk run of the same workload. Measured
  /// wall time is reported separately (MeasuredStats).
  DiskCostParams cost;
  /// Optional externally-owned IoScheduler shared with other devices
  /// (non-owning; must outlive the device). When set, io_threads/backend
  /// are ignored and every submit+Drain batch runs under the scheduler's
  /// producer lock, so many file devices — the parallel experiment grid's
  /// per-run backends — share one worker pool instead of spawning one
  /// each. Null (the default) keeps a private scheduler.
  IoScheduler* shared_scheduler = nullptr;
};

/// PageDevice over a real partition file: pread/pwrite through an
/// IoScheduler, optional O_DIRECT, checksummed page frames, fsync
/// barriers, and a read-ahead cache fed by Prefetch hints.
///
/// Layout: page `p` lives in frame `p` at offset `p * frame_size`. A
/// frame is a 512-byte header sector (magic, page id, payload CRC-32)
/// followed by the payload, the whole frame padded to a 4096-byte
/// multiple so the same layout works buffered and O_DIRECT. A frame whose
/// magic is zero (freshly allocated, never written) reads as an all-zero
/// page, matching SimulatedDisk's zero-filled allocations. A frame whose
/// checksum does not cover its payload reads as Corruption — that is what
/// an injected short/torn write leaves behind.
///
/// Determinism contract: the simulated transfer counters (CountRead/
/// CountWrite and their sequential/random classification) are charged on
/// the calling thread in request order — never from scheduler workers —
/// so a run on this backend produces bit-identical simulated results to
/// the same run on SimulatedDisk, regardless of thread count or
/// completion order. Real I/O activity is tracked separately in
/// MeasuredIoStats.
class FileDevice : public PageDevice {
 public:
  /// Opens (create + truncate) the partition file. Check `status()` after
  /// construction; every transfer fails fast when the open failed.
  FileDevice(size_t page_size, MetricsRegistry* registry,
             const FileDeviceOptions& options);
  ~FileDevice() override;

  DeviceKind kind() const override { return DeviceKind::kFile; }

  PageExtent AllocatePages(size_t count) override;
  Status ReadPage(PageId page, std::span<std::byte> out) override;
  Status WritePage(PageId page, std::span<const std::byte> in) override;
  Status WritePages(const PageWriteRequest* requests, size_t count,
                    size_t* written) override;
  void Prefetch(std::span<const PageId> pages) override;
  Status Sync() override;

  size_t num_pages() const override { return num_pages_; }
  double EstimateTimeMs() const override {
    return EstimateDiskTimeMs(stats(), options_.cost);
  }

  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  MeasuredIoStats MeasuredStats() const override;

  /// Construction/open status. Ok when the file is usable.
  const Status& status() const { return status_; }

  /// True when the file is actually open O_DIRECT (request honored).
  bool direct_io_effective() const { return direct_io_effective_; }

  const FileDeviceOptions& options() const { return options_; }
  const IoScheduler& scheduler() const { return *scheduler_ptr_; }
  /// True when this device runs on an externally-owned scheduler.
  bool shares_scheduler() const { return options_.shared_scheduler != nullptr; }

  /// Bytes of file backing one page (header sector + padded payload).
  size_t frame_size() const { return frame_size_; }

 private:
  // Encodes `payload` as a full frame for `page` into `frame` (frame_size_
  // bytes: header + payload + zero padding).
  void EncodeFrame(PageId page, std::span<const std::byte> payload,
                   std::byte* frame) const;
  // Validates `frame` and copies its payload into `out`. Zero magic means
  // a never-written page: `out` is zero-filled.
  Status DecodeFrame(PageId page, const std::byte* frame,
                     std::span<std::byte> out) const;

  Status ValidateTransfer(const char* op, PageId page, size_t buffer_size,
                          bool is_write);

  // Physically damages frame `page` the way the armed plan's
  // write_fault_style dictates (no-op for kClean).
  void ApplyWriteFaultDamage(PageId page, std::span<const std::byte> in);

  // Reads frame `page` from the file into `out` (page payload), counting
  // measured I/O. Does NOT touch simulated counters or the cache.
  Status PhysicalRead(PageId page, std::span<std::byte> out);

  uint64_t FrameOffset(PageId page) const { return page * frame_size_; }

  // Serializes one whole submit+Drain batch against sibling devices on a
  // shared scheduler. A no-op (empty lock) with a private scheduler.
  std::unique_lock<std::mutex> BatchLock() {
    return shares_scheduler() ? scheduler_ptr_->AcquireProducerLock()
                              : std::unique_lock<std::mutex>();
  }

  void PublishBatch(bool is_write, uint64_t pages, bool completed,
                    uint64_t wall_ns);
  void PublishSync(uint64_t wall_ns);

  FileDeviceOptions options_;
  Status status_;
  int fd_ = -1;
  bool direct_io_effective_ = false;
  size_t frame_size_ = 0;
  size_t num_pages_ = 0;

  // Owned when options_.shared_scheduler is null; scheduler_ptr_ is the
  // effective scheduler either way (every transfer goes through it).
  std::unique_ptr<IoScheduler> scheduler_;
  IoScheduler* scheduler_ptr_ = nullptr;
  ReadAhead readahead_;

  // Scratch frame buffer for synchronous single-page transfers, aligned
  // for O_DIRECT.
  std::byte* scratch_ = nullptr;

  // Real-I/O accounting (never feeds the metrics registry).
  uint64_t measured_reads_ = 0;
  uint64_t measured_writes_ = 0;
  uint64_t measured_fsyncs_ = 0;
  uint64_t measured_batches_ = 0;
  uint64_t prefetched_pages_ = 0;
  double measured_wall_ns_ = 0.0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_FILE_DEVICE_H_
