#ifndef ODBGC_STORAGE_DISK_H_
#define ODBGC_STORAGE_DISK_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "storage/page_device.h"
#include "util/status.h"

namespace odbgc {

/// A simple magnetic-disk timing model — the "more detailed cost model"
/// the paper's Section 4.2 suggests ("actual disk costs in terms of head
/// seek, rotational delay, and transfer times"). Defaults approximate an
/// early-90s SCSI disk (the paper's DECstation era): ~16 ms average seek,
/// 3600 RPM (8.3 ms half-rotation), ~4 MB/s media rate.
struct DiskCostParams {
  double seek_ms = 16.0;
  double rotational_ms = 8.3;
  double transfer_ms_per_page = 2.1;  // 8 KB page at ~4 MB/s.
};

/// Estimated device time for the recorded transfers: sequential transfers
/// pay only the media rate; random ones add a seek and half a rotation.
double EstimateDiskTimeMs(const DiskStats& stats,
                          const DiskCostParams& params = DiskCostParams{});

/// The paper's secondary-memory model: a magnetic disk whose random
/// transfers pay a seek plus half a rotation and whose sequential
/// transfers pay only the media rate. The default PageDevice backend.
class SimulatedDisk : public PageDevice {
 public:
  /// Creates an empty disk with the given page size in bytes (> 0).
  /// `registry` may be nullptr (the device then owns a private one).
  explicit SimulatedDisk(size_t page_size = kDefaultPageSize,
                         MetricsRegistry* registry = nullptr,
                         const DiskCostParams& cost = DiskCostParams{});

  DeviceKind kind() const override { return DeviceKind::kSimulatedDisk; }

  PageExtent AllocatePages(size_t count) override;
  Status ReadPage(PageId page, std::span<std::byte> out) override;
  Status WritePage(PageId page, std::span<const std::byte> in) override;
  size_t num_pages() const override { return pages_.size(); }

  double EstimateTimeMs() const override {
    return EstimateDiskTimeMs(stats(), cost_);
  }
  const DiskCostParams& cost_params() const { return cost_; }

  /// Serializes the timing-model state (the last-accessed page that drives
  /// sequential/random classification) plus the geometry for a
  /// cross-check. Counters live in the metrics registry; page contents are
  /// rematerialized by the store image.
  void SaveState(std::ostream& out) const override;

  /// Restores state written by SaveState. Corruption if the stream is
  /// malformed or describes a different disk geometry.
  Status LoadState(std::istream& in) override;

 private:
  const DiskCostParams cost_;
  // One buffer per page. unique_ptr keeps page addresses stable across
  // growth and avoids a multi-megabyte relocation on each new partition.
  std::vector<std::unique_ptr<std::byte[]>> pages_;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_DISK_H_
