#ifndef ODBGC_STORAGE_DISK_H_
#define ODBGC_STORAGE_DISK_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "storage/extent.h"
#include "storage/page.h"
#include "util/random.h"
#include "util/status.h"

namespace odbgc {

/// Cumulative disk transfer counters.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  /// Transfers whose page immediately follows the previously accessed
  /// page (no head movement); the rest pay a seek + rotational delay
  /// under the timing model below.
  uint64_t sequential_transfers = 0;
  uint64_t random_transfers = 0;

  uint64_t total() const { return page_reads + page_writes; }
};

/// A simple device timing model — the "more detailed cost model" the
/// paper's Section 4.2 suggests ("actual disk costs in terms of head seek,
/// rotational delay, and transfer times"). Defaults approximate an
/// early-90s SCSI disk (the paper's DECstation era): ~16 ms average seek,
/// 3600 RPM (8.3 ms half-rotation), ~4 MB/s media rate.
struct DiskCostParams {
  double seek_ms = 16.0;
  double rotational_ms = 8.3;
  double transfer_ms_per_page = 2.1;  // 8 KB page at ~4 MB/s.
};

/// Estimated device time for the recorded transfers: sequential transfers
/// pay only the media rate; random ones add a seek and half a rotation.
double EstimateDiskTimeMs(const DiskStats& stats,
                          const DiskCostParams& params = DiskCostParams{});

/// Fault-injection schedule for crash-recovery testing. Scripted triggers
/// fire exactly once on the Nth transfer after InjectFaults; the
/// probabilistic trigger draws from its own Rng stream, so arming it never
/// perturbs simulation randomness.
struct FaultPlan {
  /// Fail the Nth write after injection (1-based). 0 disables.
  uint64_t fail_after_writes = 0;
  /// Fail the Nth read after injection (1-based). 0 disables.
  uint64_t fail_after_reads = 0;
  /// Independently fail each transfer with this probability.
  double error_prob = 0.0;
  /// Seed for the probabilistic stream.
  uint64_t seed = 0;
};

/// A simulated secondary-memory device holding fixed-size pages.
///
/// The disk stores real bytes (the object store serializes objects into
/// pages, and the collector physically copies them), and counts every page
/// transfer. The trace-driven cost model of the paper is "number of page
/// I/O operations"; those operations are issued against this class by the
/// BufferPool — client code never reads the disk directly.
class SimulatedDisk {
 public:
  /// Creates an empty disk with the given page size in bytes (> 0).
  explicit SimulatedDisk(size_t page_size = kDefaultPageSize);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Appends `count` zero-filled pages; returns the extent covering them.
  /// This is how the database grows by one partition at a time.
  PageExtent AllocatePages(size_t count);

  /// Copies page `page` into `out` (size must equal page_size()).
  /// Counts one page read.
  Status ReadPage(PageId page, std::span<std::byte> out);

  /// Overwrites page `page` from `in` (size must equal page_size()).
  /// Counts one page write.
  Status WritePage(PageId page, std::span<const std::byte> in);

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }
  const DiskStats& stats() const { return stats_; }

  /// Zeroes the transfer counters (e.g., after a warm-up phase).
  void ResetStats() { stats_ = DiskStats{}; }

  /// Arms fault injection. Replaces any previously armed plan and restarts
  /// the transfer counters the scripted triggers count against.
  void InjectFaults(const FaultPlan& plan);

  /// Disarms fault injection.
  void ClearFaults();

  /// Number of transfers failed by the armed plan(s) so far.
  uint64_t faults_fired() const { return faults_fired_; }

  /// Serializes the timing-model state (transfer counters plus the
  /// last-accessed page that drives sequential/random classification) so a
  /// restored run reproduces the same disk-time estimate. Page contents are
  /// not included — the store image rematerializes them.
  void SaveState(std::ostream& out) const;

  /// Restores state written by SaveState. Corruption if the stream is
  /// malformed or describes a different disk geometry.
  Status LoadState(std::istream& in);

 private:
  // Classifies an access as sequential or random relative to the last one.
  void NoteAccess(PageId page);

  // Returns the injected fault for this transfer, if the plan fires.
  Status CheckFault(bool is_write);

  const size_t page_size_;
  // One buffer per page. unique_ptr keeps page addresses stable across
  // growth and avoids a multi-megabyte relocation on each new partition.
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  DiskStats stats_;
  PageId last_accessed_ = kInvalidPageId;

  std::optional<FaultPlan> faults_;
  std::optional<Rng> fault_rng_;
  uint64_t fault_writes_seen_ = 0;
  uint64_t fault_reads_seen_ = 0;
  uint64_t faults_fired_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_DISK_H_
