#include "storage/disk.h"

#include <cassert>
#include <cstring>

#include "util/serde.h"

namespace odbgc {

SimulatedDisk::SimulatedDisk(size_t page_size) : page_size_(page_size) {
  assert(page_size_ > 0);
}

PageExtent SimulatedDisk::AllocatePages(size_t count) {
  PageExtent extent{static_cast<PageId>(pages_.size()), count};
  for (size_t i = 0; i < count; ++i) {
    auto page = std::make_unique<std::byte[]>(page_size_);
    std::memset(page.get(), 0, page_size_);
    pages_.push_back(std::move(page));
  }
  return extent;
}

Status SimulatedDisk::ReadPage(PageId page, std::span<std::byte> out) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (out.size() != page_size_) {
    return Status::InvalidArgument("ReadPage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/false));
  std::memcpy(out.data(), pages_[page].get(), page_size_);
  ++stats_.page_reads;
  NoteAccess(page);
  return Status::Ok();
}

Status SimulatedDisk::WritePage(PageId page, std::span<const std::byte> in) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument("WritePage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/true));
  std::memcpy(pages_[page].get(), in.data(), page_size_);
  ++stats_.page_writes;
  NoteAccess(page);
  return Status::Ok();
}

void SimulatedDisk::InjectFaults(const FaultPlan& plan) {
  faults_ = plan;
  fault_rng_.emplace(plan.seed);
  fault_writes_seen_ = 0;
  fault_reads_seen_ = 0;
}

void SimulatedDisk::ClearFaults() {
  faults_.reset();
  fault_rng_.reset();
}

Status SimulatedDisk::CheckFault(bool is_write) {
  if (!faults_) return Status::Ok();
  uint64_t& seen = is_write ? fault_writes_seen_ : fault_reads_seen_;
  const uint64_t trigger =
      is_write ? faults_->fail_after_writes : faults_->fail_after_reads;
  ++seen;
  if (trigger != 0 && seen == trigger) {
    ++faults_fired_;
    return Status::IoError(std::string("injected fault on ") +
                           (is_write ? "write #" : "read #") +
                           std::to_string(seen));
  }
  if (faults_->error_prob > 0.0 &&
      fault_rng_->Bernoulli(faults_->error_prob)) {
    ++faults_fired_;
    return Status::IoError("injected probabilistic fault");
  }
  return Status::Ok();
}

void SimulatedDisk::SaveState(std::ostream& out) const {
  PutVarint(out, page_size_);
  PutVarint(out, pages_.size());
  PutVarint(out, stats_.page_reads);
  PutVarint(out, stats_.page_writes);
  PutVarint(out, stats_.sequential_transfers);
  PutVarint(out, stats_.random_transfers);
  PutU64(out, last_accessed_);
}

Status SimulatedDisk::LoadState(std::istream& in) {
  auto get = [&in](uint64_t* out_value) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out_value = *v;
    return Status::Ok();
  };
  uint64_t page_size = 0;
  uint64_t num_pages = 0;
  ODBGC_RETURN_IF_ERROR(get(&page_size));
  ODBGC_RETURN_IF_ERROR(get(&num_pages));
  if (page_size != page_size_ || num_pages != pages_.size()) {
    return Status::Corruption("disk state geometry mismatch");
  }
  DiskStats stats;
  ODBGC_RETURN_IF_ERROR(get(&stats.page_reads));
  ODBGC_RETURN_IF_ERROR(get(&stats.page_writes));
  ODBGC_RETURN_IF_ERROR(get(&stats.sequential_transfers));
  ODBGC_RETURN_IF_ERROR(get(&stats.random_transfers));
  auto last = GetU64(in);
  ODBGC_RETURN_IF_ERROR(last.status());
  stats_ = stats;
  last_accessed_ = *last;
  return Status::Ok();
}

void SimulatedDisk::NoteAccess(PageId page) {
  if (last_accessed_ != kInvalidPageId && page == last_accessed_ + 1) {
    ++stats_.sequential_transfers;
  } else {
    ++stats_.random_transfers;
  }
  last_accessed_ = page;
}

double EstimateDiskTimeMs(const DiskStats& stats,
                          const DiskCostParams& params) {
  const double random = static_cast<double>(stats.random_transfers);
  const double sequential = static_cast<double>(stats.sequential_transfers);
  return random * (params.seek_ms + params.rotational_ms +
                   params.transfer_ms_per_page) +
         sequential * params.transfer_ms_per_page;
}

}  // namespace odbgc
