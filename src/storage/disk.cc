#include "storage/disk.h"

#include <cassert>
#include <cstring>

#include "util/serde.h"

namespace odbgc {

SimulatedDisk::SimulatedDisk(size_t page_size, MetricsRegistry* registry,
                             const DiskCostParams& cost)
    : PageDevice(page_size, registry), cost_(cost) {
  assert(page_size > 0);
}

PageExtent SimulatedDisk::AllocatePages(size_t count) {
  PageExtent extent{static_cast<PageId>(pages_.size()), count};
  for (size_t i = 0; i < count; ++i) {
    auto page = std::make_unique<std::byte[]>(page_size());
    std::memset(page.get(), 0, page_size());
    pages_.push_back(std::move(page));
  }
  return extent;
}

Status SimulatedDisk::ReadPage(PageId page, std::span<std::byte> out) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (out.size() != page_size()) {
    return Status::InvalidArgument("ReadPage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/false));
  std::memcpy(out.data(), pages_[page].get(), page_size());
  CountRead(page);
  return Status::Ok();
}

Status SimulatedDisk::WritePage(PageId page, std::span<const std::byte> in) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (in.size() != page_size()) {
    return Status::InvalidArgument("WritePage: buffer size mismatch");
  }
  ODBGC_RETURN_IF_ERROR(CheckFault(/*is_write=*/true));
  std::memcpy(pages_[page].get(), in.data(), page_size());
  CountWrite(page);
  return Status::Ok();
}

void SimulatedDisk::SaveState(std::ostream& out) const {
  PutU8(out, static_cast<uint8_t>(kind()));
  PutVarint(out, page_size());
  PutVarint(out, pages_.size());
  PutU64(out, last_accessed());
}

Status SimulatedDisk::LoadState(std::istream& in) {
  auto stored_kind = GetU8(in);
  ODBGC_RETURN_IF_ERROR(stored_kind.status());
  if (*stored_kind != static_cast<uint8_t>(kind())) {
    return Status::Corruption("device state kind mismatch");
  }
  auto stored_page_size = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_page_size.status());
  auto stored_num_pages = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(stored_num_pages.status());
  if (*stored_page_size != page_size() ||
      *stored_num_pages != pages_.size()) {
    return Status::Corruption("disk state geometry mismatch");
  }
  auto last = GetU64(in);
  ODBGC_RETURN_IF_ERROR(last.status());
  set_last_accessed(*last);
  return Status::Ok();
}

double EstimateDiskTimeMs(const DiskStats& stats,
                          const DiskCostParams& params) {
  const double random = static_cast<double>(stats.random_transfers);
  const double sequential = static_cast<double>(stats.sequential_transfers);
  return random * (params.seek_ms + params.rotational_ms +
                   params.transfer_ms_per_page) +
         sequential * params.transfer_ms_per_page;
}

}  // namespace odbgc
