#include "storage/disk.h"

#include <cassert>
#include <cstring>

namespace odbgc {

SimulatedDisk::SimulatedDisk(size_t page_size) : page_size_(page_size) {
  assert(page_size_ > 0);
}

PageExtent SimulatedDisk::AllocatePages(size_t count) {
  PageExtent extent{static_cast<PageId>(pages_.size()), count};
  for (size_t i = 0; i < count; ++i) {
    auto page = std::make_unique<std::byte[]>(page_size_);
    std::memset(page.get(), 0, page_size_);
    pages_.push_back(std::move(page));
  }
  return extent;
}

Status SimulatedDisk::ReadPage(PageId page, std::span<std::byte> out) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (out.size() != page_size_) {
    return Status::InvalidArgument("ReadPage: buffer size mismatch");
  }
  std::memcpy(out.data(), pages_[page].get(), page_size_);
  ++stats_.page_reads;
  NoteAccess(page);
  return Status::Ok();
}

Status SimulatedDisk::WritePage(PageId page, std::span<const std::byte> in) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(page) +
                              " beyond disk end " +
                              std::to_string(pages_.size()));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument("WritePage: buffer size mismatch");
  }
  std::memcpy(pages_[page].get(), in.data(), page_size_);
  ++stats_.page_writes;
  NoteAccess(page);
  return Status::Ok();
}

void SimulatedDisk::NoteAccess(PageId page) {
  if (last_accessed_ != kInvalidPageId && page == last_accessed_ + 1) {
    ++stats_.sequential_transfers;
  } else {
    ++stats_.random_transfers;
  }
  last_accessed_ = page;
}

double EstimateDiskTimeMs(const DiskStats& stats,
                          const DiskCostParams& params) {
  const double random = static_cast<double>(stats.random_transfers);
  const double sequential = static_cast<double>(stats.sequential_transfers);
  return random * (params.seek_ms + params.rotational_ms +
                   params.transfer_ms_per_page) +
         sequential * params.transfer_ms_per_page;
}

}  // namespace odbgc
