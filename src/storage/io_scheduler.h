#ifndef ODBGC_STORAGE_IO_SCHEDULER_H_
#define ODBGC_STORAGE_IO_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/status.h"

namespace odbgc {

/// Which engine actually moves the bytes.
enum class IoBackend : uint8_t {
  /// Portable engine: a pool of worker threads issuing pread/pwrite.
  kThreadPool = 0,
  /// Linux io_uring (compiled in only when <liburing.h> is available;
  /// falls back to the thread pool when the kernel refuses a ring).
  kIoUring = 1,
};

const char* IoBackendName(IoBackend backend);

struct IoSchedulerOptions {
  /// Worker threads for the portable backend; 0 = hardware concurrency
  /// (at least 1). Ignored by the io_uring backend.
  int threads = 0;
  /// Preferred backend. kIoUring silently degrades to kThreadPool when
  /// io_uring support is not compiled in or ring setup fails.
  IoBackend backend = IoBackend::kThreadPool;
};

/// Returns the best backend this build/kernel supports (kIoUring when the
/// build has liburing and the kernel accepts a ring, else kThreadPool).
IoBackend DetectIoBackend();

/// An asynchronous batched read/write queue over one or more file
/// descriptors — the engine under FileDevice's write-back batches and
/// read-ahead prefetches.
///
/// Usage is submit*, then Drain(): submissions enqueue jobs whose buffers
/// MUST stay valid until Drain returns; Drain is a barrier that waits for
/// every outstanding job and reports the first failure in *submission*
/// order (so error reporting does not depend on completion order or
/// thread count). Jobs target explicit file offsets; concurrent jobs in
/// one batch must cover disjoint ranges — FileDevice guarantees that by
/// deduplicating pages per batch — which is what makes the resulting file
/// bytes independent of worker count and completion order.
///
/// Thread safety: one producer thread submits and drains; workers only
/// execute jobs. (The submit/drain surface itself is not reentrant.)
/// Multiple producers — e.g. a parallel experiment grid's file devices
/// sharing one scheduler — serialize whole submit+Drain batches through
/// AcquireProducerLock, which restores the single-producer contract one
/// batch at a time.
class IoScheduler {
 public:
  explicit IoScheduler(const IoSchedulerOptions& options = {});
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Claims exclusive use of the submit/Drain surface for one batch.
  /// Hold the returned lock across the whole submit*-then-Drain sequence.
  /// Single-producer users may skip this entirely (the lock protects
  /// nothing they contend on).
  std::unique_lock<std::mutex> AcquireProducerLock() {
    return std::unique_lock<std::mutex>(producer_mutex_);
  }

  /// Enqueues a full write of `data` at `offset` on `fd`.
  void SubmitWrite(int fd, uint64_t offset, std::span<const std::byte> data);

  /// Enqueues a full read into `out` from `offset` on `fd`. Reads past
  /// end-of-file zero-fill the tail (a page never written is all zeros).
  void SubmitRead(int fd, uint64_t offset, std::span<std::byte> out);

  /// Barrier: waits for every submitted job, clears the queue, and
  /// returns the first error in submission order (Ok if none).
  Status Drain();

  /// Jobs executed since construction (reads + writes), for tests.
  uint64_t jobs_completed() const { return jobs_completed_; }

  /// The engine actually in use (after any io_uring fallback).
  IoBackend backend() const { return backend_; }
  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Job {
    int fd = -1;
    uint64_t offset = 0;
    bool is_write = false;
    std::span<const std::byte> write_data;
    std::span<std::byte> read_data;
    Status status;
    bool done = false;
  };

  void WorkerLoop();
  static Status Execute(Job& job);

#if defined(ODBGC_HAVE_LIBURING)
  Status DrainUring();
#endif

  IoBackend backend_ = IoBackend::kThreadPool;
  uint64_t jobs_completed_ = 0;

  // Serializes producers that share this scheduler (AcquireProducerLock);
  // never touched on the single-producer path.
  std::mutex producer_mutex_;

  // Thread-pool backend state. Jobs accumulate in `jobs_`; workers claim
  // them by index through `next_job_`. Drain waits until done == jobs size.
  std::vector<Job> jobs_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  size_t next_job_ = 0;
  size_t jobs_done_ = 0;
  bool draining_ = false;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

#if defined(ODBGC_HAVE_LIBURING)
  // Opaque ring handle (io_uring struct lives in the .cc to keep liburing
  // out of this header).
  void* ring_ = nullptr;
#endif
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_IO_SCHEDULER_H_
