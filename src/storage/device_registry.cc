#include "storage/device_registry.h"

#include <map>
#include <mutex>
#include <utility>

namespace odbgc {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, DeviceFactory> factories;
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry;
    r->factories["disk"] = [](const DeviceContext& context,
                              const std::string& arg)
        -> Result<std::unique_ptr<PageDevice>> {
      if (!arg.empty()) {
        return Status::InvalidArgument("device 'disk' takes no argument");
      }
      return std::unique_ptr<PageDevice>(std::make_unique<SimulatedDisk>(
          context.page_size, context.registry, context.disk_cost));
    };
    r->factories["ssd"] = [](const DeviceContext& context,
                             const std::string& arg)
        -> Result<std::unique_ptr<PageDevice>> {
      if (!arg.empty()) {
        return Status::InvalidArgument("device 'ssd' takes no argument");
      }
      return std::unique_ptr<PageDevice>(std::make_unique<SsdDevice>(
          context.page_size, context.registry, context.ssd_cost));
    };
    r->factories["file"] = [](const DeviceContext& context,
                              const std::string& arg)
        -> Result<std::unique_ptr<PageDevice>> {
      FileDeviceOptions options = context.file;
      if (!arg.empty()) options.path = arg;
      if (options.path.empty()) {
        return Status::InvalidArgument(
            "device 'file' needs a path: use \"file:<path>\" or set "
            "FileDeviceOptions::path");
      }
      auto device = std::make_unique<FileDevice>(context.page_size,
                                                 context.registry, options);
      // Open failures surface here, at the config boundary, instead of on
      // the first transfer.
      ODBGC_RETURN_IF_ERROR(device->status());
      return std::unique_ptr<PageDevice>(std::move(device));
    };
    return r;
  }();
  return *registry;
}

}  // namespace

Status RegisterDevice(const std::string& name, DeviceFactory factory) {
  if (name.empty() || name.find(':') != std::string::npos) {
    return Status::InvalidArgument("device name must be non-empty and ':'-free");
  }
  if (!factory) {
    return Status::InvalidArgument("null device factory");
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] =
      registry.factories.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("device '" + name + "' already registered");
  }
  return Status::Ok();
}

std::string DeviceSpecName(const std::string& spec) {
  const size_t colon = spec.find(':');
  return colon == std::string::npos ? spec : spec.substr(0, colon);
}

std::string DeviceSpecArg(const std::string& spec) {
  const size_t colon = spec.find(':');
  return colon == std::string::npos ? std::string() : spec.substr(colon + 1);
}

bool IsDeviceRegistered(const std::string& spec) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.factories.count(DeviceSpecName(spec)) != 0;
}

std::vector<std::string> RegisteredDeviceNames() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) {
    (void)factory;
    names.push_back(name);
  }
  return names;  // std::map iterates sorted.
}

Result<std::unique_ptr<PageDevice>> MakeDeviceFromSpec(
    const std::string& spec, const DeviceContext& context) {
  const std::string name = DeviceSpecName(spec);
  DeviceFactory factory;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.factories.find(name);
    if (it != registry.factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& candidate : RegisteredDeviceNames()) {
      if (!known.empty()) known += ", ";
      known += candidate;
    }
    return Status::InvalidArgument("unknown device '" + name +
                                   "' (registered: " + known + ")");
  }
  return factory(context, DeviceSpecArg(spec));
}

std::string PerRunDeviceSpec(const std::string& spec,
                             const std::string& policy_name, uint64_t seed) {
  if (DeviceSpecName(spec) != "file") return spec;
  const std::string arg = DeviceSpecArg(spec);
  if (arg.empty()) return spec;
  return "file:" + arg + "-" + policy_name + "-s" + std::to_string(seed);
}

}  // namespace odbgc
