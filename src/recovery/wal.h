#ifndef ODBGC_RECOVERY_WAL_H_
#define ODBGC_RECOVERY_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "odb/object_id.h"
#include "trace/event.h"
#include "util/status.h"

namespace odbgc {

/// WAL file format identification.
inline constexpr uint32_t kWalMagic = 0x4c42444fu;  // "ODBL" LE bytes.
inline constexpr uint16_t kWalVersion = 1;

/// Record framing: [u32 payload_len][u32 crc32(payload)][payload], payload
/// = type byte + type-specific fields. The CRC plus the length prefix make
/// a torn tail (partial last record, from a crash mid-append) detectable
/// and cleanly truncatable, and bit rot detectable as Corruption.
enum class WalRecordType : uint8_t {
  /// One application trace event (the wire format of trace/event.h).
  kEvent = 1,
  /// A workload round completed and everything before this record is
  /// consistent; carries a fingerprint of the simulation state for replay
  /// verification. Recovery resumes from the last such record.
  kRoundCommit = 2,
  /// A collection decision: which victim the policy picked. Redundant
  /// given deterministic replay — recorded so recovery can verify the
  /// resumed run makes the identical decisions.
  kCollection = 3,
};

/// One decoded WAL record (tagged union over the types above).
struct WalRecord {
  WalRecordType type = WalRecordType::kEvent;
  /// kEvent.
  TraceEvent event;
  /// kRoundCommit: the completed round number (0 = initial build phase).
  uint64_t round = 0;
  /// kRoundCommit fingerprint: simulator events applied, heap collections
  /// and pointer overwrites at commit time.
  uint64_t events_applied = 0;
  uint64_t collections = 0;
  uint64_t pointer_overwrites = 0;
  /// kCollection: ordinal of the decision (index into the run's decision
  /// sequence) and the selected victim.
  uint64_t decision_index = 0;
  PartitionId victim = kInvalidPartition;

  static WalRecord Event(const TraceEvent& event);
  static WalRecord RoundCommit(uint64_t round, uint64_t events_applied,
                               uint64_t collections,
                               uint64_t pointer_overwrites);
  static WalRecord Collection(uint64_t decision_index, PartitionId victim);
};

/// Appends records to a WAL segment file.
class WalWriter {
 public:
  /// Creates (truncating) a new segment at `path` and writes the header.
  static Result<WalWriter> Create(const std::string& path);

  /// Opens an existing segment for appending. The caller is expected to
  /// have run RecoverWal first so the tail is clean.
  static Result<WalWriter> OpenForAppend(const std::string& path);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record (buffered; call Sync to reach the file).
  Status Append(const WalRecord& record);

  /// Flushes buffered appends to the file.
  Status Sync();

  uint64_t records_appended() const { return records_appended_; }

 private:
  explicit WalWriter(std::ofstream out) : out_(std::move(out)) {}

  std::ofstream out_;
  uint64_t records_appended_ = 0;
};

/// A parsed WAL segment. `record_end_offsets[i]` is the absolute file
/// offset just past record i — the truncation point that keeps records
/// 0..i.
struct WalContents {
  std::vector<WalRecord> records;
  std::vector<uint64_t> record_end_offsets;
  /// Offset just past the header (the truncation point keeping nothing).
  uint64_t header_end_offset = 0;
};

/// Strict read: any framing violation, CRC mismatch, or truncated record
/// is Corruption. For integrity checks and tests.
Result<WalContents> ReadWal(const std::string& path);

/// Crash-tolerant read: parses valid records up to the first torn or
/// corrupt one, truncates the file there, and returns what survived. Only
/// a missing/unreadable file or a bad header is an error — a damaged tail
/// is the expected crash outcome, not Corruption.
Result<WalContents> RecoverWal(const std::string& path);

/// Truncates the segment to `offset` (from WalContents offsets): used to
/// drop records after the last round commit before resuming appends.
Status TruncateWal(const std::string& path, uint64_t offset);

}  // namespace odbgc

#endif  // ODBGC_RECOVERY_WAL_H_
