#ifndef ODBGC_RECOVERY_RECOVER_H_
#define ODBGC_RECOVERY_RECOVER_H_

#include <cstdint>
#include <memory>

#include "recovery/checkpoint_manager.h"
#include "recovery/wal.h"
#include "sim/config.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "workload/generator.h"

namespace odbgc {

/// What DurableSimulation::Open/Run did, for tests and progress reporting.
struct DurableRunStats {
  /// True if Open restored a snapshot instead of starting fresh.
  bool resumed = false;
  /// Round of the restored snapshot (0 when not resumed).
  uint64_t resumed_from_round = 0;
  /// Committed rounds re-executed from the WAL during Open.
  uint64_t rounds_replayed = 0;
  /// Application events verified against the WAL during replay.
  uint64_t events_replayed = 0;
  /// Snapshots written by this Run (WAL rotations).
  uint64_t checkpoints_written = 0;
};

/// A Simulator run made durable and restartable. Every application event
/// and collection decision is appended to a write-ahead log, every
/// completed workload round is committed (with a state fingerprint) and
/// synced, and every `checkpoint_every_rounds` rounds the full simulation
/// state is snapshotted and the WAL rotated.
///
/// Open() recovers automatically: it restores the newest valid snapshot
/// (or starts fresh), truncates the WAL's uncommitted tail, and replays
/// the committed rounds by re-running the deterministic workload generator
/// — verifying each regenerated event and collection decision against the
/// log, so any divergence (config drift, nondeterminism, corruption) is
/// Corruption rather than a silently wrong result. A run killed mid-round
/// therefore resumes exactly at its last committed round and finishes
/// bit-identical to an uninterrupted run (see tests/recovery/).
class DurableSimulation {
 public:
  /// Opens (and recovers, if prior state exists) a durable run in
  /// `config.wal_dir`. InvalidArgument if wal_dir is empty.
  static Result<std::unique_ptr<DurableSimulation>> Open(
      const SimulationConfig& config);

  /// Runs the workload to completion from wherever Open left off,
  /// logging, committing and checkpointing along the way.
  Status Run();

  /// Finalizes and returns the result (see Simulator::Finish).
  SimulationResult Finish() { return simulator_->Finish(); }

  Simulator& simulator() { return *simulator_; }
  const WorkloadGenerator& generator() const { return *generator_; }
  const DurableRunStats& run_stats() const { return stats_; }

 private:
  explicit DurableSimulation(const SimulationConfig& config)
      : config_(config),
        manager_(config.wal_dir) {}

  /// Re-executes the committed rounds in `records` against the restored
  /// state, verifying against the log.
  Status Replay(const std::vector<WalRecord>& records);

  /// Appends and syncs the commit record for `round`.
  Status CommitRound(uint64_t round);

  /// Snapshots at `round`, rotates the WAL, garbage-collects old state.
  Status Checkpoint(uint64_t round);

  const SimulationConfig config_;
  CheckpointManager manager_;
  std::unique_ptr<Simulator> simulator_;
  std::unique_ptr<WorkloadGenerator> generator_;
  std::unique_ptr<WalWriter> wal_;
  /// Round anchoring the current WAL segment (snapshot round; 0 = fresh).
  uint64_t base_round_ = 0;
  uint64_t last_checkpoint_round_ = 0;
  bool fresh_ = true;
  /// Whether the initial database build has been executed (live or via
  /// replay) this process.
  bool build_done_ = false;
  DurableRunStats stats_;
};

/// Convenience: Open + Run + Finish.
Result<SimulationResult> RunDurableSimulation(const SimulationConfig& config);

/// RunExperiment with durable runs: each (policy, seed) run lives in its
/// own subdirectory `<wal_dir>/<policy>-s<seed>` of spec.base.wal_dir and
/// resumes from its own checkpoints, so a killed experiment re-run skips
/// already-finished work up to the last checkpoint of each run.
Result<Experiment> RunExperimentDurable(const ExperimentSpec& spec);

}  // namespace odbgc

#endif  // ODBGC_RECOVERY_RECOVER_H_
