#ifndef ODBGC_RECOVERY_CHECKPOINT_MANAGER_H_
#define ODBGC_RECOVERY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "workload/generator.h"

namespace odbgc {

/// Checkpoint file format identification. Version 2: buffer state carries
/// the replacement-policy kind and serialized policy state, device-model
/// state replaces raw disk counters, and the whole metrics registry
/// (named per-phase counters) is serialized after it.
inline constexpr uint32_t kCheckpointMagic = 0x4342444fu;  // "ODBC" LE.
inline constexpr uint16_t kCheckpointVersion = 2;

/// Writes, lists, validates and garbage-collects simulation snapshots in a
/// durability directory, alongside the WAL segments they anchor.
///
/// Layout: `ckpt-<round>.odbc` is the full simulation state (store image +
/// heap runtime state + simulator state + generator state) sealed with a
/// whole-payload CRC32 and written atomically (tmp + rename);
/// `wal-<round>.odbl` is the WAL segment recording everything after that
/// snapshot. A fresh run starts with the implicit empty state at round 0
/// and `wal-0.odbl`.
class CheckpointManager {
 public:
  /// `dir` is created lazily by Init(). `keep` newest snapshots survive
  /// GarbageCollect (>= 1; 2 tolerates corruption of the newest).
  explicit CheckpointManager(std::string dir, int keep = 2);

  /// Creates the durability directory (and parents) if missing.
  Status Init() const;

  std::string SnapshotPath(uint64_t round) const;
  std::string WalPath(uint64_t round) const;
  const std::string& dir() const { return dir_; }

  /// Rounds with a snapshot file present, ascending. (Presence only — a
  /// listed snapshot may still fail validation when loaded.)
  Result<std::vector<uint64_t>> ListSnapshots() const;

  /// Atomically writes the snapshot for `round`: serialize to
  /// `ckpt-<round>.odbc.tmp`, seal with CRC, rename into place.
  Status WriteSnapshot(uint64_t round, const Simulator& simulator,
                       const WorkloadGenerator& generator) const;

  struct LoadedSnapshot {
    uint64_t round = 0;
    std::unique_ptr<Simulator> simulator;
    std::unique_ptr<WorkloadGenerator> generator;
  };

  /// Strictly loads the snapshot for `round`: bad magic/version/CRC or a
  /// payload mismatch with `config` (seed, policy) is Corruption.
  Result<LoadedSnapshot> LoadSnapshot(uint64_t round,
                                      const SimulationConfig& config) const;

  /// Loads the newest snapshot that validates, skipping corrupt ones (the
  /// reason `keep` >= 2). NotFound if no usable snapshot exists — the
  /// caller starts fresh from round 0.
  Result<LoadedSnapshot> LoadNewestValid(const SimulationConfig& config) const;

  /// Deletes snapshots beyond the `keep` newest, WAL segments older than
  /// the oldest kept snapshot, and stray .tmp files from interrupted
  /// writes.
  Status GarbageCollect() const;

 private:
  const std::string dir_;
  const int keep_;
};

}  // namespace odbgc

#endif  // ODBGC_RECOVERY_CHECKPOINT_MANAGER_H_
