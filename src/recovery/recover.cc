#include "recovery/recover.h"

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace odbgc {

namespace {

/// The decision ordinal base: heap stats count every partition collection
/// ever (within the current measurement window), the in-memory log only
/// those since restore/reset — the difference anchors log indices to
/// global ordinals. Both counters move in lockstep, so this is stable for
/// the lifetime of a sink.
uint64_t DecisionBase(const Simulator& sim) {
  return sim.heap().stats().collections - sim.heap().collection_log().size();
}

/// Live-run sink: logs each event to the WAL, applies it, then logs any
/// collection decisions the event triggered.
class TeeSink : public TraceSink {
 public:
  TeeSink(Simulator* sim, WalWriter* wal) : sim_(sim), wal_(wal) { Rebase(); }

  /// Re-anchors the decision cursor after a measurement reset cleared the
  /// heap's collection log and counters.
  void Rebase() {
    decisions_seen_ = sim_->heap().collection_log().size();
    decision_base_ = DecisionBase(*sim_);
  }

  Status Append(const TraceEvent& event) override {
    ODBGC_RETURN_IF_ERROR(wal_->Append(WalRecord::Event(event)));
    ODBGC_RETURN_IF_ERROR(sim_->Append(event));
    const auto& log = sim_->heap().collection_log();
    while (decisions_seen_ < log.size()) {
      ODBGC_RETURN_IF_ERROR(wal_->Append(WalRecord::Collection(
          decision_base_ + decisions_seen_, log[decisions_seen_].collected)));
      ++decisions_seen_;
    }
    return Status::Ok();
  }

 private:
  Simulator* sim_;
  WalWriter* wal_;
  size_t decisions_seen_ = 0;
  uint64_t decision_base_ = 0;
};

/// Replay sink: checks each regenerated event against the next logged one
/// (the generator is deterministic, so any difference means the log and
/// this process disagree about the run), applies it, and checks that the
/// heap makes exactly the logged collection decisions.
class VerifyingSink : public TraceSink {
 public:
  VerifyingSink(Simulator* sim, const std::vector<WalRecord>* records,
                size_t* cursor, DurableRunStats* stats)
      : sim_(sim), records_(records), cursor_(cursor), stats_(stats) {
    Rebase();
  }

  void Rebase() {
    decisions_seen_ = sim_->heap().collection_log().size();
    decision_base_ = DecisionBase(*sim_);
  }

  Status Append(const TraceEvent& event) override {
    if (*cursor_ >= records_->size()) {
      return Status::Corruption(
          "WAL replay divergence: generator produced events past the log");
    }
    const WalRecord& logged = (*records_)[*cursor_];
    if (logged.type != WalRecordType::kEvent || !(logged.event == event)) {
      return Status::Corruption(
          "WAL replay divergence: regenerated event does not match log");
    }
    ++*cursor_;
    ODBGC_RETURN_IF_ERROR(sim_->Append(event));
    ++stats_->events_replayed;

    const auto& log = sim_->heap().collection_log();
    while (*cursor_ < records_->size() &&
           (*records_)[*cursor_].type == WalRecordType::kCollection) {
      const WalRecord& decision = (*records_)[*cursor_];
      if (decisions_seen_ >= log.size()) {
        return Status::Corruption(
            "WAL replay divergence: logged collection did not recur");
      }
      if (decision.decision_index != decision_base_ + decisions_seen_ ||
          decision.victim != log[decisions_seen_].collected) {
        return Status::Corruption(
            "WAL replay divergence: collection decision mismatch");
      }
      ++decisions_seen_;
      ++*cursor_;
    }
    if (log.size() != decisions_seen_) {
      return Status::Corruption(
          "WAL replay divergence: unlogged collection on replay");
    }
    return Status::Ok();
  }

 private:
  Simulator* sim_;
  const std::vector<WalRecord>* records_;
  size_t* cursor_;
  DurableRunStats* stats_;
  size_t decisions_seen_ = 0;
  uint64_t decision_base_ = 0;
};

}  // namespace

Result<std::unique_ptr<DurableSimulation>> DurableSimulation::Open(
    const SimulationConfig& config) {
  if (config.wal_dir.empty()) {
    return Status::InvalidArgument(
        "durable simulation requires config.wal_dir");
  }
  auto engine =
      std::unique_ptr<DurableSimulation>(new DurableSimulation(config));
  ODBGC_RETURN_IF_ERROR(engine->manager_.Init());

  auto loaded = engine->manager_.LoadNewestValid(config);
  if (loaded.ok()) {
    engine->simulator_ = std::move(loaded->simulator);
    engine->generator_ = std::move(loaded->generator);
    engine->base_round_ = loaded->round;
    engine->last_checkpoint_round_ = loaded->round;
    engine->fresh_ = false;
    engine->build_done_ = true;
    engine->stats_.resumed = true;
    engine->stats_.resumed_from_round = loaded->round;
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    engine->simulator_ = std::make_unique<Simulator>(config);
    engine->generator_ =
        std::make_unique<WorkloadGenerator>(config.workload, config.seed);
  } else {
    return loaded.status();
  }

  const std::string wal_path = engine->manager_.WalPath(engine->base_round_);
  std::error_code ec;
  const bool wal_exists = std::filesystem::exists(wal_path, ec);
  if (ec) return Status::IoError("cannot stat WAL: " + wal_path);

  if (wal_exists) {
    auto contents = RecoverWal(wal_path);
    ODBGC_RETURN_IF_ERROR(contents.status());
    // Keep only records up to (and including) the last round commit: a
    // partially logged round is re-executed live, not replayed.
    size_t keep = 0;
    uint64_t keep_offset = contents->header_end_offset;
    for (size_t i = 0; i < contents->records.size(); ++i) {
      if (contents->records[i].type == WalRecordType::kRoundCommit) {
        keep = i + 1;
        keep_offset = contents->record_end_offsets[i];
      }
    }
    if (keep < contents->records.size()) {
      ODBGC_RETURN_IF_ERROR(TruncateWal(wal_path, keep_offset));
      contents->records.resize(keep);
    }
    ODBGC_RETURN_IF_ERROR(engine->Replay(contents->records));
    auto writer = WalWriter::OpenForAppend(wal_path);
    ODBGC_RETURN_IF_ERROR(writer.status());
    engine->wal_ = std::make_unique<WalWriter>(std::move(writer).value());
  } else {
    auto writer = WalWriter::Create(wal_path);
    ODBGC_RETURN_IF_ERROR(writer.status());
    engine->wal_ = std::make_unique<WalWriter>(std::move(writer).value());
  }
  return engine;
}

Status DurableSimulation::Replay(const std::vector<WalRecord>& records) {
  size_t cursor = 0;
  VerifyingSink sink(simulator_.get(), &records, &cursor, &stats_);
  while (cursor < records.size()) {
    uint64_t expected_round = 0;
    if (fresh_ && !build_done_) {
      // The first committed round of a fresh run is the build phase.
      ODBGC_RETURN_IF_ERROR(generator_->BuildInitialDatabase(&sink));
      build_done_ = true;
      if (config_.warm_start) {
        simulator_->ResetMeasurementForWarmStart();
        sink.Rebase();
      }
    } else {
      ODBGC_RETURN_IF_ERROR(generator_->RunRound(&sink));
      expected_round = generator_->rounds_run();
    }

    if (cursor >= records.size() ||
        records[cursor].type != WalRecordType::kRoundCommit) {
      return Status::Corruption(
          "WAL replay divergence: round ended without a commit record");
    }
    const WalRecord& commit = records[cursor];
    if (commit.round != expected_round) {
      return Status::Corruption("WAL replay divergence: round commit for " +
                                std::to_string(commit.round) + ", expected " +
                                std::to_string(expected_round));
    }
    if (commit.events_applied != simulator_->events_applied() ||
        commit.collections != simulator_->heap().stats().collections ||
        commit.pointer_overwrites !=
            simulator_->heap().stats().pointer_overwrites) {
      return Status::Corruption(
          "WAL replay divergence: round fingerprint mismatch");
    }
    ++cursor;
    ++stats_.rounds_replayed;
  }
  return Status::Ok();
}

Status DurableSimulation::CommitRound(uint64_t round) {
  ODBGC_RETURN_IF_ERROR(wal_->Append(WalRecord::RoundCommit(
      round, simulator_->events_applied(),
      simulator_->heap().stats().collections,
      simulator_->heap().stats().pointer_overwrites)));
  return wal_->Sync();
}

Status DurableSimulation::Checkpoint(uint64_t round) {
  ODBGC_RETURN_IF_ERROR(manager_.WriteSnapshot(round, *simulator_,
                                               *generator_));
  auto writer = WalWriter::Create(manager_.WalPath(round));
  ODBGC_RETURN_IF_ERROR(writer.status());
  wal_ = std::make_unique<WalWriter>(std::move(writer).value());
  base_round_ = round;
  last_checkpoint_round_ = round;
  ++stats_.checkpoints_written;
  if (SimObserver* observer = config_.heap.observer) {
    CheckpointEvent event;
    event.round = round;
    observer->OnCheckpoint(event);
  }
  return manager_.GarbageCollect();
}

Status DurableSimulation::Run() {
  TeeSink tee(simulator_.get(), wal_.get());

  if (fresh_ && !build_done_) {
    ODBGC_RETURN_IF_ERROR(generator_->BuildInitialDatabase(&tee));
    build_done_ = true;
    if (config_.warm_start) {
      simulator_->ResetMeasurementForWarmStart();
      tee.Rebase();
    }
    ODBGC_RETURN_IF_ERROR(CommitRound(0));
  }

  while (!generator_->Done()) {
    ODBGC_RETURN_IF_ERROR(generator_->RunRound(&tee));
    const uint64_t round = generator_->rounds_run();
    ODBGC_RETURN_IF_ERROR(CommitRound(round));
    if (config_.checkpoint_every_rounds != 0 &&
        round >= last_checkpoint_round_ + config_.checkpoint_every_rounds) {
      ODBGC_RETURN_IF_ERROR(Checkpoint(round));
      // A new segment means a new writer; re-point the sink.
      tee = TeeSink(simulator_.get(), wal_.get());
    }
  }
  return Status::Ok();
}

Result<SimulationResult> RunDurableSimulation(const SimulationConfig& config) {
  auto engine = DurableSimulation::Open(config);
  ODBGC_RETURN_IF_ERROR(engine.status());
  ODBGC_RETURN_IF_ERROR((*engine)->Run());
  return (*engine)->Finish();
}

Result<Experiment> RunExperimentDurable(const ExperimentSpec& spec) {
  if (spec.base.wal_dir.empty()) {
    return Status::InvalidArgument(
        "durable experiment requires spec.base.wal_dir");
  }
  const std::string root = spec.base.wal_dir;
  return RunExperimentWith(
      spec, [root](const SimulationConfig& config) -> Result<SimulationResult> {
        SimulationConfig run_config = config;
        // Key the run's directory on the policy's registry name (which for
        // the built-ins equals PolicyName(kind), preserving existing trees).
        const std::string policy = config.heap.policy_name.empty()
                                       ? PolicyName(config.heap.policy)
                                       : config.heap.policy_name;
        run_config.wal_dir =
            root + "/" + policy + "-s" + std::to_string(config.seed);
        return RunDurableSimulation(run_config);
      });
}

}  // namespace odbgc
