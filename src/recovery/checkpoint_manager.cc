#include "recovery/checkpoint_manager.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "util/crc32.h"
#include "util/serde.h"

namespace odbgc {

namespace {

constexpr char kSnapshotPrefix[] = "ckpt-";
constexpr char kSnapshotSuffix[] = ".odbc";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".odbl";

/// Parses `<prefix><round><suffix>` filenames; false on any other shape.
bool ParseRound(const std::string& name, const char* prefix,
                const char* suffix, uint64_t* round) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *round = value;
  return true;
}

Result<std::vector<uint64_t>> ListRounds(const std::string& dir,
                                         const char* prefix,
                                         const char* suffix) {
  std::vector<uint64_t> rounds;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list durability directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    uint64_t round = 0;
    if (ParseRound(entry.path().filename().string(), prefix, suffix, &round)) {
      rounds.push_back(round);
    }
  }
  std::sort(rounds.begin(), rounds.end());
  return rounds;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep < 1 ? 1 : keep) {}

Status CheckpointManager::Init() const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create durability directory " + dir_ +
                           ": " + ec.message());
  }
  return Status::Ok();
}

std::string CheckpointManager::SnapshotPath(uint64_t round) const {
  return dir_ + "/" + kSnapshotPrefix + std::to_string(round) +
         kSnapshotSuffix;
}

std::string CheckpointManager::WalPath(uint64_t round) const {
  return dir_ + "/" + kWalPrefix + std::to_string(round) + kWalSuffix;
}

Result<std::vector<uint64_t>> CheckpointManager::ListSnapshots() const {
  return ListRounds(dir_, kSnapshotPrefix, kSnapshotSuffix);
}

Status CheckpointManager::WriteSnapshot(
    uint64_t round, const Simulator& simulator,
    const WorkloadGenerator& generator) const {
  std::ostringstream payload_out;
  PutVarint(payload_out, round);
  // Run identity, cross-checked on load: resuming under a different seed
  // or policy would silently produce a franken-run.
  PutVarint(payload_out, simulator.heap().options().seed);
  PutU8(payload_out,
        static_cast<uint8_t>(simulator.heap().options().policy));
  ODBGC_RETURN_IF_ERROR(simulator.SaveCheckpointState(payload_out));
  generator.SaveState(payload_out);
  if (!payload_out.good()) {
    return Status::IoError("checkpoint serialization failed");
  }
  const std::string payload = payload_out.str();

  const std::string final_path = SnapshotPath(round);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot create checkpoint: " + tmp_path);
    }
    PutU32(out, kCheckpointMagic);
    PutU16(out, kCheckpointVersion);
    PutU16(out, 0);  // Reserved.
    PutU64(out, payload.size());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    PutU32(out, Crc32(payload));
    out.flush();
    if (!out.good()) {
      return Status::IoError("checkpoint write failed: " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("cannot publish checkpoint " + final_path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Result<CheckpointManager::LoadedSnapshot> CheckpointManager::LoadSnapshot(
    uint64_t round, const SimulationConfig& config) const {
  const std::string path = SnapshotPath(round);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no checkpoint: " + path);
  }

  auto magic = GetU32(in);
  if (!magic.ok()) return Status::Corruption("checkpoint header truncated");
  if (*magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  auto version = GetU16(in);
  if (!version.ok()) return Status::Corruption("checkpoint header truncated");
  if (*version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(*version));
  }
  auto reserved = GetU16(in);
  if (!reserved.ok()) return Status::Corruption("checkpoint header truncated");
  auto payload_size = GetU64(in);
  if (!payload_size.ok()) {
    return Status::Corruption("checkpoint header truncated");
  }
  // The store image alone can be megabytes; only reject sizes that cannot
  // be a real snapshot.
  if (*payload_size > (uint64_t{1} << 34)) {
    return Status::Corruption("checkpoint payload size implausible");
  }

  std::string payload(*payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (in.gcount() != static_cast<std::streamsize>(payload.size())) {
    return Status::Corruption("checkpoint payload truncated");
  }
  auto expected_crc = GetU32(in);
  if (!expected_crc.ok()) return Status::Corruption("checkpoint CRC missing");
  if (Crc32(payload) != *expected_crc) {
    return Status::Corruption("checkpoint CRC mismatch");
  }

  std::istringstream payload_in(payload);
  auto stored_round = GetVarint(payload_in);
  ODBGC_RETURN_IF_ERROR(stored_round.status());
  if (*stored_round != round) {
    return Status::Corruption("checkpoint round does not match its filename");
  }
  auto stored_seed = GetVarint(payload_in);
  ODBGC_RETURN_IF_ERROR(stored_seed.status());
  if (*stored_seed != config.seed) {
    return Status::Corruption("checkpoint seed does not match configuration");
  }
  auto stored_policy = GetU8(payload_in);
  ODBGC_RETURN_IF_ERROR(stored_policy.status());
  if (*stored_policy != static_cast<uint8_t>(config.heap.policy)) {
    return Status::Corruption(
        "checkpoint policy does not match configuration");
  }

  LoadedSnapshot loaded;
  loaded.round = round;
  auto simulator = Simulator::FromCheckpoint(config, payload_in);
  ODBGC_RETURN_IF_ERROR(simulator.status());
  loaded.simulator = std::move(simulator).value();
  loaded.generator =
      std::make_unique<WorkloadGenerator>(config.workload, config.seed);
  ODBGC_RETURN_IF_ERROR(loaded.generator->LoadState(payload_in));
  return loaded;
}

Result<CheckpointManager::LoadedSnapshot> CheckpointManager::LoadNewestValid(
    const SimulationConfig& config) const {
  auto rounds = ListSnapshots();
  ODBGC_RETURN_IF_ERROR(rounds.status());
  for (auto it = rounds->rbegin(); it != rounds->rend(); ++it) {
    auto loaded = LoadSnapshot(*it, config);
    if (loaded.ok()) return loaded;
    // A corrupt newest snapshot (crash mid-rename is impossible, but bit
    // rot is not) falls back to an older one.
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

Status CheckpointManager::GarbageCollect() const {
  auto rounds = ListSnapshots();
  ODBGC_RETURN_IF_ERROR(rounds.status());

  std::set<uint64_t> kept;
  for (auto it = rounds->rbegin();
       it != rounds->rend() && kept.size() < static_cast<size_t>(keep_);
       ++it) {
    kept.insert(*it);
  }
  const uint64_t oldest_kept = kept.empty() ? 0 : *kept.begin();

  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) {
    return Status::IoError("cannot list durability directory " + dir_ + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    bool remove = false;
    uint64_t round = 0;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Leftover from an interrupted atomic write.
      remove = true;
    } else if (ParseRound(name, kSnapshotPrefix, kSnapshotSuffix, &round)) {
      remove = kept.count(round) == 0;
    } else if (ParseRound(name, kWalPrefix, kWalSuffix, &round)) {
      // A WAL segment older than every kept snapshot can never be
      // replayed again. (With no snapshots yet, wal-0 is the whole run.)
      remove = !kept.empty() && round < oldest_kept;
    }
    if (remove) {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
      if (remove_ec) {
        return Status::IoError("cannot remove " + entry.path().string() +
                               ": " + remove_ec.message());
      }
    }
  }
  return Status::Ok();
}

}  // namespace odbgc
