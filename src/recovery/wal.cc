#include "recovery/wal.h"

#include <filesystem>
#include <sstream>

#include "util/crc32.h"
#include "util/serde.h"

namespace odbgc {

namespace {

Status WritePayload(std::ostream& out, const WalRecord& record) {
  PutU8(out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kEvent:
      return WriteEventBody(out, record.event);
    case WalRecordType::kRoundCommit:
      PutVarint(out, record.round);
      PutVarint(out, record.events_applied);
      PutVarint(out, record.collections);
      PutVarint(out, record.pointer_overwrites);
      return Status::Ok();
    case WalRecordType::kCollection:
      PutVarint(out, record.decision_index);
      PutVarint(out, record.victim == kInvalidPartition
                         ? 0
                         : static_cast<uint64_t>(record.victim) + 1);
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown WAL record type");
}

Result<WalRecord> ParsePayload(std::istream& in) {
  auto type = GetU8(in);
  ODBGC_RETURN_IF_ERROR(type.status());
  WalRecord record;
  record.type = static_cast<WalRecordType>(*type);
  switch (record.type) {
    case WalRecordType::kEvent: {
      auto event = ReadEventBody(in);
      ODBGC_RETURN_IF_ERROR(event.status());
      record.event = *event;
      return record;
    }
    case WalRecordType::kRoundCommit: {
      auto get = [&in](uint64_t* out_value) -> Status {
        auto v = GetVarint(in);
        ODBGC_RETURN_IF_ERROR(v.status());
        *out_value = *v;
        return Status::Ok();
      };
      ODBGC_RETURN_IF_ERROR(get(&record.round));
      ODBGC_RETURN_IF_ERROR(get(&record.events_applied));
      ODBGC_RETURN_IF_ERROR(get(&record.collections));
      ODBGC_RETURN_IF_ERROR(get(&record.pointer_overwrites));
      return record;
    }
    case WalRecordType::kCollection: {
      auto index = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(index.status());
      record.decision_index = *index;
      auto victim = GetVarint(in);
      ODBGC_RETURN_IF_ERROR(victim.status());
      record.victim = *victim == 0 ? kInvalidPartition
                                   : static_cast<PartitionId>(*victim - 1);
      return record;
    }
  }
  return Status::Corruption("unknown WAL record type " +
                            std::to_string(*type));
}

/// Reads records after the header. In lenient mode a damaged tail ends
/// parsing (recording nothing for the bad suffix); in strict mode it is
/// Corruption.
Result<WalContents> ReadRecords(std::ifstream& in, uint64_t file_size,
                                bool lenient) {
  WalContents contents;
  contents.header_end_offset = 8;
  uint64_t offset = contents.header_end_offset;
  while (offset < file_size) {
    // A complete frame needs 8 bytes of framing plus the payload.
    if (file_size - offset < 8) {
      if (lenient) break;
      return Status::Corruption("WAL truncated inside record framing");
    }
    auto length = GetU32(in);
    ODBGC_RETURN_IF_ERROR(length.status());
    auto expected_crc = GetU32(in);
    ODBGC_RETURN_IF_ERROR(expected_crc.status());
    if (*length == 0 || *length > (1u << 24)) {
      if (lenient) break;
      return Status::Corruption("WAL record length implausible");
    }
    if (file_size - offset - 8 < *length) {
      if (lenient) break;
      return Status::Corruption("WAL truncated inside record payload");
    }
    std::string payload(*length, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(*length));
    if (in.gcount() != static_cast<std::streamsize>(*length)) {
      if (lenient) break;
      return Status::Corruption("WAL truncated inside record payload");
    }
    if (Crc32(payload) != *expected_crc) {
      if (lenient) break;
      return Status::Corruption("WAL record CRC mismatch");
    }
    std::istringstream payload_in(payload);
    auto record = ParsePayload(payload_in);
    if (!record.ok()) {
      if (lenient) break;
      return record.status();
    }
    offset += 8 + *length;
    contents.records.push_back(*record);
    contents.record_end_offsets.push_back(offset);
  }
  return contents;
}

Result<WalContents> ReadWalImpl(const std::string& path, bool lenient) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open WAL: " + path);
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat WAL: " + path);

  auto magic = GetU32(in);
  if (!magic.ok()) return Status::Corruption("WAL header truncated");
  if (*magic != kWalMagic) return Status::Corruption("bad WAL magic");
  auto version = GetU16(in);
  if (!version.ok()) return Status::Corruption("WAL header truncated");
  if (*version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(*version));
  }
  auto reserved = GetU16(in);
  if (!reserved.ok()) return Status::Corruption("WAL header truncated");

  return ReadRecords(in, file_size, lenient);
}

}  // namespace

WalRecord WalRecord::Event(const TraceEvent& event) {
  WalRecord record;
  record.type = WalRecordType::kEvent;
  record.event = event;
  return record;
}

WalRecord WalRecord::RoundCommit(uint64_t round, uint64_t events_applied,
                                 uint64_t collections,
                                 uint64_t pointer_overwrites) {
  WalRecord record;
  record.type = WalRecordType::kRoundCommit;
  record.round = round;
  record.events_applied = events_applied;
  record.collections = collections;
  record.pointer_overwrites = pointer_overwrites;
  return record;
}

WalRecord WalRecord::Collection(uint64_t decision_index, PartitionId victim) {
  WalRecord record;
  record.type = WalRecordType::kCollection;
  record.decision_index = decision_index;
  record.victim = victim;
  return record;
}

Result<WalWriter> WalWriter::Create(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot create WAL: " + path);
  PutU32(out, kWalMagic);
  PutU16(out, kWalVersion);
  PutU16(out, 0);  // Reserved.
  out.flush();
  if (!out.good()) return Status::IoError("WAL header write failed: " + path);
  return WalWriter(std::move(out));
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.is_open()) return Status::IoError("cannot open WAL: " + path);
  return WalWriter(std::move(out));
}

Status WalWriter::Append(const WalRecord& record) {
  std::ostringstream payload_out;
  ODBGC_RETURN_IF_ERROR(WritePayload(payload_out, record));
  const std::string payload = payload_out.str();
  PutU32(out_, static_cast<uint32_t>(payload.size()));
  PutU32(out_, Crc32(payload));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_.good()) return Status::IoError("WAL append failed");
  ++records_appended_;
  return Status::Ok();
}

Status WalWriter::Sync() {
  out_.flush();
  return out_.good() ? Status::Ok() : Status::IoError("WAL sync failed");
}

Result<WalContents> ReadWal(const std::string& path) {
  return ReadWalImpl(path, /*lenient=*/false);
}

Result<WalContents> RecoverWal(const std::string& path) {
  auto contents = ReadWalImpl(path, /*lenient=*/true);
  ODBGC_RETURN_IF_ERROR(contents.status());
  const uint64_t keep = contents->record_end_offsets.empty()
                            ? contents->header_end_offset
                            : contents->record_end_offsets.back();
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat WAL: " + path);
  if (file_size > keep) {
    ODBGC_RETURN_IF_ERROR(TruncateWal(path, keep));
  }
  return contents;
}

Status TruncateWal(const std::string& path, uint64_t offset) {
  std::error_code ec;
  std::filesystem::resize_file(path, offset, ec);
  if (ec) {
    return Status::IoError("cannot truncate WAL " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace odbgc
