#include "observe/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace odbgc {

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::UInt(uint64_t value) {
  Json j;
  j.kind_ = Kind::kUInt;
  j.uint_ = value;
  return j;
}

Json Json::Int(int64_t value) {
  if (value >= 0) return UInt(static_cast<uint64_t>(value));
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::Double(double value) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = value;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Arr() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Obj() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

uint64_t Json::uint_value() const {
  switch (kind_) {
    case Kind::kUInt: return uint_;
    case Kind::kInt: return static_cast<uint64_t>(int_);
    case Kind::kDouble: return static_cast<uint64_t>(double_);
    default: return 0;
  }
}

int64_t Json::int_value() const {
  switch (kind_) {
    case Kind::kUInt: return static_cast<int64_t>(uint_);
    case Kind::kInt: return int_;
    case Kind::kDouble: return static_cast<int64_t>(double_);
    default: return 0;
  }
}

double Json::double_value() const {
  switch (kind_) {
    case Kind::kUInt: return static_cast<double>(uint_);
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kDouble: return double_;
    default: return 0.0;
  }
}

void Json::Set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) return;
  object_[key] = std::move(value);
}

const Json* Json::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::Push(Json value) {
  if (kind_ != Kind::kArray) return;
  array_.push_back(std::move(value));
}

bool operator==(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    // Numeric equality across representations; exact for integers.
    if (a.kind_ == Json::Kind::kDouble || b.kind_ == Json::Kind::kDouble) {
      return a.double_value() == b.double_value();
    }
    // kInt holds strictly negative values, kUInt non-negative ones, so
    // mixed kinds are never equal.
    if (a.kind_ == Json::Kind::kInt && b.kind_ == Json::Kind::kInt) {
      return a.int_ == b.int_;
    }
    if (a.kind_ == Json::Kind::kInt || b.kind_ == Json::Kind::kInt) {
      return false;
    }
    return a.uint_ == b.uint_;
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.array_ == b.array_;
    case Json::Kind::kObject: return a.object_ == b.object_;
    default: return false;  // Numeric kinds handled above.
  }
}

std::string CanonicalDoubleString(double value) {
  if (value == 0.0) return std::signbit(value) ? "-0" : "0";
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through.
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kUInt:
      *out += std::to_string(uint_);
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble:
      *out += CanonicalDoubleString(double_);
      return;
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(out, indent + 1);
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        AppendIndent(out, indent + 1);
        AppendEscaped(out, key);
        *out += ": ";
        value.DumpTo(out, indent + 1);
        if (++i < object_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, indent);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

// ------------------------------------------------------------- Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Run() {
    auto value = ParseValue();
    ODBGC_RETURN_IF_ERROR(value.status());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      ODBGC_RETURN_IF_ERROR(s.status());
      return Json::Str(std::move(s).value());
    }
    if (ConsumeLiteral("null")) return Json::Null();
    if (ConsumeLiteral("true")) return Json::Bool(true);
    if (ConsumeLiteral("false")) return Json::Bool(false);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json object = Json::Obj();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      ODBGC_RETURN_IF_ERROR(key.status());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      auto value = ParseValue();
      ODBGC_RETURN_IF_ERROR(value.status());
      if (object.Get(*key) != nullptr) {
        return Fail("duplicate object key \"" + *key + "\"");
      }
      object.Set(*key, std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json array = Json::Arr();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      auto value = ParseValue();
      ODBGC_RETURN_IF_ERROR(value.status());
      array.Push(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("invalid hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (no surrogate-pair handling:
          // manifests only emit \u for control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    const bool negative = Consume('-');
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Fail("malformed number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json::Int(v);
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json::UInt(v);
        }
      }
      // Out-of-range integer: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("malformed number \"" + token + "\"");
    }
    return Json::Double(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace odbgc
