#ifndef ODBGC_OBSERVE_JSON_H_
#define ODBGC_OBSERVE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace odbgc {

/// A minimal JSON document model with one defining property: **canonical
/// emission**. Dump() of equal documents is byte-identical — object keys
/// sort lexicographically (std::map), layout is fixed (2-space indent,
/// LF), and numbers print in shortest-round-trip form — so run manifests
/// can be compared with string equality and diffed across crash/resume.
///
/// Numbers: integers without sign print as unsigned decimals; doubles use
/// the shortest "%.Ng" string that strtod()s back to the same bits. An
/// integral double (2.0) therefore prints as "2" and re-parses as an
/// integer — a type flip that is invisible to Dump(), keeping
/// emit -> parse -> re-emit byte-stable.
class Json {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kUInt,
    kInt,  ///< Negative integers only; non-negative parse as kUInt.
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json UInt(uint64_t value);
  static Json Int(int64_t value);
  static Json Double(double value);
  static Json Str(std::string value);
  static Json Arr();
  static Json Obj();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kUInt || kind_ == Kind::kInt ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  /// Numeric accessors convert between the three numeric kinds.
  uint64_t uint_value() const;
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Object& object() const { return object_; }
  Object& object() { return object_; }

  /// Object helpers. Set replaces; Get returns nullptr when absent (or
  /// when this is not an object).
  void Set(const std::string& key, Json value);
  const Json* Get(const std::string& key) const;
  /// Array helper.
  void Push(Json value);

  /// Canonical serialization (see class comment). Ends with a newline.
  std::string Dump() const;

  /// Strict parser for the subset Dump() emits plus ordinary JSON
  /// freedoms (any whitespace, any key order, escapes). Rejects trailing
  /// garbage, duplicate keys, and non-finite numbers.
  static Result<Json> Parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  uint64_t uint_ = 0;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Formats a finite double in shortest-round-trip form ("0.1", "2", not
/// "2.0"). Exposed for tests.
std::string CanonicalDoubleString(double value);

}  // namespace odbgc

#endif  // ODBGC_OBSERVE_JSON_H_
