#include "observe/manifest.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "storage/device_registry.h"
#include "util/crc32.h"

namespace odbgc {

namespace {

Json TimeSeriesJson(const TimeSeries& series) {
  Json points = Json::Arr();
  for (const TimeSeries::Point& point : series.points()) {
    Json pair = Json::Arr();
    pair.Push(Json::Double(point.x));
    pair.Push(Json::Double(point.y));
    points.Push(std::move(pair));
  }
  return points;
}

/// The result-determining configuration fields, as a canonical document.
/// Durability knobs (wal_dir, checkpoint_every_rounds), wall-clock
/// profiling, the observer, and the per-run seed are deliberately absent:
/// none of them changes what the run computes (see header contract).
/// Enums with stable string names use them; the rest serialize as their
/// numeric values.
Json ConfigJson(const SimulationConfig& config) {
  const HeapOptions& heap = config.heap;

  Json store = Json::Obj();
  store.Set("page_size", Json::UInt(heap.store.page_size));
  store.Set("pages_per_partition", Json::UInt(heap.store.pages_per_partition));
  store.Set("reserve_empty_partition",
            Json::Bool(heap.store.reserve_empty_partition));
  store.Set("placement", Json::UInt(static_cast<uint64_t>(heap.store.placement)));

  Json disk_cost = Json::Obj();
  disk_cost.Set("seek_ms", Json::Double(heap.disk_cost.seek_ms));
  disk_cost.Set("rotational_ms", Json::Double(heap.disk_cost.rotational_ms));
  disk_cost.Set("transfer_ms_per_page",
                Json::Double(heap.disk_cost.transfer_ms_per_page));

  Json ssd_cost = Json::Obj();
  ssd_cost.Set("pages_per_block", Json::UInt(heap.ssd_cost.pages_per_block));
  ssd_cost.Set("spare_blocks", Json::UInt(heap.ssd_cost.spare_blocks));
  ssd_cost.Set("read_ms_per_page", Json::Double(heap.ssd_cost.read_ms_per_page));
  ssd_cost.Set("program_ms_per_page",
               Json::Double(heap.ssd_cost.program_ms_per_page));
  ssd_cost.Set("erase_ms_per_block",
               Json::Double(heap.ssd_cost.erase_ms_per_block));

  Json heap_json = Json::Obj();
  heap_json.Set("store", std::move(store));
  heap_json.Set("buffer_pages", Json::UInt(heap.buffer_pages));
  // The registry *name* of the backend, never the full spec: a "file"
  // spec's path is per-run (the runner uniquifies it), and config digests
  // must stay identical across the runs of one experiment. The full spec
  // is recorded in the manifest's `measured` section instead.
  heap_json.Set("device", Json::Str(heap.device_spec.empty()
                                        ? DeviceKindName(heap.device)
                                        : DeviceSpecName(heap.device_spec)));
  heap_json.Set("disk_cost", std::move(disk_cost));
  heap_json.Set("ssd_cost", std::move(ssd_cost));
  heap_json.Set("replacement",
                Json::Str(ReplacementPolicyName(heap.replacement)));
  heap_json.Set("policy_kind", Json::Str(PolicyName(heap.policy)));
  heap_json.Set("policy_name", Json::Str(heap.policy_name));
  heap_json.Set("trigger", Json::UInt(static_cast<uint64_t>(heap.trigger)));
  heap_json.Set("overwrite_trigger", Json::UInt(heap.overwrite_trigger));
  heap_json.Set("allocation_trigger_bytes",
                Json::UInt(heap.allocation_trigger_bytes));
  heap_json.Set("partitions_per_collection",
                Json::UInt(heap.partitions_per_collection));
  heap_json.Set("traversal", Json::UInt(static_cast<uint64_t>(heap.traversal)));
  heap_json.Set("full_collection_interval",
                Json::UInt(heap.full_collection_interval));
  heap_json.Set("weights", Json::UInt(static_cast<uint64_t>(heap.weights)));
  heap_json.Set("barrier", Json::Str(BarrierModeName(heap.barrier)));
  heap_json.Set("card_size", Json::UInt(heap.card_size));

  const WorkloadConfig& w = config.workload;
  Json workload = Json::Obj();
  workload.Set("target_live_bytes", Json::UInt(w.target_live_bytes));
  workload.Set("total_alloc_bytes", Json::UInt(w.total_alloc_bytes));
  workload.Set("min_object_size", Json::UInt(w.min_object_size));
  workload.Set("max_object_size", Json::UInt(w.max_object_size));
  workload.Set("slots_per_object", Json::UInt(w.slots_per_object));
  workload.Set("large_object_size", Json::UInt(w.large_object_size));
  workload.Set("large_space_fraction", Json::Double(w.large_space_fraction));
  workload.Set("dense_edge_prob", Json::Double(w.dense_edge_prob));
  workload.Set("dense_local_fraction", Json::Double(w.dense_local_fraction));
  workload.Set("dense_window", Json::UInt(w.dense_window));
  workload.Set("tree_nodes_min", Json::UInt(w.tree_nodes_min));
  workload.Set("tree_nodes_max", Json::UInt(w.tree_nodes_max));
  workload.Set("grow_nodes_min", Json::UInt(w.grow_nodes_min));
  workload.Set("grow_nodes_max", Json::UInt(w.grow_nodes_max));
  workload.Set("p_depth_first", Json::Double(w.p_depth_first));
  workload.Set("p_breadth_first", Json::Double(w.p_breadth_first));
  workload.Set("edge_skip_prob", Json::Double(w.edge_skip_prob));
  workload.Set("visit_modify_prob", Json::Double(w.visit_modify_prob));
  workload.Set("deletions_per_round", Json::Double(w.deletions_per_round));
  workload.Set("max_rounds", Json::UInt(w.max_rounds));

  Json out = Json::Obj();
  out.Set("heap", std::move(heap_json));
  out.Set("workload", std::move(workload));
  out.Set("snapshot_interval", Json::UInt(config.snapshot_interval));
  out.Set("census_at_snapshots", Json::Bool(config.census_at_snapshots));
  out.Set("warm_start", Json::Bool(config.warm_start));
  // Concurrency knobs are recorded for provenance but are an experiment
  // axis (like policy and seed): ConfigDigest erases them, because the
  // aggregate result is thread-count-invariant by the equivalence
  // contract (sim/concurrent_simulator.h).
  out.Set("mutator_threads", Json::UInt(config.mutator_threads));
  out.Set("trace_shards", Json::UInt(config.trace_shards));
  return out;
}

Json ResultJson(const SimulationResult& result) {
  Json out = Json::Obj();
  out.Set("policy_kind", Json::Str(PolicyName(result.policy)));
  out.Set("policy", Json::Str(result.policy_name));
  out.Set("seed", Json::UInt(result.seed));
  out.Set("device", Json::Str(DeviceKindName(result.device)));
  out.Set("replacement", Json::Str(ReplacementPolicyName(result.replacement)));
  out.Set("app_events", Json::UInt(result.app_events));
  out.Set("app_io", Json::UInt(result.app_io));
  out.Set("gc_io", Json::UInt(result.gc_io));
  out.Set("max_storage_bytes", Json::UInt(result.max_storage_bytes));
  out.Set("max_partitions", Json::UInt(result.max_partitions));
  out.Set("final_partitions", Json::UInt(result.final_partitions));
  out.Set("collections", Json::UInt(result.collections));
  out.Set("garbage_reclaimed_bytes", Json::UInt(result.garbage_reclaimed_bytes));
  out.Set("live_bytes_copied", Json::UInt(result.live_bytes_copied));
  out.Set("unreclaimed_garbage_bytes",
          Json::UInt(result.unreclaimed_garbage_bytes));
  out.Set("final_live_bytes", Json::UInt(result.final_live_bytes));
  out.Set("remset_entries", Json::UInt(result.remset_entries));
  out.Set("bytes_allocated", Json::UInt(result.bytes_allocated));
  out.Set("pointer_overwrites", Json::UInt(result.pointer_overwrites));
  out.Set("estimated_device_time_ms",
          Json::Double(result.estimated_device_time_ms));

  Json heap_stats = Json::Obj();
  const HeapStats& h = result.heap_stats;
  heap_stats.Set("collections", Json::UInt(h.collections));
  heap_stats.Set("full_collections", Json::UInt(h.full_collections));
  heap_stats.Set("pointer_stores", Json::UInt(h.pointer_stores));
  heap_stats.Set("pointer_overwrites", Json::UInt(h.pointer_overwrites));
  heap_stats.Set("objects_allocated", Json::UInt(h.objects_allocated));
  heap_stats.Set("bytes_allocated", Json::UInt(h.bytes_allocated));
  heap_stats.Set("garbage_bytes_reclaimed",
                 Json::UInt(h.garbage_bytes_reclaimed));
  heap_stats.Set("garbage_objects_reclaimed",
                 Json::UInt(h.garbage_objects_reclaimed));
  heap_stats.Set("live_bytes_copied", Json::UInt(h.live_bytes_copied));
  heap_stats.Set("live_objects_copied", Json::UInt(h.live_objects_copied));
  heap_stats.Set("max_total_bytes", Json::UInt(h.max_total_bytes));
  heap_stats.Set("max_partitions", Json::UInt(h.max_partitions));
  out.Set("heap_stats", std::move(heap_stats));

  Json buffer_stats = Json::Obj();
  const BufferStats& b = result.buffer_stats;
  buffer_stats.Set("hits", Json::UInt(b.hits));
  buffer_stats.Set("misses", Json::UInt(b.misses));
  buffer_stats.Set("reads_app", Json::UInt(b.reads_app));
  buffer_stats.Set("reads_gc", Json::UInt(b.reads_gc));
  buffer_stats.Set("writes_app", Json::UInt(b.writes_app));
  buffer_stats.Set("writes_gc", Json::UInt(b.writes_gc));
  out.Set("buffer_stats", std::move(buffer_stats));

  Json disk_stats = Json::Obj();
  const DiskStats& d = result.disk_stats;
  disk_stats.Set("page_reads", Json::UInt(d.page_reads));
  disk_stats.Set("page_writes", Json::UInt(d.page_writes));
  disk_stats.Set("sequential_transfers", Json::UInt(d.sequential_transfers));
  disk_stats.Set("random_transfers", Json::UInt(d.random_transfers));
  out.Set("disk_stats", std::move(disk_stats));

  Json metrics = Json::Obj();
  for (const MetricSample& sample : result.metrics) {
    Json entry = Json::Obj();
    entry.Set("application", Json::UInt(sample.application));
    entry.Set("collector", Json::UInt(sample.collector));
    metrics.Set(sample.name, std::move(entry));
  }
  out.Set("metrics", std::move(metrics));

  out.Set("unreclaimed_garbage_kb", TimeSeriesJson(result.unreclaimed_garbage_kb));
  out.Set("database_size_kb", TimeSeriesJson(result.database_size_kb));
  return out;
}

}  // namespace

uint32_t ConfigDigest(const SimulationConfig& config) {
  // The policy is an experiment axis like the seed: exclude both so every
  // run of one experiment shares a digest and cross-policy tables and
  // diffs can verify comparability.
  Json json = ConfigJson(config);
  Json& heap = json.object().at("heap");
  heap.object().erase("policy_kind");
  heap.object().erase("policy_name");
  // Concurrency is an axis too: a 4-thread run must remain comparable
  // (same digest) with the serial run it is verified against.
  json.object().erase("mutator_threads");
  json.object().erase("trace_shards");
  return Crc32(json.Dump());
}

Json BuildManifest(const SimulationConfig& config,
                   const SimulationResult& result,
                   const ManifestServiceInfo* service) {
  Json manifest = Json::Obj();
  manifest.Set("schema_version", Json::UInt(kManifestSchemaVersion));
  manifest.Set("config", ConfigJson(config));
  manifest.Set("config_digest", Json::UInt(ConfigDigest(config)));
  manifest.Set("policy", Json::Str(result.policy_name));
  manifest.Set("seed", Json::UInt(result.seed));
  manifest.Set("result", ResultJson(result));
  // Measured wall-clock I/O, only for backends that perform real system
  // calls. A top-level sibling of `result` — never inside it — so the
  // deterministic surface (config, digest, result) stays byte-identical
  // across machines and crash/resume; in-memory manifests are unchanged.
  if (result.measured.measured) {
    const MeasuredIoStats& m = result.measured;
    Json measured = Json::Obj();
    measured.Set("device_spec", Json::Str(config.heap.device_spec));
    measured.Set("reads", Json::UInt(m.reads));
    measured.Set("writes", Json::UInt(m.writes));
    measured.Set("fsyncs", Json::UInt(m.fsyncs));
    measured.Set("batches", Json::UInt(m.batches));
    measured.Set("readahead_hits", Json::UInt(m.readahead_hits));
    measured.Set("readahead_misses", Json::UInt(m.readahead_misses));
    measured.Set("prefetched_pages", Json::UInt(m.prefetched_pages));
    measured.Set("wall_ms", Json::Double(m.wall_ms));
    manifest.Set("measured", std::move(measured));
  }
  // End-to-end run wall time, present only when the experiment runner's
  // spec opted in (ExperimentSpec::record_timing). Same placement rule as
  // `measured`: a top-level sibling of `result`, excluded from the config
  // digest, so default manifests stay byte-identical while same-digest
  // manifests from runs at different thread counts feed odbgc-report's
  // scaling table.
  if (result.run_wall_seconds > 0) {
    Json timing = Json::Obj();
    timing.Set("wall_seconds", Json::Double(result.run_wall_seconds));
    manifest.Set("timing", std::move(timing));
  }
  // Per-tenant service telemetry, present only for manifests a
  // HeapService wrote. Same placement rule as `measured`/`timing`: a
  // top-level sibling of `result`, excluded from the digest, so a
  // tenant's deterministic surface stays comparable with a standalone
  // run's while odbgc-report's tenants table reads the occupancy story.
  if (service != nullptr) {
    Json section = Json::Obj();
    section.Set("peak_resident_frames",
                Json::UInt(service->peak_resident_frames));
    section.Set("admission_stalls", Json::UInt(service->admission_stalls));
    section.Set("shared_pool", Json::Bool(service->shared_pool));
    manifest.Set("service", std::move(section));
  }
  return manifest;
}

namespace {

Status Missing(const std::string& path, const char* kind) {
  return Status::InvalidArgument("manifest missing " + std::string(kind) +
                                 " field \"" + path + "\"");
}

Status RequireString(const Json& object, const std::string& key) {
  const Json* field = object.Get(key);
  if (field == nullptr || !field->is_string()) return Missing(key, "string");
  return Status::Ok();
}

Status RequireNumber(const Json& object, const std::string& key) {
  const Json* field = object.Get(key);
  if (field == nullptr || !field->is_number()) return Missing(key, "numeric");
  return Status::Ok();
}

Status RequireObject(const Json& object, const std::string& key) {
  const Json* field = object.Get(key);
  if (field == nullptr || !field->is_object()) return Missing(key, "object");
  return Status::Ok();
}

}  // namespace

Status ValidateManifest(const Json& manifest) {
  if (!manifest.is_object()) {
    return Status::InvalidArgument("manifest is not a JSON object");
  }
  ODBGC_RETURN_IF_ERROR(RequireNumber(manifest, "schema_version"));
  const uint64_t version = manifest.Get("schema_version")->uint_value();
  if (version != kManifestSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported manifest schema_version " + std::to_string(version) +
        " (this binary understands " +
        std::to_string(kManifestSchemaVersion) + ")");
  }
  ODBGC_RETURN_IF_ERROR(RequireObject(manifest, "config"));
  ODBGC_RETURN_IF_ERROR(RequireNumber(manifest, "config_digest"));
  ODBGC_RETURN_IF_ERROR(RequireString(manifest, "policy"));
  ODBGC_RETURN_IF_ERROR(RequireNumber(manifest, "seed"));
  ODBGC_RETURN_IF_ERROR(RequireObject(manifest, "result"));

  const Json& result = *manifest.Get("result");
  for (const char* key :
       {"app_events", "app_io", "gc_io", "max_storage_bytes", "collections",
        "garbage_reclaimed_bytes", "live_bytes_copied",
        "unreclaimed_garbage_bytes", "final_live_bytes", "remset_entries",
        "bytes_allocated", "pointer_overwrites", "estimated_device_time_ms",
        "seed"}) {
    ODBGC_RETURN_IF_ERROR(RequireNumber(result, key));
  }
  ODBGC_RETURN_IF_ERROR(RequireString(result, "policy"));
  ODBGC_RETURN_IF_ERROR(RequireObject(result, "heap_stats"));
  ODBGC_RETURN_IF_ERROR(RequireObject(result, "buffer_stats"));
  ODBGC_RETURN_IF_ERROR(RequireObject(result, "disk_stats"));
  ODBGC_RETURN_IF_ERROR(RequireObject(result, "metrics"));
  const Json* policy = manifest.Get("policy");
  if (policy->string_value() != result.Get("policy")->string_value()) {
    return Status::InvalidArgument(
        "manifest top-level policy does not match result.policy");
  }
  // `measured` is optional (present only for real-I/O backends); when
  // present it must be well-formed.
  const Json* measured = manifest.Get("measured");
  if (measured != nullptr) {
    if (!measured->is_object()) return Missing("measured", "object");
    for (const char* key :
         {"reads", "writes", "fsyncs", "batches", "readahead_hits",
          "readahead_misses", "prefetched_pages", "wall_ms"}) {
      ODBGC_RETURN_IF_ERROR(RequireNumber(*measured, key));
    }
    ODBGC_RETURN_IF_ERROR(RequireString(*measured, "device_spec"));
  }
  // `timing` is optional (present only when the runner recorded wall
  // time); when present it must be well-formed.
  const Json* timing = manifest.Get("timing");
  if (timing != nullptr) {
    if (!timing->is_object()) return Missing("timing", "object");
    ODBGC_RETURN_IF_ERROR(RequireNumber(*timing, "wall_seconds"));
  }
  // `service` is optional (present only for HeapService tenant
  // manifests); when present it must be well-formed.
  const Json* service = manifest.Get("service");
  if (service != nullptr) {
    if (!service->is_object()) return Missing("service", "object");
    for (const char* key : {"peak_resident_frames", "admission_stalls"}) {
      ODBGC_RETURN_IF_ERROR(RequireNumber(*service, key));
    }
    const Json* shared = service->Get("shared_pool");
    if (shared == nullptr || !shared->is_bool()) {
      return Missing("service.shared_pool", "boolean");
    }
  }
  return Status::Ok();
}

std::string ManifestFileName(const std::string& policy_name, uint64_t seed) {
  return policy_name + "-s" + std::to_string(seed) + ".json";
}

Status WriteManifestFile(const std::string& path, const Json& manifest) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create manifest directory " +
                             target.parent_path().string());
    }
  }
  const std::filesystem::path temp(path + ".tmp");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + temp.string());
    out << manifest.Dump();
    out.flush();
    if (!out.good()) return Status::IoError("write failed: " + temp.string());
  }
  std::filesystem::rename(temp, target, ec);
  if (ec) return Status::IoError("cannot rename " + temp.string());
  return Status::Ok();
}

Result<Json> LoadManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open manifest " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = Json::Parse(text.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  ODBGC_RETURN_IF_ERROR(ValidateManifest(*parsed));
  return parsed;
}

}  // namespace odbgc
