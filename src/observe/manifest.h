#ifndef ODBGC_OBSERVE_MANIFEST_H_
#define ODBGC_OBSERVE_MANIFEST_H_

#include <cstdint>
#include <string>

#include "observe/json.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace odbgc {

/// The canonical per-run record: one schema-versioned JSON document per
/// (policy, seed) capturing the configuration that determined the run, a
/// digest of it, and the complete SimulationResult — every counter the
/// paper's tables draw on. Manifests are the interchange format between
/// the experiment runners and `odbgc-report`.
///
/// Determinism contract: the `config`, `config_digest` and `result`
/// sections are a pure function of (result-determining config,
/// SimulationResult). Since simulation results are bit-identical across
/// crash/resume (the recovery engine's replay guarantee) and Json::Dump()
/// is canonical, those sections of a resumed run are **byte-identical** to
/// an uninterrupted one's. Wall-clock measurements never enter them — they
/// flow through SimObserver::OnPhase and the heap's wall_metrics()
/// registry, and, for real-I/O backends ("file"), into the OPTIONAL
/// top-level `measured` section: physical transfer/fsync counts, read-ahead
/// outcomes and wall milliseconds, plus the per-run device spec. `measured`
/// is absent for in-memory backends (their manifests are unchanged) and
/// excluded from the digest. Durability knobs (wal_dir, checkpoint cadence)
/// are likewise excluded from both the config section and the digest.

/// Bumped whenever a field is added, removed, or changes meaning.
inline constexpr uint64_t kManifestSchemaVersion = 1;

/// CRC-32 of the canonical serialization of `config`'s result-determining
/// fields. The two experiment axes — seed and policy identity — are
/// excluded: the digest identifies the *experiment*, whose runs vary
/// exactly those two. Two configs with equal digests produce comparable
/// runs; odbgc-report refuses to diff manifest sets whose digests differ.
uint32_t ConfigDigest(const SimulationConfig& config);

/// Per-tenant service telemetry for manifests written by a HeapService
/// run: the tenant's peak barrier residency, how many rounds the
/// admission watermark stalled it, and whether the fleet shared one
/// physical frame arena. Lands in the OPTIONAL top-level `service`
/// section — same placement rule as `measured`: a sibling of `result`,
/// excluded from the config digest, absent from standalone manifests.
struct ManifestServiceInfo {
  uint64_t peak_resident_frames = 0;
  uint64_t admission_stalls = 0;
  bool shared_pool = false;
};

/// Builds the manifest document for one finished run. `service` non-null
/// adds the optional `service` section (HeapService tenants only).
Json BuildManifest(const SimulationConfig& config,
                   const SimulationResult& result,
                   const ManifestServiceInfo* service = nullptr);

/// Schema check: required keys present with the right types and the
/// schema_version is one this binary understands. InvalidArgument with a
/// field path otherwise.
Status ValidateManifest(const Json& manifest);

/// Canonical manifest file name for a run: "<policy>-s<seed>.json".
std::string ManifestFileName(const std::string& policy_name, uint64_t seed);

/// Writes `manifest` canonically to `path` (parent directories are
/// created). The write goes through a temp file + rename so a crashed
/// writer never leaves a torn manifest behind.
Status WriteManifestFile(const std::string& path, const Json& manifest);

/// Reads and parses a manifest file; also validates the schema.
Result<Json> LoadManifestFile(const std::string& path);

}  // namespace odbgc

#endif  // ODBGC_OBSERVE_MANIFEST_H_
