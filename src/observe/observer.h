#ifndef ODBGC_OBSERVE_OBSERVER_H_
#define ODBGC_OBSERVE_OBSERVER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "odb/object_id.h"

namespace odbgc {

/// Typed run-telemetry events. Every layer of the stack publishes into one
/// SimObserver sink per run: the simulator (run lifecycle, phase timing),
/// the heap (collections), the device (injected faults) and the durable
/// engine (checkpoints). Payload fields other than wall_ns are pure
/// functions of the simulated run, so for a fixed (config, seed) the event
/// sequence a run publishes is deterministic — independent of thread
/// count, machine, and crash/resume *within* the surviving process (a
/// resumed process re-publishes only the portion it re-executes).

/// A run began: identity is the registry policy name plus the seed.
struct RunStartedEvent {
  std::string policy;
  uint64_t seed = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// A run finished (Simulator::Finish): headline results; the full record
/// is the run manifest.
struct RunFinishedEvent {
  std::string policy;
  uint64_t seed = 0;
  uint64_t app_events = 0;
  uint64_t app_io = 0;
  uint64_t gc_io = 0;
  uint64_t garbage_reclaimed_bytes = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// One partition collection completed.
struct CollectionEvent {
  /// Ordinal within the current measurement window (1-based; equals
  /// HeapStats::collections after the collection).
  uint64_t ordinal = 0;
  PartitionId victim = 0;
  PartitionId copy_target = 0;
  uint64_t garbage_reclaimed_bytes = 0;
  uint64_t live_bytes_copied = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// The durable engine wrote a snapshot and rotated the WAL.
struct CheckpointEvent {
  uint64_t round = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// An armed FaultPlan failed a transfer.
struct FaultEvent {
  bool is_write = false;
  /// 1-based count of faults fired by the device so far.
  uint64_t ordinal = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// A real-I/O device submitted or completed a scheduler batch. Published
/// twice per batch (submitted, then completed); `wall_ns` is meaningful
/// only on completion. Only backends doing actual system calls publish
/// these (FileDevice); the batch *sequence* is deterministic, the wall
/// time is not.
struct DeviceBatchEvent {
  bool is_write = false;
  bool completed = false;
  /// Pages in the batch.
  uint64_t pages = 0;
  /// 1-based batch count on this device.
  uint64_t ordinal = 0;
  /// Submit-to-drain wall time (completion events only).
  uint64_t wall_ns = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// A real-I/O device ran a durability barrier (fsync).
struct DeviceSyncEvent {
  /// 1-based fsync count on this device.
  uint64_t ordinal = 0;
  uint64_t wall_ns = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// A read-ahead prefetch completed. Cumulative hit/miss counters ride
/// along so a sink can chart cache effectiveness without subscribing to
/// per-read events.
struct ReadAheadEvent {
  /// Pages requested by this prefetch (after residency filtering).
  uint64_t requested_pages = 0;
  /// Pages actually staged into the cache by this prefetch.
  uint64_t installed_pages = 0;
  /// Cumulative ReadPage outcomes against the cache so far.
  uint64_t total_hits = 0;
  uint64_t total_misses = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// A measured phase completed. `wall_ns` is host wall-clock time — the
/// only nondeterministic payload in the event stream (the phase *sequence*
/// is still deterministic).
struct PhaseEvent {
  /// Static phase name ("census", "collection", "full_collection").
  const char* phase = "";
  uint64_t wall_ns = 0;
  /// Mutator-thread tag: 0 in serial runs; in concurrent runs the
  /// SynchronizedObserver stamps the publishing worker's index.
  uint32_t thread = 0;
};

/// Sink interface for run telemetry. The default implementation of every
/// hook is a no-op, and publishers hold a nullable pointer — an unobserved
/// run costs one predictable branch per publish site, nothing more.
///
/// Threading: one observer instance observes one run. The experiment
/// runner builds one per (policy, seed) via ExperimentSpec::WithObserver,
/// so implementations need no internal locking unless shared explicitly.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void OnRunStarted(const RunStartedEvent& event) { (void)event; }
  virtual void OnRunFinished(const RunFinishedEvent& event) { (void)event; }
  virtual void OnCollection(const CollectionEvent& event) { (void)event; }
  virtual void OnCheckpoint(const CheckpointEvent& event) { (void)event; }
  virtual void OnFault(const FaultEvent& event) { (void)event; }
  virtual void OnPhase(const PhaseEvent& event) { (void)event; }
  virtual void OnDeviceBatch(const DeviceBatchEvent& event) { (void)event; }
  virtual void OnDeviceSync(const DeviceSyncEvent& event) { (void)event; }
  virtual void OnReadAhead(const ReadAheadEvent& event) { (void)event; }
};

/// Adapter that lets one user observer watch a multi-threaded run: each
/// worker thread publishes through its own SynchronizedObserver, which
/// stamps the event's `thread` tag and serializes delivery to the shared
/// inner sink under a shared mutex. The inner observer therefore keeps
/// the single-threaded contract (one event at a time) while still seeing
/// every thread's stream, attributably.
class SynchronizedObserver : public SimObserver {
 public:
  /// `inner` and `mutex` are shared across the run's wrappers and must
  /// outlive them; `thread` is this wrapper's worker index (1-based in
  /// the concurrent simulator so 0 stays "serial").
  SynchronizedObserver(SimObserver* inner, std::mutex* mutex, uint32_t thread)
      : inner_(inner), mutex_(mutex), thread_(thread) {}

  void OnRunStarted(const RunStartedEvent& event) override {
    Publish(event, &SimObserver::OnRunStarted);
  }
  void OnRunFinished(const RunFinishedEvent& event) override {
    Publish(event, &SimObserver::OnRunFinished);
  }
  void OnCollection(const CollectionEvent& event) override {
    Publish(event, &SimObserver::OnCollection);
  }
  void OnCheckpoint(const CheckpointEvent& event) override {
    Publish(event, &SimObserver::OnCheckpoint);
  }
  void OnFault(const FaultEvent& event) override {
    Publish(event, &SimObserver::OnFault);
  }
  void OnPhase(const PhaseEvent& event) override {
    Publish(event, &SimObserver::OnPhase);
  }
  void OnDeviceBatch(const DeviceBatchEvent& event) override {
    Publish(event, &SimObserver::OnDeviceBatch);
  }
  void OnDeviceSync(const DeviceSyncEvent& event) override {
    Publish(event, &SimObserver::OnDeviceSync);
  }
  void OnReadAhead(const ReadAheadEvent& event) override {
    Publish(event, &SimObserver::OnReadAhead);
  }

 private:
  template <typename Event>
  void Publish(const Event& event, void (SimObserver::*hook)(const Event&)) {
    Event tagged = event;
    tagged.thread = thread_;
    std::lock_guard<std::mutex> lock(*mutex_);
    (inner_->*hook)(tagged);
  }

  SimObserver* const inner_;
  std::mutex* const mutex_;
  const uint32_t thread_;
};

}  // namespace odbgc

#endif  // ODBGC_OBSERVE_OBSERVER_H_
