#include "sim/concurrent_simulator.h"

#include <cassert>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "sim/simulator.h"
#include "storage/device_registry.h"
#include "util/thread_safe_queue.h"
#include "workload/generator.h"

namespace odbgc {

namespace {

// Application events a mutator applies per epoch pin: long enough that
// pin/unpin and the epoch-tick maintenance (barrier flush, deferred-slot
// reclaim) stay off the per-event path, short enough that grace periods
// expire promptly and no shard hoards the safety bound.
constexpr uint64_t kEventsPerEpoch = 256;

// A TraceSink that paces a shard's replay through the shared epoch
// manager: events apply under an epoch pin, and every kEventsPerEpoch the
// shard unpins, advances the epoch, and runs the heap's epoch-boundary
// maintenance. The pacing changes nothing observable (the flush points it
// inserts are result-neutral by the HeapCore contract); it exists to make
// the grace-period machinery load-bearing and cross-thread.
class EpochPacer : public TraceSink {
 public:
  EpochPacer(Simulator* sim, HeapCore* core, EpochManager* epochs,
             EpochManager::ThreadSlot* slot)
      : sim_(sim), core_(core), epochs_(epochs), slot_(slot) {}

  ~EpochPacer() override { EndBatch(); }

  Status Append(const TraceEvent& event) override {
    if (!pinned_) {
      epochs_->Pin(slot_);
      pinned_ = true;
    }
    const Status status = sim_->Append(event);
    if (++events_in_batch_ >= kEventsPerEpoch) EndBatch();
    return status;
  }

  /// Unpins and runs the epoch-boundary maintenance. Idempotent.
  void EndBatch() {
    if (!pinned_) return;
    epochs_->Unpin(slot_);
    pinned_ = false;
    events_in_batch_ = 0;
    epochs_->BumpEpoch();
    core_->OnEpochTick();
  }

 private:
  Simulator* const sim_;
  HeapCore* const core_;
  EpochManager* const epochs_;
  EpochManager::ThreadSlot* const slot_;
  bool pinned_ = false;
  uint64_t events_in_batch_ = 0;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ConcurrentSimulator::ConcurrentSimulator(const SimulationConfig& config)
    : config_(config) {}

uint32_t ConcurrentSimulator::shard_count() const {
  return config_.trace_shards != 0 ? config_.trace_shards
                                   : config_.mutator_threads;
}

uint64_t ConcurrentSimulator::ShardSeed(uint64_t base_seed, uint32_t shard) {
  // Mix the pair through two splitmix rounds so shard streams are
  // decorrelated from the base stream and from each other even for
  // adjacent seeds/shards.
  return SplitMix64(SplitMix64(base_seed) ^ (shard + 1));
}

SimulationConfig ConcurrentSimulator::ShardConfig(uint32_t index) const {
  const uint32_t shards = shard_count();
  SimulationConfig shard = config_;
  // A shard config is a plain serial config: the serial oracle replays it
  // through Simulator unchanged.
  shard.mutator_threads = 1;
  shard.trace_shards = 0;
  shard.seed = ShardSeed(config_.seed, index);
  // Proportional slice of the allocation volume (live target scales with
  // it); the remainder spreads over the leading shards so slices differ
  // by at most one byte.
  const uint64_t total = config_.workload.total_alloc_bytes;
  const uint64_t base = total / shards;
  const uint64_t extra = index < (total % shards) ? 1 : 0;
  shard.workload = config_.workload.WithTotalAllocation(base + extra);
  // Stateful backends (file paths) must not collide across shards; the
  // derived seed is shard-unique, so the per-run suffix disambiguates.
  shard.heap.device_spec = PerRunDeviceSpec(
      config_.heap.device_spec,
      config_.heap.policy_name + "-shard" + std::to_string(index),
      shard.seed);
  return shard;
}

Status ConcurrentSimulator::ValidateConcurrency() const {
  const uint32_t threads = config_.mutator_threads;
  if (threads == 0) {
    return Status::InvalidArgument("mutator_threads must be >= 1");
  }
  if (threads > EpochManager::kMaxThreads) {
    return Status::InvalidArgument(
        "mutator_threads exceeds EpochManager::kMaxThreads (" +
        std::to_string(EpochManager::kMaxThreads) + ")");
  }
  if (threads > shard_count()) {
    // A thread with no shard to own would idle the whole run; this is a
    // mis-specified experiment, not a degraded one.
    return Status::InvalidArgument(
        "mutator_threads (" + std::to_string(threads) +
        ") exceeds trace shard count (" + std::to_string(shard_count()) +
        "); raise trace_shards or lower mutator_threads");
  }
  if (!config_.wal_dir.empty() || config_.checkpoint_every_rounds != 0) {
    return Status::InvalidArgument(
        "concurrent mode does not support durability (wal_dir / "
        "checkpoint_every_rounds); run serially or disable checkpointing");
  }
  return Status::Ok();
}

Status ConcurrentSimulator::Run() {
  ODBGC_RETURN_IF_ERROR(ValidateConcurrency());
  const uint32_t shards = shard_count();
  shard_results_.assign(shards, SimulationResult{});
  shard_wall_metrics_.assign(shards, std::vector<MetricSample>{});
  std::vector<Status> shard_status(shards, Status::Ok());

  ThreadSafeQueue<uint32_t> queue;
  for (uint32_t i = 0; i < shards; ++i) queue.Push(i);
  queue.Close();  // Workers drain the remaining shards, then exit.

  std::mutex observer_mutex;
  SimObserver* const user_observer = config_.heap.observer;

  auto run_shard = [&](uint32_t shard, uint32_t thread_index,
                       EpochManager::ThreadSlot* slot) {
    SimulationConfig shard_config = ShardConfig(shard);
    // The user's observer keeps its single-threaded contract: every
    // worker publishes through a serializing, thread-tagging wrapper.
    std::unique_ptr<SynchronizedObserver> tagged;
    if (user_observer != nullptr) {
      tagged = std::make_unique<SynchronizedObserver>(
          user_observer, &observer_mutex, thread_index);
      shard_config.heap.observer = tagged.get();
    }

    Simulator sim(shard_config);
    HeapCore& core = sim.heap().core();
    core.EnableConcurrentMode(&epochs_);

    // Replicates Simulator::Run() with the pacer interposed.
    WorkloadGenerator generator(shard_config.workload, shard_config.seed);
    Status status;
    {
      EpochPacer pacer(&sim, &core, &epochs_, slot);
      if (shard_config.warm_start) {
        status = generator.BuildInitialDatabase(&pacer);
        if (status.ok()) sim.ResetMeasurementForWarmStart();
      }
      if (status.ok()) status = generator.Generate(&pacer);
    }
    // Join point for this shard's store: its only writer is this thread,
    // so everything still parked may drain regardless of epoch.
    core.OnEpochTick();
    sim.heap().mutable_store().DrainDeferredSlots();

    if (!status.ok()) {
      shard_status[shard] = status;
      return;
    }
    shard_results_[shard] = sim.Finish();
    shard_wall_metrics_[shard] = sim.heap().wall_metrics()->Snapshot();
  };

  auto worker = [&](uint32_t thread_index) {
    EpochManager::ThreadSlot* slot = epochs_.RegisterThread();
    // Cannot fail: mutator_threads <= kMaxThreads was validated and this
    // manager is private to the run.
    while (std::optional<uint32_t> shard = queue.WaitPop()) {
      run_shard(*shard, thread_index, slot);
    }
    epochs_.UnregisterThread(slot);
  };

  if (config_.mutator_threads == 1) {
    worker(1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(config_.mutator_threads);
    for (uint32_t t = 0; t < config_.mutator_threads; ++t) {
      pool.emplace_back(worker, t + 1);
    }
    for (std::thread& thread : pool) thread.join();
  }

  // First error in shard order — deterministic regardless of which worker
  // hit it first.
  for (const Status& status : shard_status) {
    ODBGC_RETURN_IF_ERROR(status);
  }
  ran_ = true;
  return Status::Ok();
}

SimulationResult ConcurrentSimulator::AggregateResults(
    const std::vector<SimulationResult>& parts) {
  SimulationResult out;
  if (parts.empty()) return out;
  // Identity fields: every shard ran the same policy/device/replacement.
  out.policy = parts.front().policy;
  out.policy_name = parts.front().policy_name;
  out.seed = parts.front().seed;
  out.device = parts.front().device;
  out.replacement = parts.front().replacement;

  std::vector<std::vector<MetricSample>> metric_parts;
  metric_parts.reserve(parts.size());
  for (const SimulationResult& part : parts) {
    out.app_events += part.app_events;
    out.app_io += part.app_io;
    out.gc_io += part.gc_io;
    out.max_storage_bytes += part.max_storage_bytes;
    out.max_partitions += part.max_partitions;
    out.final_partitions += part.final_partitions;
    out.collections += part.collections;
    out.garbage_reclaimed_bytes += part.garbage_reclaimed_bytes;
    out.live_bytes_copied += part.live_bytes_copied;
    out.unreclaimed_garbage_bytes += part.unreclaimed_garbage_bytes;
    out.final_live_bytes += part.final_live_bytes;
    out.remset_entries += part.remset_entries;
    out.bytes_allocated += part.bytes_allocated;
    out.pointer_overwrites += part.pointer_overwrites;
    out.estimated_device_time_ms += part.estimated_device_time_ms;

    out.measured.measured = out.measured.measured || part.measured.measured;
    out.measured.reads += part.measured.reads;
    out.measured.writes += part.measured.writes;
    out.measured.fsyncs += part.measured.fsyncs;
    out.measured.batches += part.measured.batches;
    out.measured.readahead_hits += part.measured.readahead_hits;
    out.measured.readahead_misses += part.measured.readahead_misses;
    out.measured.prefetched_pages += part.measured.prefetched_pages;
    out.measured.wall_ms += part.measured.wall_ms;

    out.heap_stats.collections += part.heap_stats.collections;
    out.heap_stats.full_collections += part.heap_stats.full_collections;
    out.heap_stats.pointer_stores += part.heap_stats.pointer_stores;
    out.heap_stats.pointer_overwrites += part.heap_stats.pointer_overwrites;
    out.heap_stats.objects_allocated += part.heap_stats.objects_allocated;
    out.heap_stats.bytes_allocated += part.heap_stats.bytes_allocated;
    out.heap_stats.garbage_bytes_reclaimed +=
        part.heap_stats.garbage_bytes_reclaimed;
    out.heap_stats.garbage_objects_reclaimed +=
        part.heap_stats.garbage_objects_reclaimed;
    out.heap_stats.live_bytes_copied += part.heap_stats.live_bytes_copied;
    out.heap_stats.live_objects_copied += part.heap_stats.live_objects_copied;
    out.heap_stats.max_total_bytes += part.heap_stats.max_total_bytes;
    out.heap_stats.max_partitions += part.heap_stats.max_partitions;

    out.buffer_stats.hits += part.buffer_stats.hits;
    out.buffer_stats.misses += part.buffer_stats.misses;
    out.buffer_stats.reads_app += part.buffer_stats.reads_app;
    out.buffer_stats.reads_gc += part.buffer_stats.reads_gc;
    out.buffer_stats.writes_app += part.buffer_stats.writes_app;
    out.buffer_stats.writes_gc += part.buffer_stats.writes_gc;

    out.disk_stats.page_reads += part.disk_stats.page_reads;
    out.disk_stats.page_writes += part.disk_stats.page_writes;
    out.disk_stats.sequential_transfers +=
        part.disk_stats.sequential_transfers;
    out.disk_stats.random_transfers += part.disk_stats.random_transfers;

    metric_parts.push_back(part.metrics);
  }
  out.metrics = MergeMetricSamples(metric_parts);
  // Time series stay empty: sampling is a per-shard timeline, and the
  // shards' timelines are not mutually ordered.
  return out;
}

SimulationResult ConcurrentSimulator::Finish() {
  assert(ran_ && "Finish called before a successful Run");
  SimulationResult result = AggregateResults(shard_results_);
  // The aggregate's identity is the run's, not shard 0's.
  result.seed = config_.seed;
  return result;
}

}  // namespace odbgc
