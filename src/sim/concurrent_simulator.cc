#include "sim/concurrent_simulator.h"

#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "storage/device_registry.h"
#include "util/task_pool.h"
#include "util/thread_safe_queue.h"
#include "workload/generator.h"

namespace odbgc {

namespace {

// Application events a mutator applies per epoch pin: long enough that
// pin/unpin and the epoch-tick maintenance (barrier flush, deferred-slot
// reclaim) stay off the per-event path, short enough that grace periods
// expire promptly and no shard hoards the safety bound.
constexpr uint64_t kEventsPerEpoch = 256;

// A TraceSink that paces a shard's replay through the shared epoch
// manager: events apply under an epoch pin, and every kEventsPerEpoch the
// shard unpins, advances the epoch, and runs the heap's epoch-boundary
// maintenance. The pacing changes nothing observable (the flush points it
// inserts are result-neutral by the HeapCore contract); it exists to make
// the grace-period machinery load-bearing and cross-thread.
class EpochPacer : public TraceSink {
 public:
  EpochPacer(Simulator* sim, HeapCore* core, EpochManager* epochs,
             EpochManager::ThreadSlot* slot)
      : sim_(sim), core_(core), epochs_(epochs), slot_(slot) {}

  ~EpochPacer() override { EndBatch(); }

  Status Append(const TraceEvent& event) override {
    if (!pinned_) {
      epochs_->Pin(slot_);
      pinned_ = true;
    }
    const Status status = sim_->Append(event);
    if (++events_in_batch_ >= kEventsPerEpoch) EndBatch();
    return status;
  }

  /// Unpins and runs the epoch-boundary maintenance. Idempotent.
  void EndBatch() {
    if (!pinned_) return;
    epochs_->Unpin(slot_);
    pinned_ = false;
    events_in_batch_ = 0;
    epochs_->BumpEpoch();
    core_->OnEpochTick();
  }

 private:
  Simulator* const sim_;
  HeapCore* const core_;
  EpochManager* const epochs_;
  EpochManager::ThreadSlot* const slot_;
  bool pinned_ = false;
  uint64_t events_in_batch_ = 0;
};

// Buffers generated events for the work-stealing scheduler's batch
// continuations.
class VectorSink : public TraceSink {
 public:
  explicit VectorSink(std::vector<TraceEvent>* out) : out_(out) {}
  Status Append(const TraceEvent& event) override {
    out_->push_back(event);
    return Status::Ok();
  }

 private:
  std::vector<TraceEvent>* const out_;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ConcurrentSimulator::ConcurrentSimulator(const SimulationConfig& config)
    : config_(config) {}

uint32_t ConcurrentSimulator::shard_count() const {
  return config_.trace_shards != 0 ? config_.trace_shards
                                   : config_.mutator_threads;
}

uint64_t ConcurrentSimulator::ShardSeed(uint64_t base_seed, uint32_t shard) {
  // Mix the pair through two splitmix rounds so shard streams are
  // decorrelated from the base stream and from each other even for
  // adjacent seeds/shards.
  return SplitMix64(SplitMix64(base_seed) ^ (shard + 1));
}

SimulationConfig ConcurrentSimulator::ShardConfig(uint32_t index) const {
  const uint32_t shards = shard_count();
  SimulationConfig shard = config_;
  // A shard config is a plain serial config: the serial oracle replays it
  // through Simulator unchanged.
  shard.mutator_threads = 1;
  shard.trace_shards = 0;
  shard.seed = ShardSeed(config_.seed, index);
  const uint64_t total = config_.workload.total_alloc_bytes;
  uint64_t slice;
  if (config_.shard_weights.empty()) {
    // Proportional slice of the allocation volume (live target scales
    // with it); the remainder spreads over the leading shards so slices
    // differ by at most one byte.
    const uint64_t base = total / shards;
    const uint64_t extra = index < (total % shards) ? 1 : 0;
    slice = base + extra;
  } else {
    // Weighted split by cumulative-sum floors: shard i gets
    // floor(total * cum[i+1]/W) - floor(total * cum[i]/W), which
    // telescopes to exactly `total` over all shards.
    double cum_before = 0.0;
    double cum_total = 0.0;
    for (uint32_t i = 0; i < shards; ++i) {
      if (i < index) cum_before += config_.shard_weights[i];
      cum_total += config_.shard_weights[i];
    }
    const double cum_after = cum_before + config_.shard_weights[index];
    const auto floor_at = [&](double cum) {
      return static_cast<uint64_t>(static_cast<double>(total) *
                                   (cum / cum_total));
    };
    slice = floor_at(cum_after) - floor_at(cum_before);
  }
  shard.workload = config_.workload.WithTotalAllocation(slice);
  // Stateful backends (file paths) must not collide across shards; the
  // derived seed is shard-unique, so the per-run suffix disambiguates.
  shard.heap.device_spec = PerRunDeviceSpec(
      config_.heap.device_spec,
      config_.heap.policy_name + "-shard" + std::to_string(index),
      shard.seed);
  return shard;
}

Status ConcurrentSimulator::ValidateConcurrency() const {
  const uint32_t threads = config_.mutator_threads;
  if (threads == 0) {
    return Status::InvalidArgument("mutator_threads must be >= 1");
  }
  if (threads > EpochManager::kMaxThreads) {
    return Status::InvalidArgument(
        "mutator_threads exceeds EpochManager::kMaxThreads (" +
        std::to_string(EpochManager::kMaxThreads) + ")");
  }
  if (threads > shard_count()) {
    // A thread with no shard to own would idle the whole run; this is a
    // mis-specified experiment, not a degraded one.
    return Status::InvalidArgument(
        "mutator_threads (" + std::to_string(threads) +
        ") exceeds trace shard count (" + std::to_string(shard_count()) +
        "); raise trace_shards or lower mutator_threads");
  }
  if (!config_.wal_dir.empty() || config_.checkpoint_every_rounds != 0) {
    return Status::InvalidArgument(
        "concurrent mode does not support durability (wal_dir / "
        "checkpoint_every_rounds); run serially or disable checkpointing");
  }
  if (!config_.shard_weights.empty()) {
    if (config_.shard_weights.size() != shard_count()) {
      return Status::InvalidArgument(
          "shard_weights size (" +
          std::to_string(config_.shard_weights.size()) +
          ") must equal the shard count (" + std::to_string(shard_count()) +
          ")");
    }
    for (double w : config_.shard_weights) {
      if (!(w > 0.0)) {
        return Status::InvalidArgument(
            "shard_weights must all be positive");
      }
    }
  }
  return Status::Ok();
}

Status ConcurrentSimulator::Run() {
  ODBGC_RETURN_IF_ERROR(ValidateConcurrency());
  const uint32_t shards = shard_count();
  shard_results_.assign(shards, SimulationResult{});
  shard_wall_metrics_.assign(shards, std::vector<MetricSample>{});
  worker_busy_seconds_.clear();
  scheduler_steals_ = 0;

  const Status status = config_.shard_scheduler == ShardSchedulerKind::kPullQueue
                            ? RunPullQueue()
                            : RunWorkStealing();
  ODBGC_RETURN_IF_ERROR(status);
  ran_ = true;
  return Status::Ok();
}

Status ConcurrentSimulator::RunPullQueue() {
  const uint32_t shards = shard_count();
  std::vector<Status> shard_status(shards, Status::Ok());

  ThreadSafeQueue<uint32_t> queue;
  for (uint32_t i = 0; i < shards; ++i) queue.Push(i);
  queue.Close();  // Workers drain the remaining shards, then exit.

  std::mutex observer_mutex;
  SimObserver* const user_observer = config_.heap.observer;

  auto run_shard = [&](uint32_t shard, uint32_t thread_index,
                       EpochManager::ThreadSlot* slot) {
    SimulationConfig shard_config = ShardConfig(shard);
    // The pull-queue scheduler is preserved as the PR 7 baseline for A/B
    // scheduler benchmarking: whole-shard execution, serial marking.
    shard_config.heap.parallel_marking_threads = 0;
    // The user's observer keeps its single-threaded contract: every
    // worker publishes through a serializing, thread-tagging wrapper.
    std::unique_ptr<SynchronizedObserver> tagged;
    if (user_observer != nullptr) {
      tagged = std::make_unique<SynchronizedObserver>(
          user_observer, &observer_mutex, thread_index);
      shard_config.heap.observer = tagged.get();
    }

    Simulator sim(shard_config);
    HeapCore& core = sim.heap().core();
    core.EnableConcurrentMode(&epochs_);

    // Replicates Simulator::Run() with the pacer interposed.
    WorkloadGenerator generator(shard_config.workload, shard_config.seed);
    Status status;
    {
      EpochPacer pacer(&sim, &core, &epochs_, slot);
      if (shard_config.warm_start) {
        status = generator.BuildInitialDatabase(&pacer);
        if (status.ok()) sim.ResetMeasurementForWarmStart();
      }
      if (status.ok()) status = generator.Generate(&pacer);
    }
    // Join point for this shard's store: its only writer is this thread,
    // so everything still parked may drain regardless of epoch.
    core.OnEpochTick();
    sim.heap().mutable_store().DrainDeferredSlots();

    if (!status.ok()) {
      shard_status[shard] = status;
      return;
    }
    shard_results_[shard] = sim.Finish();
    shard_wall_metrics_[shard] = sim.heap().wall_metrics()->Snapshot();
  };

  auto worker = [&](uint32_t thread_index) {
    EpochManager::ThreadSlot* slot = epochs_.RegisterThread();
    // Cannot fail: mutator_threads <= kMaxThreads was validated and this
    // manager is private to the run.
    while (std::optional<uint32_t> shard = queue.WaitPop()) {
      run_shard(*shard, thread_index, slot);
    }
    epochs_.UnregisterThread(slot);
  };

  if (config_.mutator_threads == 1) {
    worker(1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(config_.mutator_threads);
    for (uint32_t t = 0; t < config_.mutator_threads; ++t) {
      pool.emplace_back(worker, t + 1);
    }
    for (std::thread& thread : pool) thread.join();
  }

  // First error in shard order — deterministic regardless of which worker
  // hit it first.
  for (const Status& status : shard_status) {
    ODBGC_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

Status ConcurrentSimulator::RunWorkStealing() {
  const uint32_t shards = shard_count();
  const uint32_t threads = config_.mutator_threads;
  std::vector<Status> shard_status(shards, Status::Ok());
  std::mutex observer_mutex;
  SimObserver* const user_observer = config_.heap.observer;

  // One epoch slot per pool worker, registered up front and indexed by
  // worker_index — each slot is only ever pinned by its one worker
  // thread, honouring the slot contract even though registration happens
  // here. (threads <= kMaxThreads was validated; the manager is private
  // to the run, so registration cannot fail.)
  std::vector<EpochManager::ThreadSlot*> slots(threads, nullptr);
  for (uint32_t t = 0; t < threads; ++t) slots[t] = epochs_.RegisterThread();

  {
    TaskPool pool(threads);

    // Per-shard execution state. A shard advances via a chain of batch
    // continuations — exactly one in flight per shard, so its event
    // stream applies strictly in order no matter which workers run the
    // batches. Declared after `pool` so the simulators (whose heaps may
    // hold the pool as their marking pool) are destroyed first.
    struct ShardRun {
      uint32_t shard = 0;
      SimulationConfig config;
      std::unique_ptr<SynchronizedObserver> tagged;
      std::unique_ptr<Simulator> sim;
      std::unique_ptr<WorkloadGenerator> generator;
      // The buffered slice of the shard's event stream (one build phase
      // or one generator round at a time), applied in epoch batches.
      std::vector<TraceEvent> buffer;
      size_t next_event = 0;
      bool built = false;
      bool pending_reset = false;  // Warm start: reset once build applies.
    };
    std::vector<ShardRun> runs(shards);

    TaskPool::TaskGroup group;
    std::function<void(ShardRun*, TaskPool::Context&)> step;
    step = [&](ShardRun* run, TaskPool::Context& ctx) {
      // First batch of the shard: materialize its simulator here, on a
      // worker, so construction parallelizes too.
      if (run->sim == nullptr) {
        run->config = ShardConfig(run->shard);
        if (user_observer != nullptr) {
          // The user's observer keeps its single-threaded contract via
          // the serializing wrapper; tagged by shard (stable across
          // scheduling) rather than by worker.
          run->tagged = std::make_unique<SynchronizedObserver>(
              user_observer, &observer_mutex, run->shard + 1);
          run->config.heap.observer = run->tagged.get();
        }
        if (run->config.heap.parallel_marking_threads >= 2) {
          // All shard heaps mark on the scheduler's own pool: a worker
          // stuck behind a census-heavy shard exports marking strips to
          // whoever is idle.
          run->config.heap.marking_pool = &pool;
        }
        const Status valid = run->config.workload.Validate();
        if (!valid.ok()) {
          shard_status[run->shard] = valid;
          return;
        }
        run->sim = std::make_unique<Simulator>(run->config);
        run->sim->heap().core().EnableConcurrentMode(&epochs_);
        run->generator = std::make_unique<WorkloadGenerator>(
            run->config.workload, run->config.seed);
      }

      Simulator& sim = *run->sim;
      HeapCore& core = sim.heap().core();

      // Refill the buffer when drained: the build phase first, then one
      // generator round per refill, then shard finalization.
      if (run->next_event >= run->buffer.size()) {
        run->buffer.clear();
        run->next_event = 0;
        VectorSink sink(&run->buffer);
        Status refill;
        if (!run->built) {
          refill = run->generator->BuildInitialDatabase(&sink);
          run->built = true;
          if (run->config.warm_start) run->pending_reset = true;
        } else if (!run->generator->Done()) {
          refill = run->generator->RunRound(&sink);
        } else {
          // Stream exhausted: join point for this shard's store (its
          // batches are fully applied), then record results.
          core.OnEpochTick();
          sim.heap().mutable_store().DrainDeferredSlots();
          shard_results_[run->shard] = sim.Finish();
          shard_wall_metrics_[run->shard] =
              sim.heap().wall_metrics()->Snapshot();
          return;  // Chain ends; no re-submit.
        }
        if (!refill.ok()) {
          core.OnEpochTick();
          sim.heap().mutable_store().DrainDeferredSlots();
          shard_status[run->shard] = refill;
          return;
        }
      }

      // Apply one epoch batch under this worker's pin. `nested` guards
      // re-entry: a worker whose census Wait helps with another shard's
      // batch is already pinned by the outer batch, and re-pinning at a
      // newer epoch would weaken the outer batch's grace protection — the
      // inner batch just rides the outer pin (safe: pins are global to
      // the shared manager, and strictly conservative).
      EpochManager::ThreadSlot* slot = slots[ctx.worker_index];
      const bool nested = epochs_.IsPinned(slot);
      if (!nested) epochs_.Pin(slot);
      Status applied = Status::Ok();
      uint64_t in_batch = 0;
      while (in_batch < kEventsPerEpoch &&
             run->next_event < run->buffer.size()) {
        applied = sim.Append(run->buffer[run->next_event]);
        ++run->next_event;
        ++in_batch;
        if (!applied.ok()) break;
      }
      if (!nested) {
        epochs_.Unpin(slot);
        epochs_.BumpEpoch();
      }
      core.OnEpochTick();
      if (!applied.ok()) {
        sim.heap().mutable_store().DrainDeferredSlots();
        shard_status[run->shard] = applied;
        return;
      }
      // Warm start: measurements reset the moment the build stream has
      // fully applied, before any round event.
      if (run->pending_reset && run->next_event >= run->buffer.size()) {
        sim.ResetMeasurementForWarmStart();
        run->pending_reset = false;
      }
      ctx.pool->Submit(&group, [run, &step](TaskPool::Context& c) {
        step(run, c);
      });
    };

    for (uint32_t i = 0; i < shards; ++i) {
      runs[i].shard = i;
      ShardRun* run = &runs[i];
      pool.Submit(&group, [run, &step](TaskPool::Context& c) {
        step(run, c);
      });
    }
    pool.Wait(&group);

    worker_busy_seconds_ = pool.BusySeconds();
    scheduler_steals_ = pool.steals();
  }

  for (uint32_t t = 0; t < threads; ++t) epochs_.UnregisterThread(slots[t]);

  // First error in shard order, as in the pull-queue scheduler.
  for (const Status& status : shard_status) {
    ODBGC_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

SimulationResult ConcurrentSimulator::AggregateResults(
    const std::vector<SimulationResult>& parts) {
  SimulationResult out;
  if (parts.empty()) return out;
  // Identity fields: every shard ran the same policy/device/replacement.
  out.policy = parts.front().policy;
  out.policy_name = parts.front().policy_name;
  out.seed = parts.front().seed;
  out.device = parts.front().device;
  out.replacement = parts.front().replacement;

  std::vector<std::vector<MetricSample>> metric_parts;
  metric_parts.reserve(parts.size());
  for (const SimulationResult& part : parts) {
    out.app_events += part.app_events;
    out.app_io += part.app_io;
    out.gc_io += part.gc_io;
    out.max_storage_bytes += part.max_storage_bytes;
    out.max_partitions += part.max_partitions;
    out.final_partitions += part.final_partitions;
    out.collections += part.collections;
    out.garbage_reclaimed_bytes += part.garbage_reclaimed_bytes;
    out.live_bytes_copied += part.live_bytes_copied;
    out.unreclaimed_garbage_bytes += part.unreclaimed_garbage_bytes;
    out.final_live_bytes += part.final_live_bytes;
    out.remset_entries += part.remset_entries;
    out.bytes_allocated += part.bytes_allocated;
    out.pointer_overwrites += part.pointer_overwrites;
    out.estimated_device_time_ms += part.estimated_device_time_ms;

    out.measured.measured = out.measured.measured || part.measured.measured;
    out.measured.reads += part.measured.reads;
    out.measured.writes += part.measured.writes;
    out.measured.fsyncs += part.measured.fsyncs;
    out.measured.batches += part.measured.batches;
    out.measured.readahead_hits += part.measured.readahead_hits;
    out.measured.readahead_misses += part.measured.readahead_misses;
    out.measured.prefetched_pages += part.measured.prefetched_pages;
    out.measured.wall_ms += part.measured.wall_ms;

    out.heap_stats.collections += part.heap_stats.collections;
    out.heap_stats.full_collections += part.heap_stats.full_collections;
    out.heap_stats.pointer_stores += part.heap_stats.pointer_stores;
    out.heap_stats.pointer_overwrites += part.heap_stats.pointer_overwrites;
    out.heap_stats.objects_allocated += part.heap_stats.objects_allocated;
    out.heap_stats.bytes_allocated += part.heap_stats.bytes_allocated;
    out.heap_stats.garbage_bytes_reclaimed +=
        part.heap_stats.garbage_bytes_reclaimed;
    out.heap_stats.garbage_objects_reclaimed +=
        part.heap_stats.garbage_objects_reclaimed;
    out.heap_stats.live_bytes_copied += part.heap_stats.live_bytes_copied;
    out.heap_stats.live_objects_copied += part.heap_stats.live_objects_copied;
    out.heap_stats.max_total_bytes += part.heap_stats.max_total_bytes;
    out.heap_stats.max_partitions += part.heap_stats.max_partitions;

    out.buffer_stats.hits += part.buffer_stats.hits;
    out.buffer_stats.misses += part.buffer_stats.misses;
    out.buffer_stats.reads_app += part.buffer_stats.reads_app;
    out.buffer_stats.reads_gc += part.buffer_stats.reads_gc;
    out.buffer_stats.writes_app += part.buffer_stats.writes_app;
    out.buffer_stats.writes_gc += part.buffer_stats.writes_gc;

    out.disk_stats.page_reads += part.disk_stats.page_reads;
    out.disk_stats.page_writes += part.disk_stats.page_writes;
    out.disk_stats.sequential_transfers +=
        part.disk_stats.sequential_transfers;
    out.disk_stats.random_transfers += part.disk_stats.random_transfers;

    metric_parts.push_back(part.metrics);
  }
  out.metrics = MergeMetricSamples(metric_parts);
  // Time series stay empty: sampling is a per-shard timeline, and the
  // shards' timelines are not mutually ordered.
  return out;
}

SimulationResult ConcurrentSimulator::Finish() {
  assert(ran_ && "Finish called before a successful Run");
  SimulationResult result = AggregateResults(shard_results_);
  // The aggregate's identity is the run's, not shard 0's.
  result.seed = config_.seed;
  return result;
}

}  // namespace odbgc
