#ifndef ODBGC_SIM_RUNNER_H_
#define ODBGC_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/selection_policy.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace odbgc {

/// An experiment: the same simulation run under several policies and
/// several seeds. Policies see identical traces per seed (the generator
/// never consults the heap), so differences are attributable to the
/// selection policy alone — the paper runs "10 sets of simulation runs,
/// each set with the same configuration parameters but with a different
/// random seed".
struct ExperimentSpec {
  SimulationConfig base;
  std::vector<PolicyKind> policies = AllPolicyKinds();
  int num_seeds = 10;
  uint64_t first_seed = 1;
  /// Worker threads (runs are independent); 0 = hardware concurrency.
  int threads = 0;
};

/// All runs of one policy across the experiment's seeds (seed order).
struct PolicyRuns {
  PolicyKind policy = PolicyKind::kUpdatedPointer;
  std::vector<SimulationResult> runs;
};

struct Experiment {
  std::vector<PolicyRuns> sets;  // In spec.policies order.

  /// Runs of `policy`, or nullptr if it was not in the experiment.
  const PolicyRuns* Find(PolicyKind policy) const;
};

/// Executes the experiment (parallel across runs). Returns the first
/// error if any run fails.
Result<Experiment> RunExperiment(const ExperimentSpec& spec);

/// Executes one fully specified simulation run (policy and seed already
/// set on `config`). RunExperiment's default; RunExperimentWith swaps it
/// for a durable engine (see recovery/recover.h) without a dependency
/// cycle between the layers.
using RunSimulationFn =
    std::function<Result<SimulationResult>(const SimulationConfig& config)>;

/// RunExperiment with a custom per-run engine: `run_one` is invoked for
/// every (policy, seed) combination, possibly concurrently — it must be
/// thread-safe.
Result<Experiment> RunExperimentWith(const ExperimentSpec& spec,
                                     const RunSimulationFn& run_one);

}  // namespace odbgc

#endif  // ODBGC_SIM_RUNNER_H_
