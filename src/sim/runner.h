#ifndef ODBGC_SIM_RUNNER_H_
#define ODBGC_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/selection_policy.h"
#include "observe/observer.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace odbgc {

/// Per-run observer factory: invoked once per (policy, seed) before the
/// run starts; the runner keeps the returned observer alive until the
/// whole experiment finishes. May return null to leave a run unobserved.
using ObserverFactory = std::function<std::unique_ptr<SimObserver>(
    const std::string& policy, uint64_t seed)>;

/// Per-run completion hook: invoked after each successful run with the
/// exact config the run used and its result. Calls are serialized by the
/// runner (no locking needed inside), but their order across runs is
/// whatever the thread pool produces.
using RunCompleteFn = std::function<void(const SimulationConfig& config,
                                         const SimulationResult& result)>;

/// An experiment: the same simulation run under several policies and
/// several seeds. Policies see identical traces per seed (the generator
/// never consults the heap), so differences are attributable to the
/// selection policy alone — the paper runs "10 sets of simulation runs,
/// each set with the same configuration parameters but with a different
/// random seed".
///
/// Policies are named: the axis is the policy registry (RegisterPolicy),
/// so extension and application-registered policies run through the same
/// spec as the paper's six. The builder methods cover the common setup so
/// benches and tools read as one expression:
///
///   auto experiment = RunExperiment(
///       ExperimentSpec::Base(PaperBaseConfig())
///           .WithPolicies({"UpdatedPointer", "CostBenefit"})
///           .WithSeeds(5)
///           .WithManifestDir("manifests/run1"));
struct ExperimentSpec {
  SimulationConfig base;
  /// Policy registry names, one run set each. Defaults to the paper's six.
  std::vector<std::string> policies = PaperPolicyNames();
  int num_seeds = 10;
  uint64_t first_seed = 1;
  /// Worker threads (runs are independent); 0 = hardware concurrency.
  int threads = 0;
  /// Optional per-run telemetry (see ObserverFactory).
  ObserverFactory observer_factory;
  /// Optional per-run completion hook (see RunCompleteFn).
  RunCompleteFn on_run_complete;
  /// When non-empty, the runner writes one canonical run manifest per
  /// (policy, seed) into this directory: <dir>/<policy>-s<seed>.json
  /// (see observe/manifest.h).
  std::string manifest_dir;
  /// Stamp each result's `run_wall_seconds` with the run's end-to-end
  /// wall time (and emit a "timing" manifest section). Off by default so
  /// manifests stay byte-stable run to run; the CLI's --parallel-grid
  /// turns it on to feed odbgc-report's scaling table.
  bool record_timing = false;
  /// Share one IoScheduler worker pool across every run's "file" device
  /// instead of spawning a scheduler per run. With a parallel grid of N
  /// runs this caps real-I/O threads at one pool (batches serialize
  /// through the scheduler's producer lock); a no-op for in-memory
  /// backends.
  bool share_io_scheduler = false;

  // ---- Builder -----------------------------------------------------------
  static ExperimentSpec Base(SimulationConfig config) {
    ExperimentSpec spec;
    spec.base = std::move(config);
    return spec;
  }
  ExperimentSpec&& WithPolicies(std::vector<std::string> names) && {
    policies = std::move(names);
    return std::move(*this);
  }
  /// Behaviour-class convenience for the paper's six.
  ExperimentSpec&& WithPolicyKinds(const std::vector<PolicyKind>& kinds) && {
    policies.clear();
    for (PolicyKind kind : kinds) policies.emplace_back(PolicyName(kind));
    return std::move(*this);
  }
  ExperimentSpec&& WithSeeds(int count, uint64_t first = 1) && {
    num_seeds = count;
    first_seed = first;
    return std::move(*this);
  }
  ExperimentSpec&& WithThreads(int count) && {
    threads = count;
    return std::move(*this);
  }
  /// Concurrent mutator mode (DESIGN.md §14): every run replays its
  /// workload across `mutators` threads over `shards` deterministic trace
  /// shards (0 = one shard per thread). `mutators` of 1 with `shards` left
  /// 0 is the plain serial simulator.
  ExperimentSpec&& WithMutatorThreads(uint32_t mutators,
                                      uint32_t shards = 0) && {
    base.mutator_threads = mutators;
    base.trace_shards = shards;
    return std::move(*this);
  }
  ExperimentSpec&& WithObserver(ObserverFactory factory) && {
    observer_factory = std::move(factory);
    return std::move(*this);
  }
  ExperimentSpec&& WithRunCallback(RunCompleteFn callback) && {
    on_run_complete = std::move(callback);
    return std::move(*this);
  }
  ExperimentSpec&& WithManifestDir(std::string dir) && {
    manifest_dir = std::move(dir);
    return std::move(*this);
  }
  ExperimentSpec&& WithTiming(bool enabled = true) && {
    record_timing = enabled;
    return std::move(*this);
  }
  ExperimentSpec&& WithSharedIoScheduler(bool enabled = true) && {
    share_io_scheduler = enabled;
    return std::move(*this);
  }
};

/// All runs of one policy across the experiment's seeds (seed order).
struct PolicyRuns {
  /// Registry name — the set's identity.
  std::string name;
  /// Behaviour class of the instantiated policy (kind()).
  PolicyKind policy = PolicyKind::kUpdatedPointer;
  std::vector<SimulationResult> runs;
};

struct Experiment {
  std::vector<PolicyRuns> sets;  // In spec.policies order.

  /// Runs of the named policy, or nullptr if it was not in the experiment.
  const PolicyRuns* Find(const std::string& name) const;
  /// First set whose behaviour class is `policy` (exact identity for the
  /// paper's six; extension policies share kinds — prefer Find-by-name).
  const PolicyRuns* Find(PolicyKind policy) const;
};

/// Executes the experiment (parallel across runs). Returns the first
/// error if any run fails. Unknown policy names fail fast with
/// InvalidArgument before any run starts.
Result<Experiment> RunExperiment(const ExperimentSpec& spec);

/// Executes one fully specified simulation run (policy and seed already
/// set on `config`). RunExperiment's default; RunExperimentWith swaps it
/// for a durable engine (see recovery/recover.h) without a dependency
/// cycle between the layers.
using RunSimulationFn =
    std::function<Result<SimulationResult>(const SimulationConfig& config)>;

/// RunExperiment with a custom per-run engine: `run_one` is invoked for
/// every (policy, seed) combination, possibly concurrently — it must be
/// thread-safe.
Result<Experiment> RunExperimentWith(const ExperimentSpec& spec,
                                     const RunSimulationFn& run_one);

}  // namespace odbgc

#endif  // ODBGC_SIM_RUNNER_H_
