#ifndef ODBGC_SIM_CONCURRENT_SIMULATOR_H_
#define ODBGC_SIM_CONCURRENT_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/metrics.h"
#include "util/epoch.h"
#include "util/metrics_registry.h"
#include "util/status.h"

namespace odbgc {

/// The sharded multi-threaded mutator/collector mode (DESIGN.md §14).
///
/// The run's workload is split into `trace_shards` deterministic shards —
/// each an independently seeded generator stream over a proportional
/// slice of the allocation volume, driving its own heap. Shards are the
/// determinism unit: a shard's event stream and heap are a pure function
/// of (config, shard index), never of thread scheduling. Threads are the
/// parallelism unit: `mutator_threads` workers pull shard indices from a
/// shared queue, so any thread may run any shard, and a 1-thread
/// concurrent run performs the identical shard sequence serially.
///
/// Every shard heap runs in concurrent mode under one shared
/// EpochManager: mutators pin the epoch around event batches, table-slot
/// reclamation is grace-period-gated across ALL threads' pins, and
/// write-barrier events buffer between epoch ticks. All of it is
/// result-neutral, which is the mode's verification story:
///
///   ConcurrentSimulator(config with N threads).Run+Finish
///     == aggregate of each shard replayed through the serial Simulator
///
/// bitwise, for every field except wall-clock/measured ones. The
/// equivalence suite (tests/sim/concurrent_equivalence_test.cc) holds
/// all six paper policies to this.
///
/// Aggregation over shard results is per-field summation (I/O, events,
/// allocation, reclamation, remembered-set entries, estimated device
/// time; max_storage/max_partitions sum the per-shard high-water marks —
/// the footprint bound of the sharded database as a whole). Named metrics
/// merge through MergeMetricSamples. Time series are a per-shard notion
/// and stay empty in the aggregate.
///
/// Scheduling (DESIGN.md §15): `config.shard_scheduler` picks how shards
/// meet threads. The default work-stealing scheduler cuts every shard's
/// event stream into epoch-sized batches executed as tasks on a shared
/// TaskPool — one in-flight batch per shard (so each shard's stream still
/// applies strictly in order on one thread at a time), with idle workers
/// stealing other shards' batches and, when parallel marking is enabled,
/// marking strips of a busy shard's census. The pull-queue scheduler is
/// the PR 7 baseline (threads run whole shards to completion), kept
/// selectable for the A/B scheduler bench. Either way the aggregate is
/// bitwise identical — scheduling is unobservable in results
/// (tests/sim/work_stealing_equivalence_test.cc).
///
/// Not supported (rejected by Run): durability (wal_dir /
/// checkpoint_every_rounds — checkpointing a multi-heap run is future
/// work), and mutator_threads > shard count or > EpochManager::kMaxThreads.
class ConcurrentSimulator {
 public:
  explicit ConcurrentSimulator(const SimulationConfig& config);

  /// Validates the concurrency configuration, then runs every shard to
  /// completion across the configured worker threads. First shard error
  /// (in shard order) wins.
  Status Run();

  /// Aggregates the per-shard results. Call once, after Run succeeds.
  SimulationResult Finish();

  /// Effective shard count (trace_shards, defaulted to mutator_threads).
  uint32_t shard_count() const;

  /// Per-shard results, in shard order (valid after Run).
  const std::vector<SimulationResult>& shard_results() const {
    return shard_results_;
  }

  /// Per-shard wall-clock profile ("wall.*_ns" from each shard heap's
  /// self-profiling registry), in shard order — per-thread phase timing
  /// attribution for the profiling harness (valid after Run).
  const std::vector<std::vector<MetricSample>>& shard_wall_metrics() const {
    return shard_wall_metrics_;
  }

  /// The epoch manager the run's heaps share (tests/diagnostics).
  const EpochManager& epochs() const { return epochs_; }

  /// Per-worker wall time spent executing scheduler tasks, in seconds
  /// (work-stealing runs only; empty after a pull-queue run). busy/wall
  /// per worker is the scheduler-efficiency number the concurrency bench
  /// reports. Nested helping (a worker executing other tasks while it
  /// waits on a marking wave) double-counts the nested span in its outer
  /// task, so treat values as an upper bound.
  const std::vector<double>& worker_busy_seconds() const {
    return worker_busy_seconds_;
  }

  /// Batches that executed on a different worker than the one that
  /// enqueued them (work-stealing runs only) — the load-balancing
  /// diagnostic: zero on a balanced run means stealing never needed to
  /// kick in; large on a skewed run means it did its job.
  uint64_t scheduler_steals() const { return scheduler_steals_; }

  /// The configuration of shard `index`: the derived seed and the
  /// workload slice. Exposed so the serial oracle in the equivalence
  /// suite replays exactly the shards a concurrent run executes.
  SimulationConfig ShardConfig(uint32_t index) const;

  /// The seed shard `index` derives from `base_seed` (splitmix over the
  /// pair, so shard streams never overlap the base stream or each other).
  static uint64_t ShardSeed(uint64_t base_seed, uint32_t shard);

  /// Sums `parts` into one result under the aggregation rule above —
  /// shared by Finish and by the serial oracle. `parts` must be nonempty;
  /// identity fields (policy, seed, device) come from the first part.
  static SimulationResult AggregateResults(
      const std::vector<SimulationResult>& parts);

 private:
  Status ValidateConcurrency() const;
  // The PR 7 scheduler: whole shards pulled from a shared queue.
  Status RunPullQueue();
  // The work-stealing scheduler: per-shard batch continuations on a
  // TaskPool, with the pool doubling as the shards' parallel-marking pool.
  Status RunWorkStealing();

  SimulationConfig config_;
  EpochManager epochs_;
  bool ran_ = false;
  std::vector<SimulationResult> shard_results_;
  std::vector<std::vector<MetricSample>> shard_wall_metrics_;
  std::vector<double> worker_busy_seconds_;
  uint64_t scheduler_steals_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_CONCURRENT_SIMULATOR_H_
