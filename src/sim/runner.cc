#include "sim/runner.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "sim/simulator.h"

namespace odbgc {

const PolicyRuns* Experiment::Find(PolicyKind policy) const {
  for (const auto& set : sets) {
    if (set.policy == policy) return &set;
  }
  return nullptr;
}

Result<Experiment> RunExperiment(const ExperimentSpec& spec) {
  return RunExperimentWith(
      spec, [](const SimulationConfig& config) -> Result<SimulationResult> {
        Simulator simulator(config);
        ODBGC_RETURN_IF_ERROR(simulator.Run());
        return simulator.Finish();
      });
}

Result<Experiment> RunExperimentWith(const ExperimentSpec& spec,
                                     const RunSimulationFn& run_one) {
  struct Task {
    size_t set_index;
    size_t run_index;
    PolicyKind policy;
    uint64_t seed;
  };

  Experiment experiment;
  std::vector<Task> tasks;
  for (size_t p = 0; p < spec.policies.size(); ++p) {
    PolicyRuns set;
    set.policy = spec.policies[p];
    set.runs.resize(spec.num_seeds);
    experiment.sets.push_back(std::move(set));
    for (int s = 0; s < spec.num_seeds; ++s) {
      tasks.push_back({p, static_cast<size_t>(s), spec.policies[p],
                       spec.first_seed + static_cast<uint64_t>(s)});
    }
  }

  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  threads = std::min<int>(threads, static_cast<int>(tasks.size()));

  std::atomic<size_t> next_task{0};
  std::mutex error_mutex;
  Status first_error;

  auto worker = [&] {
    for (;;) {
      const size_t i = next_task.fetch_add(1);
      if (i >= tasks.size()) return;
      const Task& task = tasks[i];

      SimulationConfig config = spec.base;
      config.seed = task.seed;
      config.heap.policy = task.policy;

      auto result = run_one(config);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = result.status();
        return;
      }
      experiment.sets[task.set_index].runs[task.run_index] =
          std::move(result).value();
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (!first_error.ok()) return first_error;
  return experiment;
}

}  // namespace odbgc
