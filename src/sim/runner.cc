#include "sim/runner.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "observe/manifest.h"
#include "sim/concurrent_simulator.h"
#include "sim/simulator.h"
#include "storage/device_registry.h"
#include "storage/io_scheduler.h"
#include "util/task_pool.h"

namespace odbgc {

const PolicyRuns* Experiment::Find(const std::string& name) const {
  for (const auto& set : sets) {
    if (set.name == name) return &set;
  }
  return nullptr;
}

const PolicyRuns* Experiment::Find(PolicyKind policy) const {
  for (const auto& set : sets) {
    if (set.policy == policy) return &set;
  }
  return nullptr;
}

Result<Experiment> RunExperiment(const ExperimentSpec& spec) {
  return RunExperimentWith(
      spec, [](const SimulationConfig& config) -> Result<SimulationResult> {
        if (config.mutator_threads > 1 || config.trace_shards > 1) {
          ConcurrentSimulator simulator(config);
          ODBGC_RETURN_IF_ERROR(simulator.Run());
          return simulator.Finish();
        }
        Simulator simulator(config);
        ODBGC_RETURN_IF_ERROR(simulator.Run());
        return simulator.Finish();
      });
}

Result<Experiment> RunExperimentWith(const ExperimentSpec& spec,
                                     const RunSimulationFn& run_one) {
  // Fail fast on unknown names: a worker thread aborting inside the heap
  // is a far worse failure mode than an error here.
  for (const std::string& name : spec.policies) {
    if (!IsPolicyRegistered(name)) {
      return Status::InvalidArgument("unknown policy name: " + name);
    }
  }

  struct Task {
    size_t set_index;
    size_t run_index;
    const std::string* policy;
    uint64_t seed;
  };

  Experiment experiment;
  std::vector<Task> tasks;
  for (size_t p = 0; p < spec.policies.size(); ++p) {
    PolicyRuns set;
    set.name = spec.policies[p];
    set.runs.resize(spec.num_seeds);
    experiment.sets.push_back(std::move(set));
    for (int s = 0; s < spec.num_seeds; ++s) {
      tasks.push_back({p, static_cast<size_t>(s), &spec.policies[p],
                       spec.first_seed + static_cast<uint64_t>(s)});
    }
  }

  // Observers live here so they outlive their runs regardless of which
  // worker finishes last; one slot per task, no contention.
  std::vector<std::unique_ptr<SimObserver>> observers(tasks.size());

  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  threads = std::min<int>(threads, static_cast<int>(tasks.size()));

  // One scheduler worker pool for every run's "file" backend, instead of
  // a private pool per run. Only meaningful for grids over a "file" spec;
  // devices serialize whole submit+Drain batches through the scheduler's
  // producer lock. Declared before any run starts and destroyed after the
  // grid drains (devices hold a non-owning pointer).
  std::unique_ptr<IoScheduler> shared_io;
  if (spec.share_io_scheduler &&
      DeviceSpecName(spec.base.heap.device_spec) == "file") {
    IoSchedulerOptions io;
    io.threads = spec.base.heap.file_device.io_threads;
    io.backend = spec.base.heap.file_device.backend;
    shared_io = std::make_unique<IoScheduler>(io);
  }

  std::mutex error_mutex;
  Status first_error;
  std::atomic<bool> aborted{false};
  // Serializes on_run_complete and manifest writes.
  std::mutex complete_mutex;
  Status complete_error;

  // One grid cell. Cells write to disjoint result slots, so the
  // scheduler's execution order is unobservable in the returned
  // Experiment (runs stay in policy-then-seed order).
  auto run_cell = [&](size_t i) {
    if (aborted.load(std::memory_order_relaxed)) return;
    const Task& task = tasks[i];

    SimulationConfig config = spec.base;
    config.seed = task.seed;
    config.heap.policy_name = *task.policy;
    // Stateful backends must not share backing storage across the
    // concurrent (policy, seed) runs of one experiment: a "file" spec's
    // path is suffixed per run, stateless specs pass through.
    config.heap.device_spec = PerRunDeviceSpec(
        config.heap.device_spec, *task.policy, task.seed);
    if (shared_io != nullptr) {
      config.heap.file_device.shared_scheduler = shared_io.get();
    }
    if (spec.observer_factory) {
      observers[i] = spec.observer_factory(*task.policy, task.seed);
      config.heap.observer = observers[i].get();
    }

    const auto start = std::chrono::steady_clock::now();
    auto result = run_one(config);
    if (!result.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = result.status();
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    if (spec.record_timing) {
      result->run_wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }

    if (spec.on_run_complete || !spec.manifest_dir.empty()) {
      std::lock_guard<std::mutex> lock(complete_mutex);
      if (!spec.manifest_dir.empty()) {
        const std::string path =
            spec.manifest_dir + "/" +
            ManifestFileName(result->policy_name, result->seed);
        const Status written =
            WriteManifestFile(path, BuildManifest(config, *result));
        if (!written.ok() && complete_error.ok()) complete_error = written;
      }
      if (spec.on_run_complete) spec.on_run_complete(config, *result);
    }

    experiment.sets[task.set_index].runs[task.run_index] =
        std::move(result).value();
  };

  if (threads <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_cell(i);
  } else {
    // The cells ride the same work-stealing pool as shard scheduling and
    // parallel marking (DESIGN.md §15): long runs (a slow policy, a big
    // seed) stop serializing the tail of the grid behind a static
    // round-robin split.
    TaskPool pool(static_cast<uint32_t>(threads));
    TaskPool::TaskGroup group;
    for (size_t i = 0; i < tasks.size(); ++i) {
      pool.Submit(&group,
                  [&run_cell, i](TaskPool::Context&) { run_cell(i); });
    }
    pool.Wait(&group);
  }

  if (!first_error.ok()) return first_error;
  if (!complete_error.ok()) return complete_error;

  // Stamp each set's behaviour class from its runs (every run of a set
  // uses the same policy, so the first is representative).
  for (PolicyRuns& set : experiment.sets) {
    if (!set.runs.empty()) set.policy = set.runs.front().policy;
  }
  return experiment;
}

}  // namespace odbgc
