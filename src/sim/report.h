#ifndef ODBGC_SIM_REPORT_H_
#define ODBGC_SIM_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "util/statistics.h"

namespace odbgc {

/// Per-policy aggregates across seeds, in the paper's reporting shape
/// (means and standard deviations; relative metrics are paired per seed
/// against the MostGarbage run of the same seed, the paper's baseline).
struct PolicySummary {
  /// Registry name of the summarized policy (the row label).
  std::string name;
  PolicyKind policy = PolicyKind::kUpdatedPointer;
  RunningStat app_io;
  RunningStat gc_io;
  RunningStat total_io;
  RunningStat relative_total_io;  // vs MostGarbage, same seed.
  RunningStat max_storage_kb;
  RunningStat relative_max_storage;  // vs MostGarbage, same seed.
  RunningStat max_partitions;
  RunningStat reclaimed_kb;
  RunningStat fraction_reclaimed_pct;
  RunningStat efficiency_kb_per_io;
  RunningStat relative_efficiency;  // vs MostGarbage, same seed.
  RunningStat collections;
  RunningStat actual_garbage_kb;  // Trace property; same for all policies.
  /// Estimated device time under the backend's cost model (see
  /// SimulationResult::estimated_device_time_ms).
  RunningStat device_time_ms;
  RunningStat relative_device_time;  // vs MostGarbage, same seed.
  /// Measured wall-clock I/O time, for runs on a real-I/O backend
  /// (SimulationResult::measured.wall_ms). Empty when no run measured.
  RunningStat measured_io_ms;
  /// True if any summarized run carried measured I/O.
  bool any_measured = false;
};

/// Builds per-policy summaries from an experiment (preserves set order).
std::vector<PolicySummary> Summarize(const Experiment& experiment);

/// Table 2: throughput as page I/O operations (application, collector,
/// total, and total relative to MostGarbage).
void PrintThroughputTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os);

/// Table 3: maximum storage space usage and partition counts.
void PrintStorageTable(const std::vector<PolicySummary>& summaries,
                       std::ostream& os);

/// Table 4: collector effectiveness and efficiency, with the
/// "Actual Garbage" reference row.
void PrintEfficiencyTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os);

/// Estimated device time under the configured backend's cost model
/// (beyond the paper: policies re-ranked by a device's actual economics
/// rather than raw I/O counts).
void PrintDeviceTimeTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os);

}  // namespace odbgc

#endif  // ODBGC_SIM_REPORT_H_
