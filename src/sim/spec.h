#ifndef ODBGC_SIM_SPEC_H_
#define ODBGC_SIM_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "observe/observer.h"
#include "sim/config.h"

namespace odbgc {

/// The unified run-construction surface (DESIGN.md §16).
///
/// A simulation run used to be assembled by poking three nested structs —
/// HeapOptions inside SimulationConfig, plus ExperimentSpec on top for
/// grids — with the common knobs scattered across all of them. TenantSpec
/// collapses that into one fluent rvalue builder (the ExperimentSpec
/// idiom): every method adjusts the wrapped SimulationConfig and returns
/// the builder by move, so a complete run spec reads as one expression:
///
///   SimulationConfig config = TenantSpec::Base()
///                                 .WithPolicy("UpdatedPointer")
///                                 .WithSeed(7)
///                                 .WithTotalAllocationMb(8)
///                                 .WithBufferPages(48)
///                                 .Build();
///
/// The underlying structs remain public for back-compat — everything that
/// constructs them directly still compiles — but direct-struct assembly is
/// the deprecated path (DESIGN.md §16); new code should come through here.
///
/// A TenantSpec is also the unit a multi-tenant HeapService hosts: the
/// optional `name` becomes the tenant's identity in service telemetry and
/// manifest file names. ServiceSpec below aggregates N of them plus the
/// service-level knobs (threads, shared frame budget, admission
/// watermark).
struct TenantSpec {
  SimulationConfig config;
  /// Tenant identity for service telemetry/manifests. Empty means
  /// "tenant<index>" at the position the service assigns.
  std::string name;
  /// First service round this tenant exists (0 = present from the start).
  /// Until then it is dormant: never admitted or stepped, and it holds no
  /// slice of the shared budget.
  uint64_t arrival_round = 0;
  /// Round at whose barrier the tenant is retired mid-run (0 = runs to
  /// completion). A departing tenant finalizes whatever it has simulated
  /// so far and releases its shared-pool frames immediately.
  uint64_t departure_round = 0;

  // ---- Builder -----------------------------------------------------------
  static TenantSpec Base(SimulationConfig base = PaperBaseConfig()) {
    TenantSpec spec;
    spec.config = std::move(base);
    return spec;
  }

  TenantSpec&& Named(std::string tenant_name) && {
    name = std::move(tenant_name);
    return std::move(*this);
  }
  /// Mid-run fleet membership (service only; see the fields above).
  TenantSpec&& ArrivingAtRound(uint64_t round) && {
    arrival_round = round;
    return std::move(*this);
  }
  TenantSpec&& DepartingAtRound(uint64_t round) && {
    departure_round = round;
    return std::move(*this);
  }

  // -- Heap knobs ----------------------------------------------------------
  /// Selection policy by registry name (see RegisterPolicy).
  TenantSpec&& WithPolicy(std::string policy_name) && {
    config.heap.policy_name = std::move(policy_name);
    return std::move(*this);
  }
  TenantSpec&& WithBufferPages(size_t pages) && {
    config.heap.buffer_pages = pages;
    return std::move(*this);
  }
  TenantSpec&& WithPartitionPages(size_t pages) && {
    config.heap.store.pages_per_partition = pages;
    return std::move(*this);
  }
  /// Overwrite-count collection trigger; 0 disables automatic collection.
  TenantSpec&& WithTrigger(uint32_t overwrites) && {
    config.heap.overwrite_trigger = overwrites;
    return std::move(*this);
  }
  /// Storage backend by registry spec ("disk", "ssd", "file:<path>").
  TenantSpec&& WithDevice(std::string device_spec) && {
    config.heap.device_spec = std::move(device_spec);
    return std::move(*this);
  }
  TenantSpec&& WithReplacement(ReplacementPolicyKind kind) && {
    config.heap.replacement = kind;
    return std::move(*this);
  }
  /// Run-telemetry sink (non-owning; must outlive the run).
  TenantSpec&& WithObserver(SimObserver* observer) && {
    config.heap.observer = observer;
    return std::move(*this);
  }

  // -- Workload knobs ------------------------------------------------------
  /// Seeds the workload generator and policy randomness.
  TenantSpec&& WithSeed(uint64_t seed) && {
    config.seed = seed;
    return std::move(*this);
  }
  /// Scales the workload to allocate this many bytes in total (the live
  /// target scales proportionally, as in the paper's Figure 6 sweep).
  TenantSpec&& WithTotalAllocation(uint64_t bytes) && {
    config.workload = config.workload.WithTotalAllocation(bytes);
    return std::move(*this);
  }
  TenantSpec&& WithTotalAllocationMb(uint64_t mb) && {
    return std::move(*this).WithTotalAllocation(mb << 20);
  }
  /// Database connectivity (pointers per object), the Table 5 sweep.
  TenantSpec&& WithConnectivity(double connectivity) && {
    config.workload = config.workload.WithConnectivity(connectivity);
    return std::move(*this);
  }
  TenantSpec&& WithWarmStart(bool enabled = true) && {
    config.warm_start = enabled;
    return std::move(*this);
  }
  /// Time-series sampling cadence (0 disables sampling).
  TenantSpec&& WithSnapshotInterval(uint64_t events) && {
    config.snapshot_interval = events;
    return std::move(*this);
  }
  /// Concurrent mutator mode (DESIGN.md §14).
  TenantSpec&& WithMutatorThreads(uint32_t mutators, uint32_t shards = 0) && {
    config.mutator_threads = mutators;
    config.trace_shards = shards;
    return std::move(*this);
  }

  /// Finishes the builder chain: the assembled run configuration.
  SimulationConfig Build() && { return std::move(config); }
};

/// A multi-tenant heap service run (service/heap_service.h): N tenants
/// over one shared frame budget and worker pool, with admission control
/// and cross-tenant collection scheduling at the round barriers.
struct ServiceSpec {
  std::vector<TenantSpec> tenants;
  /// Worker threads applying tenant batches; 1 = fully serial (and
  /// byte-stable, including observer event order).
  uint32_t threads = 1;
  /// Shared frame budget across every tenant's buffer pool, in frames.
  /// 0 (the default) means the sum of the tenant caps — no overcommit, no
  /// pressure. Benches set it *below* the sum to create pressure.
  uint64_t shared_frame_budget = 0;
  /// Admission watermark as a fraction of the shared budget in (0, 1]:
  /// when projected occupancy crosses it, tenant batches stall and the
  /// cross-tenant scheduler forces collections until occupancy retreats.
  /// 0 (the default) disables admission control and the scheduler — every
  /// tenant then replays exactly as a standalone Simulator run would,
  /// which is the service equivalence contract.
  double admission_watermark = 0.0;
  /// When non-empty, one canonical run manifest per tenant is written
  /// here: <dir>/<tenant>-<policy>-s<seed>.json.
  std::string manifest_dir;
  /// Service-wide telemetry sink (non-owning). Tenants publish through
  /// per-tenant serializing wrappers tagged with tenant index + 1, so one
  /// sink observes every tenant attributably.
  SimObserver* observer = nullptr;
  /// Events each admitted tenant applies per round. The round structure
  /// is part of the determinism contract (results are a pure function of
  /// the spec including this), so it is a spec field, not a tuning
  /// global.
  uint64_t events_per_batch = 256;
  /// Batches each admitted tenant applies per round (K-step batching).
  /// One worker wake services K * events_per_batch events before the next
  /// barrier, amortizing GlobalView refresh and TaskPool wake/park churn
  /// across K batches. Like events_per_batch this shapes the admission /
  /// forced-collection schedule, so it is part of the spec.
  uint64_t steps_per_round = 1;
  /// One physically shared BufferPool arena for the whole fleet (the
  /// default): a single frame array sized to the shared budget plus a
  /// lock-striped residency table, with each tenant's buffer_pages as its
  /// logical quota. At threads == 1 per-tenant results are byte-identical
  /// to private pools; false reverts to one private pool per tenant (the
  /// PR 9 baseline — the ledger shared, the frames not).
  bool shared_pool = true;

  // ---- Builder -----------------------------------------------------------
  static ServiceSpec Hosting(std::vector<TenantSpec> specs) {
    ServiceSpec spec;
    spec.tenants = std::move(specs);
    return spec;
  }
  ServiceSpec&& AddTenant(TenantSpec tenant) && {
    tenants.push_back(std::move(tenant));
    return std::move(*this);
  }
  ServiceSpec&& WithThreads(uint32_t count) && {
    threads = count;
    return std::move(*this);
  }
  ServiceSpec&& WithFrameBudget(uint64_t frames) && {
    shared_frame_budget = frames;
    return std::move(*this);
  }
  ServiceSpec&& WithWatermark(double fraction) && {
    admission_watermark = fraction;
    return std::move(*this);
  }
  ServiceSpec&& WithManifestDir(std::string dir) && {
    manifest_dir = std::move(dir);
    return std::move(*this);
  }
  ServiceSpec&& WithObserver(SimObserver* sink) && {
    observer = sink;
    return std::move(*this);
  }
  ServiceSpec&& WithEventsPerBatch(uint64_t events) && {
    events_per_batch = events;
    return std::move(*this);
  }
  ServiceSpec&& WithStepsPerRound(uint64_t steps) && {
    steps_per_round = steps;
    return std::move(*this);
  }
  ServiceSpec&& WithSharedPool(bool shared) && {
    shared_pool = shared;
    return std::move(*this);
  }
};

}  // namespace odbgc

#endif  // ODBGC_SIM_SPEC_H_
