#include "sim/config.h"

#include <algorithm>

namespace odbgc {

SimulationConfig PaperBaseConfig() {
  SimulationConfig config;
  config.heap.store.page_size = kDefaultPageSize;
  config.heap.store.pages_per_partition = 48;
  config.heap.buffer_pages = 48;
  config.heap.overwrite_trigger = 150;
  // WorkloadConfig defaults are already the Section 5 base database.
  return config;
}

SimulationConfig ScaledConfig(uint64_t total_alloc_bytes) {
  SimulationConfig config = PaperBaseConfig();
  config.workload = config.workload.WithTotalAllocation(total_alloc_bytes);

  // Partition size scales 24 -> 100 pages as the run scales 4 -> 40 MB of
  // total allocation, clamped at the ends (paper, Sections 4.1 and 6.4).
  const double mb = static_cast<double>(total_alloc_bytes) / (1 << 20);
  const double t = std::clamp((mb - 4.0) / (40.0 - 4.0), 0.0, 1.0);
  const size_t pages = static_cast<size_t>(24.0 + t * (100.0 - 24.0) + 0.5);
  config.heap.store.pages_per_partition = pages;
  config.heap.buffer_pages = pages;  // Buffer = one partition, as in the paper.
  return config;
}

}  // namespace odbgc
