#ifndef ODBGC_SIM_SIMULATOR_H_
#define ODBGC_SIM_SIMULATOR_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>

#include "core/heap.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "trace/event.h"
#include "util/status.h"

namespace odbgc {

/// Replays a stream of trace events against a CollectedHeap and measures
/// the outcome — the trace-driven simulation at the heart of the paper's
/// method. The simulator is a TraceSink, so events can come live from a
/// WorkloadGenerator or from a TraceReader over a captured file.
///
/// Time advances one unit per application event; collector-internal work
/// does not advance time (paper, Section 6.3).
class Simulator : public TraceSink {
 public:
  explicit Simulator(const SimulationConfig& config);

  /// Applies one application event. Logical ids in the trace are mapped to
  /// store ObjectIds on first sight (at their Alloc).
  Status Append(const TraceEvent& event) override;

  /// Convenience: generates the configured workload (seeded from the
  /// config) and replays it.
  Status Run();

  /// Finalizes measurements (runs the end-of-run census) and returns the
  /// result. Call once, after the events have been applied.
  SimulationResult Finish();

  CollectedHeap& heap() { return *heap_; }
  const CollectedHeap& heap() const { return *heap_; }
  uint64_t events_applied() const { return events_; }

  /// The warm-start measurement reset Run() performs after the build
  /// phase, exposed so a durable engine driving the generator round by
  /// round (src/recovery/) can reproduce Run()'s behaviour exactly.
  void ResetMeasurementForWarmStart();

  /// Serializes the complete simulation state — the heap's store image and
  /// runtime state, the logical-id map, event/snapshot counters and the
  /// time series — such that FromCheckpoint yields a simulator whose
  /// remaining run is bit-identical to this one's. IoError on stream
  /// failure.
  Status SaveCheckpointState(std::ostream& out) const;

  /// Reconstructs a simulator from SaveCheckpointState bytes. `config`
  /// must match the checkpointed run's configuration (geometry and policy
  /// are cross-checked; the rest is the caller's contract, as with any
  /// seed-determinism argument). Corruption on malformed bytes.
  static Result<std::unique_ptr<Simulator>> FromCheckpoint(
      const SimulationConfig& config, std::istream& in);

 private:
  struct RestoreTag {};
  Simulator(const SimulationConfig& config, RestoreTag) : config_(config) {}

  void MaybeSnapshot();

  // Runs a census into census_scratch_ and refreshes the cache fields.
  void RunCensus();

  SimulationConfig config_;
  std::unique_ptr<CollectedHeap> heap_;
  std::unordered_map<uint64_t, ObjectId> id_map_;
  uint64_t events_ = 0;
  uint64_t next_snapshot_ = 0;
  TimeSeries unreclaimed_garbage_kb_{"unreclaimed_garbage_kb"};
  TimeSeries database_size_kb_{"database_size_kb"};

  // Census machinery reused across snapshots, plus a cache so Finish()
  // skips the duplicate census when a snapshot census already ran at the
  // current event count. The census is a pure function of store state, so
  // neither the engine nor the cache is checkpointed: a resumed run
  // recomputes identical values. The cache records the heap counters it
  // was computed under and is discarded if any of them moved (e.g. a
  // driver collecting or mutating the heap directly between events).
  ReachabilityAnalyzer census_engine_;
  GarbageCensus census_scratch_;
  bool census_cache_valid_ = false;
  uint64_t census_cache_events_ = 0;
  uint64_t census_cache_heap_fingerprint_ = 0;
  uint64_t cached_garbage_bytes_ = 0;
  uint64_t cached_live_bytes_ = 0;

  // Cheap summary of every heap counter that can move when the object
  // graph changes; used to guard the census cache.
  uint64_t HeapFingerprint() const;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_SIMULATOR_H_
