#ifndef ODBGC_SIM_SIMULATOR_H_
#define ODBGC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/heap.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "trace/event.h"
#include "util/status.h"

namespace odbgc {

/// Replays a stream of trace events against a CollectedHeap and measures
/// the outcome — the trace-driven simulation at the heart of the paper's
/// method. The simulator is a TraceSink, so events can come live from a
/// WorkloadGenerator or from a TraceReader over a captured file.
///
/// Time advances one unit per application event; collector-internal work
/// does not advance time (paper, Section 6.3).
class Simulator : public TraceSink {
 public:
  explicit Simulator(const SimulationConfig& config);

  /// Applies one application event. Logical ids in the trace are mapped to
  /// store ObjectIds on first sight (at their Alloc).
  Status Append(const TraceEvent& event) override;

  /// Convenience: generates the configured workload (seeded from the
  /// config) and replays it.
  Status Run();

  /// Finalizes measurements (runs the end-of-run census) and returns the
  /// result. Call once, after the events have been applied.
  SimulationResult Finish();

  CollectedHeap& heap() { return *heap_; }
  const CollectedHeap& heap() const { return *heap_; }
  uint64_t events_applied() const { return events_; }

 private:
  void MaybeSnapshot();

  SimulationConfig config_;
  std::unique_ptr<CollectedHeap> heap_;
  std::unordered_map<uint64_t, ObjectId> id_map_;
  uint64_t events_ = 0;
  uint64_t next_snapshot_ = 0;
  TimeSeries unreclaimed_garbage_kb_{"unreclaimed_garbage_kb"};
  TimeSeries database_size_kb_{"database_size_kb"};
};

}  // namespace odbgc

#endif  // ODBGC_SIM_SIMULATOR_H_
