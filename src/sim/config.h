#ifndef ODBGC_SIM_CONFIG_H_
#define ODBGC_SIM_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/heap.h"
#include "workload/workload_config.h"

namespace odbgc {

/// How a concurrent run's shards are scheduled onto mutator threads
/// (DESIGN.md §15). Pure scheduling — aggregate results are bitwise
/// identical under either (and under any thread count), which is what
/// lets the scheduler be a performance knob instead of an experiment
/// axis.
enum class ShardSchedulerKind {
  /// Work-stealing (the default): each shard's event stream is cut into
  /// epoch-sized batches that run as tasks on a shared work-stealing
  /// pool, so a thread that finishes its shards steals batch work —
  /// including parallel-marking strips — from loaded ones. Skew-resistant:
  /// one oversized shard no longer pins the run to one core's throughput.
  kWorkStealing,
  /// The PR 7 baseline: threads pull whole shards from a shared queue and
  /// run each to completion (greedy, no preemption, serial marking).
  /// Kept selectable for A/B scheduler benchmarking
  /// (bench/mt_barrier_heavy.cc) and as the fallback of record.
  kPullQueue,
};

/// One simulation run: a heap configuration, a workload, and a seed.
/// Replaying the same (workload, seed) against heaps that differ only in
/// policy is the paper's controlled comparison.
struct SimulationConfig {
  HeapOptions heap;
  WorkloadConfig workload;
  /// Seeds the workload generator and the policy's randomness.
  uint64_t seed = 1;
  /// Application events between time-series samples; 0 disables sampling.
  uint64_t snapshot_interval = 0;
  /// If sampling, also run a garbage census per sample (Figure 4's
  /// unreclaimed-garbage curve). Costless in simulated I/O.
  bool census_at_snapshots = true;
  /// Warm start (paper, Section 5): build the initial database, then
  /// reset all measurements (keeping the buffer contents warm) so the
  /// reported numbers cover only the mutation phase. The paper ran cold
  /// starts and argued the choice only lessens policy differentiation —
  /// the warm_start ablation checks that claim.
  bool warm_start = false;
  /// Durability (src/recovery/): snapshot the full simulation state every
  /// this-many workload rounds and rotate the write-ahead log. 0 disables
  /// checkpointing (the WAL alone still allows replay from the start).
  uint32_t checkpoint_every_rounds = 0;
  /// Directory for WAL segments and checkpoint files. Empty disables
  /// durability entirely (the default: plain in-memory simulation).
  std::string wal_dir;
  /// Concurrency (DESIGN.md §14): mutator threads replaying the run's
  /// workload shards against per-shard heaps under a shared epoch
  /// manager. 1 (the default) is plain serial simulation through
  /// Simulator; >1 routes through ConcurrentSimulator. Must not exceed
  /// the shard count (a thread with no shard to own is a configuration
  /// error, rejected at Run). An experiment axis: recorded in manifests
  /// but excluded from the config digest, because the aggregate result
  /// is thread-count-invariant (the equivalence suite enforces this).
  uint32_t mutator_threads = 1;
  /// Number of deterministic workload shards a concurrent run splits the
  /// allocation volume across (each shard is an independently seeded
  /// generator stream — the determinism unit, fixed while
  /// mutator_threads varies). 0 (the default) means one shard per
  /// mutator thread. Ignored in serial runs.
  uint32_t trace_shards = 0;
  /// Shard-to-thread scheduling strategy for concurrent runs. Not an
  /// experiment axis (results are scheduler-invariant); not recorded in
  /// manifests.
  ShardSchedulerKind shard_scheduler = ShardSchedulerKind::kWorkStealing;
  /// Optional per-shard workload weights: shard i receives a slice of the
  /// total allocation volume proportional to shard_weights[i] (floor-of-
  /// cumulative-sums split, so slices always telescope to the exact
  /// total). Empty (the default) keeps the equal split. Size must equal
  /// the shard count and weights must be positive (validated at Run).
  /// A bench/test knob for skewed-load scheduling experiments — like the
  /// scheduler, deliberately not part of manifests.
  std::vector<double> shard_weights;
};

/// The paper's base configuration (Tables 2-4): 48-page partitions and
/// buffer, ~5 MB live / ~11 MB allocated, trigger = 200 overwrites,
/// connectivity ~1.08.
SimulationConfig PaperBaseConfig();

/// The Figure 6 scaling rule: a configuration whose workload allocates
/// `total_alloc_bytes` in total, with partition and buffer size scaled
/// between 24 and 100 pages across the paper's 4..40 MB range.
SimulationConfig ScaledConfig(uint64_t total_alloc_bytes);

}  // namespace odbgc

#endif  // ODBGC_SIM_CONFIG_H_
