#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "core/reachability.h"
#include "odb/store_image.h"
#include "util/phase_timer.h"
#include "util/serde.h"
#include "workload/generator.h"

namespace odbgc {

namespace {

void SaveTimeSeries(std::ostream& out, const TimeSeries& series) {
  PutVarint(out, series.points().size());
  for (const TimeSeries::Point& point : series.points()) {
    PutDouble(out, point.x);
    PutDouble(out, point.y);
  }
}

Result<TimeSeries> LoadTimeSeries(std::istream& in, const char* name) {
  auto count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(count.status());
  TimeSeries series{std::string(name)};
  for (uint64_t i = 0; i < *count; ++i) {
    auto x = GetDouble(in);
    ODBGC_RETURN_IF_ERROR(x.status());
    auto y = GetDouble(in);
    ODBGC_RETURN_IF_ERROR(y.status());
    series.Add(*x, *y);
  }
  return series;
}

}  // namespace

Simulator::Simulator(const SimulationConfig& config) : config_(config) {
  HeapOptions heap_options = config_.heap;
  heap_options.seed = config_.seed;  // Policy randomness follows the run seed.
  heap_ = std::make_unique<CollectedHeap>(heap_options);
  if (heap_options.parallel_marking_threads >= 2) {
    // The snapshot census engine marks on the same pool as the heap's
    // oracle census — one set of marking workers per heap.
    census_engine_.EnableParallelMarking(heap_->core().marking_pool(),
                                         heap_options.parallel_marking_threads);
  }
  if (SimObserver* observer = heap_->options().observer) {
    RunStartedEvent event;
    event.policy = heap_->options().policy_name;
    event.seed = config_.seed;
    observer->OnRunStarted(event);
  }
  next_snapshot_ = config_.snapshot_interval;
  // Pre-size the logical-id map for the whole run (one entry per Alloc)
  // so replay never pays an incremental rehash.
  id_map_.reserve(config_.workload.ExpectedObjectCount());
}

Status Simulator::Append(const TraceEvent& event) {
  ScopedWallTimer apply_timer(heap_->options().profile_hot_paths
                                  ? heap_->wall_timers()->trace_apply
                                  : nullptr);
  auto resolve = [this](uint64_t logical) -> Result<ObjectId> {
    if (logical == 0) return kNullObjectId;
    auto it = id_map_.find(logical);
    if (it == id_map_.end()) {
      return Status::NotFound("trace references unknown object " +
                              std::to_string(logical));
    }
    return it->second;
  };

  switch (event.kind) {
    case EventKind::kAlloc: {
      auto parent = resolve(event.parent_hint);
      // A stale placement hint is tolerable (the referent may have been
      // deleted in a foreign trace); fall back to no hint.
      const ObjectId hint = parent.ok() ? *parent : kNullObjectId;
      auto id = heap_->Allocate(event.size, event.num_slots, hint,
                                event.flags);
      ODBGC_RETURN_IF_ERROR(id.status());
      if (!id_map_.emplace(event.object, *id).second) {
        return Status::Corruption("trace allocates duplicate object id " +
                                  std::to_string(event.object));
      }
      break;
    }
    case EventKind::kWriteSlot: {
      auto source = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(source.status());
      auto target = resolve(event.target);
      ODBGC_RETURN_IF_ERROR(target.status());
      ODBGC_RETURN_IF_ERROR(heap_->WriteSlot(*source, event.slot, *target));
      break;
    }
    case EventKind::kReadSlot: {
      auto source = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(source.status());
      ODBGC_RETURN_IF_ERROR(heap_->ReadSlot(*source, event.slot).status());
      break;
    }
    case EventKind::kVisit: {
      auto object = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(object.status());
      ODBGC_RETURN_IF_ERROR(heap_->VisitObject(*object));
      break;
    }
    case EventKind::kWriteData: {
      auto object = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(object.status());
      ODBGC_RETURN_IF_ERROR(heap_->WriteData(*object));
      break;
    }
    case EventKind::kAddRoot: {
      auto object = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(object.status());
      ODBGC_RETURN_IF_ERROR(heap_->AddRoot(*object));
      break;
    }
    case EventKind::kRemoveRoot: {
      auto object = resolve(event.object);
      ODBGC_RETURN_IF_ERROR(object.status());
      ODBGC_RETURN_IF_ERROR(heap_->RemoveRoot(*object));
      break;
    }
  }

  ++events_;
  MaybeSnapshot();
  return Status::Ok();
}

void Simulator::MaybeSnapshot() {
  if (config_.snapshot_interval == 0 || events_ < next_snapshot_) return;
  next_snapshot_ += config_.snapshot_interval;

  const double x = static_cast<double>(events_);
  database_size_kb_.Add(
      x, static_cast<double>(heap_->store().total_bytes()) / 1024.0);
  if (config_.census_at_snapshots) {
    RunCensus();
    unreclaimed_garbage_kb_.Add(
        x, static_cast<double>(cached_garbage_bytes_) / 1024.0);
  }
}

uint64_t Simulator::HeapFingerprint() const {
  const HeapStats& s = heap_->stats();
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the counters.
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(s.objects_allocated);
  mix(s.pointer_stores);
  mix(s.pointer_overwrites);
  mix(s.collections);
  mix(s.full_collections);
  mix(s.garbage_bytes_reclaimed);
  mix(heap_->store().roots().size());
  return h;
}

void Simulator::RunCensus() {
  SimObserver* const observer = heap_->options().observer;
  const auto phase_start = observer != nullptr
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  {
    ScopedWallTimer timer(heap_->wall_timers()->census);
    census_engine_.CensusInto(heap_->store(), &census_scratch_);
  }
  if (observer != nullptr) {
    PhaseEvent event;
    event.phase = "census";
    event.wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - phase_start)
            .count());
    observer->OnPhase(event);
  }
  census_cache_valid_ = true;
  census_cache_events_ = events_;
  census_cache_heap_fingerprint_ = HeapFingerprint();
  cached_garbage_bytes_ = census_scratch_.total_garbage_bytes;
  cached_live_bytes_ = census_scratch_.total_live_bytes;
}

void Simulator::ResetMeasurementForWarmStart() {
  // Measurements restart; the database and buffer contents stay warm.
  heap_->ResetMeasurement();
  events_ = 0;
  next_snapshot_ = config_.snapshot_interval;
  census_cache_valid_ = false;
  unreclaimed_garbage_kb_ = TimeSeries("unreclaimed_garbage_kb");
  database_size_kb_ = TimeSeries("database_size_kb");
}

Status Simulator::Run() {
  WorkloadGenerator generator(config_.workload, config_.seed);
  if (config_.warm_start) {
    ODBGC_RETURN_IF_ERROR(generator.BuildInitialDatabase(this));
    ResetMeasurementForWarmStart();
  }
  return generator.Generate(this);
}

Status Simulator::SaveCheckpointState(std::ostream& out) const {
  ODBGC_RETURN_IF_ERROR(WriteStoreImage(heap_->ExtractImage(), &out));
  heap_->SaveRuntimeState(out);

  std::vector<std::pair<uint64_t, uint64_t>> ids;
  ids.reserve(id_map_.size());
  for (const auto& [logical, object] : id_map_) {
    ids.emplace_back(logical, object.value);
  }
  std::sort(ids.begin(), ids.end());
  PutVarint(out, ids.size());
  for (const auto& [logical, object] : ids) {
    PutVarint(out, logical);
    PutVarint(out, object);
  }

  PutVarint(out, events_);
  PutVarint(out, next_snapshot_);
  SaveTimeSeries(out, unreclaimed_garbage_kb_);
  SaveTimeSeries(out, database_size_kb_);
  return out.good() ? Status::Ok()
                    : Status::IoError("checkpoint state write failed");
}

Result<std::unique_ptr<Simulator>> Simulator::FromCheckpoint(
    const SimulationConfig& config, std::istream& in) {
  auto image = ReadStoreImage(&in);
  ODBGC_RETURN_IF_ERROR(image.status());

  HeapOptions heap_options = config.heap;
  heap_options.seed = config.seed;
  auto heap = CollectedHeap::FromImage(heap_options, *image);
  ODBGC_RETURN_IF_ERROR(heap.status());

  auto sim = std::unique_ptr<Simulator>(new Simulator(config, RestoreTag{}));
  sim->heap_ = std::move(heap).value();
  ODBGC_RETURN_IF_ERROR(sim->heap_->LoadRuntimeState(in));

  auto id_count = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(id_count.status());
  sim->id_map_.reserve(*id_count);
  for (uint64_t i = 0; i < *id_count; ++i) {
    auto logical = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(logical.status());
    auto object = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(object.status());
    if (!sim->id_map_.emplace(*logical, ObjectId{*object}).second) {
      return Status::Corruption("checkpoint duplicate logical id");
    }
  }

  auto events = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(events.status());
  sim->events_ = *events;
  auto next_snapshot = GetVarint(in);
  ODBGC_RETURN_IF_ERROR(next_snapshot.status());
  sim->next_snapshot_ = *next_snapshot;

  auto garbage = LoadTimeSeries(in, "unreclaimed_garbage_kb");
  ODBGC_RETURN_IF_ERROR(garbage.status());
  sim->unreclaimed_garbage_kb_ = std::move(garbage).value();
  auto size = LoadTimeSeries(in, "database_size_kb");
  ODBGC_RETURN_IF_ERROR(size.status());
  sim->database_size_kb_ = std::move(size).value();
  return sim;
}

SimulationResult Simulator::Finish() {
  SimulationResult result;
  result.policy = heap_->options().policy;
  result.policy_name = heap_->options().policy_name;
  result.seed = config_.seed;
  result.device = heap_->options().device;
  result.replacement = heap_->options().replacement;
  result.app_events = events_;

  const BufferStats buffer = heap_->buffer().stats();
  result.app_io = buffer.app_io();
  result.gc_io = buffer.gc_io();
  result.buffer_stats = buffer;
  result.disk_stats = heap_->disk().stats();
  result.estimated_device_time_ms = heap_->disk().EstimateTimeMs();
  result.measured = heap_->device().MeasuredStats();
  result.metrics = heap_->metrics()->Snapshot();

  const HeapStats& heap_stats = heap_->stats();
  result.heap_stats = heap_stats;
  result.max_storage_bytes = heap_stats.max_total_bytes;
  result.max_partitions = heap_stats.max_partitions;
  result.final_partitions = heap_->store().partition_count();
  result.collections = heap_stats.collections;
  result.garbage_reclaimed_bytes = heap_stats.garbage_bytes_reclaimed;
  result.live_bytes_copied = heap_stats.live_bytes_copied;
  result.bytes_allocated = heap_stats.bytes_allocated;
  result.pointer_overwrites = heap_stats.pointer_overwrites;

  // Reuse the snapshot census if one already ran at this exact event
  // count with the heap untouched since (the common census_at_snapshots
  // case, where the last snapshot lands on the final event).
  if (!(census_cache_valid_ && census_cache_events_ == events_ &&
        census_cache_heap_fingerprint_ == HeapFingerprint())) {
    RunCensus();
  }
  result.unreclaimed_garbage_bytes = cached_garbage_bytes_;
  result.final_live_bytes = cached_live_bytes_;
  result.remset_entries = heap_->index().entry_count();

  result.unreclaimed_garbage_kb = unreclaimed_garbage_kb_;
  result.database_size_kb = database_size_kb_;

  if (SimObserver* observer = heap_->options().observer) {
    RunFinishedEvent event;
    event.policy = result.policy_name;
    event.seed = result.seed;
    event.app_events = result.app_events;
    event.app_io = result.app_io;
    event.gc_io = result.gc_io;
    event.garbage_reclaimed_bytes = result.garbage_reclaimed_bytes;
    observer->OnRunFinished(event);
  }
  return result;
}

}  // namespace odbgc
