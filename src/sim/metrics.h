#ifndef ODBGC_SIM_METRICS_H_
#define ODBGC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/replacement_policy.h"
#include "core/heap.h"
#include "core/selection_policy.h"
#include "storage/disk.h"
#include "storage/page_device.h"
#include "util/metrics_registry.h"
#include "util/time_series.h"

namespace odbgc {

/// Everything measured in one simulation run — the raw material for every
/// table and figure in the paper's Section 6.
struct SimulationResult {
  /// Behaviour class of the policy the run used; `policy_name` is the
  /// identity (distinct extension policies share a kind).
  PolicyKind policy = PolicyKind::kUpdatedPointer;
  /// Registry name of the policy the run used (SelectionPolicy::name()).
  std::string policy_name;
  uint64_t seed = 0;

  /// I/O subsystem configuration the run used.
  DeviceKind device = DeviceKind::kSimulatedDisk;
  ReplacementPolicyKind replacement = ReplacementPolicyKind::kLru;

  /// Application events replayed (the paper's time axis).
  uint64_t app_events = 0;

  /// Page I/O split (Table 2).
  uint64_t app_io = 0;
  uint64_t gc_io = 0;
  uint64_t total_io() const { return app_io + gc_io; }

  /// Space (Table 3): high-water footprint, in bytes, and partition counts.
  uint64_t max_storage_bytes = 0;
  uint64_t max_partitions = 0;
  uint64_t final_partitions = 0;

  /// Collection effectiveness (Table 4).
  uint64_t collections = 0;
  uint64_t garbage_reclaimed_bytes = 0;
  uint64_t live_bytes_copied = 0;
  /// Garbage never reclaimed, from the end-of-run census.
  uint64_t unreclaimed_garbage_bytes = 0;
  /// Everything that became garbage over the run (reclaimed + remaining).
  uint64_t actual_garbage_bytes() const {
    return garbage_reclaimed_bytes + unreclaimed_garbage_bytes;
  }
  /// Fraction of actual garbage reclaimed, in percent.
  double FractionReclaimedPct() const {
    const uint64_t actual = actual_garbage_bytes();
    return actual == 0 ? 0.0
                       : 100.0 * static_cast<double>(garbage_reclaimed_bytes) /
                             static_cast<double>(actual);
  }
  /// Collector efficiency: KB of garbage reclaimed per collector page I/O.
  double EfficiencyKbPerIo() const {
    return gc_io == 0 ? 0.0
                      : static_cast<double>(garbage_reclaimed_bytes) / 1024.0 /
                            static_cast<double>(gc_io);
  }

  /// Final live data (census).
  uint64_t final_live_bytes = 0;

  /// Inter-partition pointer entries at end of run — the space cost of
  /// the remembered sets the paper counts against partitioned collection.
  uint64_t remset_entries = 0;

  /// Workload totals (identical across policies for the same seed).
  uint64_t bytes_allocated = 0;
  uint64_t pointer_overwrites = 0;

  /// Time series (only if snapshot_interval > 0): x = application events,
  /// y = kilobytes.
  TimeSeries unreclaimed_garbage_kb;
  TimeSeries database_size_kb;

  /// Estimated wall time of all device transfers under the backend's own
  /// cost model (seek/rotation/transfer for the disk; read/program/erase
  /// for the SSD) — the "more detailed cost model" of Section 4.2.
  double estimated_device_time_ms = 0.0;

  /// Measured (real wall-clock) I/O activity, for backends that perform
  /// actual system calls ("file"); `measured.measured` is false and every
  /// field zero for in-memory backends. Deliberately OUTSIDE the
  /// deterministic result surface: equivalence tests compare everything
  /// except this field, and manifests carry it in a separate top-level
  /// section excluded from the config digest.
  MeasuredIoStats measured;

  /// End-to-end wall-clock seconds of this run, stamped by the experiment
  /// runner when the spec opts in (ExperimentSpec::record_timing). Like
  /// `measured`, deliberately OUTSIDE the deterministic result surface:
  /// equivalence tests ignore it and manifests carry it in a separate
  /// top-level "timing" section excluded from the config digest. Zero
  /// when timing was not recorded.
  double run_wall_seconds = 0.0;

  /// Full component stats for deeper inspection.
  HeapStats heap_stats;
  BufferStats buffer_stats;
  DiskStats disk_stats;

  /// Every named counter in the run's metrics registry, with per-phase
  /// attribution (sorted by name; includes device-specific counters like
  /// the SSD's erases).
  std::vector<MetricSample> metrics;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_METRICS_H_
