#include "sim/report.h"

#include <algorithm>

#include "util/table_printer.h"

namespace odbgc {

std::vector<PolicySummary> Summarize(const Experiment& experiment) {
  const PolicyRuns* baseline =
      experiment.Find(std::string(PolicyName(PolicyKind::kMostGarbage)));
  // Hand-built experiments may key sets only by kind.
  if (baseline == nullptr) {
    baseline = experiment.Find(PolicyKind::kMostGarbage);
  }

  std::vector<PolicySummary> summaries;
  for (const PolicyRuns& set : experiment.sets) {
    PolicySummary s;
    // Hand-built sets may carry only the kind; fall back to its name.
    s.name = set.name.empty() ? PolicyName(set.policy) : set.name;
    s.policy = set.policy;
    for (size_t i = 0; i < set.runs.size(); ++i) {
      const SimulationResult& run = set.runs[i];
      s.app_io.Add(static_cast<double>(run.app_io));
      s.gc_io.Add(static_cast<double>(run.gc_io));
      s.total_io.Add(static_cast<double>(run.total_io()));
      s.max_storage_kb.Add(static_cast<double>(run.max_storage_bytes) /
                           1024.0);
      s.max_partitions.Add(static_cast<double>(run.max_partitions));
      s.reclaimed_kb.Add(static_cast<double>(run.garbage_reclaimed_bytes) /
                         1024.0);
      s.fraction_reclaimed_pct.Add(run.FractionReclaimedPct());
      s.efficiency_kb_per_io.Add(run.EfficiencyKbPerIo());
      s.collections.Add(static_cast<double>(run.collections));
      s.actual_garbage_kb.Add(static_cast<double>(run.actual_garbage_bytes()) /
                              1024.0);
      s.device_time_ms.Add(run.estimated_device_time_ms);
      if (run.measured.measured) {
        s.measured_io_ms.Add(run.measured.wall_ms);
        s.any_measured = true;
      }

      if (baseline != nullptr && i < baseline->runs.size()) {
        const SimulationResult& ref = baseline->runs[i];
        if (ref.total_io() > 0) {
          s.relative_total_io.Add(static_cast<double>(run.total_io()) /
                                  static_cast<double>(ref.total_io()));
        }
        if (ref.max_storage_bytes > 0) {
          s.relative_max_storage.Add(
              static_cast<double>(run.max_storage_bytes) /
              static_cast<double>(ref.max_storage_bytes));
        }
        if (ref.EfficiencyKbPerIo() > 0) {
          s.relative_efficiency.Add(run.EfficiencyKbPerIo() /
                                    ref.EfficiencyKbPerIo());
        }
        if (ref.estimated_device_time_ms > 0) {
          s.relative_device_time.Add(run.estimated_device_time_ms /
                                     ref.estimated_device_time_ms);
        }
      }
    }
    summaries.push_back(std::move(s));
  }
  return summaries;
}

void PrintThroughputTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os) {
  os << "Throughput as Number of Page I/O Operations"
        " (Relative is MostGarbage = 1)\n";
  TablePrinter t({"Selection Policy", "App I/Os Mean", "Std Dev",
                  "Collector I/Os Mean", "Std Dev", "Total I/Os Mean",
                  "Relative Mean", "Std Dev"});
  for (const PolicySummary& s : summaries) {
    t.AddRow({s.name, FormatCount(s.app_io.mean()),
              FormatCount(s.app_io.stddev()), FormatCount(s.gc_io.mean()),
              FormatCount(s.gc_io.stddev()), FormatCount(s.total_io.mean()),
              FormatDouble(s.relative_total_io.mean(), 3),
              FormatDouble(s.relative_total_io.stddev(), 3)});
  }
  t.Print(os);
}

void PrintStorageTable(const std::vector<PolicySummary>& summaries,
                       std::ostream& os) {
  os << "Maximum Storage Space Usage (Relative is MostGarbage = 1)\n";
  TablePrinter t({"Selection Policy", "Max Storage (KB) Mean", "Std Dev",
                  "Relative Mean", "# Partitions Mean", "Std Dev"});
  for (const PolicySummary& s : summaries) {
    t.AddRow({s.name, FormatCount(s.max_storage_kb.mean()),
              FormatCount(s.max_storage_kb.stddev()),
              FormatDouble(s.relative_max_storage.mean(), 3),
              FormatDouble(s.max_partitions.mean(), 1),
              FormatDouble(s.max_partitions.stddev(), 2)});
  }
  t.Print(os);
}

void PrintEfficiencyTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os) {
  os << "Collector Effectiveness and Efficiency"
        " (Relative is MostGarbage = 1)\n";
  TablePrinter t({"Selection Policy", "Garbage Reclaimed (KB) Mean",
                  "Std Dev", "Fraction of Garbage (%) Mean", "Std Dev",
                  "Efficiency (KB per I/O)", "Relative Efficiency"});
  for (const PolicySummary& s : summaries) {
    t.AddRow({s.name, FormatCount(s.reclaimed_kb.mean()),
              FormatCount(s.reclaimed_kb.stddev()),
              FormatDouble(s.fraction_reclaimed_pct.mean(), 2),
              FormatDouble(s.fraction_reclaimed_pct.stddev(), 2),
              FormatDouble(s.efficiency_kb_per_io.mean(), 2),
              FormatDouble(s.relative_efficiency.mean(), 2)});
  }
  if (!summaries.empty()) {
    t.AddSeparator();
    // The "Actual Garbage" row is a property of the traces, identical for
    // every policy; report it from the first summary.
    const PolicySummary& any = summaries.front();
    t.AddRow({"Actual Garbage", FormatCount(any.actual_garbage_kb.mean()),
              FormatCount(any.actual_garbage_kb.stddev()), "", "", "", ""});
  }
  t.Print(os);
}

void PrintDeviceTimeTable(const std::vector<PolicySummary>& summaries,
                          std::ostream& os) {
  // When any run executed on a real-I/O backend, its wall-clock I/O time
  // is shown beside the model's estimate — the estimate ranks policies,
  // the measurement grounds the model.
  bool any_measured = false;
  for (const PolicySummary& s : summaries) any_measured |= s.any_measured;

  os << "Estimated Device Time (Relative is MostGarbage = 1)\n";
  if (!any_measured) {
    TablePrinter t({"Selection Policy", "Device Time (ms) Mean", "Std Dev",
                    "Relative Mean", "Std Dev"});
    for (const PolicySummary& s : summaries) {
      t.AddRow({s.name, FormatCount(s.device_time_ms.mean()),
                FormatCount(s.device_time_ms.stddev()),
                FormatDouble(s.relative_device_time.mean(), 3),
                FormatDouble(s.relative_device_time.stddev(), 3)});
    }
    t.Print(os);
    return;
  }
  TablePrinter t({"Selection Policy", "Estimated (ms) Mean", "Std Dev",
                  "Measured (ms) Mean", "Std Dev", "Relative Mean",
                  "Std Dev"});
  for (const PolicySummary& s : summaries) {
    t.AddRow({s.name, FormatCount(s.device_time_ms.mean()),
              FormatCount(s.device_time_ms.stddev()),
              s.any_measured ? FormatCount(s.measured_io_ms.mean()) : "-",
              s.any_measured ? FormatCount(s.measured_io_ms.stddev()) : "-",
              FormatDouble(s.relative_device_time.mean(), 3),
              FormatDouble(s.relative_device_time.stddev(), 3)});
  }
  t.Print(os);
}

}  // namespace odbgc
