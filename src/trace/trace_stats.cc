#include "trace/trace_stats.h"

#include "util/table_printer.h"

namespace odbgc {

namespace {
uint64_t SlotKey(uint64_t object, uint32_t slot) {
  return (object << 8) | (slot & 0xff);
}
}  // namespace

Status TraceStatsCollector::Append(const TraceEvent& event) {
  ++stats_.events;
  switch (event.kind) {
    case EventKind::kAlloc:
      ++stats_.allocs;
      stats_.bytes_allocated += event.size;
      if (event.flags != 0) {
        ++stats_.large_allocs;
        stats_.large_bytes_allocated += event.size;
      } else {
        small_bytes_ += event.size;
      }
      break;
    case EventKind::kWriteSlot: {
      ++stats_.slot_writes;
      const uint64_t key = SlotKey(event.object, event.slot);
      auto it = slot_values_.find(key);
      const uint64_t old_value = it == slot_values_.end() ? 0 : it->second;
      if (event.target != 0) {
        ++stats_.pointer_stores;
        if (old_value != 0) ++stats_.pointer_overwrites;
        slot_values_[key] = event.target;
      } else {
        if (old_value != 0) {
          ++stats_.pointer_overwrites;
          ++stats_.null_clears;
        }
        slot_values_.erase(key);
      }
      break;
    }
    case EventKind::kReadSlot:
      ++stats_.slot_reads;
      break;
    case EventKind::kVisit:
      ++stats_.visits;
      break;
    case EventKind::kWriteData:
      ++stats_.data_writes;
      break;
    case EventKind::kAddRoot:
      ++stats_.root_adds;
      break;
    case EventKind::kRemoveRoot:
      ++stats_.root_removes;
      break;
  }
  return Status::Ok();
}

double TraceStatsCollector::Stats::MeanSmallObjectSize() const {
  const uint64_t small = allocs - large_allocs;
  if (small == 0) return 0.0;
  return static_cast<double>(bytes_allocated - large_bytes_allocated) /
         static_cast<double>(small);
}

double TraceStatsCollector::Stats::LargeSpaceFraction() const {
  if (bytes_allocated == 0) return 0.0;
  return static_cast<double>(large_bytes_allocated) /
         static_cast<double>(bytes_allocated);
}

double TraceStatsCollector::Stats::EdgeReadWriteRatio() const {
  if (slot_writes == 0) return 0.0;
  return static_cast<double>(slot_reads) / static_cast<double>(slot_writes);
}

const TraceStatsCollector::Stats& TraceStatsCollector::Finish() {
  if (!finished_) {
    stats_.connectivity =
        stats_.allocs == 0 ? 0.0
                           : static_cast<double>(slot_values_.size()) /
                                 static_cast<double>(stats_.allocs);
    finished_ = true;
  }
  return stats_;
}

void TraceStatsCollector::Print(std::ostream& os) {
  const Stats& s = Finish();
  TablePrinter t({"Metric", "Value"});
  t.AddRow({"events", FormatCount(static_cast<double>(s.events))});
  t.AddRow({"objects allocated", FormatCount(static_cast<double>(s.allocs))});
  t.AddRow({"  large objects", FormatCount(static_cast<double>(s.large_allocs))});
  t.AddRow({"bytes allocated",
            FormatCount(static_cast<double>(s.bytes_allocated))});
  t.AddRow({"  large-object space fraction",
            FormatDouble(s.LargeSpaceFraction(), 3)});
  t.AddRow({"mean small object size",
            FormatDouble(s.MeanSmallObjectSize(), 1)});
  t.AddRow({"slot writes", FormatCount(static_cast<double>(s.slot_writes))});
  t.AddRow({"  pointer overwrites",
            FormatCount(static_cast<double>(s.pointer_overwrites))});
  t.AddRow({"  edge deletions",
            FormatCount(static_cast<double>(s.null_clears))});
  t.AddRow({"slot reads", FormatCount(static_cast<double>(s.slot_reads))});
  t.AddRow({"visits", FormatCount(static_cast<double>(s.visits))});
  t.AddRow({"data writes", FormatCount(static_cast<double>(s.data_writes))});
  t.AddRow({"edge read/write ratio", FormatDouble(s.EdgeReadWriteRatio(), 2)});
  t.AddRow({"connectivity (ptrs/object)", FormatDouble(s.Connectivity(), 3)});
  t.Print(os);
}

}  // namespace odbgc
