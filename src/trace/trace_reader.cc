#include "trace/trace_reader.h"

#include <cassert>

#include "trace/trace_writer.h"

namespace odbgc {

TraceReader::TraceReader(std::istream* in) : in_(in) {
  assert(in_ != nullptr);
}

Result<uint64_t> TraceReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in_->get();
    if (c == EOF) return Status::Corruption("trace truncated inside varint");
    v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("varint too long");
  }
  return v;
}

Status TraceReader::ReadHeaderIfNeeded() {
  if (header_read_) return Status::Ok();
  uint8_t raw[8];
  for (auto& b : raw) {
    const int c = in_->get();
    if (c == EOF) return Status::Corruption("trace header truncated");
    b = static_cast<uint8_t>(c);
  }
  const uint32_t magic = static_cast<uint32_t>(raw[0]) |
                         (static_cast<uint32_t>(raw[1]) << 8) |
                         (static_cast<uint32_t>(raw[2]) << 16) |
                         (static_cast<uint32_t>(raw[3]) << 24);
  if (magic != kTraceMagic) return Status::Corruption("bad trace magic");
  const uint16_t version =
      static_cast<uint16_t>(raw[4] | (static_cast<uint16_t>(raw[5]) << 8));
  if (version != kTraceVersion) {
    return Status::Corruption("unsupported trace version " +
                              std::to_string(version));
  }
  header_read_ = true;
  return Status::Ok();
}

Result<std::optional<TraceEvent>> TraceReader::Next() {
  ODBGC_RETURN_IF_ERROR(ReadHeaderIfNeeded());

  const int kind_byte = in_->get();
  if (kind_byte == EOF) return std::optional<TraceEvent>{};  // Clean end.

  TraceEvent event;
  event.kind = static_cast<EventKind>(kind_byte);

  auto get = [this](uint64_t* out) -> Status {
    auto v = GetVarint();
    ODBGC_RETURN_IF_ERROR(v.status());
    *out = *v;
    return Status::Ok();
  };

  uint64_t tmp = 0;
  switch (event.kind) {
    case EventKind::kAlloc: {
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.size = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.num_slots = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&event.parent_hint));
      const int flags = in_->get();
      if (flags == EOF) return Status::Corruption("trace truncated in Alloc");
      event.flags = static_cast<uint8_t>(flags);
      break;
    }
    case EventKind::kWriteSlot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.slot = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&event.target));
      break;
    case EventKind::kReadSlot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.slot = static_cast<uint32_t>(tmp);
      break;
    case EventKind::kVisit:
    case EventKind::kWriteData:
    case EventKind::kAddRoot:
    case EventKind::kRemoveRoot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      break;
    default:
      return Status::Corruption("unknown event kind byte " +
                                std::to_string(kind_byte));
  }
  ++events_read_;
  return std::optional<TraceEvent>{event};
}

Status TraceReader::ReplayInto(TraceSink* sink) {
  for (;;) {
    auto event = Next();
    ODBGC_RETURN_IF_ERROR(event.status());
    if (!event->has_value()) return Status::Ok();
    ODBGC_RETURN_IF_ERROR(sink->Append(**event));
  }
}

}  // namespace odbgc
