#include "trace/trace_reader.h"

#include <cassert>

#include "trace/trace_writer.h"
#include "util/serde.h"

namespace odbgc {

TraceReader::TraceReader(std::istream* in) : in_(in) {
  assert(in_ != nullptr);
}

Status TraceReader::ReadHeaderIfNeeded() {
  if (header_read_) return Status::Ok();
  auto magic = GetU32(*in_);
  if (!magic.ok()) return Status::Corruption("trace header truncated");
  if (*magic != kTraceMagic) return Status::Corruption("bad trace magic");
  auto version = GetU16(*in_);
  if (!version.ok()) return Status::Corruption("trace header truncated");
  if (*version != kTraceVersion) {
    return Status::Corruption("unsupported trace version " +
                              std::to_string(*version));
  }
  auto reserved = GetU16(*in_);
  if (!reserved.ok()) return Status::Corruption("trace header truncated");
  header_read_ = true;
  return Status::Ok();
}

Result<std::optional<TraceEvent>> TraceReader::Next() {
  ODBGC_RETURN_IF_ERROR(ReadHeaderIfNeeded());

  if (in_->peek() == EOF) return std::optional<TraceEvent>{};  // Clean end.

  auto event = ReadEventBody(*in_);
  ODBGC_RETURN_IF_ERROR(event.status());
  ++events_read_;
  return std::optional<TraceEvent>{*event};
}

Status TraceReader::ReplayInto(TraceSink* sink) {
  for (;;) {
    auto event = Next();
    ODBGC_RETURN_IF_ERROR(event.status());
    if (!event->has_value()) return Status::Ok();
    ODBGC_RETURN_IF_ERROR(sink->Append(**event));
  }
}

}  // namespace odbgc
