#ifndef ODBGC_TRACE_TRACE_WRITER_H_
#define ODBGC_TRACE_TRACE_WRITER_H_

#include <cstdint>
#include <ostream>

#include "trace/event.h"
#include "util/status.h"

namespace odbgc {

/// Trace file format identification.
inline constexpr uint32_t kTraceMagic = 0x5442444fu;  // "ODBT" LE bytes.
inline constexpr uint16_t kTraceVersion = 1;

/// Serializes trace events to a binary stream.
///
/// Format: a fixed header (magic u32, version u16, reserved u16), then one
/// record per event: a kind byte followed by the kind's fields, integers
/// encoded as unsigned LEB128 varints (traces run to millions of events;
/// small ids and slots dominate). The stream ends at EOF — readers detect
/// truncation as a record cut off mid-field.
class TraceWriter : public TraceSink {
 public:
  /// `out` must outlive the writer. The header is written on first append
  /// (or by Flush on an empty trace).
  explicit TraceWriter(std::ostream* out);

  /// Appends one event. IoError if the stream fails.
  Status Append(const TraceEvent& event) override;

  /// Ensures the header is written and flushes the stream.
  Status Flush();

  uint64_t events_written() const { return events_written_; }

 private:
  Status WriteHeaderIfNeeded();

  std::ostream* const out_;
  bool header_written_ = false;
  uint64_t events_written_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_TRACE_WRITER_H_
