#ifndef ODBGC_TRACE_EVENT_H_
#define ODBGC_TRACE_EVENT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace odbgc {

/// Kinds of application events in a trace. A trace is the complete record
/// of an application's interaction with the object database; replaying it
/// through heaps configured with different policies is the paper's
/// trace-driven evaluation method (every policy sees the identical event
/// stream).
enum class EventKind : uint8_t {
  kAlloc = 1,      ///< Create an object.
  kWriteSlot = 2,  ///< Store a pointer (possibly null) into a slot.
  kReadSlot = 3,   ///< Read a pointer slot (edge traversal).
  kVisit = 4,      ///< Visit an object (read header + slots).
  kWriteData = 5,  ///< Mutate non-pointer data (cannot create garbage).
  kAddRoot = 6,    ///< Add an object to the database root set.
  kRemoveRoot = 7, ///< Remove an object from the root set.
};

/// Human-readable kind name ("Alloc", "WriteSlot", ...).
const char* EventKindName(EventKind kind);

/// One application event. Object identity in a trace is the generator's
/// logical numbering (1-based, dense); the simulator maps logical ids to
/// store ObjectIds at replay time.
struct TraceEvent {
  EventKind kind = EventKind::kVisit;
  uint64_t object = 0;       ///< Subject of the event (alloc: the new id).
  uint32_t slot = 0;         ///< kWriteSlot / kReadSlot.
  uint64_t target = 0;       ///< kWriteSlot: new value (0 = null).
  uint32_t size = 0;         ///< kAlloc: total object bytes.
  uint32_t num_slots = 0;    ///< kAlloc.
  uint64_t parent_hint = 0;  ///< kAlloc: placement hint (0 = none).
  uint8_t flags = 0;         ///< kAlloc: object flags (kFlagLarge).

  // -- Convenience constructors --------------------------------------------
  static TraceEvent Alloc(uint64_t id, uint32_t size, uint32_t num_slots,
                          uint64_t parent_hint = 0, uint8_t flags = 0);
  static TraceEvent WriteSlot(uint64_t object, uint32_t slot,
                              uint64_t target);
  static TraceEvent ReadSlot(uint64_t object, uint32_t slot);
  static TraceEvent Visit(uint64_t object);
  static TraceEvent WriteData(uint64_t object);
  static TraceEvent AddRoot(uint64_t object);
  static TraceEvent RemoveRoot(uint64_t object);

  friend bool operator==(const TraceEvent& a, const TraceEvent& b);

  /// Debug rendering, e.g. "WriteSlot obj=12 slot=1 target=7".
  std::string ToString() const;
};

/// Serializes one event record (kind byte + varint-encoded fields) — the
/// wire format shared by trace files and the recovery WAL. IoError if the
/// stream fails.
Status WriteEventBody(std::ostream& out, const TraceEvent& event);

/// Parses one event record. Corruption on an unknown kind byte or a record
/// truncated mid-field; the caller handles clean EOF before the kind byte.
Result<TraceEvent> ReadEventBody(std::istream& in);

/// Consumer of a stream of trace events. The workload generator emits into
/// a sink; TraceWriter (file capture), the Simulator (live replay) and
/// in-memory vectors all implement it.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual Status Append(const TraceEvent& event) = 0;
};

/// A sink that collects events into a vector (tests, small workloads).
class VectorTraceSink : public TraceSink {
 public:
  Status Append(const TraceEvent& event) override {
    events_.push_back(event);
    return Status::Ok();
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> TakeEvents() { return std::move(events_); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_EVENT_H_
