#include "trace/trace_writer.h"

#include <cassert>

namespace odbgc {

namespace {

void PutVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

void PutByte(std::ostream& out, uint8_t b) {
  out.put(static_cast<char>(b));
}

void PutU16(std::ostream& out, uint16_t v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::ostream& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v & 0xffff));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

}  // namespace

TraceWriter::TraceWriter(std::ostream* out) : out_(out) {
  assert(out_ != nullptr);
}

Status TraceWriter::WriteHeaderIfNeeded() {
  if (header_written_) return Status::Ok();
  PutU32(*out_, kTraceMagic);
  PutU16(*out_, kTraceVersion);
  PutU16(*out_, 0);  // Reserved.
  if (!out_->good()) return Status::IoError("trace header write failed");
  header_written_ = true;
  return Status::Ok();
}

Status TraceWriter::Append(const TraceEvent& event) {
  ODBGC_RETURN_IF_ERROR(WriteHeaderIfNeeded());
  PutByte(*out_, static_cast<uint8_t>(event.kind));
  switch (event.kind) {
    case EventKind::kAlloc:
      PutVarint(*out_, event.object);
      PutVarint(*out_, event.size);
      PutVarint(*out_, event.num_slots);
      PutVarint(*out_, event.parent_hint);
      PutByte(*out_, event.flags);
      break;
    case EventKind::kWriteSlot:
      PutVarint(*out_, event.object);
      PutVarint(*out_, event.slot);
      PutVarint(*out_, event.target);
      break;
    case EventKind::kReadSlot:
      PutVarint(*out_, event.object);
      PutVarint(*out_, event.slot);
      break;
    case EventKind::kVisit:
    case EventKind::kWriteData:
    case EventKind::kAddRoot:
    case EventKind::kRemoveRoot:
      PutVarint(*out_, event.object);
      break;
    default:
      return Status::InvalidArgument("unknown event kind");
  }
  if (!out_->good()) return Status::IoError("trace event write failed");
  ++events_written_;
  return Status::Ok();
}

Status TraceWriter::Flush() {
  ODBGC_RETURN_IF_ERROR(WriteHeaderIfNeeded());
  out_->flush();
  return out_->good() ? Status::Ok() : Status::IoError("trace flush failed");
}

}  // namespace odbgc
