#include "trace/trace_writer.h"

#include <cassert>

#include "util/serde.h"

namespace odbgc {

TraceWriter::TraceWriter(std::ostream* out) : out_(out) {
  assert(out_ != nullptr);
}

Status TraceWriter::WriteHeaderIfNeeded() {
  if (header_written_) return Status::Ok();
  PutU32(*out_, kTraceMagic);
  PutU16(*out_, kTraceVersion);
  PutU16(*out_, 0);  // Reserved.
  if (!out_->good()) return Status::IoError("trace header write failed");
  header_written_ = true;
  return Status::Ok();
}

Status TraceWriter::Append(const TraceEvent& event) {
  ODBGC_RETURN_IF_ERROR(WriteHeaderIfNeeded());
  ODBGC_RETURN_IF_ERROR(WriteEventBody(*out_, event));
  ++events_written_;
  return Status::Ok();
}

Status TraceWriter::Flush() {
  ODBGC_RETURN_IF_ERROR(WriteHeaderIfNeeded());
  out_->flush();
  return out_->good() ? Status::Ok() : Status::IoError("trace flush failed");
}

}  // namespace odbgc
