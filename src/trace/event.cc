#include "trace/event.h"

#include <cstdio>

#include "util/serde.h"

namespace odbgc {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAlloc: return "Alloc";
    case EventKind::kWriteSlot: return "WriteSlot";
    case EventKind::kReadSlot: return "ReadSlot";
    case EventKind::kVisit: return "Visit";
    case EventKind::kWriteData: return "WriteData";
    case EventKind::kAddRoot: return "AddRoot";
    case EventKind::kRemoveRoot: return "RemoveRoot";
  }
  return "Unknown";
}

TraceEvent TraceEvent::Alloc(uint64_t id, uint32_t size, uint32_t num_slots,
                             uint64_t parent_hint, uint8_t flags) {
  TraceEvent e;
  e.kind = EventKind::kAlloc;
  e.object = id;
  e.size = size;
  e.num_slots = num_slots;
  e.parent_hint = parent_hint;
  e.flags = flags;
  return e;
}

TraceEvent TraceEvent::WriteSlot(uint64_t object, uint32_t slot,
                                 uint64_t target) {
  TraceEvent e;
  e.kind = EventKind::kWriteSlot;
  e.object = object;
  e.slot = slot;
  e.target = target;
  return e;
}

TraceEvent TraceEvent::ReadSlot(uint64_t object, uint32_t slot) {
  TraceEvent e;
  e.kind = EventKind::kReadSlot;
  e.object = object;
  e.slot = slot;
  return e;
}

TraceEvent TraceEvent::Visit(uint64_t object) {
  TraceEvent e;
  e.kind = EventKind::kVisit;
  e.object = object;
  return e;
}

TraceEvent TraceEvent::WriteData(uint64_t object) {
  TraceEvent e;
  e.kind = EventKind::kWriteData;
  e.object = object;
  return e;
}

TraceEvent TraceEvent::AddRoot(uint64_t object) {
  TraceEvent e;
  e.kind = EventKind::kAddRoot;
  e.object = object;
  return e;
}

TraceEvent TraceEvent::RemoveRoot(uint64_t object) {
  TraceEvent e;
  e.kind = EventKind::kRemoveRoot;
  e.object = object;
  return e;
}

Status WriteEventBody(std::ostream& out, const TraceEvent& event) {
  PutU8(out, static_cast<uint8_t>(event.kind));
  switch (event.kind) {
    case EventKind::kAlloc:
      PutVarint(out, event.object);
      PutVarint(out, event.size);
      PutVarint(out, event.num_slots);
      PutVarint(out, event.parent_hint);
      PutU8(out, event.flags);
      break;
    case EventKind::kWriteSlot:
      PutVarint(out, event.object);
      PutVarint(out, event.slot);
      PutVarint(out, event.target);
      break;
    case EventKind::kReadSlot:
      PutVarint(out, event.object);
      PutVarint(out, event.slot);
      break;
    case EventKind::kVisit:
    case EventKind::kWriteData:
    case EventKind::kAddRoot:
    case EventKind::kRemoveRoot:
      PutVarint(out, event.object);
      break;
    default:
      return Status::InvalidArgument("unknown event kind");
  }
  if (!out.good()) return Status::IoError("event write failed");
  return Status::Ok();
}

Result<TraceEvent> ReadEventBody(std::istream& in) {
  const int kind_byte = in.get();
  if (kind_byte == EOF) return Status::Corruption("truncated event record");

  TraceEvent event;
  event.kind = static_cast<EventKind>(kind_byte);

  auto get = [&in](uint64_t* out) -> Status {
    auto v = GetVarint(in);
    ODBGC_RETURN_IF_ERROR(v.status());
    *out = *v;
    return Status::Ok();
  };

  uint64_t tmp = 0;
  switch (event.kind) {
    case EventKind::kAlloc: {
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.size = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.num_slots = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&event.parent_hint));
      auto flags = GetU8(in);
      ODBGC_RETURN_IF_ERROR(flags.status());
      event.flags = *flags;
      break;
    }
    case EventKind::kWriteSlot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.slot = static_cast<uint32_t>(tmp);
      ODBGC_RETURN_IF_ERROR(get(&event.target));
      break;
    case EventKind::kReadSlot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      ODBGC_RETURN_IF_ERROR(get(&tmp));
      event.slot = static_cast<uint32_t>(tmp);
      break;
    case EventKind::kVisit:
    case EventKind::kWriteData:
    case EventKind::kAddRoot:
    case EventKind::kRemoveRoot:
      ODBGC_RETURN_IF_ERROR(get(&event.object));
      break;
    default:
      return Status::Corruption("unknown event kind byte " +
                                std::to_string(kind_byte));
  }
  return event;
}

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.kind == b.kind && a.object == b.object && a.slot == b.slot &&
         a.target == b.target && a.size == b.size &&
         a.num_slots == b.num_slots && a.parent_hint == b.parent_hint &&
         a.flags == b.flags;
}

std::string TraceEvent::ToString() const {
  char buf[160];
  switch (kind) {
    case EventKind::kAlloc:
      std::snprintf(buf, sizeof(buf),
                    "Alloc obj=%llu size=%u slots=%u parent=%llu flags=%u",
                    static_cast<unsigned long long>(object), size, num_slots,
                    static_cast<unsigned long long>(parent_hint), flags);
      break;
    case EventKind::kWriteSlot:
      std::snprintf(buf, sizeof(buf), "WriteSlot obj=%llu slot=%u target=%llu",
                    static_cast<unsigned long long>(object), slot,
                    static_cast<unsigned long long>(target));
      break;
    case EventKind::kReadSlot:
      std::snprintf(buf, sizeof(buf), "ReadSlot obj=%llu slot=%u",
                    static_cast<unsigned long long>(object), slot);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s obj=%llu", EventKindName(kind),
                    static_cast<unsigned long long>(object));
      break;
  }
  return buf;
}

}  // namespace odbgc
