#ifndef ODBGC_TRACE_TRACE_STATS_H_
#define ODBGC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <ostream>
#include <unordered_map>

#include "trace/event.h"
#include "util/hash.h"

namespace odbgc {

/// Aggregate statistics over a trace: the workload-characterization
/// numbers Section 5 of the paper quotes (object sizes, edge read/write
/// ratio, connectivity). Feed events via Accept (it is a TraceSink, so a
/// reader can replay straight into it).
class TraceStatsCollector : public TraceSink {
 public:
  Status Append(const TraceEvent& event) override;

  struct Stats {
    uint64_t events = 0;
    uint64_t allocs = 0;
    uint64_t large_allocs = 0;
    uint64_t bytes_allocated = 0;
    uint64_t large_bytes_allocated = 0;
    uint64_t slot_writes = 0;
    uint64_t pointer_stores = 0;      // Non-null values written.
    uint64_t pointer_overwrites = 0;  // Writes replacing a non-null value.
    uint64_t null_clears = 0;         // Null over non-null (edge deletion).
    uint64_t slot_reads = 0;
    uint64_t visits = 0;
    uint64_t data_writes = 0;
    uint64_t root_adds = 0;
    uint64_t root_removes = 0;

    /// Mean size of regular (non-large) objects.
    double MeanSmallObjectSize() const;
    /// Fraction of allocated space in large objects.
    double LargeSpaceFraction() const;
    /// Edges read (slot reads) per edge written (slot writes).
    double EdgeReadWriteRatio() const;
    /// Pointers per object: non-null distinct pointer slots at end of
    /// trace divided by live-ish object count (allocations) — the paper's
    /// connectivity measure.
    double Connectivity() const { return connectivity; }

    double connectivity = 0.0;  // Filled in by Finish().
  };

  /// Finalizes derived statistics and returns them.
  const Stats& Finish();

  /// Writes a readable report.
  void Print(std::ostream& os);

  /// Sizes the edge table for a trace of `expected_events` events before
  /// replay, avoiding rehash churn on big traces. The trace header does
  /// not record a count, so callers pass whatever they know — the
  /// writer's events_written(), or a file-size estimate.
  void Reserve(uint64_t expected_events) {
    // Roughly a third of workload events are slot writes, and repeat
    // writes to the same edge share an entry.
    slot_values_.reserve(expected_events / 3 + 1);
  }

 private:
  Stats stats_;
  // (object<<8 | slot) -> current value, to classify overwrites and count
  // final edges. Slot indices in the workloads are tiny, and object ids
  // are sequential — so the key needs the shared Fibonacci mix (the
  // default identity hash would drop every key into a handful of
  // neighbouring buckets).
  std::unordered_map<uint64_t, uint64_t, FibonacciHash> slot_values_;
  uint64_t small_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_TRACE_STATS_H_
