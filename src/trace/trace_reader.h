#ifndef ODBGC_TRACE_TRACE_READER_H_
#define ODBGC_TRACE_TRACE_READER_H_

#include <istream>
#include <optional>

#include "trace/event.h"
#include "util/status.h"

namespace odbgc {

/// Deserializes trace events from a binary stream produced by TraceWriter.
///
/// Failure behaviour: a bad magic or unsupported version fails the first
/// Next() with Corruption; a record truncated mid-field also returns
/// Corruption (never undefined behaviour, never a partial event). Clean
/// EOF at a record boundary yields an empty optional.
class TraceReader {
 public:
  /// `in` must outlive the reader.
  explicit TraceReader(std::istream* in);

  /// Returns the next event, an empty optional at clean end-of-trace, or
  /// an error status.
  Result<std::optional<TraceEvent>> Next();

  /// Replays the remaining events into `sink`, stopping at end-of-trace or
  /// the first error (from the stream or the sink).
  Status ReplayInto(TraceSink* sink);

  uint64_t events_read() const { return events_read_; }

 private:
  Status ReadHeaderIfNeeded();

  std::istream* const in_;
  bool header_read_ = false;
  uint64_t events_read_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_TRACE_READER_H_
