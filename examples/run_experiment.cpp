// A small command-line driver over the experiment runner: pick policies,
// seeds, database size, connectivity, trigger and partition geometry, and
// get the three paper-style tables (optionally as CSV).
//
// Examples:
//   ./build/examples/run_experiment --seeds=5
//   ./build/examples/run_experiment --policies=UpdatedPointer,MostGarbage
//       --alloc-mb=22 --partition-pages=64 --trigger=300 --csv  (one line)
//   ./build/examples/run_experiment --connectivity=1.167 --seeds=3

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "storage/device_registry.h"
#include "util/table_printer.h"

namespace {

using namespace odbgc;

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --policies=A,B,...     any registered policy names (default: the\n"
      "                         paper's six; see --list-policies)\n"
      "  --list-policies        print the registry and exit\n"
      "  --seeds=N              runs per policy           (default 3)\n"
      "  --first-seed=N         first seed                (default 1)\n"
      "  --alloc-mb=N           total allocation volume   (default 11)\n"
      "  --connectivity=C       pointers per object       (default 1.083)\n"
      "  --partition-pages=N    pages per partition       (default 48)\n"
      "  --buffer-pages=N       buffer size               (default = partition)\n"
      "  --trigger=N            overwrites per collection (default 150)\n"
      "  --manifest-dir=DIR     write a run manifest per (policy, seed)\n"
      "                         for odbgc-report\n"
      "  --device=SPEC          storage backend: disk, ssd, or\n"
      "                         file:<path> (per-run files get a\n"
      "                         -<policy>-s<seed> suffix; see\n"
      "                         --list-devices)\n"
      "  --list-devices         print the device registry and exit\n"
      "  --mutator-threads=N    concurrent mutator threads per run\n"
      "                         (default 1 = serial; results are\n"
      "                         thread-count-invariant)\n"
      "  --trace-shards=N       deterministic workload shards per run\n"
      "                         (default: one per mutator thread)\n"
      "  --marking-threads=N    parallel marking workers per census\n"
      "                         (default 0 = serial; results are\n"
      "                         byte-identical either way)\n"
      "  --parallel-grid[=N]    run the (policy, seed) grid on a\n"
      "                         work-stealing pool of N threads (default:\n"
      "                         hardware concurrency), share one I/O\n"
      "                         scheduler across file backends, and stamp\n"
      "                         per-run wall time into manifests for\n"
      "                         odbgc-report's scaling table\n"
      "  --csv                  CSV instead of aligned tables\n",
      prog);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentSpec spec;
  spec.base = PaperBaseConfig();
  spec.num_seeds = 3;
  bool csv = false;
  bool buffer_set = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--policies", &value)) {
      spec.policies.clear();
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        const std::string name =
            value.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (!IsPolicyRegistered(name)) {
          std::fprintf(stderr, "unknown policy \"%s\"; registered:\n",
                       name.c_str());
          for (const std::string& known : RegisteredPolicyNames()) {
            std::fprintf(stderr, "  %s\n", known.c_str());
          }
          return 1;
        }
        spec.policies.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--list-policies") == 0) {
      for (const std::string& known : RegisteredPolicyNames()) {
        std::printf("%s\n", known.c_str());
      }
      return 0;
    } else if (ParseFlag(argv[i], "--manifest-dir", &value)) {
      spec.manifest_dir = value;
    } else if (ParseFlag(argv[i], "--device", &value)) {
      if (!IsDeviceRegistered(DeviceSpecName(value))) {
        std::fprintf(stderr, "unknown device \"%s\"; registered:\n",
                     DeviceSpecName(value).c_str());
        for (const std::string& known : RegisteredDeviceNames()) {
          std::fprintf(stderr, "  %s\n", known.c_str());
        }
        return 1;
      }
      spec.base.heap.device_spec = value;
    } else if (std::strcmp(argv[i], "--list-devices") == 0) {
      for (const std::string& known : RegisteredDeviceNames()) {
        std::printf("%s\n", known.c_str());
      }
      return 0;
    } else if (ParseFlag(argv[i], "--seeds", &value)) {
      spec.num_seeds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--first-seed", &value)) {
      spec.first_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--alloc-mb", &value)) {
      spec.base.workload = spec.base.workload.WithTotalAllocation(
          std::strtoull(value.c_str(), nullptr, 10) << 20);
    } else if (ParseFlag(argv[i], "--connectivity", &value)) {
      spec.base.workload =
          spec.base.workload.WithConnectivity(std::atof(value.c_str()));
    } else if (ParseFlag(argv[i], "--partition-pages", &value)) {
      spec.base.heap.store.pages_per_partition = std::atoi(value.c_str());
      if (!buffer_set) {
        spec.base.heap.buffer_pages =
            spec.base.heap.store.pages_per_partition;
      }
    } else if (ParseFlag(argv[i], "--buffer-pages", &value)) {
      spec.base.heap.buffer_pages = std::atoi(value.c_str());
      buffer_set = true;
    } else if (ParseFlag(argv[i], "--trigger", &value)) {
      spec.base.heap.overwrite_trigger = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--mutator-threads", &value)) {
      spec.base.mutator_threads =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--trace-shards", &value)) {
      spec.base.trace_shards =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--marking-threads", &value)) {
      spec.base.heap.parallel_marking_threads =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--parallel-grid", &value)) {
      spec.threads = std::atoi(value.c_str());
      spec.record_timing = true;
      spec.share_io_scheduler = true;
    } else if (std::strcmp(argv[i], "--parallel-grid") == 0) {
      spec.threads = 0;  // Hardware concurrency.
      spec.record_timing = true;
      spec.share_io_scheduler = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (spec.num_seeds <= 0 || spec.policies.empty()) {
    Usage(argv[0]);
    return 1;
  }

  std::fprintf(stderr, "running %zu policies x %d seeds...\n",
               spec.policies.size(), spec.num_seeds);
  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  const auto summaries = Summarize(*experiment);

  if (csv) {
    TablePrinter table({"policy", "app_io", "gc_io", "total_io",
                        "rel_total_io", "max_storage_kb", "reclaimed_kb",
                        "fraction_pct", "efficiency_kb_per_io"});
    for (const PolicySummary& s : summaries) {
      table.AddRow({s.name, FormatCount(s.app_io.mean()),
                    FormatCount(s.gc_io.mean()),
                    FormatCount(s.total_io.mean()),
                    FormatDouble(s.relative_total_io.mean(), 4),
                    FormatCount(s.max_storage_kb.mean()),
                    FormatCount(s.reclaimed_kb.mean()),
                    FormatDouble(s.fraction_reclaimed_pct.mean(), 2),
                    FormatDouble(s.efficiency_kb_per_io.mean(), 3)});
    }
    table.PrintCsv(std::cout);
  } else {
    PrintThroughputTable(summaries, std::cout);
    std::cout << '\n';
    PrintStorageTable(summaries, std::cout);
    std::cout << '\n';
    PrintEfficiencyTable(summaries, std::cout);
    std::cout << '\n';
    PrintDeviceTimeTable(summaries, std::cout);
  }
  return 0;
}
