// Multi-tenant heap service driver (DESIGN.md §16): host N tenants —
// each a full paper-style simulation with its own policy and seed — over
// one shared frame budget with admission control and cross-tenant forced
// collection, then print the per-tenant results and the service-level
// pressure counters.
//
// Examples:
//   ./build/examples/run_service --tenants=8 --threads=4
//   ./build/examples/run_service --tenants=4 --overcommit=0.6
//       --watermark=0.5 --policies=UpdatedPointer,MostGarbage   (one line)
//   ./build/examples/run_service --tenants=2 --watermark=0 --csv
//
// With --watermark=0 admission control is off and every tenant replays
// exactly as a standalone run (the service equivalence contract); with a
// watermark and an overcommitted budget the service stalls tenant batches
// and forces collections to keep shared-pool occupancy bounded.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/selection_policy.h"
#include "service/heap_service.h"
#include "sim/config.h"
#include "sim/report.h"
#include "sim/spec.h"
#include "util/table_printer.h"

namespace {

using namespace odbgc;

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --tenants=N           hosted tenants              (default 4)\n"
      "  --threads=N           service worker threads      (default 2)\n"
      "  --policies=A,B,...    cycled across tenants (default\n"
      "                        UpdatedPointer,MostGarbage,WeightedPointer,\n"
      "                        MutatedPartition; any registered name works)\n"
      "  --alloc-mb=N          allocation volume per tenant (default 2)\n"
      "  --first-seed=N        tenant i runs seed N+i      (default 1)\n"
      "  --budget-frames=N     shared frame budget; overrides --overcommit\n"
      "  --overcommit=F        budget = F * sum of tenant buffer caps\n"
      "                        (default 0.75; 1.0 = no overcommit)\n"
      "  --watermark=F         admission watermark fraction (default 0.5;\n"
      "                        0 disables admission control entirely)\n"
      "  --events-per-batch=N  events per tenant per round (default 256)\n"
      "  --steps-per-round=K   batches per tenant per round (default 1;\n"
      "                        higher K amortizes barrier overhead)\n"
      "  --private-pools       per-tenant private pools instead of the\n"
      "                        physically shared frame arena (the default)\n"
      "  --stagger-arrival=N   tenant i arrives at round (i/8)*N instead of\n"
      "                        all at round 0 (waves of 8)\n"
      "  --depart-after=R      staggered tenants also depart R rounds after\n"
      "                        arriving (0 = run to completion)\n"
      "  --manifest-dir=DIR    write one run manifest per tenant for\n"
      "                        odbgc-report (files <tenant>-<policy>-sN.json)\n"
      "  --csv                 CSV instead of an aligned table\n",
      prog);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> SplitPolicies(const std::string& value) {
  std::vector<std::string> names;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    names.push_back(value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  int tenants = 4;
  uint32_t threads = 2;
  std::vector<std::string> policies = {"UpdatedPointer", "MostGarbage",
                                       "WeightedPointer", "MutatedPartition"};
  uint64_t alloc_mb = 2;
  uint64_t first_seed = 1;
  uint64_t budget_frames = 0;
  double overcommit = 0.75;
  double watermark = 0.5;
  uint64_t events_per_batch = 256;
  uint64_t steps_per_round = 1;
  bool shared_pool = true;
  uint64_t stagger_arrival = 0;
  uint64_t depart_after = 0;
  std::string manifest_dir;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--tenants", &value)) {
      tenants = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      threads = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--policies", &value)) {
      policies = SplitPolicies(value);
      for (const std::string& name : policies) {
        if (!IsPolicyRegistered(name)) {
          std::fprintf(stderr, "unknown policy \"%s\"; registered:\n",
                       name.c_str());
          for (const std::string& known : RegisteredPolicyNames()) {
            std::fprintf(stderr, "  %s\n", known.c_str());
          }
          return 1;
        }
      }
    } else if (ParseFlag(argv[i], "--alloc-mb", &value)) {
      alloc_mb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--first-seed", &value)) {
      first_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--budget-frames", &value)) {
      budget_frames = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--overcommit", &value)) {
      overcommit = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--watermark", &value)) {
      watermark = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--events-per-batch", &value)) {
      events_per_batch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--steps-per-round", &value)) {
      steps_per_round = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--private-pools") == 0) {
      shared_pool = false;
    } else if (ParseFlag(argv[i], "--stagger-arrival", &value)) {
      stagger_arrival = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--depart-after", &value)) {
      depart_after = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--manifest-dir", &value)) {
      manifest_dir = value;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (tenants <= 0 || threads == 0 || policies.empty() ||
      events_per_batch == 0 || steps_per_round == 0) {
    Usage(argv[0]);
    return 1;
  }

  ServiceSpec spec = ServiceSpec::Hosting({})
                         .WithThreads(threads)
                         .WithWatermark(watermark)
                         .WithEventsPerBatch(events_per_batch)
                         .WithStepsPerRound(steps_per_round)
                         .WithSharedPool(shared_pool)
                         .WithManifestDir(manifest_dir);
  uint64_t cap_sum = 0;
  for (int i = 0; i < tenants; ++i) {
    TenantSpec tenant =
        TenantSpec::Base()
            .Named("tenant" + std::to_string(i))
            .WithPolicy(policies[static_cast<size_t>(i) % policies.size()])
            .WithSeed(first_seed + static_cast<uint64_t>(i))
            .WithTotalAllocationMb(alloc_mb);
    if (stagger_arrival > 0) {
      // Waves of 8: wave w arrives at round w * N, so a large fleet is
      // hosted as a rolling population instead of all at once.
      tenant.arrival_round = (static_cast<uint64_t>(i) / 8) * stagger_arrival;
      if (depart_after > 0) {
        tenant.departure_round = tenant.arrival_round + depart_after;
      }
    }
    cap_sum += tenant.config.heap.buffer_pages;
    spec.tenants.push_back(std::move(tenant));
  }
  if (budget_frames == 0 && overcommit > 0 && overcommit < 1.0) {
    budget_frames = static_cast<uint64_t>(
        static_cast<double>(cap_sum) * overcommit);
  }
  spec.shared_frame_budget = budget_frames;

  std::fprintf(stderr, "hosting %d tenants on %u threads (budget %llu of %llu"
               " frames, watermark %.2f)...\n",
               tenants, threads,
               static_cast<unsigned long long>(
                   budget_frames == 0 ? cap_sum : budget_frames),
               static_cast<unsigned long long>(cap_sum), watermark);

  auto service = RunService(std::move(spec));
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const ServiceResult& result = *service;

  TablePrinter table({"tenant", "policy", "seed", "events", "app_io", "gc_io",
                      "collections", "reclaimed_kb", "max_storage_kb"});
  for (size_t i = 0; i < result.tenants.size(); ++i) {
    const SimulationResult& r = result.tenants[i];
    table.AddRow({result.tenant_names[i], r.policy_name,
                  FormatCount(static_cast<double>(r.seed)),
                  FormatCount(static_cast<double>(r.app_events)),
                  FormatCount(static_cast<double>(r.app_io)),
                  FormatCount(static_cast<double>(r.gc_io)),
                  FormatCount(static_cast<double>(r.collections)),
                  FormatCount(static_cast<double>(
                      r.garbage_reclaimed_bytes / 1024)),
                  FormatCount(static_cast<double>(
                      r.max_storage_bytes / 1024))});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  std::printf(
      "\naggregate: %llu events, %llu total I/O, %llu collections "
      "(%llu forced by the cross-tenant scheduler)\n",
      static_cast<unsigned long long>(result.aggregate.app_events),
      static_cast<unsigned long long>(result.aggregate.total_io()),
      static_cast<unsigned long long>(result.aggregate.collections),
      static_cast<unsigned long long>(result.forced_collections));
  std::printf(
      "service: %llu rounds, %llu admission stalls, %llu forced admissions\n",
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.admission_stalls),
      static_cast<unsigned long long>(result.forced_admissions));
  std::printf(
      "shared pool: %s, budget %llu frames, watermark %llu, peak occupancy "
      "%llu\n",
      result.shared_pool ? "one shared arena" : "private per-tenant pools",
      static_cast<unsigned long long>(result.shared_frame_budget),
      static_cast<unsigned long long>(result.watermark_frames),
      static_cast<unsigned long long>(result.peak_occupancy_frames));
  if (result.shared_pool) {
    std::printf("arena: %llu squeezed evictions, %llu departures\n",
                static_cast<unsigned long long>(result.squeezed_evictions),
                static_cast<unsigned long long>(result.departures));
  }
  return 0;
}
