// Database evolution inspector: runs the paper's workload at small scale
// and periodically prints a per-partition map of live data vs garbage —
// the view a DBA (or a partition selection policy) wishes it had. The
// final frames show compaction at work: collected partitions drain and
// refill while NoCollection-style growth would just add partitions.
//
// Run:  ./build/examples/db_evolution

#include <cstdio>
#include <string>

#include "core/reachability.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace {

using namespace odbgc;

void PrintPartitionMap(const CollectedHeap& heap, uint64_t events) {
  const ObjectStore& store = heap.store();
  const GarbageCensus census = ComputeGarbageCensus(store);
  std::printf("after %8llu events: %zu partitions, %llu KB live, %llu KB "
              "garbage, %llu collections\n",
              static_cast<unsigned long long>(events),
              store.partition_count(),
              static_cast<unsigned long long>(census.total_live_bytes / 1024),
              static_cast<unsigned long long>(census.total_garbage_bytes /
                                              1024),
              static_cast<unsigned long long>(heap.stats().collections));
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    const Partition& partition = store.partition(pid);
    const double capacity = partition.capacity_bytes();
    const double garbage = static_cast<double>(
        census.garbage_bytes_per_partition[pid]);
    const double allocated = partition.allocated_bytes();
    const double live = allocated - garbage;

    // 32-character bar: '#' live, 'x' garbage, '.' free.
    constexpr int kWidth = 32;
    const int live_cells = static_cast<int>(live / capacity * kWidth + 0.5);
    const int garbage_cells =
        static_cast<int>(garbage / capacity * kWidth + 0.5);
    std::string bar(kWidth, '.');
    for (int i = 0; i < live_cells && i < kWidth; ++i) bar[i] = '#';
    for (int i = live_cells; i < live_cells + garbage_cells && i < kWidth;
         ++i) {
      bar[i] = 'x';
    }
    std::printf("  partition %2zu [%s]%s\n", pid, bar.c_str(),
                pid == store.empty_partition() ? "  <- empty (copy target)"
                                               : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SimulationConfig config = PaperBaseConfig();
  config.workload = config.workload.WithTotalAllocation(2200ull << 10);
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 100;
  config.heap.policy = PolicyKind::kUpdatedPointer;

  Simulator simulator(config);
  WorkloadGenerator generator(config.workload, config.seed);

  if (Status s = generator.BuildInitialDatabase(&simulator); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("=== initial database built ===\n");
  PrintPartitionMap(simulator.heap(), simulator.events_applied());

  uint64_t next_frame = simulator.events_applied() + 150000;
  while (!generator.Done()) {
    if (Status s = generator.RunRound(&simulator); !s.ok()) {
      std::fprintf(stderr, "round failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (simulator.events_applied() >= next_frame) {
      PrintPartitionMap(simulator.heap(), simulator.events_applied());
      next_frame += 150000;
    }
  }

  std::printf("=== final state ===\n");
  PrintPartitionMap(simulator.heap(), simulator.events_applied());
  const SimulationResult result = simulator.Finish();
  std::printf("legend: '#' live, 'x' garbage, '.' free\n");
  std::printf("totals: %llu app I/Os, %llu collector I/Os, %llu KB "
              "reclaimed across %llu collections\n",
              static_cast<unsigned long long>(result.app_io),
              static_cast<unsigned long long>(result.gc_io),
              static_cast<unsigned long long>(
                  result.garbage_reclaimed_bytes / 1024),
              static_cast<unsigned long long>(result.collections));
  return 0;
}
