// Durable simulation runs: the recovery engine (src/recovery/) makes a
// long experiment killable and restartable. This example runs the paper's
// workload under the durable engine, kills it mid-run with an injected
// disk fault, reopens the same directory, and shows the run resuming from
// its last checkpoint to the exact result an uninterrupted run produces.
//
// A second phase demonstrates the raw layer underneath: saving a live
// heap's StoreImage by hand and restoring it into a fresh heap. The
// durable engine wraps exactly this (plus runtime state, a CRC'd
// container and a write-ahead log) — see CheckpointManager.
//
// Run:  ./build/examples/checkpoint [state-dir]

#include <cstdio>
#include <fstream>

#include "core/heap.h"
#include "core/reachability.h"
#include "odb/store_image.h"
#include "recovery/recover.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "workload/generator.h"

namespace {

odbgc::SimulationConfig ExampleConfig() {
  odbgc::SimulationConfig config = odbgc::PaperBaseConfig();
  config.workload = config.workload.WithTotalAllocation(3ull << 20);
  config.heap.store.pages_per_partition = 24;
  config.heap.buffer_pages = 24;
  config.heap.overwrite_trigger = 100;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odbgc;
  const char* dir = argc > 1 ? argv[1] : "checkpoint_state";

  SimulationConfig config = ExampleConfig();
  config.wal_dir = dir;
  config.checkpoint_every_rounds = 200;

  // The reference: an ordinary, uninterrupted in-memory run.
  SimulationConfig plain = config;
  plain.wal_dir.clear();
  Simulator reference(plain);
  if (Status s = reference.Run(); !s.ok()) {
    std::fprintf(stderr, "reference run: %s\n", s.ToString().c_str());
    return 1;
  }
  const SimulationResult expected = reference.Finish();

  // Phase 1: a durable run, killed mid-flight. The fault plan fails the
  // Nth simulated-disk write, which surfaces as IoError mid-round — the
  // moral equivalent of the process dying there.
  {
    auto engine = DurableSimulation::Open(config);
    if (!engine.ok()) {
      std::fprintf(stderr, "open: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    FaultPlan plan;
    plan.fail_after_writes = expected.disk_stats.page_writes / 2;
    (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
    const Status died = (*engine)->Run();
    std::printf("first attempt died as planned: %s\n",
                died.ToString().c_str());
  }

  // Phase 2: reopen the same directory. Open() finds the newest valid
  // snapshot, drops the uncommitted WAL tail, and replays the committed
  // rounds — verifying every regenerated event against the log.
  auto engine = DurableSimulation::Open(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "reopen: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const DurableRunStats& stats = (*engine)->run_stats();
  std::printf("recovered: resumed=%s from round %llu, "
              "%llu rounds / %llu events replayed from the WAL\n",
              stats.resumed ? "yes" : "no",
              static_cast<unsigned long long>(stats.resumed_from_round),
              static_cast<unsigned long long>(stats.rounds_replayed),
              static_cast<unsigned long long>(stats.events_replayed));
  if (Status s = (*engine)->Run(); !s.ok()) {
    std::fprintf(stderr, "resumed run: %s\n", s.ToString().c_str());
    return 1;
  }
  const SimulationResult resumed = (*engine)->Finish();
  const bool identical =
      resumed.app_io == expected.app_io && resumed.gc_io == expected.gc_io &&
      resumed.collections == expected.collections &&
      resumed.bytes_allocated == expected.bytes_allocated &&
      resumed.disk_stats.page_writes == expected.disk_stats.page_writes;
  std::printf("resumed run vs uninterrupted run: %s "
              "(app_io=%llu gc_io=%llu collections=%llu)\n",
              identical ? "identical" : "DIVERGED",
              static_cast<unsigned long long>(resumed.app_io),
              static_cast<unsigned long long>(resumed.gc_io),
              static_cast<unsigned long long>(resumed.collections));

  // Phase 3: the raw layer — checkpoint a live heap by hand with
  // StoreImage and restore it into a brand-new heap (remembered sets are
  // rebuilt from the object graph). This is what CheckpointManager wraps.
  const std::string image_path = std::string(dir) + "/manual.odbs";
  Simulator simulator(plain);
  WorkloadGenerator generator(plain.workload, plain.seed);
  if (Status s = generator.BuildInitialDatabase(&simulator); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int round = 0; round < 400 && !generator.Done(); ++round) {
    if (Status s = generator.RunRound(&simulator); !s.ok()) {
      std::fprintf(stderr, "round: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  {
    std::ofstream file(image_path, std::ios::binary);
    if (Status s = WriteStoreImage(simulator.heap().ExtractImage(), &file);
        !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::ifstream file(image_path, std::ios::binary);
  auto image = ReadStoreImage(&file);
  if (!image.ok()) {
    std::fprintf(stderr, "read: %s\n", image.status().ToString().c_str());
    return 1;
  }
  auto restored = CollectedHeap::FromImage(plain.heap, *image);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  CollectedHeap& heap = **restored;
  std::printf(
      "manual image roundtrip: %zu objects, %zu remembered-set entries "
      "rebuilt, %llu KB garbage carried over\n",
      heap.store().object_count(), heap.index().entry_count(),
      static_cast<unsigned long long>(
          ComputeGarbageCensus(heap.store()).total_garbage_bytes / 1024));

  // The restored heap is fully operational — collect on it.
  auto result = heap.CollectNow();
  if (result.ok()) {
    std::printf("first post-restore collection: partition %u, reclaimed "
                "%llu KB\n",
                result->collected,
                static_cast<unsigned long long>(
                    result->garbage_bytes_reclaimed / 1024));
  } else {
    std::printf("post-restore collection declined: %s\n",
                result.status().ToString().c_str());
  }
  return identical ? 0 : 1;
}
