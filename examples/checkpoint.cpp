// Checkpointing a live database: run part of the paper's workload, save
// the heap to a binary image, restore it into a brand-new heap (rebuilding
// the remembered sets from the object graph), and keep working.
//
// Run:  ./build/examples/checkpoint [image-file]

#include <cstdio>
#include <fstream>

#include "core/heap.h"
#include "core/reachability.h"
#include "odb/store_image.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace odbgc;
  const char* path = argc > 1 ? argv[1] : "heap_checkpoint.odbs";

  SimulationConfig config = PaperBaseConfig();
  config.workload = config.workload.WithTotalAllocation(3ull << 20);
  config.heap.store.pages_per_partition = 24;
  config.heap.buffer_pages = 24;
  config.heap.overwrite_trigger = 100;

  // Phase 1: build the database and run some of the workload.
  Simulator simulator(config);
  WorkloadGenerator generator(config.workload, config.seed);
  if (Status s = generator.BuildInitialDatabase(&simulator); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int round = 0; round < 400 && !generator.Done(); ++round) {
    if (Status s = generator.RunRound(&simulator); !s.ok()) {
      std::fprintf(stderr, "round: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  CollectedHeap& original = simulator.heap();
  std::printf("before checkpoint: %zu objects, %zu partitions, "
              "%llu collections so far\n",
              original.store().object_count(),
              original.store().partition_count(),
              static_cast<unsigned long long>(original.stats().collections));

  // Phase 2: checkpoint to disk.
  {
    std::ofstream file(path, std::ios::binary);
    if (Status s = WriteStoreImage(original.ExtractImage(), &file);
        !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("checkpoint written to %s\n", path);

  // Phase 3: restore into a fresh heap.
  std::ifstream file(path, std::ios::binary);
  auto image = ReadStoreImage(&file);
  if (!image.ok()) {
    std::fprintf(stderr, "read: %s\n", image.status().ToString().c_str());
    return 1;
  }
  auto restored = CollectedHeap::FromImage(config.heap, *image);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  CollectedHeap& heap = **restored;
  std::printf(
      "restored: %zu objects, %zu remembered-set entries rebuilt, "
      "%llu KB garbage carried over\n",
      heap.store().object_count(), heap.index().entry_count(),
      static_cast<unsigned long long>(
          ComputeGarbageCensus(heap.store()).total_garbage_bytes / 1024));

  // Phase 4: the restored heap is fully operational — collect on it.
  auto result = heap.CollectNow();
  if (result.ok()) {
    std::printf("first post-restore collection: partition %u, reclaimed "
                "%llu KB\n",
                result->collected,
                static_cast<unsigned long long>(
                    result->garbage_bytes_reclaimed / 1024));
  } else {
    std::printf("post-restore collection declined: %s\n",
                result.status().ToString().c_str());
  }
  return 0;
}
