// Quickstart: build a tiny partitioned object database, create garbage,
// and let the UpdatedPointer policy pick the partition to collect.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/heap.h"
#include "core/reachability.h"

namespace {

// Exit with a message on any unexpected error.
void Check(const odbgc::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(odbgc::Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace odbgc;

  // A small heap: 8 KB pages, 8-page partitions, buffer of one partition,
  // collecting with the paper's winning policy after every 16 pointer
  // overwrites.
  HeapOptions options;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 8;
  options.policy = PolicyKind::kUpdatedPointer;
  options.overwrite_trigger = 16;
  CollectedHeap heap(options);

  // Build a little linked structure: a root with a chain of children.
  const ObjectId root = Must(heap.Allocate(128, 4), "allocate root");
  Check(heap.AddRoot(root), "add root");

  ObjectId prev = root;
  for (int i = 0; i < 500; ++i) {
    const ObjectId node =
        Must(heap.Allocate(100, 2, /*parent_hint=*/prev), "allocate node");
    Check(heap.WriteSlot(prev, 0, node), "link node");
    prev = node;
  }
  std::printf("built a chain: %zu objects, %zu partitions, %llu KB on disk\n",
              heap.store().object_count(), heap.store().partition_count(),
              static_cast<unsigned long long>(heap.store().total_bytes() /
                                              1024));

  // Sever the chain near the root: everything below becomes garbage.
  const ObjectId second = Must(heap.ReadSlot(root, 0), "read first link");
  Check(heap.WriteSlot(root, 0, kNullObjectId), "cut the chain");
  (void)second;

  const GarbageCensus before = ComputeGarbageCensus(heap.store());
  std::printf("after the cut: %llu KB of garbage across the database\n",
              static_cast<unsigned long long>(before.total_garbage_bytes /
                                              1024));

  // Collect until the policy stops finding hinted partitions.
  while (true) {
    auto result = heap.CollectNow();
    if (!result.ok()) break;
    std::printf(
        "collected partition %u -> reclaimed %llu KB, copied %llu KB "
        "(%llu reads, %llu writes)\n",
        result->collected,
        static_cast<unsigned long long>(result->garbage_bytes_reclaimed /
                                        1024),
        static_cast<unsigned long long>(result->live_bytes_copied / 1024),
        static_cast<unsigned long long>(result->page_reads),
        static_cast<unsigned long long>(result->page_writes));
    if (result->garbage_bytes_reclaimed == 0 &&
        ComputeGarbageCensus(heap.store()).total_garbage_bytes == 0) {
      break;
    }
  }

  const GarbageCensus after = ComputeGarbageCensus(heap.store());
  std::printf(
      "final: %zu live objects, %llu KB garbage left, "
      "%llu app I/Os, %llu collector I/Os\n",
      heap.store().object_count(),
      static_cast<unsigned long long>(after.total_garbage_bytes / 1024),
      static_cast<unsigned long long>(heap.app_io()),
      static_cast<unsigned long long>(heap.gc_io()));
  return 0;
}
