// Trace capture and analysis: generate the paper's synthetic workload to
// a binary trace file, read it back, and print its workload
// characterization — the Section 5 numbers (object sizes, large-object
// space share, connectivity, edge read/write ratio).
//
// Run:  ./build/examples/trace_tools [output.trace]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "trace/trace_reader.h"
#include "trace/trace_stats.h"
#include "trace/trace_writer.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace odbgc;
  const char* path = argc > 1 ? argv[1] : "paper_workload.trace";
  uint64_t events_written = 0;

  // A quarter-size run keeps the file small; drop the scaling for the
  // full 11 MB paper trace.
  WorkloadConfig config;
  config.target_live_bytes /= 4;
  config.total_alloc_bytes /= 4;

  {
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    TraceWriter writer(&file);
    WorkloadGenerator generator(config, /*seed=*/1);
    if (Status s = generator.Generate(&writer); !s.ok()) {
      std::fprintf(stderr, "generation failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = writer.Flush(); !s.ok()) {
      std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
      return 1;
    }
    events_written = writer.events_written();
    std::printf("wrote %llu events to %s\n",
                static_cast<unsigned long long>(events_written), path);
  }

  // Read it back and characterize the workload.
  std::ifstream file(path, std::ios::binary);
  TraceReader reader(&file);
  TraceStatsCollector stats;
  stats.Reserve(events_written);
  if (Status s = reader.ReplayInto(&stats); !s.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nworkload characterization (cf. paper Section 5):\n");
  stats.Print(std::cout);
  std::printf(
      "\nThe paper's test database: ~100-byte objects, 64 KB large leaves\n"
      "at ~20%% of space, connectivity 1.005-1.167, edge read/write ratio\n"
      "15-20.\n");
  return 0;
}
