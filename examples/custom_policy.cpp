// Plugging a user-defined partition selection policy into the heap via
// the name registry.
//
// This example implements "SizeGreedy": always collect the partition with
// the most allocated (not necessarily garbage) bytes — a plausible-looking
// heuristic a practitioner might try — registers it under that name, and
// races it against the paper's UpdatedPointer on the same workload to show
// why hint quality matters. Once registered, the policy is selectable
// everywhere a built-in is: HeapOptions::policy_name, ExperimentSpec
// policy lists, run manifests, odbgc-report tables.
//
// Run:  ./build/examples/custom_policy

#include <cstdio>
#include <memory>

#include "core/heap.h"
#include "core/policies.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace {

using namespace odbgc;

// A custom policy needs Select(), kind() and name(); notifications are
// optional. It must be deterministic and may keep any state it likes.
class SizeGreedyPolicy : public SelectionPolicy {
 public:
  // The registry hands the factory a stable slot that the heap points at
  // its store once wiring finishes; keep the slot, not the pointee.
  explicit SizeGreedyPolicy(const ObjectStore* const* store)
      : store_(store) {}

  // Report ourselves as an "UpdatedPointer-class" policy: the heap treats
  // any kind other than kNoCollection/kMostGarbage identically.
  PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }

  // The identity manifests and reports key on.
  std::string name() const override { return "SizeGreedy"; }

  PartitionId Select(const SelectionContext& context) override {
    PartitionId best = kInvalidPartition;
    uint32_t best_bytes = 0;
    for (PartitionId candidate : context.candidates) {
      const uint32_t bytes =
          (*store_)->partition(candidate).allocated_bytes();
      if (best == kInvalidPartition || bytes > best_bytes) {
        best = candidate;
        best_bytes = bytes;
      }
    }
    return best;
  }

 private:
  const ObjectStore* const* store_;  // Bound after the heap exists.
};

SimulationConfig SmallConfig() {
  SimulationConfig config = PaperBaseConfig();
  config.workload = config.workload.WithTotalAllocation(3ull << 20);
  config.heap.store.pages_per_partition = 24;
  config.heap.buffer_pages = 24;
  config.heap.overwrite_trigger = 100;
  return config;
}

void Report(const char* name, const SimulationResult& result) {
  std::printf(
      "  %-16s total I/O %7llu   reclaimed %5llu KB (%.1f%% of garbage)   "
      "max storage %5llu KB\n",
      name, static_cast<unsigned long long>(result.total_io()),
      static_cast<unsigned long long>(result.garbage_reclaimed_bytes / 1024),
      result.FractionReclaimedPct(),
      static_cast<unsigned long long>(result.max_storage_bytes / 1024));
}

}  // namespace

int main() {
  // One registration makes the policy a first-class citizen.
  if (Status s = RegisterPolicy(
          "SizeGreedy",
          [](const PolicyContext& context) {
            return std::make_unique<SizeGreedyPolicy>(context.store);
          });
      !s.ok()) {
    std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Run 1: the custom policy, selected by name like any built-in.
  SimulationConfig custom = SmallConfig();
  custom.heap.policy_name = "SizeGreedy";
  Simulator custom_sim(custom);
  if (Status s = custom_sim.Run(); !s.ok()) {
    std::fprintf(stderr, "custom run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Run 2: the paper's UpdatedPointer on the identical trace (same seed).
  SimulationConfig baseline = SmallConfig();
  baseline.heap.policy_name = "UpdatedPointer";
  Simulator baseline_sim(baseline);
  if (Status s = baseline_sim.Run(); !s.ok()) {
    std::fprintf(stderr, "baseline run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("same trace, two selection policies:\n");
  Report("SizeGreedy", custom_sim.Finish());
  Report("UpdatedPointer", baseline_sim.Finish());
  std::printf(
      "\nSizeGreedy keeps re-collecting full partitions whether or not\n"
      "they hold garbage; UpdatedPointer's overwritten-pointer hints find\n"
      "the partitions where garbage actually is.\n");
  return 0;
}
