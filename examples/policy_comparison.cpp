// Compares all six partition selection policies on a scaled-down version
// of the paper's workload (about 1 MB of live data) and prints the three
// paper-style summary tables. A fast tour of the whole library; the bench/
// binaries run the full-size configurations.
//
// Run:  ./build/examples/policy_comparison [num_seeds]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sim/config.h"
#include "sim/report.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace odbgc;

  ExperimentSpec spec;
  spec.base = PaperBaseConfig();
  // Scale the workload down ~5x and the partitions with it.
  spec.base.workload = spec.base.workload.WithTotalAllocation(2200ull << 10);
  spec.base.heap.store.pages_per_partition = 16;
  spec.base.heap.buffer_pages = 16;
  spec.base.heap.overwrite_trigger = 100;
  spec.num_seeds = argc > 1 ? std::atoi(argv[1]) : 3;
  if (spec.num_seeds <= 0) {
    std::fprintf(stderr, "usage: %s [num_seeds>0]\n", argv[0]);
    return 1;
  }

  std::printf("running %d seed(s) x %zu policies...\n", spec.num_seeds,
              spec.policies.size());
  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  const auto summaries = Summarize(*experiment);
  std::cout << '\n';
  PrintThroughputTable(summaries, std::cout);
  std::cout << '\n';
  PrintStorageTable(summaries, std::cout);
  std::cout << '\n';
  PrintEfficiencyTable(summaries, std::cout);
  return 0;
}
