// Ablation (Table 1: "How to maintain inter-partition pointers"): exact
// synchronous maintenance vs a sequential store buffer vs card marking.
// The paper holds this fixed (citing Hosking/Moss/Stefanovic for the
// CPU-side comparison) and argues the I/O side is what matters in an
// ODBMS; this bench measures exactly that I/O side: all three produce
// identical reclamation, differing only in collection-time catch-up cost.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: write-barrier implementation",
                     "Table 1 ('how to maintain inter-partition pointers')");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Barrier", "GC I/Os", "Total I/Os", "Reclaimed (KB)",
                      "% of garbage"});

  for (BarrierMode mode :
       {BarrierMode::kExact, BarrierMode::kSequentialStoreBuffer,
        BarrierMode::kCardMarking}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.barrier = mode;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat gc_io, total_io, reclaimed, fraction;
    for (const auto& run : experiment->sets[0].runs) {
      gc_io.Add(static_cast<double>(run.gc_io));
      total_io.Add(static_cast<double>(run.total_io()));
      reclaimed.Add(static_cast<double>(run.garbage_reclaimed_bytes) /
                    1024.0);
      fraction.Add(run.FractionReclaimedPct());
    }
    table.AddRow({BarrierModeName(mode), FormatCount(gc_io.mean()),
                  FormatCount(total_io.mean()),
                  FormatCount(reclaimed.mean()),
                  FormatDouble(fraction.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading (UpdatedPointer): reclamation is identical by\n"
      "construction — every mode presents the collector with a correct\n"
      "remembered set. Card marking pays to rescan every card that keeps\n"
      "an inter-partition pointer; the store buffer pays one slot read\n"
      "per logged store at drain time. The paper's observation stands:\n"
      "against secondary-memory costs, barrier overhead is secondary.\n");
  return 0;
}
