// Ablation (Section 6.5 future work, implemented): hybrid collection —
// UpdatedPointer partition collections plus a periodic whole-database
// mark-and-copy pass that reclaims nepotism victims and cross-partition
// cyclic garbage. Measures what the global pass buys and what it costs,
// at the paper's highest connectivity (where distributed garbage is
// worst).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: periodic whole-database collection",
                     "Section 6.5 (distributed garbage, future work)");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Full GC every", "Full GCs", "% of garbage",
                      "Unreclaimed (KB)", "GC I/Os", "Total I/Os",
                      "Max storage (KB)"});

  for (uint32_t interval : {0u, 20u, 10u, 5u}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.workload = spec.base.workload.WithConnectivity(1.167);
    spec.base.heap.full_collection_interval = interval;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat full, fraction, unreclaimed, gc_io, total_io, storage;
    for (const auto& run : experiment->sets[0].runs) {
      full.Add(static_cast<double>(run.heap_stats.full_collections));
      fraction.Add(run.FractionReclaimedPct());
      unreclaimed.Add(static_cast<double>(run.unreclaimed_garbage_bytes) /
                      1024.0);
      gc_io.Add(static_cast<double>(run.gc_io));
      total_io.Add(static_cast<double>(run.total_io()));
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({interval == 0 ? "never" : std::to_string(interval),
                  FormatDouble(full.mean(), 1),
                  FormatDouble(fraction.mean(), 1),
                  FormatCount(unreclaimed.mean()),
                  FormatCount(gc_io.mean()), FormatCount(total_io.mean()),
                  FormatCount(storage.mean())});
  }
  std::printf("UpdatedPointer at connectivity 1.167, with a global pass\n"
              "after every N partition collections:\n\n");
  table.Print(std::cout);
  std::printf(
      "\nReading: the global pass eliminates the nepotism/cycle residue\n"
      "partition-local collection can never reach, pushing reclamation\n"
      "toward 100%% — at a steep collector-I/O price (each pass reads and\n"
      "rewrites the whole live database). The paper's call for 'graceful\n"
      "and scalable' treatment of distributed garbage is this trade-off.\n");
  return 0;
}
