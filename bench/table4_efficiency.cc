// Regenerates Table 4: collector effectiveness and efficiency — garbage
// reclaimed, fraction of the actual garbage reclaimed, and KB reclaimed
// per collector I/O, with the trace's "Actual Garbage" reference row.
//
// Expected shape: a copying collector is *cheaper per byte* when it finds
// more garbage, so the efficiency column amplifies the policy ranking:
// UpdatedPointer roughly twice as efficient as MutatedPartition, and close
// to MostGarbage (paper: 2.58 vs 3.13 KB/IO, 0.82 relative).

#include <iostream>

#include "bench/bench_common.h"
#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Table 4: Collector effectiveness and efficiency",
                     "Table 4");

  const ExperimentSpec spec =
      bench::BaseSpec(10).WithManifestDir(bench::ManifestDirOrEmpty());
  std::printf("running %zu policies x %d seeds...\n\n", spec.policies.size(),
              spec.num_seeds);

  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

  PrintEfficiencyTable(Summarize(*experiment), std::cout);
  std::printf(
      "\nPaper's Table 4 (%% of garbage / relative efficiency):\n"
      "  MutatedPartition 37%% / 0.44   Random 45%% / 0.56\n"
      "  WeightedPointer 48%% / 0.60    UpdatedPointer 62%% / 0.82\n"
      "  MostGarbage 68%% / 1.00\n");
  return 0;
}
