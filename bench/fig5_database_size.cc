// Regenerates Figure 5: database size (live objects + unreclaimed garbage
// + fragmentation) over time for every policy, same run shape as Figure 4.
//
// Expected shape: three groupings — UpdatedPointer tracking MostGarbage
// (occasionally dipping below it: the oracle is greedy, not clairvoyant),
// WeightedPointer tracking Random, and MutatedPartition doing poorly,
// with NoCollection growing without bound above all of them.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Figure 5: Database size over time", "Figure 5");

  SimulationConfig base = bench::BaseConfig();
  base.workload =
      base.workload.WithTotalAllocation(base.workload.total_alloc_bytes * 2);
  base.snapshot_interval = bench::FastMode() ? 100000 : 150000;
  base.census_at_snapshots = false;  // Size needs no census.

  std::vector<TimeSeries> series;
  TablePrinter summary(
      {"Policy", "Final size (KB)", "Max size (KB)", "Partitions"});
  for (PolicyKind policy : AllPolicyKinds()) {
    SimulationConfig config = base;
    config.heap.policy = policy;
    Simulator simulator(config);
    const Status status = simulator.Run();
    if (!status.ok()) bench::Fail(status, PolicyName(policy));
    SimulationResult result = simulator.Finish();

    TimeSeries named(PolicyName(policy));
    for (const auto& point : result.database_size_kb.points()) {
      named.Add(point.x, point.y);
    }
    series.push_back(named);
    summary.AddRow(
        {PolicyName(policy), FormatCount(named.LastY()),
         FormatCount(static_cast<double>(result.max_storage_bytes) / 1024.0),
         FormatCount(static_cast<double>(result.final_partitions))});
    std::printf("  %-17s done\n", PolicyName(policy));
  }

  std::printf("\nDatabase size (KB) vs application events:\n");
  RenderAscii(series, std::cout, 72, 20);
  std::cout << '\n';
  summary.Print(std::cout);

  std::ofstream dat("fig5_database_size.dat");
  WriteGnuplot(series, dat);
  std::ofstream csv("fig5_database_size.csv");
  WriteCsv(series, csv);
  std::printf("\nwrote fig5_database_size.dat (gnuplot) and .csv\n");
  return 0;
}
