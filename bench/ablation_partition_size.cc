// Ablation (Table 1: "How database partitions relate to GC partitions"):
// partition size at a fixed database size. Smaller partitions mean each
// collection reclaims a smaller fraction of the database but costs less;
// more partitions also means more inter-partition pointers (remembered-set
// overhead and nepotism). Buffer stays equal to one partition, as in the
// paper.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: partition size (buffer = one partition)",
                     "Section 4.1 'Partition Organization'");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Pages/partition", "Partitions", "Collections",
                      "Total I/Os", "% of garbage", "Max storage (KB)",
                      "Efficiency (KB/IO)"});

  for (size_t pages : {12u, 24u, 48u, 96u, 192u}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.store.pages_per_partition = pages;
    spec.base.heap.buffer_pages = pages;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat partitions, collections, total_io, fraction, storage,
        efficiency;
    for (const auto& run : experiment->sets[0].runs) {
      partitions.Add(static_cast<double>(run.max_partitions));
      collections.Add(static_cast<double>(run.collections));
      total_io.Add(static_cast<double>(run.total_io()));
      fraction.Add(run.FractionReclaimedPct());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
      efficiency.Add(run.EfficiencyKbPerIo());
    }
    table.AddRow({std::to_string(pages), FormatDouble(partitions.mean(), 1),
                  FormatDouble(collections.mean(), 1),
                  FormatCount(total_io.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatCount(storage.mean()),
                  FormatDouble(efficiency.mean(), 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading (UpdatedPointer): the paper sizes partitions so the\n"
      "database holds 15-25 of them — enough for selection policies to\n"
      "differentiate, while each collection still reclaims a useful\n"
      "fraction of the database.\n");
  return 0;
}
