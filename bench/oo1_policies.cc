// Robustness check beyond the paper: the six policies on an OO1-style
// parts-and-connections workload (flat graph, fine-grained scattered
// garbage from part deletions) instead of the paper's augmented binary
// trees. If UpdatedPointer's advantage were an artifact of tree-shaped
// databases, it would vanish here.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "util/statistics.h"
#include "util/table_printer.h"
#include "workload/oo1_generator.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Extension: policies on an OO1-style workload",
                     "beyond the paper (robustness across workload shapes)");

  OO1Config workload;
  workload.target_live_bytes = 4ull << 20;
  workload.total_alloc_bytes = 9ull << 20;
  if (bench::FastMode()) {
    workload.target_live_bytes /= 4;
    workload.total_alloc_bytes /= 4;
  }
  const int seeds = bench::SeedsOrDefault(3);

  // OO1 deletes produce ~4 overwrites each (index unhook + incoming
  // connection clears); scale the trigger to land near the paper's
  // 25-40 collections per run.
  SimulationConfig base = PaperBaseConfig();
  base.heap.overwrite_trigger = 6000;

  TablePrinter table({"Selection Policy", "Total I/Os", "Collections",
                      "Reclaimed (KB)", "% of garbage",
                      "Efficiency (KB/IO)", "Max storage (KB)"});
  for (PolicyKind policy : AllPolicyKinds()) {
    RunningStat total_io, collections, reclaimed, fraction, efficiency,
        storage;
    for (int s = 0; s < seeds; ++s) {
      SimulationConfig config = base;
      config.heap.policy = policy;
      config.seed = 1 + s;
      Simulator simulator(config);
      OO1Generator generator(workload, config.seed);
      if (Status status = generator.Generate(&simulator); !status.ok()) {
        bench::Fail(status, PolicyName(policy));
      }
      const SimulationResult run = simulator.Finish();
      total_io.Add(static_cast<double>(run.total_io()));
      collections.Add(static_cast<double>(run.collections));
      reclaimed.Add(static_cast<double>(run.garbage_reclaimed_bytes) /
                    1024.0);
      fraction.Add(run.FractionReclaimedPct());
      efficiency.Add(run.EfficiencyKbPerIo());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({PolicyName(policy), FormatCount(total_io.mean()),
                  FormatDouble(collections.mean(), 1),
                  FormatCount(reclaimed.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatDouble(efficiency.mean(), 2),
                  FormatCount(storage.mean())});
    std::printf("  %-17s done\n", PolicyName(policy));
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "\nReading: the hints survive the workload change — deleting a part\n"
      "overwrites the pointers into it, so UpdatedPointer still learns\n"
      "where garbage forms, while MutatedPartition keeps chasing insert\n"
      "activity.\n");
  return 0;
}
