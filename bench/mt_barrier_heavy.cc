// Concurrency scaling probe (DESIGN.md §14): the hotpath suite's
// barrier-heavy workload replayed through the ConcurrentSimulator at 1, 2,
// 4 and 8 mutator threads over a fixed set of 8 trace shards. Fixing the
// shard count while varying threads isolates the parallelism axis: every
// row executes the identical shard set, so the aggregate result must be
// bitwise identical across rows (checked here — a scaling probe that
// silently changed the answer would be worthless), and events/sec measures
// pure scheduling/epoch overhead plus parallel speedup.
//
// The 1-thread row doubles as the concurrency tax measurement: it runs the
// same epoch pinning, barrier-event buffering, and deferred reclamation as
// the parallel rows, serially. Speedup figures are informational — they
// depend on the machine's core count (reported in the JSON).
//
// Usage: mt_barrier_heavy [output.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/concurrent_simulator.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kShards = 8;

SimulationConfig BarrierHeavyConfig() {
  SimulationConfig c = bench::BaseConfig();
  c.heap.policy = PolicyKind::kMutatedPartition;
  c.heap.barrier = BarrierMode::kCardMarking;
  c.heap.store.placement = PlacementPolicy::kRoundRobin;
  c.workload.visit_modify_prob = 0.20;
  c.workload.dense_edge_prob = 0.167;
  c.trace_shards = kShards;
  return c;
}

struct Row {
  uint32_t threads = 0;
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  SimulationResult result;
};

/// The deterministic surface two rows must share (the full field set is
/// enforced by the equivalence test suite; the bench spot-checks the
/// headline counters so a divergence aborts the run loudly).
bool SameAggregate(const SimulationResult& a, const SimulationResult& b) {
  return a.app_events == b.app_events && a.app_io == b.app_io &&
         a.gc_io == b.gc_io && a.collections == b.collections &&
         a.garbage_reclaimed_bytes == b.garbage_reclaimed_bytes &&
         a.bytes_allocated == b.bytes_allocated &&
         a.remset_entries == b.remset_entries &&
         a.max_storage_bytes == b.max_storage_bytes;
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_concurrency.json";
  if (argc > 1) json_path = argv[1];

  bench::PrintHeader("Concurrent mutator scaling (barrier-heavy workload)",
                     "concurrency engineering (no paper table)");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, trace shards: %u\n\n", cores, kShards);

  std::vector<Row> rows;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    SimulationConfig config = BarrierHeavyConfig();
    config.mutator_threads = threads;

    ConcurrentSimulator sim(config);
    const auto start = Clock::now();
    if (Status status = sim.Run(); !status.ok()) {
      bench::Fail(status, "mt_barrier_heavy");
    }
    Row row;
    row.result = sim.Finish();
    row.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    row.threads = threads;
    row.events = row.result.app_events;
    row.events_per_sec =
        row.wall_seconds > 0
            ? static_cast<double>(row.events) / row.wall_seconds
            : 0;

    std::printf(
        "threads=%u  events=%-10llu wall=%8.3fs  events/sec=%12.0f"
        "  speedup=%.2fx\n",
        threads, static_cast<unsigned long long>(row.events),
        row.wall_seconds, row.events_per_sec,
        rows.empty() ? 1.0
                     : row.events_per_sec / rows.front().events_per_sec);

    if (!rows.empty() && !SameAggregate(rows.front().result, row.result)) {
      std::fprintf(stderr,
                   "aggregate result diverged between 1 and %u threads — "
                   "the concurrent mode is broken\n",
                   threads);
      return 1;
    }
    rows.push_back(std::move(row));
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"mt_barrier_heavy\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n";
  json << "  \"hardware_threads\": " << cores << ",\n";
  json << "  \"trace_shards\": " << kShards << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n      \"threads\": " << r.threads << ",\n";
    json << "      \"events\": " << r.events << ",\n";
    json << "      \"wall_seconds\": " << r.wall_seconds << ",\n";
    json << "      \"events_per_sec\": " << r.events_per_sec << ",\n";
    json << "      \"speedup_vs_1\": "
         << (rows.front().events_per_sec > 0
                 ? r.events_per_sec / rows.front().events_per_sec
                 : 0)
         << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"aggregate_invariant\": true\n}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);
  return json.good() ? 0 : 1;
}
