// Concurrency scaling probes (DESIGN.md §14/§15), two experiments in one
// binary:
//
// 1. Uniform scaling: the hotpath suite's barrier-heavy workload replayed
//    through the ConcurrentSimulator at 1, 2, 4 and 8 mutator threads over
//    a fixed set of 8 equal trace shards. Fixing the shard count while
//    varying threads isolates the parallelism axis: every row executes the
//    identical shard set, so the aggregate result must be bitwise
//    identical across rows (checked here — a scaling probe that silently
//    changed the answer would be worthless), and events/sec measures pure
//    scheduling/epoch overhead plus parallel speedup. Each row also
//    reports scheduler efficiency — mean busy/wall across workers — and
//    the steal count, straight from the TaskPool's diagnostics.
//
// 2. Skewed shards: the same workload with one shard carrying 8x the
//    volume of the other seven, under the census-heavy MostGarbage policy,
//    run twice at 4 threads — once on the PR 7 pull-queue scheduler (a
//    worker claims a whole shard and keeps it) and once on the
//    work-stealing scheduler with parallel marking on the same pool. The
//    pull queue pins the giant shard to one worker and serializes its
//    censuses; stealing lets the workers that finished the small shards
//    execute the giant shard's marking strips. The headline number is
//    steal wall-clock speedup over pull (the skew-resistance claim), with
//    the aggregate checked identical between the two engines.
//
//    The direct wall comparison only resolves the schedulers when the
//    host grants the probe its 4 cores; on a smaller machine (CI
//    containers here expose one) both engines degenerate to the same
//    serialized work and the ratio reads ~1.0 no matter how good the
//    scheduler is. So the probe also derives a machine-independent
//    critical-path speedup from per-shard measurements: each shard is
//    run serially to get its wall time T_i and its census (marking)
//    share C_i, then
//      pull makespan  = FIFO schedule of whole shards over 4 workers
//                       (exactly the pull queue's claim discipline), and
//      steal makespan = max(sum(T_i)/4, T_giant - C_giant * 3/4)
//                       (event batches keep every worker fed until the
//                       giant shard's tail, whose census strips the pool
//                       shares 4-wide; its non-marking spine stays the
//                       serial floor).
//    Both models consume only measured times from this machine. The JSON
//    records the measured ratio, the modeled ratio, and which one the
//    headline `speedup_steal_vs_pull` used (`speedup_basis`).
//
// The 1-thread row doubles as the concurrency tax measurement: it runs the
// same epoch pinning, barrier-event buffering, and deferred reclamation as
// the parallel rows, serially. Speedup figures are informational — they
// depend on the machine's core count (reported in the JSON).
//
// Usage: mt_barrier_heavy [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/concurrent_simulator.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kShards = 8;
constexpr uint32_t kSkewThreads = 4;

SimulationConfig BarrierHeavyConfig() {
  SimulationConfig c = bench::BaseConfig();
  c.heap.policy = PolicyKind::kMutatedPartition;
  c.heap.barrier = BarrierMode::kCardMarking;
  c.heap.store.placement = PlacementPolicy::kRoundRobin;
  c.workload.visit_modify_prob = 0.20;
  c.workload.dense_edge_prob = 0.167;
  c.trace_shards = kShards;
  return c;
}

// One shard 8x the rest, census-heavy policy: the load shape the
// work-stealing scheduler exists for. The giant shard is last so a greedy
// whole-shard claimer starts it after the small ones — the pull queue's
// worst case and a perfectly legal arrival order.
SimulationConfig SkewedConfig() {
  SimulationConfig c = bench::BaseConfig();
  c.heap.policy = PolicyKind::kMostGarbage;
  // Collect (and hence census) aggressively, over small partitions: the
  // probe stresses the scheduler's handling of a shard whose time is
  // dominated by divisible marking work (the full-database census), not
  // the barrier hot path or per-partition copying.
  c.heap.overwrite_trigger = 10;
  c.heap.store.pages_per_partition = 24;
  c.heap.buffer_pages = 24;
  c.trace_shards = kShards;
  c.shard_weights = {1, 1, 1, 1, 1, 1, 1, 8};
  c.mutator_threads = kSkewThreads;
  c.heap.parallel_marking_threads = kSkewThreads;
  return c;
}

struct Row {
  uint32_t threads = 0;
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double efficiency = 0;  // mean busy/wall across pool workers
  uint64_t steals = 0;
  SimulationResult result;
};

/// The deterministic surface two rows must share (the full field set is
/// enforced by the equivalence test suite; the bench spot-checks the
/// headline counters so a divergence aborts the run loudly).
bool SameAggregate(const SimulationResult& a, const SimulationResult& b) {
  return a.app_events == b.app_events && a.app_io == b.app_io &&
         a.gc_io == b.gc_io && a.collections == b.collections &&
         a.garbage_reclaimed_bytes == b.garbage_reclaimed_bytes &&
         a.bytes_allocated == b.bytes_allocated &&
         a.remset_entries == b.remset_entries &&
         a.max_storage_bytes == b.max_storage_bytes;
}

struct ShardCost {
  double wall_seconds = 0;    // T_i: serial wall of the shard
  double census_seconds = 0;  // C_i: census/marking share of T_i
};

// Serial per-shard ground truth for the critical-path models: each shard
// replayed alone (serial marking, hot-path profiling on) — the same
// decomposition the equivalence suite's serial oracle uses.
std::vector<ShardCost> MeasureShardCosts(const SimulationConfig& config) {
  ConcurrentSimulator shape(config);
  std::vector<ShardCost> costs;
  for (uint32_t s = 0; s < shape.shard_count(); ++s) {
    SimulationConfig shard = shape.ShardConfig(s);
    shard.heap.parallel_marking_threads = 0;
    shard.heap.profile_hot_paths = true;
    Simulator sim(shard);
    const auto start = Clock::now();
    if (Status status = sim.Run(); !status.ok()) {
      bench::Fail(status, "mt_barrier_heavy (shard probe)");
    }
    ShardCost cost;
    cost.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    // Wall-phase counters live in their own registry, beside the
    // deterministic result surface.
    for (const MetricSample& sample : sim.heap().wall_metrics()->Snapshot()) {
      if (sample.name == "wall.census_ns") {
        cost.census_seconds = static_cast<double>(sample.total()) / 1e9;
      }
    }
    costs.push_back(cost);
  }
  return costs;
}

// The pull queue's actual discipline: shards claimed FIFO by whichever of
// the `workers` frees first, each held to completion.
double PullMakespan(const std::vector<ShardCost>& costs, uint32_t workers) {
  std::vector<double> free_at(workers, 0.0);
  double makespan = 0;
  for (const ShardCost& cost : costs) {
    auto next = std::min_element(free_at.begin(), free_at.end());
    *next += cost.wall_seconds;
    makespan = std::max(makespan, *next);
  }
  return makespan;
}

// Work-stealing bound: batches keep all workers busy until only the giant
// shard remains; its census strips are shared pool-wide, its non-marking
// spine is the serial floor. Lower-bounded by perfect division of the
// total work.
double StealMakespan(const std::vector<ShardCost>& costs, uint32_t workers) {
  double total = 0;
  double longest_spine = 0;
  for (const ShardCost& cost : costs) {
    total += cost.wall_seconds;
    const double spine =
        cost.wall_seconds -
        cost.census_seconds * (workers - 1) / static_cast<double>(workers);
    longest_spine = std::max(longest_spine, spine);
  }
  return std::max(total / workers, longest_spine);
}

Row RunOnce(const SimulationConfig& config) {
  ConcurrentSimulator sim(config);
  const auto start = Clock::now();
  if (Status status = sim.Run(); !status.ok()) {
    bench::Fail(status, "mt_barrier_heavy");
  }
  Row row;
  row.result = sim.Finish();
  row.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  row.threads = config.mutator_threads;
  row.events = row.result.app_events;
  row.events_per_sec =
      row.wall_seconds > 0
          ? static_cast<double>(row.events) / row.wall_seconds
          : 0;
  const std::vector<double>& busy = sim.worker_busy_seconds();
  if (!busy.empty() && row.wall_seconds > 0) {
    double total = 0;
    for (double b : busy) total += b;
    row.efficiency =
        total / (static_cast<double>(busy.size()) * row.wall_seconds);
  }
  row.steals = sim.scheduler_steals();
  return row;
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_concurrency.json";
  if (argc > 1) json_path = argv[1];

  bench::PrintHeader("Concurrent mutator scaling (barrier-heavy workload)",
                     "concurrency engineering (no paper table)");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, trace shards: %u\n\n", cores, kShards);

  std::vector<Row> rows;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    SimulationConfig config = BarrierHeavyConfig();
    config.mutator_threads = threads;
    Row row = RunOnce(config);

    std::printf(
        "threads=%u  events=%-10llu wall=%8.3fs  events/sec=%12.0f"
        "  speedup=%.2fx  busy/wall=%.2f  steals=%llu\n",
        threads, static_cast<unsigned long long>(row.events),
        row.wall_seconds, row.events_per_sec,
        rows.empty() ? 1.0
                     : row.events_per_sec / rows.front().events_per_sec,
        row.efficiency, static_cast<unsigned long long>(row.steals));

    if (!rows.empty() && !SameAggregate(rows.front().result, row.result)) {
      std::fprintf(stderr,
                   "aggregate result diverged between 1 and %u threads — "
                   "the concurrent mode is broken\n",
                   threads);
      return 1;
    }
    rows.push_back(std::move(row));
  }

  std::printf("\nskewed shards (weights 1,1,1,1,1,1,1,8; MostGarbage; "
              "%u threads):\n", kSkewThreads);
  SimulationConfig skew_pull = SkewedConfig();
  skew_pull.shard_scheduler = ShardSchedulerKind::kPullQueue;
  const Row pull = RunOnce(skew_pull);
  std::printf("  pull-queue     wall=%8.3fs  events/sec=%12.0f\n",
              pull.wall_seconds, pull.events_per_sec);

  SimulationConfig skew_steal = SkewedConfig();
  skew_steal.shard_scheduler = ShardSchedulerKind::kWorkStealing;
  const Row steal = RunOnce(skew_steal);
  const double measured_speedup =
      steal.wall_seconds > 0 ? pull.wall_seconds / steal.wall_seconds : 0;
  std::printf("  work-stealing  wall=%8.3fs  events/sec=%12.0f"
              "  busy/wall=%.2f  steals=%llu  speedup=%.2fx\n",
              steal.wall_seconds, steal.events_per_sec, steal.efficiency,
              static_cast<unsigned long long>(steal.steals),
              measured_speedup);
  if (!SameAggregate(pull.result, steal.result)) {
    std::fprintf(stderr,
                 "aggregate result diverged between the pull-queue and "
                 "work-stealing schedulers — the scheduler is broken\n");
    return 1;
  }

  // Machine-independent critical-path view (see file comment): measured
  // per-shard serial costs driven through each scheduler's discipline.
  const std::vector<ShardCost> costs = MeasureShardCosts(SkewedConfig());
  const double pull_makespan = PullMakespan(costs, kSkewThreads);
  const double steal_makespan = StealMakespan(costs, kSkewThreads);
  const double modeled_speedup =
      steal_makespan > 0 ? pull_makespan / steal_makespan : 0;
  double census_share = 0, total_serial = 0;
  for (const ShardCost& c : costs) {
    census_share += c.census_seconds;
    total_serial += c.wall_seconds;
  }
  std::printf(
      "  critical path  pull=%8.3fs  steal=%8.3fs  speedup=%.2fx"
      "  (census %.0f%% of serial work)\n",
      pull_makespan, steal_makespan, modeled_speedup,
      total_serial > 0 ? 100.0 * census_share / total_serial : 0);

  // The wall comparison needs the probe's cores to mean anything; on a
  // smaller host the critical-path model carries the headline.
  const bool measured_basis = cores >= kSkewThreads;
  const double skew_speedup =
      measured_basis ? measured_speedup : modeled_speedup;
  std::printf("  headline speedup (%s): %.2fx\n",
              measured_basis ? "measured" : "critical-path model",
              skew_speedup);

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"mt_barrier_heavy\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n";
  json << "  \"hardware_threads\": " << cores << ",\n";
  json << "  \"trace_shards\": " << kShards << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\n      \"threads\": " << r.threads << ",\n";
    json << "      \"events\": " << r.events << ",\n";
    json << "      \"wall_seconds\": " << r.wall_seconds << ",\n";
    json << "      \"events_per_sec\": " << r.events_per_sec << ",\n";
    json << "      \"busy_over_wall\": " << r.efficiency << ",\n";
    json << "      \"steals\": " << r.steals << ",\n";
    json << "      \"speedup_vs_1\": "
         << (rows.front().events_per_sec > 0
                 ? r.events_per_sec / rows.front().events_per_sec
                 : 0)
         << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"skewed\": {\n";
  json << "    \"threads\": " << kSkewThreads << ",\n";
  json << "    \"shard_weights\": [1, 1, 1, 1, 1, 1, 1, 8],\n";
  json << "    \"policy\": \"MostGarbage\",\n";
  json << "    \"pull_queue_wall_seconds\": " << pull.wall_seconds << ",\n";
  json << "    \"work_stealing_wall_seconds\": " << steal.wall_seconds
       << ",\n";
  json << "    \"work_stealing_busy_over_wall\": " << steal.efficiency
       << ",\n";
  json << "    \"work_stealing_steals\": " << steal.steals << ",\n";
  json << "    \"measured_speedup_steal_vs_pull\": " << measured_speedup
       << ",\n";
  json << "    \"critical_path\": {\n";
  json << "      \"shard_serial_seconds\": [";
  for (size_t i = 0; i < costs.size(); ++i) {
    json << (i ? ", " : "") << costs[i].wall_seconds;
  }
  json << "],\n      \"shard_census_seconds\": [";
  for (size_t i = 0; i < costs.size(); ++i) {
    json << (i ? ", " : "") << costs[i].census_seconds;
  }
  json << "],\n      \"pull_queue_makespan_seconds\": " << pull_makespan
       << ",\n";
  json << "      \"work_stealing_makespan_seconds\": " << steal_makespan
       << ",\n";
  json << "      \"modeled_speedup_steal_vs_pull\": " << modeled_speedup
       << "\n    },\n";
  json << "    \"speedup_basis\": \""
       << (measured_basis ? "measured" : "critical_path_model") << "\",\n";
  json << "    \"speedup_steal_vs_pull\": " << skew_speedup << "\n";
  json << "  },\n  \"aggregate_invariant\": true\n}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);
  return json.good() ? 0 : 1;
}
