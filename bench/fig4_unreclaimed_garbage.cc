// Regenerates Figure 4: uncollected garbage over time (application
// events) for every policy, on the paper's larger single-run database
// (~20 MB under NoCollection, ~10 MB under MostGarbage).
//
// Expected shape: policies differentiate quickly; MostGarbage and
// UpdatedPointer hold unreclaimed garbage lowest and eventually overlap;
// Random and WeightedPointer track each other in the middle;
// MutatedPartition worsens over time; NoCollection's curve is the total
// garbage ever created.
//
// Output: an ASCII rendering, a summary table, and gnuplot/CSV data files
// written to the working directory (fig4_unreclaimed_garbage.{dat,csv}).

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Figure 4: Uncollected garbage over time", "Figure 4");

  SimulationConfig base = bench::BaseConfig();
  // The figures use a database about twice the size of the tables' runs.
  base.workload =
      base.workload.WithTotalAllocation(base.workload.total_alloc_bytes * 2);
  base.snapshot_interval = bench::FastMode() ? 100000 : 150000;
  base.census_at_snapshots = true;

  std::vector<TimeSeries> series;
  TablePrinter summary({"Policy", "Final unreclaimed (KB)", "Peak (KB)",
                        "Reclaimed (KB)", "Collections"});
  for (PolicyKind policy : AllPolicyKinds()) {
    SimulationConfig config = base;
    config.heap.policy = policy;
    Simulator simulator(config);
    const Status status = simulator.Run();
    if (!status.ok()) bench::Fail(status, PolicyName(policy));
    SimulationResult result = simulator.Finish();

    TimeSeries curve = result.unreclaimed_garbage_kb;
    TimeSeries named(PolicyName(policy));
    for (const auto& point : curve.points()) named.Add(point.x, point.y);
    series.push_back(named);

    summary.AddRow({PolicyName(policy), FormatCount(curve.LastY()),
                    FormatCount(curve.MaxY()),
                    FormatCount(static_cast<double>(
                                    result.garbage_reclaimed_bytes) /
                                1024.0),
                    FormatCount(static_cast<double>(result.collections))});
    std::printf("  %-17s done (%llu events)\n", PolicyName(policy),
                static_cast<unsigned long long>(result.app_events));
  }

  std::printf("\nUnreclaimed garbage (KB) vs application events:\n");
  RenderAscii(series, std::cout, 72, 20);
  std::cout << '\n';
  summary.Print(std::cout);

  std::ofstream dat("fig4_unreclaimed_garbage.dat");
  WriteGnuplot(series, dat);
  std::ofstream csv("fig4_unreclaimed_garbage.csv");
  WriteCsv(series, csv);
  std::printf(
      "\nwrote fig4_unreclaimed_garbage.dat (gnuplot) and .csv\n"
      "plot: gnuplot -e \"plot for [i=0:5] "
      "'fig4_unreclaimed_garbage.dat' index i with lines title "
      "columnheader\"\n");
  return 0;
}
