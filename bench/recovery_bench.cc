// Durability-layer throughput: how much does making a run restartable
// cost? Measures the three hot paths of src/recovery/ and emits the
// numbers both as a table and as BENCH_recovery.json (for CI trending):
//
//   checkpoint_write_mb_per_s     full-state snapshot serialization
//   wal_append_ns_per_record      per-event logging overhead
//   recovery_replay_events_per_s  crash-recovery replay speed
//
// Run:  ./build/bench/recovery_bench [output.json]

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recover.h"
#include "recovery/wal.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

odbgc::SimulationConfig BenchConfig() {
  odbgc::SimulationConfig config = odbgc::bench::BaseConfig();
  // A mid-size database: big enough that snapshots are megabytes, small
  // enough that the whole bench finishes in seconds.
  config.workload = config.workload.WithTotalAllocation(
      odbgc::bench::FastMode() ? (1ull << 20) : (4ull << 20));
  config.heap.store.pages_per_partition = 24;
  config.heap.buffer_pages = 24;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odbgc;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  bench::PrintHeader(
      "Recovery engine throughput (checkpoint / WAL / replay)",
      "Durability layer (src/recovery/) — not part of the paper");

  const SimulationConfig config = BenchConfig();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "odbgc_recovery_bench")
          .string();
  std::filesystem::remove_all(dir);

  // Shared fixture: a database mid-run, the state every measurement below
  // snapshots, logs or replays.
  Simulator simulator(config);
  WorkloadGenerator generator(config.workload, config.seed);
  if (Status s = generator.BuildInitialDatabase(&simulator); !s.ok()) {
    bench::Fail(s, "build");
  }
  for (int i = 0; i < 200 && !generator.Done(); ++i) {
    if (Status s = generator.RunRound(&simulator); !s.ok()) {
      bench::Fail(s, "round");
    }
  }

  // 1. Checkpoint write throughput.
  CheckpointManager manager(dir);
  if (Status s = manager.Init(); !s.ok()) bench::Fail(s, "init");
  const int kSnapshots = bench::FastMode() ? 4 : 16;
  uint64_t snapshot_bytes = 0;
  const auto ckpt_start = Clock::now();
  for (int i = 0; i < kSnapshots; ++i) {
    const uint64_t round = generator.rounds_run() + i;  // Distinct files.
    if (Status s = manager.WriteSnapshot(round, simulator, generator);
        !s.ok()) {
      bench::Fail(s, "snapshot");
    }
    snapshot_bytes += std::filesystem::file_size(manager.SnapshotPath(round));
  }
  const double ckpt_seconds = Seconds(ckpt_start, Clock::now());
  const double ckpt_mb_per_s =
      static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0) / ckpt_seconds;

  // 2. WAL append latency. Realistic record mix: the workload's own
  // events, streamed through a writer like the durable engine does.
  const int kWalRecords = bench::FastMode() ? 100000 : 400000;
  const std::string wal_path = dir + "/bench.odbl";
  auto writer = WalWriter::Create(wal_path);
  if (!writer.ok()) bench::Fail(writer.status(), "wal create");
  TraceEvent event;
  event.kind = EventKind::kWriteSlot;
  event.object = 12345;
  event.slot = 2;
  event.target = 67890;
  const auto wal_start = Clock::now();
  for (int i = 0; i < kWalRecords; ++i) {
    event.object = static_cast<uint64_t>(i);
    if (Status s = writer->Append(WalRecord::Event(event)); !s.ok()) {
      bench::Fail(s, "wal append");
    }
  }
  if (Status s = writer->Sync(); !s.ok()) bench::Fail(s, "wal sync");
  const double wal_seconds = Seconds(wal_start, Clock::now());
  const double wal_ns_per_record = wal_seconds * 1e9 / kWalRecords;

  // 3. Recovery replay speed: kill a durable run mid-flight (no
  // snapshots, so recovery is pure WAL-verified re-execution), then time
  // Open(), which replays every committed event.
  SimulationConfig durable = config;
  durable.wal_dir = dir + "/replay";
  durable.checkpoint_every_rounds = 0;
  {
    auto engine = DurableSimulation::Open(durable);
    if (!engine.ok()) bench::Fail(engine.status(), "open");
    Simulator probe(config);
    if (Status s = probe.Run(); !s.ok()) bench::Fail(s, "probe");
    FaultPlan plan;
    plan.fail_after_writes = probe.Finish().disk_stats.page_writes / 2;
    (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
    if ((*engine)->Run().ok()) {
      std::fprintf(stderr, "kill point beyond end of run\n");
      return 1;
    }
  }
  const auto replay_start = Clock::now();
  auto recovered = DurableSimulation::Open(durable);
  const double replay_seconds = Seconds(replay_start, Clock::now());
  if (!recovered.ok()) bench::Fail(recovered.status(), "reopen");
  const uint64_t replayed = (*recovered)->run_stats().events_replayed;
  const double replay_events_per_s =
      static_cast<double>(replayed) / replay_seconds;

  std::printf("checkpoint write:  %8.1f MB/s  (%d snapshots, %.1f MB total)\n",
              ckpt_mb_per_s, kSnapshots,
              static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0));
  std::printf("WAL append:        %8.1f ns/record  (%d records)\n",
              wal_ns_per_record, kWalRecords);
  std::printf("recovery replay:   %8.0f events/s  (%llu events in %.2f s)\n",
              replay_events_per_s, static_cast<unsigned long long>(replayed),
              replay_seconds);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"recovery\",\n"
       << "  \"checkpoint_write_mb_per_s\": " << ckpt_mb_per_s << ",\n"
       << "  \"wal_append_ns_per_record\": " << wal_ns_per_record << ",\n"
       << "  \"recovery_replay_events_per_s\": " << replay_events_per_s
       << "\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path);

  std::filesystem::remove_all(dir);
  return json.good() ? 0 : 1;
}
