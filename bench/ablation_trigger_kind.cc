// Ablation (Table 1: "When to perform collection"): the overwrite-count
// trigger against the listed alternatives — allocation volume and
// database growth — each calibrated to a similar number of collections so
// the comparison isolates *when* collections happen, not how many.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: collection trigger criterion",
                     "Table 1 policy alternative ('when to collect')");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Trigger", "Collections", "Total I/Os",
                      "% of garbage", "Efficiency (KB/IO)",
                      "Max storage (KB)"});

  struct Variant {
    const char* name;
    TriggerKind kind;
    uint64_t alloc_bytes;
  };
  // ~11 MB allocated and ~7k overwrites per run: 150 overwrites and
  // 320 KB of allocation both land near 30-35 collections; growth fires
  // once per new partition (~30 over a run).
  const Variant kVariants[] = {
      {"150 pointer overwrites", TriggerKind::kPointerOverwrites, 0},
      {"320 KB allocated", TriggerKind::kAllocatedBytes, 320u << 10},
      {"database growth", TriggerKind::kDatabaseGrowth, 0},
  };

  for (const Variant& variant : kVariants) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.trigger = variant.kind;
    spec.base.heap.allocation_trigger_bytes = variant.alloc_bytes;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat collections, total_io, fraction, efficiency, storage;
    for (const auto& run : experiment->sets[0].runs) {
      collections.Add(static_cast<double>(run.collections));
      total_io.Add(static_cast<double>(run.total_io()));
      fraction.Add(run.FractionReclaimedPct());
      efficiency.Add(run.EfficiencyKbPerIo());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({variant.name, FormatDouble(collections.mean(), 1),
                  FormatCount(total_io.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatDouble(efficiency.mean(), 2),
                  FormatCount(storage.mean())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading (UpdatedPointer): overwrite-triggered collections fire\n"
      "when garbage has just been created, so the policy's counters are\n"
      "fresh; allocation- and growth-triggered collections fire on space\n"
      "pressure, decoupled from garbage creation. The paper chose\n"
      "overwrites for exactly the first property (Section 4.1).\n");
  return 0;
}
