// Ablation (Section 5 "Object Size"): the paper chose ~100-byte objects
// after observing that much larger objects "tend to reduce the impact of
// garbage collection on access behavior, since pages would then be more
// likely to contain either only all garbage or all live objects". This
// sweep scales object size at fixed total allocation and watches the
// policy differentiation shrink.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: object size",
                     "Section 5 'Object Size'");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Object bytes", "NoCollection I/Os",
                      "MostGarbage I/Os", "NoColl/MostGarbage",
                      "MostGarbage % reclaimed"});

  struct SizeBand {
    uint32_t min, max;
    const char* label;
  };
  const SizeBand kBands[] = {
      {50, 150, "50-150 (paper)"},
      {200, 600, "200-600"},
      {800, 2400, "800-2400"},
      {3000, 9000, "3000-9000"},
  };

  for (const SizeBand& band : kBands) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.workload.min_object_size = band.min;
    spec.base.workload.max_object_size = band.max;
    // Keep the tree count comparable: fewer, larger nodes per tree.
    const double scale = (band.min + band.max) / 200.0;
    spec.base.workload.tree_nodes_min = static_cast<uint32_t>(
        std::max(20.0, spec.base.workload.tree_nodes_min / scale));
    spec.base.workload.tree_nodes_max = static_cast<uint32_t>(
        std::max(60.0, spec.base.workload.tree_nodes_max / scale));
    spec.policies = {"NoCollection", "MostGarbage"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat none_io, most_io, fraction;
    for (const auto& run :
         experiment->Find(PolicyKind::kNoCollection)->runs) {
      none_io.Add(static_cast<double>(run.total_io()));
    }
    for (const auto& run : experiment->Find(PolicyKind::kMostGarbage)->runs) {
      most_io.Add(static_cast<double>(run.total_io()));
      fraction.Add(run.FractionReclaimedPct());
    }
    table.AddRow({band.label, FormatCount(none_io.mean()),
                  FormatCount(most_io.mean()),
                  FormatDouble(none_io.mean() / most_io.mean(), 3),
                  FormatDouble(fraction.mean(), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: as objects approach page size, pages become all-live or\n"
      "all-garbage on their own, so collection's locality benefit (the\n"
      "NoCollection/MostGarbage I/O ratio) shrinks toward 1 — the paper's\n"
      "stated reason for evaluating with ~100-byte objects.\n");
  return 0;
}
