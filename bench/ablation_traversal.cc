// Ablation (Table 1: "How to traverse objects during collection"):
// breadth-first vs depth-first copying order. The paper fixes
// breadth-first to preserve the test database's placement; this ablation
// measures what the choice is worth.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader(
      "Ablation: collection traversal order (breadth- vs depth-first)",
      "Table 1 policy alternative");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Policy", "Order", "Total I/Os", "App I/Os",
                      "Reclaimed (KB)", "Max storage (KB)"});

  for (const char* policy : {"UpdatedPointer", "MostGarbage"}) {
    for (TraversalOrder order :
         {TraversalOrder::kBreadthFirst, TraversalOrder::kDepthFirst}) {
      ExperimentSpec spec;
      spec.base = bench::BaseConfig();
      spec.base.heap.traversal = order;
      spec.policies = {policy};
      spec.num_seeds = seeds;
      auto experiment = RunExperiment(spec);
      if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

      RunningStat total_io, app_io, reclaimed, storage;
      for (const auto& run : experiment->sets[0].runs) {
        total_io.Add(static_cast<double>(run.total_io()));
        app_io.Add(static_cast<double>(run.app_io));
        reclaimed.Add(static_cast<double>(run.garbage_reclaimed_bytes) /
                      1024.0);
        storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
      }
      table.AddRow({policy,
                    order == TraversalOrder::kBreadthFirst ? "breadth-first"
                                                           : "depth-first",
                    FormatCount(total_io.mean()), FormatCount(app_io.mean()),
                    FormatCount(reclaimed.mean()),
                    FormatCount(storage.mean())});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: reclamation is traversal-order independent (same live\n"
      "set); the orders differ only through the copied layout's effect on\n"
      "later application locality.\n");
  return 0;
}
