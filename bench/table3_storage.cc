// Regenerates Table 3: maximum storage space required per policy (live
// objects + unreclaimed garbage + fragmentation) and partition counts.
//
// Expected shape: NoCollection largest by far; MutatedPartition > Random >
// WeightedPointer > UpdatedPointer > MostGarbage, with UpdatedPointer
// within a few percent of the oracle (paper: 1.058 vs 1.0).

#include <iostream>

#include "bench/bench_common.h"
#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Table 3: Maximum storage space usage", "Table 3");

  const ExperimentSpec spec =
      bench::BaseSpec(10).WithManifestDir(bench::ManifestDirOrEmpty());
  std::printf("running %zu policies x %d seeds...\n\n", spec.policies.size(),
              spec.num_seeds);

  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

  PrintStorageTable(Summarize(*experiment), std::cout);
  std::printf(
      "\nPaper's Table 3 relative storage (MostGarbage = 1):\n"
      "  NoCollection 1.529  MutatedPartition 1.263  Random 1.198\n"
      "  WeightedPointer 1.178  UpdatedPointer 1.058  MostGarbage 1.000\n");
  return 0;
}
