// Microcurve for the paper's Section 6.6 observation: "it is actually
// cheaper to collect a partition with more garbage than it is one with
// less garbage". Builds partitions with a controlled garbage fraction,
// collects them cold, and reports the collection's I/O and efficiency.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "core/heap.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader(
      "Microcurve: collection cost vs garbage fraction of the partition",
      "Section 6.6 (copying cost is proportional to live data)");

  TablePrinter table({"Garbage %", "Live copied (KB)", "Reclaimed (KB)",
                      "Collection I/Os", "Efficiency (KB per I/O)"});

  for (int garbage_pct : {10, 25, 50, 75, 90}) {
    HeapOptions options;
    options.store.pages_per_partition = 48;
    options.buffer_pages = 48;
    options.policy = PolicyKind::kUpdatedPointer;
    options.overwrite_trigger = 0;  // Manual collection.
    CollectedHeap heap(options);

    // Fill partition 0 with a mix of rooted chains (live) and orphaned
    // objects (garbage) in the requested proportion.
    auto root = heap.Allocate(100, 3);
    if (!root.ok()) bench::Fail(root.status(), "alloc root");
    if (Status s = heap.AddRoot(*root); !s.ok()) bench::Fail(s, "root");
    ObjectId chain = *root;
    Rng rng(garbage_pct);
    // ~3500 objects of ~100 bytes fill most of the 384 KB partition.
    for (int i = 0; i < 3500; ++i) {
      auto id = heap.Allocate(100, 3);
      if (!id.ok()) break;
      if (heap.store().Lookup(*id)->partition != 0) break;  // Partition full.
      if (!rng.Bernoulli(garbage_pct / 100.0)) {
        if (Status s = heap.WriteSlot(chain, 0, *id); !s.ok()) {
          bench::Fail(s, "link");
        }
        chain = *id;
      }
    }

    // Cold-start the collection: flush and drop everything buffered.
    (void)heap.mutable_buffer().FlushAll();
    heap.mutable_buffer().DiscardExtent(
        PageExtent{0, heap.disk().num_pages()});

    auto result = heap.CollectPartition(0);
    if (!result.ok()) bench::Fail(result.status(), "collect");
    const double io =
        static_cast<double>(result->page_reads + result->page_writes);
    const double reclaimed_kb =
        static_cast<double>(result->garbage_bytes_reclaimed) / 1024.0;
    table.AddRow({std::to_string(garbage_pct),
                  FormatCount(static_cast<double>(
                                  result->live_bytes_copied) /
                              1024.0),
                  FormatCount(reclaimed_kb), FormatCount(io),
                  FormatDouble(io > 0 ? reclaimed_kb / io : 0.0, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: collection I/O tracks the live bytes copied, so KB\n"
      "reclaimed per I/O rises steeply with the garbage fraction — the\n"
      "mechanism that makes good partition selection doubly valuable\n"
      "(more garbage found AND cheaper to collect).\n");
  return 0;
}
