// Ablation (Section 3.1: "A full implementation might allow more than one
// partition to be collected at a time"): collect k partitions per
// activation, with the trigger scaled by k so every configuration collects
// the same total number of partitions over the run.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: partitions collected per activation",
                     "Section 3.1 (single- vs multi-partition collection)");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"k", "Activations", "Partitions collected",
                      "Total I/Os", "% of garbage", "Max storage (KB)"});

  for (uint32_t k : {1u, 2u, 4u}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.partitions_per_collection = k;
    spec.base.heap.overwrite_trigger *= k;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat collections, total_io, fraction, storage;
    for (const auto& run : experiment->sets[0].runs) {
      collections.Add(static_cast<double>(run.collections));
      total_io.Add(static_cast<double>(run.total_io()));
      fraction.Add(run.FractionReclaimedPct());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({std::to_string(k),
                  FormatDouble(collections.mean() / k, 1),
                  FormatDouble(collections.mean(), 1),
                  FormatCount(total_io.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatCount(storage.mean())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading (UpdatedPointer, trigger scaled by k): batching\n"
      "collections trades longer pauses for selecting deeper into the\n"
      "policy's ranking — the 2nd/3rd/4th picks carry progressively\n"
      "weaker hints, so reclamation per collected partition drops.\n");
  return 0;
}
