// Ablation: I/O buffer size decoupled from partition size. The paper
// deliberately sets buffer = one partition: "a buffer significantly
// smaller than a partition may cause a garbage collector to perform an
// excessive number of I/O operations, while a much larger buffer could
// overwhelm any improved reference locality" (Section 5). This sweep
// verifies both halves of that sentence.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: buffer size relative to partition size",
                     "Section 5 'I/O Buffer Size'");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Buffer (pages)", "Buffer/partition", "App I/Os",
                      "GC I/Os", "Total I/Os",
                      "NoCollection total I/Os"});

  ExperimentSpec probe;
  probe.base = bench::BaseConfig();
  const size_t partition_pages = probe.base.heap.store.pages_per_partition;

  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const size_t buffer_pages =
        static_cast<size_t>(partition_pages * ratio + 0.5);
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.buffer_pages = buffer_pages;
    spec.policies = {"UpdatedPointer", "NoCollection"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat app_io, gc_io, total_io, none_io;
    for (const auto& run :
         experiment->Find(PolicyKind::kUpdatedPointer)->runs) {
      app_io.Add(static_cast<double>(run.app_io));
      gc_io.Add(static_cast<double>(run.gc_io));
      total_io.Add(static_cast<double>(run.total_io()));
    }
    for (const auto& run :
         experiment->Find(PolicyKind::kNoCollection)->runs) {
      none_io.Add(static_cast<double>(run.total_io()));
    }
    table.AddRow({std::to_string(buffer_pages), FormatDouble(ratio, 2),
                  FormatCount(app_io.mean()), FormatCount(gc_io.mean()),
                  FormatCount(total_io.mean()), FormatCount(none_io.mean())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: undersized buffers inflate collector I/O (a collection's\n"
      "working set is about one partition); oversized buffers absorb the\n"
      "whole working set and flatten the GC-locality advantage over\n"
      "NoCollection.\n");
  return 0;
}
