// Ablation (Section 5 "Warm-start vs. Cold-start"): the paper ran all
// simulations cold (empty database, empty buffer) and argued the only
// effect is to *lessen* the differentiation among policies, because the
// first few collections happen while there are few partitions to choose
// from. This bench measures both regimes: warm starts exclude the build
// phase from every number, so the policy gaps should widen.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: cold vs warm start",
                     "Section 5 'Warm-start vs. Cold-start'");

  const int seeds = bench::SeedsOrDefault(5);
  for (bool warm : {false, true}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.warm_start = warm;
    spec.policies = {"NoCollection", "MutatedPartition", "Random",
                     "UpdatedPointer", "MostGarbage"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    std::printf("--- %s start ---\n", warm ? "warm" : "cold");
    PrintThroughputTable(Summarize(*experiment), std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: the relative-I/O spread between the best and worst\n"
      "policies widens under warm starts — the cold build phase is\n"
      "identical across policies and dilutes every ratio toward 1, just\n"
      "as the paper argued when justifying its cold-start methodology.\n");
  return 0;
}
