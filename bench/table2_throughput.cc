// Regenerates Table 2: throughput as number of page I/O operations per
// partition selection policy (application, collector, total, and total
// relative to the MostGarbage near-optimal baseline).
//
// Paper configuration: 48-page (8 KB) partitions, buffer = one partition,
// ~5 MB live data, ~25-35 collections per run, 10 seeds.
//
// Expected shape: UpdatedPointer within ~1-2% of MostGarbage;
// MutatedPartition and NoCollection the most expensive; Random and
// WeightedPointer in between.

#include <iostream>

#include "bench/bench_common.h"
#include "sim/report.h"
#include "sim/runner.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Table 2: Throughput (page I/O operations)", "Table 2");

  const ExperimentSpec spec =
      bench::BaseSpec(10).WithManifestDir(bench::ManifestDirOrEmpty());
  std::printf("running %zu policies x %d seeds...\n\n", spec.policies.size(),
              spec.num_seeds);

  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

  PrintThroughputTable(Summarize(*experiment), std::cout);
  std::printf(
      "\nPaper's Table 2 (for shape comparison; absolute numbers depend on\n"
      "the authors' private trace generator):\n"
      "  NoCollection 1.073  MutatedPartition 1.092  Random 1.053\n"
      "  WeightedPointer 1.041  UpdatedPointer 1.011  MostGarbage 1.000\n");
  return 0;
}
