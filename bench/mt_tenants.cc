// Multi-tenant heap service probes (DESIGN.md §16-17), five experiments
// in one binary:
//
// 1. Shared-vs-private identity: each fleet size run at one thread over
//    the physically shared frame arena and again over private per-tenant
//    pools. The aggregates must match exactly (the §17 byte-identity
//    contract); the two events/sec figures price the arena's residency
//    table against private pools.
//
// 2. Fleet scaling: fleets of 4/8/16 tenants (policies cycled across the
//    registry, one seed per tenant) hosted unpressured at 1, 2 and 4
//    service threads over the shared arena, with K-step round batching
//    (steps_per_round = 8) amortizing barrier and wake/park overhead.
//    Tenants are the determinism units, so every row of a fleet must
//    produce the identical aggregate regardless of thread count (checked
//    here — a scaling probe that changed the answer would be worthless).
//    Small fleets ride the service's inline-round path instead of paying
//    TaskPool churn, so the 4-tenant rows must no longer lose to serial.
//
// 3. Pressure saturation: a fixed 8-tenant fleet with the admission
//    watermark armed at 0.5, swept across shared budgets from the full
//    sum of tenant caps (no overcommit) down to half. Reported per row:
//    admission stalls, collections forced by the cross-tenant scheduler,
//    and peak post-round occupancy. The probe checks the admission bound
//    — peak <= watermark + the largest single-tenant allowance — on every
//    row where no forced admission fired, and aborts on a violation.
//
// 4. GlobalView neutrality: the same overcommitted fleet run once with
//    every tenant on the pressure-blind UpdatedPointer and once on
//    PoolPressure (the GlobalView exemplar policy). The pressure boost is
//    a common factor within each heap and the cross-tenant ranker
//    normalizes by the per-heap best score, so both runs must produce the
//    identical trajectory — checked here: a divergence would mean the
//    GlobalView plumbing leaked nondeterminism into victim selection.
//
// 5. Kilofleet: a 1024-tenant fleet (64 under ODBGC_FAST) with staggered
//    arrivals and early departures, hosted over a shared arena holding a
//    quarter of the fleet's summed quotas. The row proves a thousand
//    tenants complete under one bounded physical frame budget (peak
//    occupancy can never exceed the arena — checked) and prices fleet
//    turnover.
//
// ODBGC_FAST=1 shrinks the fleets (2/4 tenants, skips the 16-tenant row)
// for smoke runs.
//
// Usage: mt_tenants [output.json] [--check baseline.json]
//
// With --check, exits 1 if a gated probe's events/sec falls below 80% of
// the value recorded in `baseline.json` (bench/service_baseline.json in
// CI). The committed baseline holds deliberately conservative floors so
// routine CI-hardware variance never trips the gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "service/heap_service.h"
#include "sim/config.h"
#include "sim/spec.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

// Small per-tenant workloads: the probe measures the service's
// scheduling, admission and forced-collection machinery, not per-tenant
// collector throughput (the paper tables cover that).
SimulationConfig TenantConfig(uint64_t seed, const std::string& policy) {
  SimulationConfig c;
  c.heap.store.page_size = 1024;
  c.heap.store.pages_per_partition = 16;
  c.heap.buffer_pages = 16;
  c.heap.overwrite_trigger = 25;
  c.heap.policy_name = policy;
  c.workload.target_live_bytes = 96ull << 10;
  c.workload.total_alloc_bytes = bench::FastMode() ? 240ull << 10
                                                   : 960ull << 10;
  c.workload.tree_nodes_min = 50;
  c.workload.tree_nodes_max = 150;
  c.workload.large_object_size = 4096;
  c.seed = seed;
  return c;
}

const std::vector<std::string>& PolicyCycle() {
  static const std::vector<std::string> kCycle = {
      "UpdatedPointer", "MostGarbage", "WeightedPointer", "MutatedPartition",
      "PoolPressure"};
  return kCycle;
}

ServiceSpec FleetSpec(uint32_t tenants, uint32_t threads,
                      double budget_fraction, double watermark,
                      const std::string& pinned_policy = "") {
  ServiceSpec spec = ServiceSpec::Hosting({}).WithThreads(threads);
  uint64_t cap_sum = 0;
  for (uint32_t i = 0; i < tenants; ++i) {
    const std::string& policy =
        pinned_policy.empty() ? PolicyCycle()[i % PolicyCycle().size()]
                              : pinned_policy;
    TenantSpec tenant =
        TenantSpec::Base(TenantConfig(100 + i, policy))
            .Named("t" + std::to_string(i));
    cap_sum += tenant.config.heap.buffer_pages;
    spec.tenants.push_back(std::move(tenant));
  }
  if (budget_fraction > 0 && budget_fraction < 1.0) {
    spec.shared_frame_budget = static_cast<uint64_t>(
        static_cast<double>(cap_sum) * budget_fraction);
  }
  spec.admission_watermark = watermark;
  return spec;
}

bool SameAggregate(const SimulationResult& a, const SimulationResult& b) {
  return a.app_events == b.app_events && a.app_io == b.app_io &&
         a.gc_io == b.gc_io && a.collections == b.collections &&
         a.garbage_reclaimed_bytes == b.garbage_reclaimed_bytes &&
         a.bytes_allocated == b.bytes_allocated &&
         a.max_storage_bytes == b.max_storage_bytes;
}

struct Row {
  uint32_t tenants = 0;
  uint32_t threads = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  ServiceResult result;
};

Row RunOnce(ServiceSpec spec) {
  Row row;
  row.tenants = static_cast<uint32_t>(spec.tenants.size());
  row.threads = spec.threads;
  const auto start = Clock::now();
  auto service = RunService(std::move(spec));
  row.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!service.ok()) bench::Fail(service.status(), "mt_tenants");
  row.result = std::move(*service);
  row.events_per_sec =
      row.wall_seconds > 0
          ? static_cast<double>(row.result.aggregate.app_events) /
                row.wall_seconds
          : 0;
  return row;
}

// Every tenant cap is 16 frames here, so the admission bound's slack term
// (the largest single-tenant allowance) is at most one tenant cap.
constexpr uint64_t kTenantCap = 16;

bool BoundHolds(const ServiceResult& r) {
  if (r.watermark_frames == 0) return true;  // Admission off: no bound.
  if (r.forced_admissions > 0) return true;  // Bound is conditional.
  return r.peak_occupancy_frames <= r.watermark_frames + kTenantCap;
}

// The kilofleet's tenants are deliberately tiny — the row measures fleet
// turnover and arena behaviour at scale, not per-tenant throughput.
ServiceSpec KilofleetSpec(uint32_t tenants, uint32_t threads) {
  ServiceSpec spec = ServiceSpec::Hosting({}).WithThreads(threads);
  uint64_t cap_sum = 0;
  for (uint32_t i = 0; i < tenants; ++i) {
    SimulationConfig c =
        TenantConfig(500 + i, PolicyCycle()[i % PolicyCycle().size()]);
    c.workload.target_live_bytes = 24ull << 10;
    c.workload.total_alloc_bytes = 60ull << 10;
    TenantSpec tenant = TenantSpec::Base(c).Named("k" + std::to_string(i));
    // Waves of 32 tenants arrive every 8 rounds; every fourth tenant
    // departs two rounds after it arrived — early enough that even an
    // unpressured tiny tenant is still mid-stream, so retirement is
    // exercised for real rather than racing natural completion. The
    // fleet is continuously churning rather than all-present.
    tenant.arrival_round = (i / 32) * 8;
    if (i % 4 == 3) tenant.departure_round = tenant.arrival_round + 2;
    cap_sum += tenant.config.heap.buffer_pages;
    spec.tenants.push_back(std::move(tenant));
  }
  // A quarter of the summed quotas: real physical overcommit, managed by
  // the watermark (stalls) and, past that, squeezed evictions.
  return std::move(spec)
      .WithFrameBudget(cap_sum / 4)
      .WithWatermark(0.75)
      .WithStepsPerRound(8);
}

/// Pulls `"<probe>_events_per_sec": <number>` out of a baseline JSON file
/// by plain string scanning (no JSON reader needed; the file is
/// machine-written with known key names).
double BaselineEventsPerSec(const std::string& text, const std::string& probe) {
  const std::string key = "\"" + probe + "_events_per_sec\":";
  const size_t at = text.find(key);
  if (at == std::string::npos) return -1;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_service.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      json_path = argv[i];
    }
  }

  bench::PrintHeader("Multi-tenant heap service (shared arena, admission, "
                     "cross-tenant GC)",
                     "service engineering (no paper table)");

  const std::vector<uint32_t> fleets = bench::FastMode()
                                           ? std::vector<uint32_t>{2, 4}
                                           : std::vector<uint32_t>{4, 8, 16};
  const std::vector<uint32_t> thread_counts = {1, 2, 4};
  constexpr uint64_t kStepsPerRound = 8;

  // -- 1. Shared arena vs private pools (1 thread, identity-checked) --------
  std::printf("shared arena vs private pools (1 thread; aggregates must be "
              "identical):\n");
  std::vector<Row> shared_rows, private_rows;
  for (uint32_t tenants : fleets) {
    Row shared = RunOnce(
        FleetSpec(tenants, 1, 0.0, 0.0).WithStepsPerRound(kStepsPerRound));
    Row isolated = RunOnce(FleetSpec(tenants, 1, 0.0, 0.0)
                               .WithStepsPerRound(kStepsPerRound)
                               .WithSharedPool(false));
    std::printf("  tenants=%-4u shared=%11.0f ev/s  private=%11.0f ev/s"
                "  overhead=%+5.1f%%  identical=%s\n",
                tenants, shared.events_per_sec, isolated.events_per_sec,
                isolated.events_per_sec > 0
                    ? (isolated.events_per_sec / shared.events_per_sec - 1.0) *
                          100.0
                    : 0.0,
                SameAggregate(shared.result.aggregate,
                              isolated.result.aggregate)
                    ? "yes"
                    : "NO");
    if (!SameAggregate(shared.result.aggregate, isolated.result.aggregate)) {
      std::fprintf(stderr,
                   "shared-arena aggregate diverged from private pools at "
                   "%u tenants — the §17 identity contract is broken\n",
                   tenants);
      return 1;
    }
    shared_rows.push_back(std::move(shared));
    private_rows.push_back(std::move(isolated));
  }

  // -- 2. Fleet scaling (shared arena, invariance-checked) ------------------
  std::printf("\nfleet scaling (shared arena, steps_per_round=%llu, "
              "watermark off; aggregate must be thread-count invariant):\n",
              static_cast<unsigned long long>(kStepsPerRound));
  std::vector<Row> scaling;
  double small_fleet_speedup = 0;   // Best multi-thread vs serial, smallest
                                    // "real" fleet (the old regression).
  double big_fleet_speedup = 0;     // 4 threads vs 1, largest fleet.
  double big_fleet_events_per_sec = 0;
  std::vector<uint64_t> big_fleet_tenant_events;  // 1-thread run, for the
                                                  // critical-path model.
  for (uint32_t tenants : fleets) {
    // Copies, not pointers into `scaling` — push_back reallocation would
    // dangle them.
    double baseline_events_per_sec = 0;
    SimulationResult baseline_aggregate;
    for (uint32_t threads : thread_counts) {
      Row row = RunOnce(FleetSpec(tenants, threads, 0.0, 0.0)
                            .WithStepsPerRound(kStepsPerRound));
      const double speedup = baseline_events_per_sec > 0
                                 ? row.events_per_sec / baseline_events_per_sec
                                 : 1.0;
      std::printf("  tenants=%-3u threads=%u  events=%-9llu wall=%7.3fs"
                  "  events/sec=%11.0f  speedup=%.2fx\n",
                  tenants, threads,
                  static_cast<unsigned long long>(
                      row.result.aggregate.app_events),
                  row.wall_seconds, row.events_per_sec, speedup);
      if (threads != 1 &&
          !SameAggregate(baseline_aggregate, row.result.aggregate)) {
        std::fprintf(stderr,
                     "aggregate diverged between 1 and %u threads at "
                     "%u tenants — the service scheduler is broken\n",
                     threads, tenants);
        return 1;
      }
      if (threads > 1 && tenants == fleets.front()) {
        small_fleet_speedup = std::max(small_fleet_speedup, speedup);
      }
      if (tenants == fleets.back() && threads == thread_counts.back()) {
        big_fleet_speedup = speedup;
        big_fleet_events_per_sec = row.events_per_sec;
      }
      if (threads == 1) {
        baseline_events_per_sec = row.events_per_sec;
        baseline_aggregate = row.result.aggregate;
        if (tenants == fleets.back()) {
          big_fleet_tenant_events.clear();
          for (const SimulationResult& t : row.result.tenants) {
            big_fleet_tenant_events.push_back(t.app_events);
          }
        }
      }
      scaling.push_back(std::move(row));
    }
  }
  std::printf("  small fleet (%u tenants) best multi-thread speedup: %.2fx"
              " (inline rounds + batching — must not lose to serial)\n",
              fleets.front(), small_fleet_speedup);

  // Machine-independent critical-path view (mt_barrier_heavy's pattern):
  // each round is a barrier over the runnable tenants, so the best a
  // T-thread round can do is the largest bin of an LPT packing of the
  // per-tenant work into T bins. Per-tenant app_events from the 1-thread
  // run stand in for work; for the fleet's near-equal tenants the model
  // collapses to tenants / ceil(tenants / threads).
  const unsigned cores = std::thread::hardware_concurrency();
  double big_fleet_speedup_modeled = 0;
  {
    std::vector<uint64_t> sorted = big_fleet_tenant_events;
    std::sort(sorted.rbegin(), sorted.rend());
    std::vector<uint64_t> bins(thread_counts.back(), 0);
    uint64_t total = 0;
    for (uint64_t w : sorted) {
      *std::min_element(bins.begin(), bins.end()) += w;
      total += w;
    }
    const uint64_t makespan = *std::max_element(bins.begin(), bins.end());
    big_fleet_speedup_modeled =
        makespan > 0 ? static_cast<double>(total) / makespan : 0;
  }
  // The wall comparison needs the probe's cores to mean anything; on a
  // smaller host the critical-path model carries the headline.
  const bool measured_basis = cores >= thread_counts.back();
  const double big_fleet_speedup_headline =
      measured_basis ? big_fleet_speedup : big_fleet_speedup_modeled;
  std::printf("  big fleet (%u tenants, %u threads) speedup: measured %.2fx,"
              " critical-path model %.2fx — headline (%s, %u hardware"
              " threads): %.2fx\n",
              fleets.back(), thread_counts.back(), big_fleet_speedup,
              big_fleet_speedup_modeled,
              measured_basis ? "measured" : "critical-path model", cores,
              big_fleet_speedup_headline);

  // -- 3. Pressure saturation (admission-bound probe) -----------------------
  const uint32_t pressure_fleet = bench::FastMode() ? 4 : 8;
  const double kWatermark = 0.5;
  const std::vector<double> budget_fractions = {1.0, 0.75, 0.5};

  std::printf("\npressure saturation (%u tenants, 2 threads, watermark "
              "%.2f):\n", pressure_fleet, kWatermark);
  std::vector<Row> pressure;
  for (double fraction : budget_fractions) {
    Row row = RunOnce(FleetSpec(pressure_fleet, 2, fraction, kWatermark));
    const ServiceResult& r = row.result;
    std::printf("  budget=%.0f%%  frames=%-4llu peak=%-4llu stalls=%-6llu"
                " forced_gc=%-5llu forced_admit=%llu  bound=%s\n",
                fraction * 100,
                static_cast<unsigned long long>(r.shared_frame_budget),
                static_cast<unsigned long long>(r.peak_occupancy_frames),
                static_cast<unsigned long long>(r.admission_stalls),
                static_cast<unsigned long long>(r.forced_collections),
                static_cast<unsigned long long>(r.forced_admissions),
                BoundHolds(r) ? "ok" : "VIOLATED");
    if (!BoundHolds(r)) {
      std::fprintf(stderr,
                   "admission bound violated: peak %llu > watermark %llu + "
                   "cap %llu with no forced admission\n",
                   static_cast<unsigned long long>(r.peak_occupancy_frames),
                   static_cast<unsigned long long>(r.watermark_frames),
                   static_cast<unsigned long long>(kTenantCap));
      return 1;
    }
    pressure.push_back(std::move(row));
  }

  // -- 4. GlobalView neutrality (see file comment) --------------------------
  std::printf("\nGlobalView neutrality (%u tenants, budget 50%%, watermark "
              "%.2f):\n", pressure_fleet, kWatermark);
  const Row blind =
      RunOnce(FleetSpec(pressure_fleet, 2, 0.5, kWatermark, "UpdatedPointer"));
  const Row aware =
      RunOnce(FleetSpec(pressure_fleet, 2, 0.5, kWatermark, "PoolPressure"));
  std::printf("  %-16s total_io=%-8llu forced_gc=%-5llu stalls=%llu\n",
              "UpdatedPointer",
              static_cast<unsigned long long>(
                  blind.result.aggregate.total_io()),
              static_cast<unsigned long long>(blind.result.forced_collections),
              static_cast<unsigned long long>(blind.result.admission_stalls));
  std::printf("  %-16s total_io=%-8llu forced_gc=%-5llu stalls=%llu\n",
              "PoolPressure",
              static_cast<unsigned long long>(
                  aware.result.aggregate.total_io()),
              static_cast<unsigned long long>(aware.result.forced_collections),
              static_cast<unsigned long long>(aware.result.admission_stalls));
  const bool neutral =
      SameAggregate(blind.result.aggregate, aware.result.aggregate) &&
      blind.result.forced_collections == aware.result.forced_collections;
  std::printf("  trajectories %s\n",
              neutral ? "identical (boost is a common factor — ok)"
                      : "DIVERGED");
  if (!neutral) {
    std::fprintf(stderr,
                 "PoolPressure diverged from UpdatedPointer under a uniform "
                 "boost — GlobalView plumbing leaked into victim choice\n");
    return 1;
  }

  // -- 5. Kilofleet (arrival/departure churn at scale) ----------------------
  const uint32_t kilo_tenants = bench::FastMode() ? 64 : 1024;
  std::printf("\nkilofleet (%u tenants, 4 threads, staggered arrivals, 1-in-4"
              " departs, budget = quotas/4):\n", kilo_tenants);
  const Row kilo = RunOnce(KilofleetSpec(kilo_tenants, 4));
  {
    const ServiceResult& r = kilo.result;
    std::printf("  events=%-10llu wall=%7.3fs events/sec=%11.0f\n",
                static_cast<unsigned long long>(r.aggregate.app_events),
                kilo.wall_seconds, kilo.events_per_sec);
    std::printf("  rounds=%-6llu departures=%-5llu stalls=%-8llu "
                "squeezed=%-6llu peak=%llu/%llu frames\n",
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.departures),
                static_cast<unsigned long long>(r.admission_stalls),
                static_cast<unsigned long long>(r.squeezed_evictions),
                static_cast<unsigned long long>(r.peak_occupancy_frames),
                static_cast<unsigned long long>(r.shared_frame_budget));
    // The arena bounds physical occupancy by construction; a peak above
    // the budget would mean the ledger and the frames disagree.
    if (r.peak_occupancy_frames > r.shared_frame_budget) {
      std::fprintf(stderr, "kilofleet peak %llu exceeded the %llu-frame "
                   "arena — occupancy accounting is broken\n",
                   static_cast<unsigned long long>(r.peak_occupancy_frames),
                   static_cast<unsigned long long>(r.shared_frame_budget));
      return 1;
    }
    // Every 4th tenant carries a departure round, but a tenant that
    // drains its allocation stream first finishes naturally instead of
    // being force-retired — so the count is bounded above by the
    // schedule, and must be nonzero to prove retirement actually ran.
    const uint64_t scheduled_departures = kilo_tenants / 4;
    if (r.departures == 0 || r.departures > scheduled_departures) {
      std::fprintf(stderr, "kilofleet retired %llu tenants, expected "
                   "1..%llu\n",
                   static_cast<unsigned long long>(r.departures),
                   static_cast<unsigned long long>(scheduled_departures));
      return 1;
    }
  }

  // -- JSON -----------------------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"mt_tenants\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n  \"shared_vs_private\": [\n";
  for (size_t i = 0; i < shared_rows.size(); ++i) {
    json << "    {\"tenants\": " << shared_rows[i].tenants
         << ", \"shared_events_per_sec\": " << shared_rows[i].events_per_sec
         << ", \"private_events_per_sec\": " << private_rows[i].events_per_sec
         << ", \"identical\": true}"
         << (i + 1 < shared_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const Row& r = scaling[i];
    json << "    {\"tenants\": " << r.tenants
         << ", \"threads\": " << r.threads
         << ", \"events\": " << r.result.aggregate.app_events
         << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"rounds\": " << r.result.rounds << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"aggregate_invariant\": true,\n";
  json << "  \"small_fleet_tenants\": " << fleets.front()
       << ",\n  \"small_fleet_speedup\": " << small_fleet_speedup
       << ",\n  \"big_fleet_tenants\": " << fleets.back()
       << ",\n  \"hardware_threads\": " << cores
       << ",\n  \"big_fleet_speedup_measured\": " << big_fleet_speedup
       << ",\n  \"big_fleet_speedup_modeled\": " << big_fleet_speedup_modeled
       << ",\n  \"speedup_basis\": \""
       << (measured_basis ? "measured" : "critical-path model")
       << "\",\n  \"big_fleet_speedup\": " << big_fleet_speedup_headline
       << ",\n";
  json << "  \"pressure\": {\n    \"tenants\": " << pressure_fleet
       << ",\n    \"watermark\": " << kWatermark << ",\n    \"rows\": [\n";
  for (size_t i = 0; i < pressure.size(); ++i) {
    const ServiceResult& r = pressure[i].result;
    json << "      {\"budget_fraction\": " << budget_fractions[i]
         << ", \"budget_frames\": " << r.shared_frame_budget
         << ", \"watermark_frames\": " << r.watermark_frames
         << ", \"peak_occupancy_frames\": " << r.peak_occupancy_frames
         << ", \"admission_stalls\": " << r.admission_stalls
         << ", \"forced_collections\": " << r.forced_collections
         << ", \"forced_admissions\": " << r.forced_admissions
         << ", \"bound_held\": " << (BoundHolds(r) ? "true" : "false") << "}"
         << (i + 1 < pressure.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n  \"global_view_neutrality\": {\n";
  json << "    \"UpdatedPointer\": {\"total_io\": "
       << blind.result.aggregate.total_io()
       << ", \"forced_collections\": " << blind.result.forced_collections
       << ", \"admission_stalls\": " << blind.result.admission_stalls
       << "},\n";
  json << "    \"PoolPressure\": {\"total_io\": "
       << aware.result.aggregate.total_io()
       << ", \"forced_collections\": " << aware.result.forced_collections
       << ", \"admission_stalls\": " << aware.result.admission_stalls
       << "},\n    \"identical\": " << (neutral ? "true" : "false")
       << "\n  },\n  \"kilofleet\": {\n";
  json << "    \"tenants\": " << kilo_tenants
       << ",\n    \"budget_frames\": " << kilo.result.shared_frame_budget
       << ",\n    \"peak_occupancy_frames\": "
       << kilo.result.peak_occupancy_frames
       << ",\n    \"departures\": " << kilo.result.departures
       << ",\n    \"admission_stalls\": " << kilo.result.admission_stalls
       << ",\n    \"squeezed_evictions\": " << kilo.result.squeezed_evictions
       << ",\n    \"rounds\": " << kilo.result.rounds
       << ",\n    \"wall_seconds\": " << kilo.wall_seconds << "\n  },\n";
  // Flat gate keys, hotpath-style, for `--check`.
  json << "  \"fleet_events_per_sec\": " << big_fleet_events_per_sec << ",\n";
  json << "  \"kilofleet_events_per_sec\": " << kilo.events_per_sec << "\n";
  json << "}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);
  if (!json.good()) return 1;

  // -- Regression gate ------------------------------------------------------
  if (baseline_path != nullptr) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    struct Gate {
      const char* probe;
      double events_per_sec;
    };
    const Gate gates[] = {
        {"fleet", big_fleet_events_per_sec},
        {"kilofleet", kilo.events_per_sec},
    };
    bool ok = true;
    for (const Gate& gate : gates) {
      const double baseline = BaselineEventsPerSec(text, gate.probe);
      if (baseline <= 0) {
        std::fprintf(stderr, "baseline %s missing key %s_events_per_sec\n",
                     baseline_path, gate.probe);
        return 1;
      }
      const double floor = baseline * 0.8;  // >20% regression fails.
      const bool pass = gate.events_per_sec >= floor;
      std::printf("check %-10s %12.0f ev/s vs floor %12.0f (baseline %.0f) "
                  "%s\n",
                  gate.probe, gate.events_per_sec, floor, baseline,
                  pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) {
      std::fprintf(stderr, "service throughput regressed below the %s "
                   "floors\n", baseline_path);
      return 1;
    }
  }
  return 0;
}
